"""The symbolic prover: parametric families, closed forms, certificates."""

import pytest

from repro.analyze import Analyzer
from repro.analyze.symbolic import (
    CLAIMED_CATALOG,
    SYMBOLIC_FAMILIES,
    SYMBOLIC_RULES,
    certify,
    certify_all,
    differential_gate,
    symbolic_family,
)
from repro.analyze.symbolic.certificate import (
    Certificate,
    content_digest,
    region_holds,
    region_k_ge,
    region_n_ge,
)
from repro.analyze.symbolic.instantiate import concrete_errors, unit_at
from repro.core import catalog, partition_vc_budget
from repro.core.torus_designs import dateline_design
from repro.errors import EbdaError


class TestRegistry:
    def test_every_catalog_design_has_a_family(self):
        for name in catalog.NAMED_DESIGNS:
            assert f"catalog:{name}" in SYMBOLIC_FAMILIES

    def test_unknown_family_is_rejected_with_known_list(self):
        with pytest.raises(EbdaError, match="dim-order-mesh"):
            symbolic_family("nope")

    def test_domains_are_well_formed(self):
        for name in SYMBOLIC_FAMILIES:
            design = symbolic_family(name)
            assert design.k_min >= 2
            if design.n_fixed is not None:
                assert design.contains(design.n_fixed, design.k_min)
            else:
                assert design.contains(design.n_min, design.k_min)


class TestClosedForms:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_alg1_mesh_matches_algorithm1(self, n):
        symbolic = symbolic_family("alg1-mesh").sequence_at(n)
        concrete = partition_vc_budget([1] * n)
        assert symbolic.arrow_notation() == concrete.arrow_notation()

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_dateline_torus_matches_dateline_design(self, n):
        symbolic = symbolic_family("dateline-torus").sequence_at(n)
        assert symbolic.arrow_notation() == dateline_design(n).arrow_notation()

    def test_catalog_families_instantiate_to_the_catalog_design(self):
        for name in ("xy", "odd-even", "dragonfly-minimal", "fattree-updown"):
            design = symbolic_family(f"catalog:{name}")
            n = design.n_fixed
            seq = design.sequence_at(n)
            assert seq.arrow_notation() == catalog.design(name).arrow_notation()


class TestProver:
    def test_certify_all_covers_the_registry(self):
        reports = certify_all()
        assert {r.family for r in reports} == set(SYMBOLIC_FAMILIES)
        for report in reports:
            assert len(report.certificates) == len(SYMBOLIC_RULES)

    def test_clean_parametric_families(self):
        for name in ("dim-order-mesh", "alg1-mesh", "dateline-torus"):
            report = certify(name)
            assert report.ok, (name, report.violation_rules)

    @pytest.mark.parametrize("family,rule", [
        ("mesh-missing-negative", "EBDA008"),
        ("mesh-descending-uturn", "EBDA002"),
        ("mesh-backward-turn", "EBDA003"),
        ("mesh-foreign-turn", "EBDA004"),
        ("torus-no-dateline", "EBDA005"),
        ("alg1-claimed", "EBDA009"),
    ])
    def test_broken_family_violates_exactly_its_rule(self, family, rule):
        report = certify(family)
        assert report.violation_rules == (rule,)

    def test_claimed_catalog_designs_clear_ebda009(self):
        for name in CLAIMED_CATALOG:
            report = certify(f"catalog:{name}")
            assert report.ok, (name, report.violation_rules)

    def test_dragonfly_marks_ebda005_inapplicable(self):
        report = certify("catalog:dragonfly-minimal")
        cert = next(c for c in report.certificates if c.rule == "EBDA005")
        assert cert.status == "inapplicable"
        assert "EBDA005" not in report.applicable_rules

    def test_unknown_rule_is_rejected(self):
        with pytest.raises(EbdaError, match="symbolic derivation"):
            certify("dim-order-mesh", rules=("EBDA999",))


class TestCertificates:
    def test_sealed_digest_matches_payload(self):
        report = certify("dim-order-mesh")
        for cert in report.certificates:
            assert cert.digest == content_digest(cert.payload())

    def test_round_trip_through_dict(self):
        report = certify("torus-no-dateline")
        for cert in report.certificates:
            clone = Certificate.from_dict(cert.to_dict())
            assert clone == cert

    def test_witnesses_embed_the_design(self):
        report = certify("alg1-mesh")
        for cert in report.certificates:
            assert cert.witnesses["design"]["name"] == "alg1-mesh"

    def test_region_holds(self):
        assert region_holds(region_n_ge(3), 3, 4)
        assert not region_holds(region_n_ge(3), 2, 9)
        assert region_holds(region_k_ge(5), 1, 5)
        assert not region_holds(region_k_ge(5), 9, 4)


class TestInstantiation:
    def test_unit_at_builds_a_lintable_unit(self):
        design = symbolic_family("dateline-torus")
        unit = unit_at(design, 2, 4)
        report = Analyzer().run(unit)
        assert report.ok

    def test_concrete_errors_match_symbolic_verdict_on_a_grid(self):
        for name in ("dim-order-mesh", "mesh-backward-turn"):
            design = symbolic_family(name)
            report = certify(name)
            for n in (1, 2, 3):
                for k in (2, 4):
                    assert (
                        concrete_errors(design, n, k, report.applicable_rules)
                        == report.errors_at(n, k)
                    ), (name, n, k)

    def test_differential_gate_small_run_is_clean(self):
        result = differential_gate(
            ("dim-order-mesh", "torus-no-dateline"), points=20, seed=7
        )
        assert result.ok
        assert len(result.checked) == 20

    def test_differential_gate_requires_one_point_per_family(self):
        with pytest.raises(EbdaError):
            differential_gate(points=3, seed=0)
