"""Each lint rule: fires on a crafted trigger, stays quiet on clean designs."""

import pytest

from repro.analyze import DesignUnit, lint_design
from repro.analyze.rules import THEOREM_MIRROR_RULES
from repro.core import catalog
from repro.core.torus_designs import dateline_design
from repro.core.turns import Turn, TurnSet
from repro.topology import Dragonfly, FatTree, Mesh, Torus
from repro.topology.classes import dateline, rule_for_design


def rules_fired(unit, *, select=None):
    report = lint_design(unit, select=select)
    return {d.rule for d in report.diagnostics}


def unit_for(text, **kw):
    return DesignUnit.from_sequence(text, **kw)


class TestTheoremMirrors:
    def test_ebda001_duplicate_pair(self):
        fired = rules_fired(unit_for("X+ X- Y+ Y- -> X2+"))
        assert "EBDA001" in fired

    def test_ebda002_descending_uturn(self):
        # P0 covers the complete X pair with numbering X+ < X-, so the
        # U-turn X- -> X+ descends it (extraction grants only X+ -> X-).
        seq_unit = unit_for("X+ X- -> Y+")
        bad = seq_unit.turnset.merged_with(
            TurnSet({"bad": (Turn.parse("X-->X+"),)})
        )
        unit = DesignUnit(sequence=seq_unit.sequence, turnset=bad)
        assert "EBDA002" in rules_fired(unit)

    def test_ebda003_backward_transition(self):
        seq_unit = unit_for("X+ -> Y+")
        bad = seq_unit.turnset.merged_with(
            TurnSet({"bad": (Turn.parse("Y+->X+"),)})
        )
        unit = DesignUnit(sequence=seq_unit.sequence, turnset=bad)
        assert "EBDA003" in rules_fired(unit)

    def test_ebda004_foreign_channel(self):
        seq_unit = unit_for("X+ -> Y+")
        bad = seq_unit.turnset.merged_with(
            TurnSet({"bad": (Turn.parse("X+->Z+"),)})
        )
        unit = DesignUnit(sequence=seq_unit.sequence, turnset=bad)
        assert "EBDA004" in rules_fired(unit)

    def test_ebda005_unbroken_wrap_ring_aggregated(self):
        unit = unit_for("X+ X- -> Y+ Y-", topology=Torus(4, 4))
        report = lint_design(unit)
        hits = [d for d in report.errors if d.rule == "EBDA005"]
        # one aggregated diagnostic per broken direction, not per ring
        assert len(hits) == 4
        assert all("unbroken" in d.message for d in hits)

    def test_ebda005_silent_with_dateline(self):
        unit = DesignUnit.from_sequence(
            dateline_design(2), topology=Torus(4, 4), rule=dateline
        )
        assert "EBDA005" not in rules_fired(unit)

    def test_ebda005_skipped_without_topology(self):
        unit = unit_for("X+ X- -> Y+ Y-")  # would break every torus ring
        report = lint_design(unit)
        assert "EBDA005" not in report.rules_run
        assert report.ok

    def test_mirror_rules_constant(self):
        assert THEOREM_MIRROR_RULES == (
            "EBDA001",
            "EBDA002",
            "EBDA003",
            "EBDA004",
            "EBDA005",
        )


class TestStructuralSmells:
    def test_ebda006_dead_channel(self):
        # Z+ sits alone in the last partition; extraction grants turns
        # into it, so drop them to isolate the channel.
        seq_unit = unit_for("X+ X- Y- -> Y+")
        pruned = TurnSet(
            {
                "kept": tuple(
                    t
                    for t in seq_unit.turnset.turns
                    if "Y+" not in (str(t.src), str(t.dst))
                )
            }
        )
        unit = DesignUnit(sequence=seq_unit.sequence, turnset=pruned)
        assert "EBDA006" in rules_fired(unit)

    def test_ebda006_quiet_on_single_channel_design(self):
        assert "EBDA006" not in rules_fired(unit_for("X+"))

    def test_ebda007_phantom_class(self):
        # The odd-even design needs the column-parity rule; under the
        # default no-classes rule its @o/@e channels are never produced.
        unit = DesignUnit.from_sequence(
            catalog.design("odd-even"), topology=Mesh(4, 4)
        )
        assert "EBDA007" in rules_fired(unit)

    def test_ebda007_quiet_with_right_rule(self):
        unit = DesignUnit.from_sequence(
            catalog.design("odd-even"),
            topology=Mesh(4, 4),
            rule=rule_for_design("odd-even"),
        )
        assert "EBDA007" not in rules_fired(unit)


class TestRoutability:
    def test_ebda008_missing_direction(self):
        report = lint_design(unit_for("X+ -> Y+ Y-"))
        hits = [d for d in report.errors if d.rule == "EBDA008"]
        assert hits
        assert any("X-" in d.message for d in hits)

    def test_ebda008_reports_minimal_failing_sets_only(self):
        # Keep all four directions but drop every turn: each single-dim
        # requirement is servable (injection is free), every {X,Y} mix
        # fails; supersets of failing sets must not be re-reported.
        seq_unit = unit_for("X+ X- Y- -> Y+")
        unit = DesignUnit(sequence=seq_unit.sequence, turnset=TurnSet({}))
        hits = [
            d for d in lint_design(unit).errors if d.rule == "EBDA008"
        ]
        assert hits
        for d in hits:
            assert d.message.count("+") + d.message.count("-") <= 3

    def test_ebda008_quiet_on_catalog(self):
        for name in ("xy", "west-first", "north-last", "odd-even"):
            unit = DesignUnit.from_sequence(catalog.design(name), name=name)
            assert "EBDA008" not in rules_fired(unit), name

    def test_ebda009_needs_explicit_claim(self):
        text = "X+ X- Y- -> Y+"
        assert "EBDA009" not in rules_fired(unit_for(text))
        claimed = unit_for(text, claims_fully_adaptive=True)
        hits = [d for d in lint_design(claimed).errors if d.rule == "EBDA009"]
        assert hits
        assert "(n+1)*2^(n-1) = 6" in hits[0].message

    def test_ebda009_quiet_on_true_minimal_design(self):
        from repro.core import minimal_fully_adaptive

        unit = DesignUnit.from_sequence(
            minimal_fully_adaptive(2), claims_fully_adaptive=True
        )
        assert "EBDA009" not in rules_fired(unit)

    def test_ebda010_notes_escape_gap(self):
        unit = DesignUnit.from_sequence(catalog.design("west-first"))
        report = lint_design(unit)
        notes = [d for d in report.notes if d.rule == "EBDA010"]
        assert notes  # Y+/Y- while still needing X-
        assert report.ok  # notes never fail a lint

    def test_ebda010_quiet_on_deterministic_xy(self):
        unit = DesignUnit.from_sequence(catalog.design("xy"))
        assert "EBDA010" not in rules_fired(unit)


class TestOptInRules:
    def test_ebda011_off_by_default(self):
        unit = unit_for("X+ -> Y+ -> X- -> Y-")
        report = lint_design(unit)
        assert "EBDA011" not in report.rules_run

    def test_ebda011_flags_skipping_transitions(self):
        unit = unit_for("X+ -> Y+ -> X- -> Y-")
        fired = rules_fired(unit, select=("EBDA011",))
        assert fired == {"EBDA011"}


class TestDragonflyGlobalLoop:
    def dragonfly_unit(self, text):
        return unit_for(
            text,
            topology=Dragonfly(4),
            rule=rule_for_design("dragonfly-minimal"),
        )

    def test_ebda012_flags_single_phase_design(self):
        # Local and global channels in one partition wait on each other:
        # clean under every theorem mirror, yet the l->g->l loop through
        # the global channel can deadlock across groups.
        unit = self.dragonfly_unit("X+@l Y+@g")
        fired = rules_fired(unit)
        assert "EBDA012" in fired

    def test_ebda012_quiet_on_phased_catalog_designs(self):
        for name in ("dragonfly-minimal", "dragonfly-valiant"):
            unit = DesignUnit.from_sequence(
                catalog.design(name),
                name=name,
                topology=Dragonfly(4),
                rule=rule_for_design(name),
            )
            assert "EBDA012" not in rules_fired(unit)

    def test_ebda012_quiet_off_dragonfly(self):
        unit = unit_for("X+ X- -> Y+ Y-", topology=Mesh(4, 4))
        assert "EBDA012" not in rules_fired(unit)

    def test_ebda012_skipped_without_topology(self):
        unit = unit_for("X+ X- -> Y+ Y-")
        report = lint_design(unit)
        assert "EBDA012" not in report.rules_run

    def test_ebda012_diagnostic_names_a_global_channel(self):
        unit = self.dragonfly_unit("X+@l Y+@g")
        report = lint_design(unit)
        diags = [d for d in report.errors if d.rule == "EBDA012"]
        assert diags
        assert "@g" in (diags[0].location.channel or "")


class TestCatalogIsClean:
    #: Beyond-mesh catalog designs lint on their native topologies; the
    #: dragonfly pair ignores EBDA005, whose torus wrap-ring premise
    #: misreads dragonfly global 2-rings.
    NATIVE = {
        "dragonfly-minimal": (lambda: Dragonfly(4), ("EBDA005",)),
        "dragonfly-valiant": (lambda: Dragonfly(4), ("EBDA005",)),
        "fattree-updown": (lambda: FatTree(4, 2, 2), ()),
    }

    @pytest.mark.parametrize("name", sorted(catalog.NAMED_DESIGNS))
    def test_catalog_design_has_no_errors(self, name):
        design = catalog.design(name)
        make_topology, ignore = self.NATIVE.get(name, (None, ()))
        if make_topology is None:
            n_dims = len({ch.dim for ch in design.all_channels})
            topology = Mesh(*((4,) * n_dims))
        else:
            topology = make_topology()
        unit = DesignUnit.from_sequence(
            design,
            name=name,
            topology=topology,
            rule=rule_for_design(name),
        )
        report = lint_design(unit, ignore=ignore)
        assert report.ok, [d.render() for d in report.errors]
        assert not report.warnings, [d.render() for d in report.warnings]


class TestCorpusMutantsAreFlagged:
    def test_every_committed_mutant_raises_an_error(self):
        from pathlib import Path

        from repro.fuzz.corpus import load_corpus

        entries = load_corpus(Path(__file__).parents[1] / "fuzz" / "corpus")
        assert len(entries) >= 5
        for entry in entries:
            seq, turnset = entry.design.compile()
            unit = DesignUnit(
                sequence=seq,
                turnset=turnset,
                name=entry.id,
                topology=entry.design.topology(),
                rule=entry.design.class_rule(),
            )
            report = lint_design(unit)
            assert report.errors, entry.design.describe()
            for d in report.errors:
                assert d.rule.startswith("EBDA")
                assert d.location.describe()
