"""Diagnostic records, locations, fingerprints and the rule registry."""

import re

import pytest

from repro.analyze import RULES, Diagnostic, Location, Severity, rule_ids
from repro.analyze.diagnostics import register_rule


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.NOTE.rank

    def test_at_least(self):
        assert Severity.ERROR.at_least(Severity.WARNING)
        assert Severity.WARNING.at_least(Severity.WARNING)
        assert not Severity.NOTE.at_least(Severity.WARNING)

    def test_values_are_sarif_levels(self):
        assert {s.value for s in Severity} <= {"error", "warning", "note", "none"}


class TestLocation:
    def test_describe_partition_with_name(self):
        loc = Location(partition=0, partition_name="PA")
        assert loc.describe() == "P0(PA)"

    def test_describe_full(self):
        loc = Location(partition=1, partition_name="PB", channel="X+", turn="X+->Y+")
        assert loc.describe() == "P1(PB) channel X+ turn X+->Y+"

    def test_describe_empty_falls_back(self):
        assert Location().describe() == "design"

    def test_fully_qualified_roots_at_design(self):
        loc = Location(partition=0)
        assert loc.fully_qualified("west-first") == "west-first::P0"
        assert loc.fully_qualified("") == "design::P0"

    def test_to_dict_omits_unset(self):
        assert Location(channel="X+").to_dict() == {"channel": "X+"}


class TestDiagnostic:
    def _diag(self, **kw):
        base = dict(
            rule="EBDA001",
            severity=Severity.ERROR,
            message="partition covers two pairs",
            location=Location(partition=0, partition_name="PA"),
            design="demo",
        )
        base.update(kw)
        return Diagnostic(**base)

    def test_fingerprint_is_stable(self):
        assert self._diag().fingerprint() == self._diag().fingerprint()

    def test_fingerprint_ignores_message_wording(self):
        a = self._diag(message="one wording")
        b = self._diag(message="completely different wording")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_depends_on_rule_design_location(self):
        base = self._diag()
        assert base.fingerprint() != self._diag(rule="EBDA002").fingerprint()
        assert base.fingerprint() != self._diag(design="other").fingerprint()
        assert (
            base.fingerprint()
            != self._diag(location=Location(partition=1)).fingerprint()
        )

    def test_render_one_line_plus_hint(self):
        text = self._diag(hint="split the partition").render()
        assert text.startswith("EBDA001 error")
        assert "P0(PA)" in text
        assert "hint: split the partition" in text

    def test_to_dict_round_trips_json(self):
        import json

        payload = json.loads(json.dumps(self._diag(hint="h").to_dict()))
        assert payload["rule"] == "EBDA001"
        assert payload["severity"] == "error"
        assert payload["fingerprint"] == self._diag().fingerprint()


class TestRegistry:
    def test_ids_are_stable_format(self):
        assert RULES
        for rid in RULES:
            assert re.fullmatch(r"EBDA\d{3}", rid), rid

    def test_metadata_complete(self):
        for info in RULES.values():
            assert info.title
            assert info.citation
            assert info.description
            assert callable(info.func)

    def test_rule_ids_sorted_and_filtered(self):
        all_ids = rule_ids()
        assert list(all_ids) == sorted(all_ids)
        default_ids = rule_ids(include_optional=False)
        assert set(default_ids) <= set(all_ids)
        assert all(RULES[r].default_enabled for r in default_ids)

    def test_duplicate_registration_rejected(self):
        existing = next(iter(RULES))
        with pytest.raises(ValueError, match="duplicate rule id"):
            register_rule(
                existing, "dup", Severity.NOTE, "nowhere"
            )(lambda unit: iter(()))
