"""The three renderers: human text, strict JSON, SARIF 2.1.0."""

import json

import pytest

from repro.analyze import Analyzer, DesignUnit, render_json, render_sarif, render_text
from repro.analyze.diagnostics import RULES
from repro.analyze.reporters import (
    FINGERPRINT_KEY,
    RENDERERS,
    SARIF_SCHEMA,
    SARIF_VERSION,
    TOOL_NAME,
)


@pytest.fixture(scope="module")
def reports():
    analyzer = Analyzer()
    return [
        analyzer.run(DesignUnit.from_sequence("X- -> X+ Y+ Y-", name="west-first")),
        analyzer.run(DesignUnit.from_sequence("X+ X- Y+ Y- -> X2+", name="broken")),
    ]


class TestText:
    def test_blocks_and_totals(self, reports):
        text = render_text(reports)
        assert "west-first:" in text
        assert "broken: 1 error(s)" in text
        assert text.splitlines()[-1].startswith("checked 2 design(s):")

    def test_verbose_appends_rules_run(self, reports):
        assert "[rules run:" in render_text(reports, verbose=True)


class TestJson:
    def test_schema_and_totals(self, reports):
        payload = json.loads(render_json(reports))
        assert payload["tool"] == TOOL_NAME
        assert payload["schema"] == 1
        assert [d["design"] for d in payload["designs"]] == ["west-first", "broken"]
        assert payload["totals"]["error"] == 1

    def test_output_is_deterministic(self, reports):
        assert render_json(reports) == render_json(reports)


class TestSarif:
    def test_log_skeleton(self, reports):
        log = json.loads(render_sarif(reports))
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == TOOL_NAME
        assert run["properties"]["designs"] == ["west-first", "broken"]

    def test_one_descriptor_per_registered_rule(self, reports):
        log = json.loads(render_sarif(reports))
        descriptors = log["runs"][0]["tool"]["driver"]["rules"]
        assert [d["id"] for d in descriptors] == sorted(RULES)
        for d in descriptors:
            assert d["shortDescription"]["text"]
            assert "EbDa paper" in d["help"]["text"]
            assert d["defaultConfiguration"]["level"] in ("error", "warning", "note")
            assert "citation" in d["properties"]

    def test_results_reference_descriptors(self, reports):
        log = json.loads(render_sarif(reports))
        run = log["runs"][0]
        ids = [d["id"] for d in run["tool"]["driver"]["rules"]]
        assert run["results"]
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            (loc,) = result["locations"]
            (logical,) = loc["logicalLocations"]
            assert "::" in logical["fullyQualifiedName"]
            assert logical["kind"] == "member"
            assert result["partialFingerprints"][FINGERPRINT_KEY]

    def test_hint_folded_into_message(self, reports):
        log = json.loads(render_sarif(reports))
        error = next(
            r for r in log["runs"][0]["results"] if r["ruleId"] == "EBDA001"
        )
        assert "(hint:" in error["message"]["text"]

    def test_validates_against_vendored_subset_schema(self, reports):
        jsonschema = pytest.importorskip("jsonschema")
        from pathlib import Path

        schema_path = (
            Path(__file__).parents[2] / "tools" / "sarif-2.1.0-subset.schema.json"
        )
        schema = json.loads(schema_path.read_text())
        jsonschema.validate(json.loads(render_sarif(reports)), schema)


class TestRegistry:
    def test_renderers_mapping(self):
        assert set(RENDERERS) == {"text", "json", "sarif"}
        assert RENDERERS["sarif"] is render_sarif
