"""The Analyzer: rule selection, execution, reports, the oracle face."""

import pytest

from repro.analyze import Analyzer, DesignUnit, Severity, lint_design, static_errors
from repro.analyze.diagnostics import RULES
from repro.analyze.rules import THEOREM_MIRROR_RULES
from repro.errors import EbdaError
from repro.topology import Mesh


CLEAN = "X- -> X+ Y+ Y-"  # west-first
BROKEN = "X+ X- Y+ Y- -> X2+"  # Theorem 1 violation in P0


class TestSelection:
    def test_default_runs_default_enabled_only(self):
        enabled = Analyzer().enabled_rules
        assert enabled == tuple(
            sorted(r for r, i in RULES.items() if i.default_enabled)
        )
        assert "EBDA011" not in enabled

    def test_explicit_select_allows_opt_in(self):
        a = Analyzer(select=("EBDA011", "EBDA001"))
        assert a.enabled_rules == ("EBDA001", "EBDA011")

    def test_ignore_subtracts_after_select(self):
        a = Analyzer(select=("EBDA001", "EBDA002"), ignore=("EBDA002",))
        assert a.enabled_rules == ("EBDA001",)

    def test_unknown_select_rejected(self):
        with pytest.raises(EbdaError, match="unknown rule id 'EBDA999'"):
            Analyzer(select=("EBDA999",))

    def test_unknown_ignore_rejected(self):
        with pytest.raises(EbdaError, match="unknown rule id"):
            Analyzer(ignore=("NOPE",))


class TestRun:
    def test_topology_rules_skipped_and_recorded(self):
        unit = DesignUnit.from_sequence(CLEAN, name="wf")
        report = Analyzer().run(unit)
        assert "EBDA005" not in report.rules_run
        assert "EBDA007" not in report.rules_run
        with_topo = Analyzer().run(unit.with_topology(Mesh(4, 4)))
        assert "EBDA005" in with_topo.rules_run
        assert "EBDA007" in with_topo.rules_run

    def test_diagnostics_stamped_with_design_name(self):
        unit = DesignUnit.from_sequence(BROKEN, name="broken-demo")
        report = Analyzer().run(unit)
        assert report.errors
        assert all(d.design == "broken-demo" for d in report.diagnostics)

    def test_report_properties(self):
        report = Analyzer().run(DesignUnit.from_sequence(BROKEN, name="b"))
        assert not report.ok
        assert report.worst() is Severity.ERROR
        assert report.counts["error"] == len(report.errors) >= 1
        assert set(report.counts) == {"error", "warning", "note"}
        assert report.at_or_above(Severity.ERROR) == report.errors
        assert len(report.at_or_above(Severity.NOTE)) == len(report.diagnostics)
        assert report.elapsed_s >= 0

    def test_clean_report(self):
        report = Analyzer().run(DesignUnit.from_sequence("X+ -> Y+ -> X- -> Y-"))
        assert report.ok
        assert report.worst() is None
        assert report.diagnostics == ()

    def test_run_many(self):
        units = [
            DesignUnit.from_sequence(CLEAN, name="a"),
            DesignUnit.from_sequence(BROKEN, name="b"),
        ]
        reports = Analyzer().run_many(units)
        assert [r.unit_name for r in reports] == ["a", "b"]
        assert reports[0].ok and not reports[1].ok

    def test_to_dict_json_safe(self):
        import json

        report = Analyzer().run(DesignUnit.from_sequence(BROKEN, name="b"))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["design"] == "b"
        assert payload["counts"]["error"] >= 1
        assert payload["rules_run"]


class TestLintDesign:
    def test_one_shot_matches_analyzer(self):
        unit = DesignUnit.from_sequence(BROKEN, name="b")
        assert (
            lint_design(unit).counts == Analyzer().run(unit).counts
        )

    def test_select_pass_through(self):
        unit = DesignUnit.from_sequence(BROKEN, name="b")
        report = lint_design(unit, select=["EBDA001"])
        assert report.rules_run == ("EBDA001",)


class TestStaticErrors:
    def test_clean_design_empty(self):
        assert static_errors(DesignUnit.from_sequence(CLEAN)) == ()

    def test_broken_design_flat_strings(self):
        errors = static_errors(DesignUnit.from_sequence(BROKEN))
        assert errors
        assert all(e.split(":")[0] in THEOREM_MIRROR_RULES for e in errors)

    def test_only_mirror_rules_consulted(self):
        # EBDA008 fires on this design (missing X- direction) but is not a
        # mirror rule, so the oracle face must stay clean — the theorem
        # oracle would also accept it.
        unit = DesignUnit.from_sequence("X+ -> Y+ Y-")
        assert static_errors(unit) == ()
        assert not lint_design(unit).ok
