"""The independent certificate checker: accepts the prover, rejects forgeries."""

import json
import random

import pytest

from repro.analyze import check_certificate, check_certificates
from repro.analyze.symbolic import certify, certify_all
from repro.analyze.symbolic.certificate import content_digest


@pytest.fixture(scope="module")
def all_certs():
    return [
        c.to_dict() for rep in certify_all() for c in rep.certificates
    ]


class TestAccepts:
    def test_every_prover_certificate_validates(self, all_certs):
        results = check_certificates(all_certs)
        bad = [r for r in results if not r.ok]
        assert not bad, [r.describe() for r in bad]

    def test_accepts_json_text_input(self):
        cert = certify("dim-order-mesh").certificates[0]
        assert check_certificate(cert.to_json()).ok


class TestRejectsTampering:
    def test_any_mutated_byte_is_rejected(self, all_certs):
        rng = random.Random(42)
        texts = [
            json.dumps(d, sort_keys=True, separators=(",", ":"))
            for d in all_certs
        ]
        for _ in range(100):
            text = rng.choice(texts)
            pos = rng.randrange(len(text))
            old = text[pos]
            new = chr((ord(old) - 32 + rng.randrange(1, 95)) % 95 + 32)
            tampered = text[:pos] + new + text[pos:][1:]
            try:
                parsed = json.loads(tampered)
            except ValueError:
                continue  # the mutation broke the JSON: rejected trivially
            if parsed == json.loads(text):
                continue  # value-equal mutation (e.g. 1 -> 01 is invalid JSON anyway)
            assert not check_certificate(parsed).ok, (pos, old, new)

    def test_flipped_status_with_recomputed_digest_is_rejected(self):
        # A semantic forgery: flip the verdict AND reseal the digest.  The
        # digest check passes, so only re-derivation can catch it.
        cert = next(
            c for c in certify("mesh-backward-turn").certificates
            if c.rule == "EBDA003"
        )
        forged = cert.to_dict()
        forged["status"] = "clean"
        forged["region"] = {"kind": "none"}
        forged["digest"] = content_digest(
            {k: v for k, v in forged.items() if k != "digest"}
        )
        result = check_certificate(forged)
        assert not result.ok

    def test_forged_region_is_rejected(self):
        cert = next(
            c for c in certify("torus-no-dateline").certificates
            if c.rule == "EBDA005"
        )
        forged = cert.to_dict()
        forged["region"] = {"kind": "k-ge", "k0": 99}
        forged["digest"] = content_digest(
            {k: v for k, v in forged.items() if k != "digest"}
        )
        assert not check_certificate(forged).ok

    def test_unlisted_axiom_is_rejected(self):
        cert = next(
            c for c in certify("dim-order-mesh").certificates
            if c.rule == "EBDA005"
        )
        forged = cert.to_dict()
        forged["premises"] = list(forged["premises"]) + [
            {"axiom": "trust-me", "fact": "everything is fine"}
        ]
        forged["digest"] = content_digest(
            {k: v for k, v in forged.items() if k != "digest"}
        )
        assert not check_certificate(forged).ok

    def test_garbage_structures_are_rejected_not_crashed(self):
        for garbage in (None, 7, [], {}, {"rule": "EBDA001"}, "not json {"):
            assert not check_certificate(garbage).ok
