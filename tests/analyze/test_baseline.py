"""Baseline files: record findings, suppress them, fail on new ones."""

import json

import pytest

from repro.analyze import (
    Analyzer,
    DesignUnit,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.errors import EbdaError


@pytest.fixture()
def broken_report():
    return Analyzer().run(
        DesignUnit.from_sequence("X+ X- Y+ Y- -> X2+", name="broken")
    )


class TestRoundTrip:
    def test_write_load_apply_suppresses_everything(self, broken_report, tmp_path):
        path = tmp_path / "baseline.json"
        n = write_baseline([broken_report], path)
        assert n == len(broken_report.diagnostics)
        fingerprints = load_baseline(path)
        assert len(fingerprints) == n
        (filtered,) = apply_baseline([broken_report], fingerprints)
        assert filtered.diagnostics == ()
        assert filtered.ok
        # execution metadata survives filtering
        assert filtered.rules_run == broken_report.rules_run
        assert filtered.elapsed_s == broken_report.elapsed_s

    def test_new_findings_survive_old_baseline(self, broken_report, tmp_path):
        path = tmp_path / "baseline.json"
        clean = Analyzer().run(DesignUnit.from_sequence("X+ -> Y+", name="ok"))
        write_baseline([clean], path)
        (filtered,) = apply_baseline([broken_report], load_baseline(path))
        assert filtered.diagnostics == broken_report.diagnostics

    def test_file_shape(self, broken_report, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([broken_report], path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        for note in payload["fingerprints"].values():
            rule, design = note.split(" ", 1)
            assert rule.startswith("EBDA")
            assert design == "broken"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(EbdaError, match="not found"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(EbdaError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(EbdaError, match="unsupported shape"):
            load_baseline(path)

    def test_misshapen_fingerprints(self, tmp_path):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"version": 1, "fingerprints": ["a"]}))
        with pytest.raises(EbdaError, match="must be an object"):
            load_baseline(path)
