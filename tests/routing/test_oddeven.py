"""Unit tests for the native Odd-Even routing (Chiu's ROUTE function)."""

import pytest

from repro.core import Channel
from repro.errors import RoutingError
from repro.routing import OddEven
from repro.topology import Mesh


def _reachable_moves(routing, mesh):
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            frontier = [(src, None)]
            seen = set()
            while frontier:
                cur, in_ch = frontier.pop()
                if cur == dst:
                    continue
                moves = routing.candidates(cur, dst, in_ch)
                assert moves, f"dead end at {cur} for {src}->{dst} via {in_ch}"
                for nxt, ch in moves:
                    yield cur, in_ch, nxt, ch
                    if (nxt, ch) not in seen:
                        seen.add((nxt, ch))
                        frontier.append((nxt, ch))


class TestRules:
    def test_rule1_no_en_es_at_even_columns(self, mesh4):
        r = OddEven(mesh4)
        for cur, in_ch, nxt, ch in _reachable_moves(r, mesh4):
            if (
                in_ch is not None
                and in_ch.dim == 0 and in_ch.sign == +1
                and ch.dim == 1
            ):
                assert cur[0] % 2 == 1, f"EN/ES at even column {cur}"

    def test_rule2_no_nw_sw_at_odd_columns(self, mesh4):
        r = OddEven(mesh4)
        for cur, in_ch, nxt, ch in _reachable_moves(r, mesh4):
            if (
                in_ch is not None
                and in_ch.dim == 1
                and ch.dim == 0 and ch.sign == -1
            ):
                assert cur[0] % 2 == 0, f"NW/SW at odd column {cur}"

    def test_minimal(self, mesh4):
        r = OddEven(mesh4)
        for cur, in_ch, nxt, ch in _reachable_moves(r, mesh4):
            pass  # _reachable_moves already asserts no dead ends

    def test_rejects_3d(self, mesh3d):
        with pytest.raises(RoutingError):
            OddEven(mesh3d)


class TestSpecificDecisions:
    def test_vertical_at_source_even_column(self, mesh4):
        r = OddEven(mesh4)
        # injected at even column, eastbound with vertical offset: vertical
        # allowed (Chiu's source-column exception)
        moves = {(n, str(c)) for n, c in r.candidates((0, 0), (2, 2), None)}
        assert ((0, 1), "Y+") in moves

    def test_no_vertical_turn_after_east_at_even(self, mesh4):
        r = OddEven(mesh4)
        moves = r.candidates((2, 0), (3, 2), Channel.parse("X+"))
        assert all(c.dim == 0 for _n, c in moves)

    def test_finish_verticals_before_even_destination_column(self, mesh4):
        r = OddEven(mesh4)
        # dst column 2 (even), one east hop left, vertical offset remains:
        # east must not be offered from the odd column 1.
        moves = r.candidates((1, 0), (2, 2), Channel.parse("X+"))
        assert all(c.dim == 1 for _n, c in moves)

    def test_westbound_verticals_in_even_columns_only(self, mesh4):
        r = OddEven(mesh4)
        odd_moves = r.candidates((3, 0), (0, 2), None)
        assert {str(c) for _n, c in odd_moves} == {"X-"}
        even_moves = r.candidates((2, 0), (0, 2), None)
        assert {str(c) for _n, c in even_moves} == {"X-", "Y+"}
