"""Unit tests for the native west-first / north-last / negative-first."""

import pytest

from repro.errors import RoutingError
from repro.routing import NegativeFirst, NorthLast, WestFirst
from repro.topology import Mesh


def _walks(routing, mesh):
    """Yield every reachable (cur, in_ch, out move) triple."""
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            frontier = [(src, None)]
            seen = set()
            while frontier:
                cur, in_ch = frontier.pop()
                for nxt, ch in routing.candidates(cur, dst, in_ch):
                    yield cur, dst, in_ch, nxt, ch
                    if (nxt, ch) not in seen:
                        seen.add((nxt, ch))
                        frontier.append((nxt, ch))


class TestWestFirst:
    def test_west_offsets_resolved_first(self, mesh4):
        r = WestFirst(mesh4)
        cands = r.candidates((2, 0), (0, 2), None)
        assert [(n, str(c)) for n, c in cands] == [((1, 0), "X-")]

    def test_fully_adaptive_eastbound(self, mesh4):
        r = WestFirst(mesh4)
        cands = r.candidates((0, 0), (2, 2), None)
        assert len(cands) == 2

    def test_never_turns_into_west(self, mesh4):
        r = WestFirst(mesh4)
        for cur, dst, in_ch, nxt, ch in _walks(r, mesh4):
            if in_ch is not None and ch.dim == 0 and ch.sign == -1:
                assert in_ch.dim == 0 and in_ch.sign == -1

    def test_rejects_3d(self, mesh3d):
        with pytest.raises(RoutingError):
            WestFirst(mesh3d)


class TestNorthLast:
    def test_north_only_when_last(self, mesh4):
        r = NorthLast(mesh4)
        assert [n for n, _c in r.candidates((1, 0), (1, 3), None)] == [(1, 1)]

    def test_no_turn_out_of_north(self, mesh4):
        r = NorthLast(mesh4)
        for cur, dst, in_ch, nxt, ch in _walks(r, mesh4):
            if in_ch is not None and in_ch.dim == 1 and in_ch.sign == +1:
                assert ch.dim == 1 and ch.sign == +1

    def test_adaptive_south(self, mesh4):
        r = NorthLast(mesh4)
        assert len(r.candidates((0, 3), (2, 1), None)) == 2


class TestNegativeFirst:
    def test_negative_hops_first(self, mesh4):
        r = NegativeFirst(mesh4)
        cands = r.candidates((1, 1), (3, 0), None)
        assert [(n, str(c)) for n, c in cands] == [((1, 0), "Y-")]

    def test_adaptive_within_phase(self, mesh4):
        r = NegativeFirst(mesh4)
        assert len(r.candidates((2, 2), (0, 0), None)) == 2
        assert len(r.candidates((0, 0), (2, 2), None)) == 2

    def test_never_negative_after_positive(self, mesh4):
        r = NegativeFirst(mesh4)
        for cur, dst, in_ch, nxt, ch in _walks(r, mesh4):
            if in_ch is not None and in_ch.sign == +1:
                assert ch.sign == +1


@pytest.mark.parametrize("cls", [WestFirst, NorthLast, NegativeFirst])
class TestCommon:
    def test_connected(self, cls, mesh4):
        r = cls(mesh4)
        for src in mesh4.nodes:
            for dst in mesh4.nodes:
                if src != dst:
                    assert r.candidates(src, dst, None), (src, dst)

    def test_minimal_progress(self, cls, mesh4):
        r = cls(mesh4)
        for cur, dst, in_ch, nxt, ch in _walks(r, mesh4):
            assert mesh4.distance(nxt, dst) == mesh4.distance(cur, dst) - 1
