"""Cross-validation: native turn models vs their EbDa partition designs.

The paper's Table 1 claims the partitioning options regenerate the classic
turn models.  These tests compare the *move sets* of native implementations
against the corresponding TurnTableRouting designs over every reachable
routing state.
"""

import pytest

from repro.core import catalog
from repro.routing import (
    NegativeFirst,
    TurnTableRouting,
    WestFirst,
    xy_routing,
)
from repro.topology import Mesh


def _injection_moves(routing, mesh):
    out = {}
    for src in mesh.nodes:
        for dst in mesh.nodes:
            if src == dst:
                continue
            out[(src, dst)] = {
                (n, (c.dim, c.sign)) for n, c in routing.candidates(src, dst, None)
            }
    return out


class TestXYEquivalence:
    def test_exact_move_sets(self, mesh4):
        native = _injection_moves(xy_routing(mesh4), mesh4)
        ebda = _injection_moves(TurnTableRouting(mesh4, catalog.design("xy")), mesh4)
        assert native == ebda


class TestWestFirstEquivalence:
    def test_exact_move_sets(self, mesh4):
        native = _injection_moves(WestFirst(mesh4), mesh4)
        ebda = _injection_moves(
            TurnTableRouting(mesh4, catalog.design("west-first")), mesh4
        )
        assert native == ebda


class TestNegativeFirstEquivalence:
    def test_exact_move_sets(self, mesh4):
        native = _injection_moves(NegativeFirst(mesh4), mesh4)
        ebda = _injection_moves(
            TurnTableRouting(mesh4, catalog.design("negative-first")), mesh4
        )
        assert native == ebda


class TestAdaptivityMatches:
    @pytest.mark.parametrize(
        "native_cls, design_name",
        [(WestFirst, "west-first"), (NegativeFirst, "negative-first")],
    )
    def test_same_adaptivity(self, mesh4, native_cls, design_name):
        from repro.analysis import adaptivity_report

        native = adaptivity_report(mesh4, native_cls(mesh4))
        ebda = adaptivity_report(
            mesh4, TurnTableRouting(mesh4, catalog.design(design_name))
        )
        assert native.routable_paths == ebda.routable_paths
        assert native.total_paths == ebda.total_paths
