"""Unit tests for Up*/Down* routing on irregular topologies."""

import pytest

from repro.cdg import verify_routing
from repro.routing import UpDownRouting
from repro.topology import FaultyMesh, Mesh


class TestTreeLabels:
    def test_root_defaults_to_first_node(self, faulty_mesh):
        r = UpDownRouting(faulty_mesh)
        assert r._levels[faulty_mesh.nodes[0]] == 0

    def test_up_links_point_to_lower_level(self, faulty_mesh):
        r = UpDownRouting(faulty_mesh)
        for link in faulty_mesh.links:
            if r.is_up(link):
                la, lb = r._levels[link.src], r._levels[link.dst]
                assert (lb < la) or (lb == la and link.dst < link.src)

    def test_exactly_one_direction_is_up(self, faulty_mesh):
        r = UpDownRouting(faulty_mesh)
        for link in faulty_mesh.links:
            back = faulty_mesh.link(link.dst, link.src)
            assert r.is_up(link) != r.is_up(back)


class TestRouting:
    def test_connected(self, faulty_mesh):
        r = UpDownRouting(faulty_mesh)
        for src in faulty_mesh.nodes:
            for dst in faulty_mesh.nodes:
                if src != dst:
                    assert r.candidates(src, dst, None), (src, dst)

    def test_never_up_after_down(self, faulty_mesh):
        r = UpDownRouting(faulty_mesh)
        for src in faulty_mesh.nodes:
            for dst in faulty_mesh.nodes:
                if src == dst:
                    continue
                frontier = [(src, None)]
                seen = set()
                while frontier:
                    cur, in_ch = frontier.pop()
                    if cur == dst:
                        continue
                    for nxt, ch in r.candidates(cur, dst, in_ch):
                        if in_ch is not None and in_ch.cls == "d":
                            assert ch.cls == "d"
                        if (nxt, ch) not in seen:
                            seen.add((nxt, ch))
                            frontier.append((nxt, ch))

    def test_cdg_acyclic(self, faulty_mesh):
        r = UpDownRouting(faulty_mesh)
        assert verify_routing(r, faulty_mesh, r.class_rule).acyclic

    def test_works_on_healthy_mesh_too(self, mesh3x3):
        r = UpDownRouting(mesh3x3)
        assert verify_routing(r, mesh3x3, r.class_rule).acyclic

    def test_custom_root(self, mesh3x3):
        r = UpDownRouting(mesh3x3, root=(2, 2))
        assert r._levels[(2, 2)] == 0
        assert r._levels[(0, 0)] == 4
