"""Unit tests for turn-table routing (executing an EbDa design)."""

import pytest

from repro.core import Channel, PartitionSequence, catalog
from repro.errors import RoutingError
from repro.routing import TurnTableRouting
from repro.topology import Mesh, column_parity


class TestBasics:
    def test_at_destination_no_candidates(self, mesh4, north_last_design):
        r = TurnTableRouting(mesh4, north_last_design)
        assert r.candidates((1, 1), (1, 1), None) == []

    def test_injection_offers_minimal_moves(self, mesh4, west_first_design):
        r = TurnTableRouting(mesh4, west_first_design)
        cands = r.candidates((0, 0), (2, 2), None)
        assert {(n, str(c)) for n, c in cands} == {
            ((1, 0), "X+"), ((0, 1), "Y+"),
        }

    def test_invalid_design_rejected(self, mesh4):
        with pytest.raises(Exception):
            TurnTableRouting(mesh4, PartitionSequence.parse("X+ X- Y+ Y-"))

    def test_name_from_label(self, mesh4, north_last_design):
        assert TurnTableRouting(mesh4, north_last_design, label="nl").name == "nl"

    def test_bad_directions_mode(self, mesh4, north_last_design):
        with pytest.raises(RoutingError):
            TurnTableRouting(mesh4, north_last_design, directions="psychic")


class TestTurnLegality:
    def test_north_last_blocks_turn_out_of_north(self, mesh4, north_last_design):
        r = TurnTableRouting(mesh4, north_last_design)
        # Arrived northbound; destination to the NE: turning east after
        # north is prohibited (Y+ is the last partition).
        cands = r.candidates((1, 1), (2, 2), Channel.parse("Y+"))
        assert all(c.dim == 1 for _n, c in cands)

    def test_north_last_defers_north(self, mesh4, north_last_design):
        r = TurnTableRouting(mesh4, north_last_design)
        # From injection toward NE the router must avoid stranding: going
        # north first would dead-end, so only east is offered.
        cands = r.candidates((0, 0), (2, 2), None)
        assert {(n, str(c)) for n, c in cands} == {((1, 0), "X+")}

    def test_transition_legal_continuation(self, mesh4, north_last_design):
        r = TurnTableRouting(mesh4, north_last_design)
        x = Channel.parse("X+")
        assert r.transition_legal(x, x)
        assert r.transition_legal(None, x)

    def test_transition_illegal_backward(self, mesh4, north_last_design):
        r = TurnTableRouting(mesh4, north_last_design)
        assert not r.transition_legal(Channel.parse("Y+"), Channel.parse("X+"))


class TestConnectivity:
    @pytest.mark.parametrize(
        "name", ["xy", "west-first", "negative-first", "north-last", "dyxy", "fig7c"]
    )
    def test_catalog_designs_connected(self, mesh4, name):
        r = TurnTableRouting(mesh4, catalog.design(name))
        assert r.is_connected()
        assert r.dead_pairs() == []

    def test_odd_even_connected_with_rule(self, mesh4):
        r = TurnTableRouting(mesh4, catalog.design("odd-even"), column_parity)
        assert r.is_connected()

    def test_all_candidate_moves_keep_destination_reachable(self, mesh4):
        # Walk the full reachable state space of a design; a dead end
        # anywhere would show the reachability filter leaking.
        r = TurnTableRouting(mesh4, catalog.design("negative-first"))
        for src in mesh4.nodes:
            for dst in mesh4.nodes:
                if src == dst:
                    continue
                frontier = [(src, None)]
                seen = set()
                while frontier:
                    cur, in_ch = frontier.pop()
                    if cur == dst:
                        continue
                    cands = r.candidates(cur, dst, in_ch)
                    assert cands, (src, dst, cur, in_ch)
                    for nxt, ch in cands:
                        if (nxt, ch) not in seen:
                            seen.add((nxt, ch))
                            frontier.append((nxt, ch))


class TestCandidateOrdering:
    def test_progress_sorted(self, mesh4):
        r = TurnTableRouting(mesh4, catalog.design("dyxy"))
        cands = r.candidates((0, 0), (3, 3), None)
        dists = [mesh4.distance(n, (3, 3)) for n, _c in cands]
        assert dists == sorted(dists)
