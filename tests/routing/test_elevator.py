"""Unit tests for Elevator-First routing."""

import pytest

from repro.core import Channel
from repro.errors import RoutingError
from repro.routing import ElevatorFirst, elevator_first_turnset
from repro.topology import Mesh, PartiallyConnected3D


@pytest.fixture
def topo():
    return PartiallyConnected3D(4, 4, 2, elevators=[(1, 1), (3, 2)])


class TestStructure:
    def test_sixteen_paper_turns(self):
        assert len(elevator_first_turnset()) == 16

    def test_requires_partial3d(self, mesh3d):
        with pytest.raises(RoutingError):
            ElevatorFirst(mesh3d)

    def test_ten_channel_classes(self, topo):
        assert len(ElevatorFirst(topo).channel_classes) == 10


class TestRouting:
    def test_connected(self, topo):
        r = ElevatorFirst(topo)
        for src in topo.nodes:
            for dst in topo.nodes:
                if src != dst:
                    assert r.candidates(src, dst, None), (src, dst)

    def test_deterministic(self, topo):
        r = ElevatorFirst(topo)
        for src in topo.nodes:
            for dst in topo.nodes:
                if src != dst:
                    assert len(r.candidates(src, dst, None)) == 1

    def test_same_layer_uses_vc1(self, topo):
        r = ElevatorFirst(topo)
        (_n, ch), = r.candidates((0, 0, 0), (2, 0, 0), None)
        assert ch.vc == 1 and ch.dim == 0

    def test_rides_z_at_elevator(self, topo):
        r = ElevatorFirst(topo)
        (nxt, ch), = r.candidates((1, 1, 0), (1, 1, 1), None)
        assert ch.dim == 2 and nxt == (1, 1, 1)

    def test_destination_layer_after_z_uses_vc2(self, topo):
        r = ElevatorFirst(topo)
        (_n, ch), = r.candidates((1, 1, 1), (3, 1, 1), Channel.parse("Z+"))
        assert ch.vc == 2

    def test_full_walk_terminates(self, topo):
        r = ElevatorFirst(topo)
        for src, dst in [((0, 0, 0), (3, 3, 1)), ((3, 3, 1), (0, 0, 0)),
                         ((2, 0, 0), (2, 0, 1))]:
            cur, in_ch = src, None
            hops = 0
            while cur != dst:
                (cur, in_ch), = [
                    (n, c) for n, c in r.candidates(cur, dst, in_ch)
                ][:1]
                hops += 1
                assert hops < 50
