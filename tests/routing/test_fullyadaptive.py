"""Unit tests for the fully adaptive routing functions."""

import pytest

from repro.analysis import adaptivity_report
from repro.cdg import verify_routing
from repro.routing import DyXY, MinimalFullyAdaptive, UnrestrictedAdaptive
from repro.topology import Mesh


class TestMinimalFullyAdaptive:
    def test_2d_fully_adaptive(self, mesh4):
        r = MinimalFullyAdaptive(mesh4)
        assert adaptivity_report(mesh4, r).is_fully_adaptive

    def test_2d_deadlock_free(self, mesh4):
        assert verify_routing(MinimalFullyAdaptive(mesh4), mesh4).acyclic

    def test_3d_fully_adaptive(self, mesh3d):
        r = MinimalFullyAdaptive(mesh3d)
        report = adaptivity_report(mesh3d, r)
        assert report.is_fully_adaptive

    def test_pair_dim_configurable(self, mesh4):
        r = MinimalFullyAdaptive(mesh4, pair_dim=0)
        assert adaptivity_report(mesh4, r).is_fully_adaptive

    def test_name(self, mesh4):
        assert MinimalFullyAdaptive(mesh4).name == "fully-adaptive-2D"


class TestDyXY:
    def test_is_the_figure7b_design(self, mesh4):
        r = DyXY(mesh4)
        assert len(r.channel_classes) == 6
        assert adaptivity_report(mesh4, r).is_fully_adaptive

    def test_deadlock_free(self, mesh4):
        assert verify_routing(DyXY(mesh4), mesh4).acyclic


class TestUnrestrictedAdaptive:
    def test_offers_all_minimal_moves(self, mesh4):
        r = UnrestrictedAdaptive(mesh4)
        assert len(r.candidates((0, 0), (2, 2), None)) == 2
        assert len(r.candidates((0, 0), (2, 0), None)) == 1

    def test_cyclic_cdg(self, mesh4):
        assert not verify_routing(UnrestrictedAdaptive(mesh4), mesh4).acyclic

    def test_single_channel_per_link(self, mesh4):
        assert len(UnrestrictedAdaptive(mesh4).channel_classes) == 4
