"""Unit tests for output selection policies."""

import random

import pytest

from repro.core import Channel
from repro.errors import RoutingError
from repro.routing import (
    NAMED_POLICIES,
    SelectionContext,
    congestion_aware,
    first_candidate,
    random_candidate,
    zigzag,
)


def _ctx(cur=(0, 0), dst=(3, 2), credits=None, seed=1):
    return SelectionContext(
        cur=cur,
        dst=dst,
        rng=random.Random(seed),
        credits=credits or (lambda _c: 0),
    )


X = Channel.parse("X+")
Y = Channel.parse("Y+")


class TestFirst:
    def test_picks_first(self):
        cands = [((1, 0), X), ((0, 1), Y)]
        assert first_candidate(cands, _ctx()) == ((1, 0), X)

    def test_empty_rejected(self):
        with pytest.raises(RoutingError):
            first_candidate([], _ctx())


class TestRandom:
    def test_deterministic_given_seed(self):
        cands = [((1, 0), X), ((0, 1), Y)]
        picks = {random_candidate(cands, _ctx(seed=s))[0] for s in range(20)}
        assert picks == {(1, 0), (0, 1)}


class TestZigzag:
    def test_prefers_larger_offset(self):
        # dst (3,2) from (0,0): X offset 3 > Y offset 2
        cands = [((0, 1), Y), ((1, 0), X)]
        assert zigzag(cands, _ctx())[0] == (1, 0)

    def test_single_candidate(self):
        cands = [((0, 1), Y)]
        assert zigzag(cands, _ctx()) == cands[0]


class TestCongestionAware:
    def test_prefers_more_credits(self):
        cands = [((1, 0), X), ((0, 1), Y)]
        credits = lambda cand: 4 if cand[0] == (0, 1) else 1
        assert congestion_aware(cands, _ctx(credits=credits))[0] == (0, 1)

    def test_ties_break_by_offset(self):
        cands = [((0, 1), Y), ((1, 0), X)]
        assert congestion_aware(cands, _ctx())[0] == (1, 0)


class TestRegistry:
    def test_named_policies(self):
        assert set(NAMED_POLICIES) == {"first", "random", "zigzag", "congestion"}
