"""Unit tests for dual-path Hamiltonian multicast."""

import pytest

from repro.cdg import verify_routing
from repro.errors import RoutingError
from repro.routing.multicast import (
    DOWN_CLASSES,
    UP_CLASSES,
    HamiltonianPathRouting,
    MulticastHamiltonianRouting,
    dual_path_cost,
    hamiltonian_label,
    monotone_path_length,
    plan_dual_path,
    unicast_cost,
)
from repro.sim import NetworkSimulator, Packet
from repro.topology import Mesh
from repro.topology.classes import row_parity


@pytest.fixture
def mesh() -> Mesh:
    return Mesh(4, 4)


class TestLabelling:
    def test_snake(self):
        assert [hamiltonian_label((x, 0), 4) for x in range(4)] == [0, 1, 2, 3]
        assert [hamiltonian_label((x, 1), 4) for x in range(4)] == [7, 6, 5, 4]
        assert hamiltonian_label((0, 2), 4) == 8

    def test_bijection(self, mesh):
        labels = {hamiltonian_label(n, 4) for n in mesh.nodes}
        assert labels == set(range(16))

    def test_snake_neighbours_adjacent(self, mesh):
        # consecutive labels are physically adjacent (it is a Hamiltonian path)
        by_label = sorted(mesh.nodes, key=lambda n: hamiltonian_label(n, 4))
        for a, b in zip(by_label, by_label[1:]):
            assert mesh.distance(a, b) == 1


class TestMonotoneRouting:
    def test_up_moves_increase_labels(self, mesh):
        r = HamiltonianPathRouting(mesh, "up")
        for src in mesh.nodes:
            for dst in mesh.nodes:
                if r.label(dst) <= r.label(src):
                    continue
                for nxt, _ch in r.candidates(src, dst, None):
                    assert r.label(src) < r.label(nxt) <= r.label(dst)

    def test_down_is_mirror(self, mesh):
        r = HamiltonianPathRouting(mesh, "down")
        cands = r.candidates((3, 3), (0, 0), None)
        assert cands
        assert all(r.label(n) < r.label((3, 3)) for n, _c in cands)

    def test_wrong_direction_unreachable(self, mesh):
        up = HamiltonianPathRouting(mesh, "up")
        assert up.candidates((3, 3), (0, 0), None) == []

    def test_channel_classes_match_section62_partitions(self, mesh):
        assert len(UP_CLASSES) == 3 and len(DOWN_CLASSES) == 3
        assert HamiltonianPathRouting(mesh, "up").channel_classes == UP_CLASSES

    def test_cdgs_acyclic(self, mesh):
        for d in ("up", "down"):
            assert verify_routing(HamiltonianPathRouting(mesh, d), mesh, row_parity).acyclic

    def test_monotone_path_reaches_every_higher_label(self, mesh):
        r = HamiltonianPathRouting(mesh, "up")
        for src in mesh.nodes:
            for dst in mesh.nodes:
                if r.label(dst) > r.label(src):
                    assert monotone_path_length(r, src, dst) >= mesh.distance(src, dst)

    def test_rejects_bad_inputs(self, mesh3d):
        with pytest.raises(RoutingError):
            HamiltonianPathRouting(mesh3d, "up")
        with pytest.raises(RoutingError):
            HamiltonianPathRouting(Mesh(4, 4), "sideways")


class TestPlanning:
    def test_split_by_label(self, mesh):
        high, low = plan_dual_path(mesh, (1, 1), [(3, 3), (0, 0), (3, 1)])
        assert high is not None and low is not None
        # (3,3)->15, (3,1)->4 are above label((1,1))=6? label (1,1) = 1*4 + (4-1-1)=6
        # (3,1) has label 4 < 6 -> low; (0,0)=0 -> low; (3,3) -> high
        assert high.destinations == ((3, 3),)
        assert set(low.destinations) == {(3, 1), (0, 0)}

    def test_visit_orders_monotone(self, mesh):
        high, low = plan_dual_path(
            mesh, (0, 0), [(3, 0), (3, 3), (1, 2), (2, 1)]
        )
        labels = [hamiltonian_label(d, 4) for d in high.destinations]
        assert labels == sorted(labels)
        assert low is None  # (0,0) has the lowest label

    def test_duplicate_and_self_destinations_dropped(self, mesh):
        high, low = plan_dual_path(mesh, (0, 0), [(1, 0), (1, 0), (0, 0)])
        assert high.destinations == ((1, 0),)
        assert low is None

    def test_costs(self, mesh):
        dsts = [(3, 3), (0, 3), (2, 0)]
        dual = dual_path_cost(mesh, (0, 0), dsts)
        uni = unicast_cost(mesh, (0, 0), dsts)
        assert dual > 0 and uni > 0


class TestWormSimulation:
    def test_copies_absorbed_in_order(self, mesh):
        routing = MulticastHamiltonianRouting(mesh, "up")
        sim = NetworkSimulator(mesh, routing, row_parity, buffer_depth=4, watchdog=1000)
        worm = Packet(
            pid=0, src=(0, 0), dst=(0, 3), length=3, created=0,
            waypoints=((3, 0), (3, 1)),
        )
        sim.offer_packet(worm)
        for _ in range(500):
            sim.step()
            if sim.is_idle():
                break
        assert worm.delivered is not None
        assert worm.copies == {(3, 0), (3, 1)}
        assert sim.stats.multicast_copies == 2
        assert not sim.stats.deadlocked

    def test_target_of_advances_through_waypoints(self, mesh):
        routing = MulticastHamiltonianRouting(mesh, "up")
        worm = Packet(
            pid=0, src=(0, 0), dst=(0, 3), length=1, created=0,
            waypoints=((3, 0), (3, 1)),
        )
        assert routing.target_of(worm, (0, 0)) == (3, 0)
        assert routing.target_of(worm, (3, 0)) == (3, 1)
        worm.copies.update({(3, 0), (3, 1)})
        assert routing.target_of(worm, (3, 1)) == (0, 3)

    def test_waypoint_validation(self):
        with pytest.raises(ValueError):
            Packet(pid=0, src=(0, 0), dst=(1, 1), length=1, created=0,
                   waypoints=((1, 1),))
