"""Unit tests for dimension-order routing."""

import pytest

from repro.errors import RoutingError
from repro.routing import DimensionOrderRouting, xy_routing, yx_routing
from repro.topology import Mesh, Torus


class TestXY:
    def test_resolves_x_first(self, mesh4):
        r = xy_routing(mesh4)
        cands = r.candidates((0, 0), (2, 2), None)
        assert len(cands) == 1
        assert cands[0][0] == (1, 0)

    def test_then_y(self, mesh4):
        r = xy_routing(mesh4)
        cands = r.candidates((2, 0), (2, 2), None)
        assert cands[0][0] == (2, 1)

    def test_single_candidate_everywhere(self, mesh4):
        r = xy_routing(mesh4)
        for src in mesh4.nodes:
            for dst in mesh4.nodes:
                if src != dst:
                    assert len(r.candidates(src, dst, None)) == 1

    def test_route_walk_reaches_destination(self, mesh4):
        r = xy_routing(mesh4)
        cur, dst = (0, 3), (3, 0)
        hops = 0
        while cur != dst:
            (cur, _ch), = r.candidates(cur, dst, None)
            hops += 1
        assert hops == mesh4.distance((0, 3), (3, 0))


class TestYX:
    def test_resolves_y_first(self, mesh4):
        r = yx_routing(mesh4)
        cands = r.candidates((0, 0), (2, 2), None)
        assert cands[0][0] == (0, 1)

    def test_name(self, mesh4):
        assert yx_routing(mesh4).name == "YX-order"
        assert xy_routing(mesh4).name == "XY-order"


class TestGeneralOrder:
    def test_3d_custom_order(self, mesh3d):
        r = DimensionOrderRouting(mesh3d, order=(2, 0, 1))
        cands = r.candidates((0, 0, 0), (1, 1, 1), None)
        assert cands[0][0] == (0, 0, 1)

    def test_order_must_be_permutation(self, mesh4):
        with pytest.raises(RoutingError):
            DimensionOrderRouting(mesh4, order=(0, 0))

    def test_works_on_torus(self):
        t = Torus(4, 4)
        r = xy_routing(t)
        cands = r.candidates((0, 0), (3, 0), None)
        # shortest way is the wrap
        assert cands[0][0] == (3, 0)
