"""Shrinker: monotone size decrease, predicate preservation, witness bound."""

from repro.fuzz import (
    DifferentialOracle,
    FuzzDesign,
    Mutation,
    fast_profile,
    shrink,
    within_witness_bound,
)

START = FuzzDesign(
    "mesh",
    (4, 4),
    "X+ X- Y+ -> Y-",
    mutations=(Mutation("duplicate-pair", partition=0, channels="Y2+ Y2-"),),
    label="mutant:duplicate-pair",
)


def _cyclic(design: FuzzDesign) -> bool:
    return not DifferentialOracle(fast_profile()).cdg_verdict(design).acyclic


def test_shrink_preserves_predicate_and_decreases_size():
    assert _cyclic(START)
    result = shrink(START, _cyclic)
    assert _cyclic(result.design)
    assert result.design.size() < START.size()
    assert result.steps == len(result.trace)


def test_shrink_chain_is_strictly_monotone():
    # Re-run one accepted move at a time: every step of the chain must
    # strictly decrease the size metric and keep the predicate true.
    current = START
    sizes = [current.size()]
    while True:
        step = shrink(current, _cyclic, max_steps=1)
        if step.steps == 0:
            break
        assert step.design.size() < current.size()
        assert _cyclic(step.design)
        current = step.design
        sizes.append(current.size())
    assert len(sizes) >= 2  # at least one move was accepted
    assert sizes == sorted(sizes, reverse=True)


def test_duplicate_pair_shrinks_to_minimal_2x2_witness():
    result = shrink(START, _cyclic)
    assert within_witness_bound(result.design)
    assert result.design.shape == (2, 2)
    # The witness keeps exactly the cycle-forming ingredients: one X pair
    # partition plus the grafted Y pair mutation.
    assert result.design.mutations == START.mutations
    assert result.design.size() == (3, 4, 1)


def test_shrink_is_a_fixpoint():
    result = shrink(START, _cyclic)
    again = shrink(result.design, _cyclic)
    assert again.design == result.design
    assert again.steps == 0


def test_shrink_with_full_oracle_predicate_matches():
    oracle = DifferentialOracle(fast_profile())

    def still_flags(design: FuzzDesign) -> bool:
        return oracle.run(design).classification == "unsafe-flagged"

    result = shrink(START, still_flags)
    assert within_witness_bound(result.design)
    assert still_flags(result.design)


def test_torus_witness_can_flatten_or_stay_cyclic():
    torus = FuzzDesign(
        "torus", (4, 4), "X+ X- Y+ -> Y-", rule="none", label="mutant:x"
    )
    assert _cyclic(torus)
    result = shrink(torus, _cyclic)
    assert _cyclic(result.design)
    assert result.design.size() < torus.size()


def test_within_witness_bound():
    assert within_witness_bound(FuzzDesign("mesh", (2, 2), "X+ X-"))
    assert within_witness_bound(FuzzDesign("mesh", (2,), "X+ X-"))
    assert not within_witness_bound(FuzzDesign("mesh", (3, 2), "X+ X-"))
    assert not within_witness_bound(FuzzDesign("torus", (2, 2), "X+ X-"))
    assert not within_witness_bound(FuzzDesign("mesh", (2, 2, 2), "X+ X-"))
