"""Generator determinism and design-recipe plumbing."""

import pytest

from repro.errors import EbdaError
from repro.fuzz import DesignGenerator, FuzzDesign, Mutation
from repro.fuzz.design import MUTATION_KINDS


def test_designs_are_deterministic_per_seed():
    first = DesignGenerator(seed=7).designs(30)
    second = DesignGenerator(seed=7).designs(30)
    assert [d.to_dict() for d in first] == [d.to_dict() for d in second]


def test_trials_replay_independently():
    gen = DesignGenerator(seed=3)
    batch = gen.designs(20)
    # Any single trial regenerates identically without its predecessors.
    assert gen.design_for(13) == batch[13]
    assert gen.designs(5, start=10) == batch[10:15]


def test_different_seeds_differ():
    a = DesignGenerator(seed=0).designs(20)
    b = DesignGenerator(seed=1).designs(20)
    assert [d.to_dict() for d in a] != [d.to_dict() for d in b]


def test_generator_mixes_valid_and_mutant():
    designs = DesignGenerator(seed=0).designs(60)
    labels = {d.label.split(":")[0] for d in designs}
    assert labels == {"valid", "mutant"}
    kinds = {d.mutations[0].kind for d in designs if d.mutations}
    assert kinds <= set(MUTATION_KINDS)
    assert len(kinds) >= 3  # the mix exercises most mutation kinds


def test_every_generated_design_compiles():
    for design in DesignGenerator(seed=11).designs(40):
        seq, turnset = design.compile()
        assert seq.channel_count > 0
        assert design.topology().nodes  # shape is realisable


def test_design_round_trips_through_json_dict():
    for design in DesignGenerator(seed=5).designs(25):
        assert FuzzDesign.from_dict(design.to_dict()) == design


def test_mutation_round_trip_and_validation():
    m = Mutation("duplicate-pair", partition=1, channels="Y2+ Y2-")
    assert Mutation.from_dict(m.to_dict()) == m
    with pytest.raises(EbdaError):
        Mutation("no-such-kind")


def test_mutant_compile_differs_from_base():
    design = FuzzDesign(
        "mesh",
        (2, 2),
        "X+ X- Y+ -> Y-",
        mutations=(Mutation("duplicate-pair", partition=0, channels="Y2+ Y2-"),),
        label="mutant:duplicate-pair",
    )
    seq, _ = design.compile()
    base = design.base_sequence()
    assert seq.channel_count == base.channel_count + 2
    assert not design.labeled_valid


def test_unknown_topology_and_rule_rejected():
    with pytest.raises(EbdaError):
        FuzzDesign("hypercube", (2, 2), "X+ X-").topology()
    with pytest.raises(EbdaError):
        FuzzDesign("mesh", (2, 2), "X+ X-", rule="no-such-rule").class_rule()
