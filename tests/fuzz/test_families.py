"""Topology-family plumbing: schema round-trips, strict validation, generation.

The ``family`` field (plus ``engine`` and ``failed_links``) must survive
``FuzzDesign.to_dict``/``from_dict`` exactly, unknown families/engines and
unknown keys must be rejected up front (a corpus entry that silently
drops its family would replay as the wrong network), and the seeded
generator must cover every requested family deterministically while
leaving the legacy mesh/torus stream untouched.
"""

import pytest

from repro.errors import EbdaError
from repro.fuzz import (
    DEFAULT_FAMILIES,
    FAMILIES,
    DesignGenerator,
    FuzzDesign,
    Mutation,
)

ALL = ("mesh", "torus", "dragonfly", "fattree", "irregular")


# -- schema round-trip -------------------------------------------------------


ROUND_TRIP_DESIGNS = (
    FuzzDesign("mesh", (3, 3), "X+ X- Y+ -> Y-", label="valid:mesh"),
    FuzzDesign(
        "dragonfly",
        (3,),
        "X+@l -> Y+@g -> X2+@l",
        rule="dragonfly",
        engine="dragonfly",
        label="valid:dragonfly-minimal",
    ),
    FuzzDesign(
        "fattree",
        (2, 2, 1),
        "X+@u -> X-@d",
        rule="updown-signs",
        engine="greedy-up-down",
        mutations=(Mutation("backward-transition", src=1, dst=0),),
        label="mutant:greedy-up-down",
    ),
    FuzzDesign(
        "irregular",
        (3, 3),
        "X+ X- Y+ -> Y-",
        failed_links=(((0, 0), (1, 0)), ((1, 1), (1, 2))),
        label="valid:irregular",
    ),
)


@pytest.mark.parametrize("design", ROUND_TRIP_DESIGNS, ids=lambda d: d.label)
def test_to_dict_round_trip_carries_family(design):
    data = design.to_dict()
    assert data["family"] == design.topology_kind
    assert data["engine"] == design.engine
    restored = FuzzDesign.from_dict(data)
    assert restored == design
    assert restored.topology_kind == design.topology_kind
    assert restored.engine == design.engine
    assert restored.failed_links == design.failed_links


def test_legacy_topology_key_still_loads():
    """Pre-family corpus entries used ``topology`` and implied table engine."""
    data = {
        "topology": "mesh",
        "shape": [2, 2],
        "sequence": "X+ X- Y+ -> Y-",
        "rule": "none",
        "mutations": [],
        "label": "legacy",
    }
    design = FuzzDesign.from_dict(data)
    assert design.topology_kind == "mesh"
    assert design.engine == "table"
    assert design.failed_links == ()


# -- strict-schema rejection -------------------------------------------------


def _base_dict() -> dict:
    return {
        "family": "mesh",
        "shape": [2, 2],
        "sequence": "X+ X- Y+ -> Y-",
        "rule": "none",
        "mutations": [],
        "label": "t",
    }


def test_from_dict_rejects_unknown_family():
    data = _base_dict()
    data["family"] = "hypercube"
    with pytest.raises(EbdaError, match="hypercube"):
        FuzzDesign.from_dict(data)


def test_from_dict_rejects_unknown_keys():
    data = _base_dict()
    data["topo"] = "mesh"
    with pytest.raises(EbdaError, match="topo"):
        FuzzDesign.from_dict(data)


def test_from_dict_rejects_unknown_engine():
    data = _base_dict()
    data["engine"] = "warp"
    with pytest.raises(EbdaError, match="warp"):
        FuzzDesign.from_dict(data)


def test_from_dict_requires_a_family_key():
    data = _base_dict()
    del data["family"]
    with pytest.raises(EbdaError):
        FuzzDesign.from_dict(data)


def test_constructor_rejects_family_engine_mismatch():
    with pytest.raises(EbdaError):
        FuzzDesign("mesh", (3, 3), "X+ X- Y+ -> Y-", engine="dragonfly")


def test_constructor_rejects_failed_links_on_plain_mesh():
    with pytest.raises(EbdaError):
        FuzzDesign(
            "mesh",
            (3, 3),
            "X+ X- Y+ -> Y-",
            failed_links=(((0, 0), (1, 0)),),
        )


# -- generator families ------------------------------------------------------


def test_default_families_are_mesh_and_torus():
    assert DEFAULT_FAMILIES == ("mesh", "torus")
    assert set(DEFAULT_FAMILIES) < set(FAMILIES)


def test_generator_rejects_unknown_families():
    with pytest.raises(ValueError):
        DesignGenerator(0, families=("mesh", "hypercube"))
    with pytest.raises(ValueError):
        DesignGenerator(0, families=())


def test_generator_covers_every_requested_family():
    designs = DesignGenerator(0, families=ALL).designs(150)
    seen = {d.topology_kind for d in designs}
    assert seen == set(ALL)
    # Engines beyond the turn table actually get exercised.
    engines = {d.engine for d in designs}
    assert {"dragonfly", "up-down"} <= engines


def test_generator_is_deterministic_per_seed_and_trial():
    a = DesignGenerator(7, families=ALL).designs(60)
    b = DesignGenerator(7, families=ALL).designs(60)
    assert a == b
    # Trial index, not call order, decides the design.
    assert DesignGenerator(7, families=ALL).design_for(33) == a[33]
    # A different seed draws a different stream.
    c = DesignGenerator(8, families=ALL).designs(60)
    assert a != c


def test_families_keyword_defaults_to_legacy_stream():
    legacy = DesignGenerator(3).designs(40)
    explicit = DesignGenerator(3, families=DEFAULT_FAMILIES).designs(40)
    assert legacy == explicit
    assert {d.topology_kind for d in legacy} <= {"mesh", "torus"}
