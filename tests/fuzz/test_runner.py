"""Campaign driver: reports, budget, disagreement pipeline, self-check."""

import json

from repro.fuzz import (
    DesignGenerator,
    FuzzDesign,
    Mutation,
    fast_profile,
    load_corpus,
    run_fuzz,
    self_check,
)
from repro.fuzz.shrink import within_witness_bound
from repro.sim.parallel import SweepEngine

FORGED = FuzzDesign(
    "mesh",
    (3, 3),
    "X+ X- Y+ -> Y-",
    mutations=(Mutation("duplicate-pair", partition=0, channels="Y2+ Y2-"),),
    label="valid:forged",
)


class _InjectingGenerator(DesignGenerator):
    """Yields one forged disagreement amid otherwise honest trials."""

    def design_for(self, trial: int) -> FuzzDesign:
        if trial == 2:
            return FORGED
        return super().design_for(trial)


def test_small_campaign_agrees_and_reports(tmp_path):
    report = run_fuzz(10, seed=0, profile=fast_profile())
    assert report.ok
    assert report.runs_completed == 10
    assert sum(report.counts.values()) == 10
    assert "oracles agree" in report.summary()

    path = report.to_jsonl(tmp_path / "report.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(lines) == 11
    assert lines[-1]["kind"] == "report"
    assert lines[-1]["ok"] is True
    assert all(line["kind"] == "trial" for line in lines[:-1])


def test_campaign_results_match_serial_reference():
    serial = run_fuzz(8, seed=4, profile=fast_profile())
    pooled = run_fuzz(
        8, seed=4, profile=fast_profile(), engine=SweepEngine(jobs=2)
    )
    assert [t.classification for t in serial.trials] == [
        t.classification for t in pooled.trials
    ]


def test_budget_stops_between_batches():
    report = run_fuzz(10_000, seed=0, budget_s=0.0, profile=fast_profile())
    assert report.runs_completed < 10_000


def test_injected_disagreement_is_shrunk_and_persisted(tmp_path):
    report = run_fuzz(
        4,
        seed=0,
        corpus_dir=tmp_path,
        profile=fast_profile(),
        generator=_InjectingGenerator(seed=0),
    )
    assert not report.ok
    assert len(report.disagreements) == 1
    d = report.disagreements[0]
    assert d.trial == 2
    assert d.classification == "valid-design-rejected"
    assert d.original == FORGED
    assert within_witness_bound(d.shrunk.design)
    assert d.shrunk.design.size() < FORGED.size()

    saved = load_corpus(tmp_path)
    assert len(saved) == 1
    assert saved[0].design == d.shrunk.design
    assert saved[0].expect == "valid-design-rejected"
    assert saved[0].origin["trial"] == 2
    assert "HARD DISAGREEMENTS" in report.summary()


def test_self_check_passes():
    ok, message = self_check(fast_profile())
    assert ok, message
    assert "shrunk" in message
