"""The differential oracle: verdicts, classification, forensics wiring."""

import pytest

from repro.cdg.verify import cyclic_core
from repro.fuzz import (
    HARD_DISAGREEMENTS,
    DifferentialOracle,
    FuzzDesign,
    Mutation,
    fast_profile,
)


@pytest.fixture(scope="module")
def oracle():
    return DifferentialOracle(fast_profile())


VALID_MESH = FuzzDesign("mesh", (3, 3), "X+ X- Y+ -> Y-", label="valid:mesh-alg1")
VALID_TORUS = FuzzDesign(
    "torus",
    (3,),
    "X+@r X-@r -> X2+@w X2-@w -> X2+@r X2-@r",
    rule="dateline",
    label="valid:torus-dateline",
)
DUP_PAIR_2X2 = FuzzDesign(
    "mesh",
    (2, 2),
    "X+ X- Y+ -> Y-",
    mutations=(Mutation("duplicate-pair", partition=0, channels="Y2+ Y2-"),),
    label="mutant:duplicate-pair",
)


def test_valid_mesh_is_safe_confirmed(oracle):
    result = oracle.run(VALID_MESH)
    assert result.classification == "safe-confirmed"
    assert result.disagreement is None
    assert result.theorem_safe and result.cdg_acyclic
    assert not result.sim_deadlock
    assert result.error is None


def test_valid_dateline_torus_is_safe_confirmed(oracle):
    result = oracle.run(VALID_TORUS)
    assert result.classification == "safe-confirmed"
    assert result.theorem_safe and result.cdg_acyclic
    assert not result.sim_deadlock


def test_duplicate_pair_mutant_flagged_by_all_three(oracle):
    result = oracle.run(DUP_PAIR_2X2)
    assert result.classification == "unsafe-flagged"
    assert result.all_flagged
    assert result.disagreement is None
    assert any("complete pairs" in v for v in result.theorem_violations)
    assert result.cdg_cycle  # concrete wire cycle reported


def test_mesh_design_on_torus_caught_by_wrap_ring_check(oracle):
    design = FuzzDesign(
        "torus", (3, 3), "X+ X- Y+ -> Y-", rule="none", label="mutant:drop-channel"
    )
    result = oracle.run(design)
    assert result.classification == "unsafe-flagged"
    assert result.all_flagged
    assert any("unbroken" in v for v in result.theorem_violations)


def test_deadlock_report_embeds_forensics_witness(oracle):
    result = oracle.run(DUP_PAIR_2X2)
    assert result.sim_deadlock
    assert result.forensics is not None
    assert result.forensics["wait_cycle"]
    assert result.forensics["witness_channels"]


def test_witness_channels_lie_in_cdg_cyclic_core(oracle):
    """When sim and CDG both fire, the held wires sit in the cyclic core."""
    result = oracle.run(DUP_PAIR_2X2)
    assert result.witness_in_core is True
    graph = oracle.cdg_graph(DUP_PAIR_2X2)
    core = {str(w) for w in cyclic_core(graph)}
    held = {w for wires in result.forensics["witness_channels"] for w in wires}
    assert held and held <= core


def test_descending_uturn_is_cyclic_not_triggered(oracle):
    design = FuzzDesign(
        "mesh",
        (3, 3),
        "X+ X- Y+ -> Y-",
        mutations=(Mutation("add-turn", turn="X-->X+"),),
        label="mutant:add-turn",
    )
    result = oracle.run(design)
    # Minimal routing never offers the non-productive reversal, so the
    # 2-wire CDG cycle cannot be expressed dynamically: agreement, not a
    # disagreement (the CDG is conservative by construction).
    assert result.classification == "cyclic-not-triggered"
    assert result.disagreement is None


def test_mutant_falsely_labeled_valid_is_hard_disagreement(oracle):
    forged = FuzzDesign(
        "mesh",
        (2, 2),
        "X+ X- Y+ -> Y-",
        mutations=DUP_PAIR_2X2.mutations,
        label="valid:forged",
    )
    result = oracle.run(forged)
    assert result.classification == "valid-design-rejected"
    assert result.disagreement in HARD_DISAGREEMENTS


def test_oracle_errors_are_captured_not_raised(oracle):
    broken = FuzzDesign("mesh", (2, 2), "not a sequence", label="valid:broken")
    result = oracle.run(broken)
    assert result.classification == "oracle-error"
    assert result.disagreement == "oracle-error"
    assert result.error


def test_trial_result_is_json_safe(oracle):
    import json

    result = oracle.run(DUP_PAIR_2X2)
    payload = json.dumps(result.to_dict())
    assert "unsafe-flagged" in payload


class TestStaticOracle:
    """The fourth oracle: `repro.analyze` static verdicts on every trial."""

    def test_valid_design_static_clean(self, oracle):
        result = oracle.run(VALID_MESH)
        assert result.static_safe
        assert result.static_errors == ()

    def test_mutant_static_errors_carry_rule_ids(self, oracle):
        result = oracle.run(DUP_PAIR_2X2)
        assert not result.static_safe
        assert result.static_errors
        assert all(e.startswith("EBDA") for e in result.static_errors)

    def test_static_and_theorem_verdicts_agree(self, oracle):
        for design in (VALID_MESH, VALID_TORUS, DUP_PAIR_2X2):
            result = oracle.run(design)
            assert result.static_safe == result.theorem_safe, design.describe()
            assert result.disagreement is None

    def test_all_flagged_requires_static_error(self, oracle):
        result = oracle.run(DUP_PAIR_2X2)
        assert result.all_flagged  # four-way: theorems+static+CDG+sim

    def test_static_verdict_method(self, oracle):
        safe, errors = oracle.static_verdict(VALID_MESH)
        assert safe and errors == ()
        safe, errors = oracle.static_verdict(DUP_PAIR_2X2)
        assert not safe and errors

    def test_static_mismatch_is_hard_disagreement(self, oracle):
        clean, kind = oracle._classify(
            labeled_valid=True,
            theorem_safe=False,
            cdg_acyclic=True,
            deadlock=False,
            unroutable=False,
            static_safe=True,
        )
        assert clean == kind == "static-clean-theorem-unsafe"
        noisy, kind = oracle._classify(
            labeled_valid=True,
            theorem_safe=True,
            cdg_acyclic=True,
            deadlock=False,
            unroutable=False,
            static_safe=False,
        )
        assert noisy == kind == "static-error-theorem-safe"
        assert "static-clean-theorem-unsafe" in HARD_DISAGREEMENTS
        assert "static-error-theorem-safe" in HARD_DISAGREEMENTS

    def test_trial_json_carries_static_fields(self, oracle):
        import json

        result = oracle.run(DUP_PAIR_2X2)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["static_safe"] is False
        assert payload["static_errors"]
