"""Corpus persistence, replay, and detection of every committed witness."""

import json
from pathlib import Path

import pytest

from repro.errors import EbdaError
from repro.fuzz import (
    CorpusEntry,
    DifferentialOracle,
    FuzzDesign,
    Mutation,
    entry_id,
    fast_profile,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)

COMMITTED = Path(__file__).parent / "corpus"


@pytest.fixture(scope="module")
def oracle():
    return DifferentialOracle(fast_profile())


def _sample_entry() -> CorpusEntry:
    return CorpusEntry(
        design=FuzzDesign(
            "mesh",
            (2, 2),
            "X+ X- Y+ -> Y-",
            mutations=(
                Mutation("duplicate-pair", partition=0, channels="Y2+ Y2-"),
            ),
            label="mutant:duplicate-pair",
        ),
        expect="unsafe-flagged",
        note="round-trip test entry",
        origin={"seed": 0, "trial": 42, "found-by": "test"},
    )


def test_entry_round_trips_through_disk(tmp_path):
    entry = _sample_entry()
    path = save_entry(entry, tmp_path)
    loaded = load_entry(path)
    assert loaded.design == entry.design
    assert loaded.expect == entry.expect
    assert loaded.origin == entry.origin
    assert loaded.id == entry.id


def test_entry_id_is_content_addressed(tmp_path):
    entry = _sample_entry()
    first = save_entry(entry, tmp_path)
    second = save_entry(entry, tmp_path)
    assert first == second  # idempotent
    other = CorpusEntry(
        design=FuzzDesign("mesh", (3, 3), "X+ X- Y+ -> Y-"),
        expect="safe-confirmed",
    )
    assert entry_id(other.design) != entry.id


def test_load_corpus_sorts_and_skips_missing_dir(tmp_path):
    assert load_corpus(tmp_path / "nope") == []
    save_entry(_sample_entry(), tmp_path)
    entries = load_corpus(tmp_path)
    assert len(entries) == 1


def test_corrupt_entry_raises_ebda_error(tmp_path):
    bad = tmp_path / "fuzz-deadbeef.json"
    bad.write_text("{not json")
    with pytest.raises(EbdaError):
        load_entry(bad)


def test_committed_corpus_exists_and_is_well_formed():
    entries = load_corpus(COMMITTED)
    assert len(entries) >= 5
    kinds = set()
    families = set()
    for entry in entries:
        assert entry.expect == "unsafe-flagged"
        assert entry.note
        # Filenames match content hashes (no stale hand-edits).
        path = COMMITTED / f"fuzz-{entry.id}.json"
        assert path.is_file()
        assert json.loads(path.read_text())["id"] == entry.id
        kinds.add(entry.design.label)
        families.add(entry.design.topology_kind)
    assert len(kinds) >= 3  # distinct failure modes, not five clones
    # Beyond-mesh coverage: at least one dragonfly, fat-tree and
    # irregular witness rides in the committed corpus.
    assert {"dragonfly", "fattree", "irregular"} <= families


@pytest.mark.parametrize(
    "path", sorted(COMMITTED.glob("fuzz-*.json")), ids=lambda p: p.stem
)
def test_every_committed_witness_flagged_by_all_five_oracles(path, oracle):
    entry = load_entry(path)
    detected, trial = replay_entry(entry, oracle)
    assert detected, f"{path.name}: got {trial.classification}"
    assert not trial.theorem_safe
    assert not trial.static_safe
    assert not trial.cdg_acyclic
    assert not trial.arbitrary_safe
    assert trial.sim_deadlock
    assert trial.all_flagged
