"""The instantiation oracle: symbolic certificates vs the concrete linter."""

from repro.fuzz import InstantiationReport, run_instantiations


class TestRunInstantiations:
    def test_full_registry_sweep_is_clean(self):
        report = run_instantiations(40, seed=11)
        assert isinstance(report, InstantiationReport)
        assert report.ok
        assert report.points == 40
        assert len(report.families) >= 20

    def test_family_subset(self):
        report = run_instantiations(
            10, seed=3, families=("dim-order-mesh", "mesh-backward-turn")
        )
        assert report.ok
        assert set(report.families) == {"dim-order-mesh", "mesh-backward-turn"}

    def test_summary_mentions_points_and_verdict(self):
        report = run_instantiations(5, seed=0, families=("dateline-torus",))
        summary = report.summary()
        assert "5 points" in summary
        assert "all symbolic verdicts confirmed" in summary

    def test_deterministic_for_a_seed(self):
        a = run_instantiations(30, seed=9)
        b = run_instantiations(30, seed=9)
        assert a.points == b.points
        assert a.disagreements == b.disagreements

    def test_too_few_points_for_the_registry_is_an_error(self):
        import pytest

        from repro.errors import EbdaError

        with pytest.raises(EbdaError, match="one point per family"):
            run_instantiations(5, seed=0)
