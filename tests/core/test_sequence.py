"""Unit tests for partition sequences (the Theorem 3 design object)."""

import pytest

from repro.core import Channel, Partition, PartitionSequence
from repro.errors import PartitionError, TheoremViolation


class TestConstruction:
    def test_of_autonames(self):
        seq = PartitionSequence.of("X+ X- Y-", "Y+")
        assert [p.name for p in seq] == ["PA", "PB"]

    def test_parse_arrow_notation(self):
        seq = PartitionSequence.parse("X- -> X+ Y+ Y-")
        assert len(seq) == 2
        assert seq.arrow_notation() == "X- -> X+ Y+ Y-"

    def test_named_partitions_kept(self):
        part = Partition.of("X+", name="CUSTOM")
        seq = PartitionSequence.of(part, "X-")
        assert seq[0].name == "CUSTOM"

    def test_overlap_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSequence.of("X+ Y+", "X+ Y-")

    def test_empty_sequence_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSequence(())


class TestQueries:
    def test_all_channels_in_order(self):
        seq = PartitionSequence.parse("X+ X- Y- -> Y+")
        assert [str(c) for c in seq.all_channels] == ["X+", "X-", "Y-", "Y+"]

    def test_channel_count(self):
        assert PartitionSequence.parse("X+ Y+ -> X- Y-").channel_count == 4

    def test_partition_index(self):
        seq = PartitionSequence.parse("X+ -> Y+ -> X-")
        assert seq.partition_index(Channel.parse("Y+")) == 1
        assert seq.partition_index(Channel.parse("X-")) == 2

    def test_partition_index_missing_channel(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        with pytest.raises(PartitionError):
            seq.partition_index(Channel.parse("Z+"))

    def test_covers(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        assert seq.covers(Channel.parse("X+"))
        assert not seq.covers(Channel.parse("X-"))

    def test_reversed_traces_backward(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        assert seq.reversed().arrow_notation() == "Y+ -> X+"


class TestValidation:
    def test_valid_sequence_passes(self):
        seq = PartitionSequence.parse("X+ X- Y- -> Y+")
        assert seq.validate() is seq

    def test_two_pairs_in_one_partition_fails(self):
        seq = PartitionSequence.parse("X+ X- Y+ Y-")
        with pytest.raises(TheoremViolation) as exc:
            seq.validate()
        assert exc.value.theorem == 1

    def test_pair_across_vcs_counts_for_theorem1(self):
        # Note to Theorem 1: {X1+ X2- Y1+ Y2-} holds two complete pairs.
        seq = PartitionSequence.parse("X1+ X2- Y1+ Y2-")
        with pytest.raises(TheoremViolation):
            seq.validate()

    def test_many_channels_one_pair_is_fine(self):
        # Note to Theorem 1: {X1+ Y1+ Y1- Y2+ Y2-} is cycle-free.
        seq = PartitionSequence.parse("X+ Y+ Y- Y2+ Y2-")
        seq.validate()
