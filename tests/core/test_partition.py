"""Unit tests for partitions (Definition 2) and their structure."""

import pytest

from repro.core import Channel, Partition, channels
from repro.errors import PartitionError


class TestConstruction:
    def test_of_parses_spec(self):
        p = Partition.of("X+ X- Y-", name="PA")
        assert p.name == "PA"
        assert len(p) == 3

    def test_star_notation(self):
        p = Partition.of("Z* X+")
        assert p.channel_set == frozenset(channels("Z+ Z- X+"))

    def test_duplicates_rejected(self):
        with pytest.raises(PartitionError):
            Partition.of("X+ X+")

    def test_empty_rejected(self):
        with pytest.raises(PartitionError):
            Partition(())

    def test_order_preserved(self):
        p = Partition.of("Y- X+ Y+")
        assert [str(c) for c in p] == ["Y-", "X+", "Y+"]


class TestStructure:
    def test_dims(self):
        assert Partition.of("X+ Z- Z+").dims == (0, 2)

    def test_complete_pair_dims(self):
        p = Partition.of("X+ X- Y+")
        assert p.complete_pair_dims == (0,)
        assert p.pair_count == 1

    def test_pair_across_vcs_counts(self):
        # Note to Theorem 1: X1+ with X2- is one complete pair.
        p = Partition.of("X+ X2- Y+")
        assert p.pair_count == 1

    def test_two_pair_partition(self):
        p = Partition.of("X+ X- Y+ Y-")
        assert p.pair_count == 2

    def test_channels_in_dim_keeps_order(self):
        p = Partition.of("Y2+ X+ Y1- Y1+")
        assert [str(c) for c in p.channels_in_dim(1)] == ["Y2+", "Y-", "Y+"]

    def test_contains(self):
        p = Partition.of("X+ Y-")
        assert Channel.parse("X+") in p
        assert Channel.parse("X-") not in p


class TestDisjointness:
    def test_disjoint_partitions(self):
        a = Partition.of("X+ Y+")
        b = Partition.of("X- Y-")
        assert a.is_disjoint_from(b)

    def test_overlapping_partitions(self):
        a = Partition.of("X+ Y+")
        b = Partition.of("X+ Y-")
        assert not a.is_disjoint_from(b)

    def test_vc_distinguishes(self):
        # Definition 6: different VC numbers are disjoint channels.
        a = Partition.of("Y1+")
        b = Partition.of("Y2+")
        assert a.is_disjoint_from(b)

    def test_class_distinguishes(self):
        a = Partition.of("Y+@e")
        b = Partition.of("Y+@o")
        assert a.is_disjoint_from(b)


class TestSubPartition:
    def test_sub_partition_keeps_order(self):
        p = Partition.of("X+ X- Y- Z+")
        sub = p.sub_partition(channels("Y- X+"))
        assert [str(c) for c in sub] == ["X+", "Y-"]

    def test_sub_partition_rejects_foreign_channels(self):
        p = Partition.of("X+ Y-")
        with pytest.raises(PartitionError):
            p.sub_partition(channels("Z+"))

    def test_renamed(self):
        p = Partition.of("X+", name="PA")
        assert p.renamed("PB").name == "PB"
        assert p.renamed("PB").channel_set == p.channel_set
