"""Unit tests for the Theorem-2 numbering arithmetic (Figure 4)."""

import pytest

from repro.core import Partition, channels
from repro.core.numbering import (
    UITurnCensus,
    census_for_ordering,
    census_for_partition,
    identity_holds,
    iturn_count,
    total_ui_turns,
    uturn_count,
)


class TestFormulas:
    def test_total(self):
        assert total_ui_turns(6) == 15
        assert total_ui_turns(1) == 0
        assert total_ui_turns(0) == 0

    def test_total_rejects_negative(self):
        with pytest.raises(ValueError):
            total_ui_turns(-1)

    def test_uturn_count(self):
        assert uturn_count(3, 3) == 9
        assert uturn_count(0, 5) == 0

    def test_iturn_count(self):
        assert iturn_count(3, 3) == 6
        assert iturn_count(1, 1) == 0
        assert iturn_count(4, 0) == 6

    def test_identity_examples(self):
        assert identity_holds(3, 3)
        assert identity_holds(1, 1)
        assert identity_holds(5, 2)


class TestCensusForOrdering:
    def test_figure4a(self):
        census = census_for_ordering(channels("Y1+ Y1- Y2+ Y2- Y3+ Y3-"))
        assert len(census.u_turns) == 9
        assert len(census.i_turns) == 6
        assert census.total == census.expected_total == 15
        assert census.matches_formula()

    def test_figure4b_alternative_order_same_counts(self):
        census = census_for_ordering(channels("Y2+ Y1- Y1+ Y3- Y3+ Y2-"))
        assert (len(census.u_turns), len(census.i_turns)) == (9, 6)

    def test_single_pair(self):
        census = census_for_ordering(channels("X+ X-"))
        assert len(census.u_turns) == 1
        assert not census.i_turns

    def test_rejects_mixed_dims(self):
        with pytest.raises(ValueError):
            census_for_ordering(channels("X+ Y+"))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            census_for_ordering(())

    def test_turns_are_strictly_ascending(self):
        order = channels("Y1+ Y1- Y2+ Y2-")
        census = census_for_ordering(order)
        rank = {ch: i for i, ch in enumerate(order)}
        for t in census.u_turns + census.i_turns:
            assert rank[t.src] < rank[t.dst]


class TestCensusForPartition:
    def test_paired_dim_uses_ascending(self):
        part = Partition.of("X+ X- Y+")
        census = census_for_partition(part, 0)
        assert len(census.u_turns) == 1

    def test_unpaired_dim_all_iturns_both_ways(self):
        part = Partition.of("Y1+ Y2+ X+")
        census = census_for_partition(part, 1)
        assert not census.u_turns
        assert len(census.i_turns) == 2  # both directions between the VCs

    def test_missing_dim_rejected(self):
        with pytest.raises(ValueError):
            census_for_partition(Partition.of("X+"), 1)
