"""Unit tests for the catalog of named designs."""

import pytest

from repro.core import catalog, check_sequence


class TestNamedDesigns:
    def test_every_design_valid(self, named_design):
        name, seq = named_design
        check_sequence(seq).raise_if_failed()

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            catalog.design("does-not-exist")

    def test_table1_has_twelve_unique_options(self):
        options = catalog.table1_options()
        assert len(options) == 12
        keys = {tuple(p.channel_set for p in seq) for seq in options}
        assert len(keys) == 12

    def test_table1_contains_highlighted_models(self):
        notations = {seq.arrow_notation() for seq in catalog.table1_options()}
        for text in catalog.TABLE1_HIGHLIGHTED.values():
            assert text in notations

    def test_table2_three_partitions_each(self):
        assert all(len(seq) == 3 for seq in catalog.table2_options())

    def test_table3_singleton_partitions(self):
        for seq in catalog.table3_options():
            assert len(seq) == 4
            assert all(len(p) == 1 for p in seq)

    def test_odd_even_uses_column_classes(self):
        seq = catalog.odd_even_partitions()
        classes = {c.cls for c in seq.all_channels}
        assert classes == {"", "e", "o"}

    def test_hamiltonian_uses_row_classes_on_x(self):
        seq = catalog.hamiltonian_partitions()
        x_classes = {c.cls for c in seq.all_channels if c.dim == 0}
        assert x_classes == {"e", "o"}

    def test_partial3d_channel_budget(self):
        seq = catalog.partial3d_partitions()
        assert seq.channel_count == 8
        assert len(seq) == 2

    def test_dyxy_is_2d_minimal(self):
        seq = catalog.dyxy_partitions()
        assert seq.channel_count == 6

    def test_fig9b_and_fig9c_are_16_channels(self):
        assert catalog.fig9b_partitions().channel_count == 16
        assert catalog.fig9c_partitions().channel_count == 16

    def test_north_last_matches_paper(self):
        assert catalog.north_last().arrow_notation() == "X+ X- Y- -> Y+"

    def test_p_series_partition_counts(self):
        assert len(catalog.p1_xy()) == 4
        assert len(catalog.p2_partially_adaptive()) == 3
        assert len(catalog.p3_west_first()) == 2
        assert len(catalog.p4_negative_first()) == 2
        assert len(catalog.p5_west_first_vcs()) == 2
