"""Unit tests for the channel algebra (Definitions 1, 3, 5, 6)."""

import pytest

from repro.core import (
    NEG,
    POS,
    Channel,
    channels,
    complete_pairs,
    dim_index,
    dim_name,
    parse_star,
)
from repro.core.channel import dims_covered
from repro.errors import ChannelParseError


class TestDimNames:
    def test_first_dims_are_paper_letters(self):
        assert [dim_name(i) for i in range(4)] == ["X", "Y", "Z", "T"]

    def test_high_dims_use_numeric_names(self):
        assert dim_name(9) == "D10"

    def test_roundtrip_letters(self):
        for i in range(7):
            assert dim_index(dim_name(i)) == i

    def test_numeric_name_roundtrip(self):
        assert dim_index("D12") == 11

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ChannelParseError):
            dim_index("Q")


class TestParsing:
    @pytest.mark.parametrize(
        "text, dim, sign, vc, cls",
        [
            ("X+", 0, POS, 1, ""),
            ("X-", 0, NEG, 1, ""),
            ("Y2-", 1, NEG, 2, ""),
            ("Z10+", 2, POS, 10, ""),
            ("Y+@e", 1, POS, 1, "e"),
            ("X2-@odd", 0, NEG, 2, "odd"),
            ("T+", 3, POS, 1, ""),
        ],
    )
    def test_parse(self, text, dim, sign, vc, cls):
        ch = Channel.parse(text)
        assert (ch.dim, ch.sign, ch.vc, ch.cls) == (dim, sign, vc, cls)

    @pytest.mark.parametrize("text", ["", "X", "+X", "X0+", "X+-", "5+", "X*"])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ChannelParseError):
            Channel.parse(text)

    def test_str_roundtrip(self):
        for text in ["X+", "Y2-", "Z+@o", "T3+@even"]:
            assert str(Channel.parse(text)) == text

    def test_parse_star_expands_both_directions(self):
        pos, neg = parse_star("Y2*")
        assert pos == Channel(1, POS, 2)
        assert neg == Channel(1, NEG, 2)

    def test_parse_star_rejects_plain(self):
        with pytest.raises(ChannelParseError):
            parse_star("X+")

    def test_channels_mixed_spec(self):
        out = channels(["X+", Channel(1, NEG), "Z*"])
        assert out == (
            Channel(0, POS),
            Channel(1, NEG),
            Channel(2, POS),
            Channel(2, NEG),
        )

    def test_channels_comma_separated(self):
        assert channels("X+, Y-") == (Channel(0, POS), Channel(1, NEG))


class TestValidation:
    def test_zero_sign_rejected(self):
        with pytest.raises(ChannelParseError):
            Channel(0, 0)

    def test_negative_dim_rejected(self):
        with pytest.raises(ChannelParseError):
            Channel(-1, POS)

    def test_zero_vc_rejected(self):
        with pytest.raises(ChannelParseError):
            Channel(0, POS, vc=0)


class TestAlgebra:
    def test_opposite_flips_sign_only(self):
        ch = Channel.parse("Y2+@e")
        assert ch.opposite == Channel(1, NEG, 2, "e")
        assert ch.opposite.opposite == ch

    def test_pair_requires_opposite_signs(self):
        assert Channel.parse("X+").forms_pair_with(Channel.parse("X-"))
        assert not Channel.parse("X+").forms_pair_with(Channel.parse("X+"))
        assert not Channel.parse("X+").forms_pair_with(Channel.parse("Y-"))

    def test_pair_ignores_vc_and_class(self):
        # Definition 3: X2+ and X1- form a complete X-pair.
        assert Channel.parse("X2+").forms_pair_with(Channel.parse("X-"))
        assert Channel.parse("X+@e").forms_pair_with(Channel.parse("X-@o"))

    def test_with_vc_and_cls(self):
        ch = Channel.parse("X+")
        assert ch.with_vc(3) == Channel(0, POS, 3)
        assert ch.with_cls("e") == Channel(0, POS, 1, "e")

    def test_channels_are_hashable_value_objects(self):
        assert Channel.parse("X+") == Channel(0, POS)
        assert len({Channel.parse("X+"), Channel(0, POS)}) == 1


class TestCompletePairs:
    def test_single_pair_detected(self):
        pairs = complete_pairs(channels("X+ X- Y+"))
        assert list(pairs) == [0]

    def test_cross_vc_pair_detected(self):
        pairs = complete_pairs(channels("X2+ X1-"))
        assert list(pairs) == [0]

    def test_no_pair_when_one_direction_missing(self):
        assert complete_pairs(channels("X+ Y+ Z-")) == {}

    def test_multiple_pairs(self):
        pairs = complete_pairs(channels("X+ X- Y+ Y- Z+"))
        assert sorted(pairs) == [0, 1]

    def test_pair_payload_groups_by_sign(self):
        pos, neg = complete_pairs(channels("Y1+ Y2+ Y1-"))[1]
        assert len(pos) == 2 and len(neg) == 1

    def test_dims_covered(self):
        assert dims_covered(channels("X+ Z- Z+")) == (0, 2)
