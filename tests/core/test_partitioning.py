"""Unit tests for Algorithm 1 (the partitioning procedure)."""

import pytest

from repro.core import (
    Partition,
    arrangement1,
    catalog,
    check_sequence,
    head_selector,
    merge_deficient,
    partition_sets,
    partition_vc_budget,
    sets_from_vc_counts,
)
from repro.errors import PartitionError


class TestPartitionSets:
    def test_2d_no_vc_yields_north_last_family(self):
        seq = partition_vc_budget([1, 1])
        assert seq.arrow_notation() == "X+ X- Y+ -> Y-"
        check_sequence(seq).raise_if_failed()

    def test_2d_one_extra_y_vc_yields_dyxy_structure(self):
        seq = partition_vc_budget([1, 2])
        assert len(seq) == 2
        assert seq.channel_count == 6
        # Same channel inventory as the Figure 7(b)/DyXY design.
        assert {frozenset(map(str, p.channel_set)) for p in seq} == {
            frozenset({"Y+", "Y-", "X+"}),
            frozenset({"Y2+", "Y2-", "X-"}),
        }

    def test_worked_example_3_2_3(self):
        # §5's worked example: Z first, resulting in Figure 9(c).
        sets = sorted(
            arrangement1(sets_from_vc_counts([3, 2, 3])),
            key=lambda s: (-s.pair_count, -s.dim),
        )
        seq = partition_sets(sets)
        expected = catalog.fig9c_partitions()
        assert [p.channel_set for p in seq] == [p.channel_set for p in expected]

    def test_every_channel_assigned_exactly_once(self):
        seq = partition_vc_budget([2, 2, 2])
        assert seq.channel_count == 12
        check_sequence(seq).raise_if_failed()

    def test_head_selector_variant_valid(self):
        seq = partition_vc_budget([2, 2], selector=head_selector)
        check_sequence(seq).raise_if_failed()

    def test_empty_input_rejected(self):
        with pytest.raises(PartitionError):
            partition_sets([])

    def test_partitions_named_sequentially(self):
        seq = partition_vc_budget([2, 2])
        assert [p.name for p in seq] == ["PA", "PB", "PC"]

    def test_higher_dimensional_budget(self):
        seq = partition_vc_budget([1, 1, 1, 1])
        check_sequence(seq).raise_if_failed()
        assert seq.channel_count == 8


class TestMergeDeficient:
    def test_orphan_merges_into_compatible_host(self):
        parts = [
            Partition.of("X+ X- Y+", name="PA"),
            Partition.of("Z+", name="PB"),
        ]
        merged = merge_deficient(parts)
        assert len(merged) == 1
        assert merged[0].pair_count == 1

    def test_orphan_kept_when_merge_would_violate_theorem1(self):
        parts = [
            Partition.of("X+ X- Y+", name="PA"),
            Partition.of("Y-", name="PB"),
        ]
        merged = merge_deficient(parts)
        assert len(merged) == 2

    def test_no_merge_when_all_full(self):
        parts = [
            Partition.of("X+ Y+", name="PA"),
            Partition.of("X- Y-", name="PB"),
        ]
        assert merge_deficient(parts) == parts

    def test_single_partition_untouched(self):
        parts = [Partition.of("X+")]
        assert merge_deficient(parts) == parts
