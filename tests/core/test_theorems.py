"""Unit tests for the executable theorems."""

import pytest

from repro.core import (
    Partition,
    PartitionSequence,
    check_sequence,
    check_theorem1,
    check_theorem2,
    check_theorem3,
    require_theorem1,
)
from repro.core.theorems import ascending_rank, uturn_allowed
from repro.core.turns import Turn, turn
from repro.errors import TheoremViolation


class TestTheorem1:
    def test_one_pair_ok(self):
        assert check_theorem1(Partition.of("X+ X- Y+")).ok

    def test_no_pair_ok(self):
        assert check_theorem1(Partition.of("X+ Y- Z+")).ok

    def test_two_pairs_fail(self):
        report = check_theorem1(Partition.of("X+ X- Y+ Y-"))
        assert not report.ok
        assert report.theorem == 1
        assert report.violations

    def test_max_channels_n_plus_one(self):
        # n+1 channels with one pair: the largest useful partition in 3D.
        assert check_theorem1(Partition.of("X+ X- Y+ Z-")).ok

    def test_many_vcs_one_dim_ok(self):
        assert check_theorem1(Partition.of("X+ Y+ Y- Y2+ Y2- Y3+ Y3-")).ok

    def test_require_raises(self):
        with pytest.raises(TheoremViolation):
            require_theorem1(Partition.of("X+ X- Y+ Y-"))

    def test_report_is_truthy_protocol(self):
        assert bool(check_theorem1(Partition.of("X+")))


class TestSubPartitionCorollary:
    def test_sub_partition_of_cycle_free_is_cycle_free(self):
        # Corollary of Theorem 1.
        p = Partition.of("X+ X- Y+ Z-")
        for keep in (["X+", "Y+"], ["X+", "X-"], ["Z-"]):
            sub = p.sub_partition([c for c in p if str(c) in keep])
            assert check_theorem1(sub).ok


class TestTheorem2:
    def test_rank_follows_construction_order(self):
        p = Partition.of("Y2+ X+ Y1- Y1+")
        from repro.core import Channel

        assert ascending_rank(p, Channel.parse("Y2+")) == 0
        assert ascending_rank(p, Channel.parse("Y-")) == 1
        assert ascending_rank(p, Channel.parse("Y+")) == 2

    def test_uturn_ascending_only(self):
        p = Partition.of("X+ X- Y+")
        from repro.core import Channel

        assert uturn_allowed(p, Channel.parse("X+"), Channel.parse("X-"))
        assert not uturn_allowed(p, Channel.parse("X-"), Channel.parse("X+"))

    def test_uturn_direction_depends_on_order(self):
        p = Partition.of("X- X+ Y+")
        from repro.core import Channel

        assert uturn_allowed(p, Channel.parse("X-"), Channel.parse("X+"))
        assert not uturn_allowed(p, Channel.parse("X+"), Channel.parse("X-"))

    def test_iturns_free_in_unpaired_dim(self):
        # Corollary of Theorem 2: no pair along Y -> all I-turns allowed.
        p = Partition.of("Y1+ Y2+ X+")
        from repro.core import Channel

        assert uturn_allowed(p, Channel.parse("Y+"), Channel.parse("Y2+"))
        assert uturn_allowed(p, Channel.parse("Y2+"), Channel.parse("Y+"))

    def test_cross_dim_is_not_a_uturn(self):
        p = Partition.of("X+ Y+")
        from repro.core import Channel

        assert not uturn_allowed(p, Channel.parse("X+"), Channel.parse("Y+"))

    def test_check_theorem2_flags_descending(self):
        p = Partition.of("X+ X- Y+")
        bad = [turn("X-", "X+")]
        report = check_theorem2(p, bad)
        assert not report.ok

    def test_check_theorem2_accepts_ascending(self):
        p = Partition.of("X+ X- Y+")
        assert check_theorem2(p, [turn("X+", "X-")]).ok


class TestTheorem3:
    def test_valid_sequence(self):
        seq = PartitionSequence.parse("X- -> X+ Y+ Y-")
        assert check_theorem3(seq).ok

    def test_detects_theorem1_violation_inside(self):
        seq = PartitionSequence.parse("X+ X- Y+ Y- -> Z+")
        report = check_theorem3(seq)
        assert not report.ok

    def test_check_sequence_alias(self):
        assert check_sequence(PartitionSequence.parse("X+ -> Y+")).ok

    def test_raise_if_failed_passes_through(self):
        report = check_theorem3(PartitionSequence.parse("X+ -> Y+"))
        assert report.raise_if_failed() is report
