"""Unit tests for the planar-adaptive design."""

import pytest

from repro.cdg import verify_design
from repro.core import check_sequence, planar_adaptive_design, planar_channel_count
from repro.errors import PartitionError
from repro.topology import Mesh


class TestConstruction:
    def test_channel_formula(self):
        for n in range(2, 7):
            assert planar_adaptive_design(n).channel_count == planar_channel_count(n)
            assert planar_channel_count(n) == 4 * n - 4

    def test_two_partitions_per_plane(self):
        assert len(planar_adaptive_design(4)) == 2 * 3

    def test_all_partitions_pair_free(self):
        for part in planar_adaptive_design(5):
            assert part.pair_count == 0

    def test_theorem_compliance(self):
        for n in (2, 3, 4, 5):
            check_sequence(planar_adaptive_design(n)).raise_if_failed()

    def test_2d_reduces_to_negative_first_family(self):
        assert planar_adaptive_design(2).arrow_notation() == "X- Y- -> X+ Y+"

    def test_interior_dims_get_two_vcs(self):
        design = planar_adaptive_design(4)
        vcs = {}
        for ch in design.all_channels:
            vcs.setdefault(ch.dim, set()).add(ch.vc)
        assert vcs[0] == {1}
        assert vcs[1] == {1, 2}
        assert vcs[2] == {1, 2}
        assert vcs[3] == {1}

    def test_1d_rejected(self):
        with pytest.raises(PartitionError):
            planar_adaptive_design(1)
        with pytest.raises(PartitionError):
            planar_channel_count(1)


class TestVerification:
    @pytest.mark.parametrize("n, size", [(2, 4), (3, 3)])
    def test_acyclic_on_meshes(self, n, size):
        mesh = Mesh(*([size] * n))
        assert verify_design(planar_adaptive_design(n), mesh).acyclic

    def test_4d_acyclic(self):
        mesh = Mesh(2, 2, 2, 2)
        assert verify_design(planar_adaptive_design(4), mesh).acyclic
