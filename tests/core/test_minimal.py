"""Unit tests for the Section 4 minimum-channel constructions."""

import pytest

from repro.core import (
    check_sequence,
    covers_all_regions,
    is_structurally_fully_adaptive,
    min_channels,
    minimal_fully_adaptive,
    per_region_construction,
    region_assignment,
    vc_requirements,
)
from repro.errors import PartitionError


class TestFormula:
    def test_paper_values(self):
        assert min_channels(2) == 6
        assert min_channels(3) == 16

    def test_growth(self):
        assert [min_channels(n) for n in range(1, 7)] == [2, 6, 16, 40, 96, 224]

    def test_rejects_zero(self):
        with pytest.raises(PartitionError):
            min_channels(0)


class TestPerRegionConstruction:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_structure(self, n):
        seq = per_region_construction(n)
        assert len(seq) == 2 ** n
        assert all(len(p) == n for p in seq)
        assert seq.channel_count == n * 2 ** n
        check_sequence(seq).raise_if_failed()
        assert covers_all_regions(seq, n)

    def test_2d_matches_figure7a_vcs(self):
        seq = per_region_construction(2)
        assert vc_requirements(seq) == {"X": 2, "Y": 2}

    def test_3d_channel_count_is_24(self):
        assert per_region_construction(3).channel_count == 24

    def test_no_partition_has_a_pair(self):
        assert all(p.pair_count == 0 for p in per_region_construction(3))


class TestMinimalFullyAdaptive:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_channel_count_matches_formula(self, n):
        seq = minimal_fully_adaptive(n)
        assert seq.channel_count == min_channels(n)
        assert len(seq) == 2 ** (n - 1)
        check_sequence(seq).raise_if_failed()

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_structurally_fully_adaptive(self, n):
        assert is_structurally_fully_adaptive(minimal_fully_adaptive(n), n)

    def test_every_partition_has_exactly_one_pair(self):
        seq = minimal_fully_adaptive(3)
        assert all(p.pair_count == 1 for p in seq)

    def test_2d_vc_budget(self):
        assert vc_requirements(minimal_fully_adaptive(2)) == {"X": 1, "Y": 2}

    def test_3d_vc_budget_matches_figure9b(self):
        assert vc_requirements(minimal_fully_adaptive(3)) == {"X": 2, "Y": 2, "Z": 4}

    def test_pair_dim_selectable(self):
        seq = minimal_fully_adaptive(2, pair_dim=0)
        assert vc_requirements(seq) == {"X": 2, "Y": 1}

    def test_bad_pair_dim(self):
        with pytest.raises(PartitionError):
            minimal_fully_adaptive(2, pair_dim=5)

    def test_region_assignment_covers_pairs_of_regions(self):
        assignment = region_assignment(minimal_fully_adaptive(3), 3)
        regions = [r for rs in assignment.values() for r in rs]
        assert len(regions) == 8
        assert len(set(regions)) == 8
        assert all(len(rs) == 2 for rs in assignment.values())
