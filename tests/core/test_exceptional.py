"""Unit tests for the §5.2.2 exceptional no-VC partitioning."""

import pytest

from repro.core import (
    check_sequence,
    negative_first,
    option_for_signs,
    positive_first,
    two_partition_options,
)
from repro.errors import PartitionError


class TestTwoPartitionOptions:
    def test_counts_2n(self):
        assert len(list(two_partition_options(2))) == 4
        assert len(list(two_partition_options(3))) == 8

    def test_reversed_doubles(self):
        assert len(list(two_partition_options(3, include_reversed=True))) == 16

    def test_all_options_valid(self):
        for seq in two_partition_options(3, include_reversed=True):
            check_sequence(seq).raise_if_failed()

    def test_no_partition_has_a_pair(self):
        for seq in two_partition_options(3):
            assert all(p.pair_count == 0 for p in seq)

    def test_partitions_complementary(self):
        for seq in two_partition_options(2):
            pa, pb = seq
            assert {c.opposite for c in pa} == set(pb.channel_set)

    def test_zero_dims_rejected(self):
        with pytest.raises(PartitionError):
            list(two_partition_options(0))


class TestNamedOptions:
    def test_negative_first_2d_matches_paper_p4(self):
        assert negative_first(2).arrow_notation() == "X- Y- -> X+ Y+"

    def test_positive_first(self):
        assert positive_first(3).arrow_notation() == "X+ Y+ Z+ -> X- Y- Z-"

    def test_option_for_signs(self):
        seq = option_for_signs([+1, -1])
        assert seq.arrow_notation() == "X+ Y- -> X- Y+"
