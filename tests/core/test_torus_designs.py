"""Unit tests for the torus dateline designs."""

import pytest

from repro.core import check_sequence
from repro.core.torus_designs import dateline_design, ring_channels
from repro.errors import PartitionError


class TestDatelineDesign:
    def test_1d_structure(self):
        seq = dateline_design(1)
        assert len(seq) == 3
        assert seq.arrow_notation() == "X+@r X-@r -> X2+@w X2-@w -> X2+@r X2-@r"

    def test_partitions_per_dimension(self):
        assert len(dateline_design(2)) == 6
        assert len(dateline_design(3)) == 9

    def test_theorem_compliance(self):
        for n in (1, 2, 3):
            check_sequence(dateline_design(n)).raise_if_failed()

    def test_each_partition_holds_one_pair(self):
        for part in dateline_design(2):
            assert part.pair_count == 1

    def test_two_vcs_per_dimension(self):
        seq = dateline_design(2)
        vcs = {(c.dim, c.vc) for c in seq.all_channels}
        assert vcs == {(0, 1), (0, 2), (1, 1), (1, 2)}

    def test_zero_dims_rejected(self):
        with pytest.raises(PartitionError):
            dateline_design(0)

    def test_adaptive_arrangement_not_offered(self):
        with pytest.raises(PartitionError):
            dateline_design(2, dimension_order=False)

    def test_ring_channels_six_classes(self):
        assert len(set(ring_channels())) == 6
