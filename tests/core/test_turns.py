"""Unit tests for turns and turn sets."""

import pytest

from repro.core import Channel, Turn, TurnKind, TurnSet, turn, turnset_from_strings


class TestTurnKinds:
    def test_degree90(self):
        assert turn("X+", "Y-").kind == TurnKind.DEGREE90

    def test_uturn(self):
        assert turn("X+", "X-").kind == TurnKind.UTURN

    def test_uturn_across_vcs(self):
        assert turn("X1+", "X2-").kind == TurnKind.UTURN

    def test_iturn(self):
        assert turn("X1+", "X2+").kind == TurnKind.ITURN

    def test_iturn_across_classes(self):
        assert turn("Y+@e", "Y+@o").kind == TurnKind.ITURN

    def test_parse_roundtrip(self):
        t = Turn.parse("X2+->Y-")
        assert str(t) == "X2+->Y-"

    def test_reverse(self):
        assert turn("X+", "Y-").reverse == turn("Y-", "X+")


class TestTurnSet:
    def _ts(self):
        return TurnSet(
            {
                "ruleA": [turn("X+", "Y-"), turn("Y-", "X+")],
                "ruleB": [turn("X+", "X-")],
            }
        )

    def test_len_and_iter(self):
        ts = self._ts()
        assert len(ts) == 3
        assert all(isinstance(t, Turn) for t in ts)

    def test_membership_by_turn_and_pair(self):
        ts = self._ts()
        assert turn("X+", "Y-") in ts
        assert (Channel.parse("X+"), Channel.parse("Y-")) in ts
        assert turn("Y-", "X-") not in ts

    def test_allows(self):
        ts = self._ts()
        assert ts.allows(Channel.parse("X+"), Channel.parse("X-"))
        assert not ts.allows(Channel.parse("X-"), Channel.parse("X+"))

    def test_of_kind(self):
        ts = self._ts()
        assert len(ts.of_kind(TurnKind.DEGREE90)) == 2
        assert len(ts.of_kind(TurnKind.UTURN)) == 1
        assert ts.of_kind(TurnKind.ITURN) == ()

    def test_count_by_kind(self):
        counts = self._ts().count_by_kind()
        assert counts[TurnKind.DEGREE90] == 2
        assert counts[TurnKind.UTURN] == 1

    def test_channels(self):
        chans = self._ts().channels()
        assert Channel.parse("X-") in chans
        assert len(chans) == 3

    def test_dedup_across_rules(self):
        ts = TurnSet({"a": [turn("X+", "Y+")], "b": [turn("X+", "Y+")]})
        assert len(ts) == 1

    def test_equality_ignores_provenance(self):
        a = TurnSet({"a": [turn("X+", "Y+")]})
        b = TurnSet({"zzz": [turn("X+", "Y+")]})
        assert a == b
        assert hash(a) == hash(b)

    def test_restrict(self):
        ts = self._ts().restrict(lambda t: t.kind == TurnKind.UTURN)
        assert len(ts) == 1

    def test_merged_with(self):
        merged = self._ts().merged_with(TurnSet({"ruleC": [turn("Y-", "Y+")]}))
        assert len(merged) == 4
        assert "ruleC" in merged.rules

    def test_describe_mentions_kinds(self):
        text = self._ts().describe()
        assert "U-Turns" in text and "Turns" in text

    def test_from_strings(self):
        ts = turnset_from_strings(["X+->Y+", "Y+->X-"])
        assert len(ts) == 2
