"""Unit tests for the turn extraction engine (the Figure 8 machinery)."""

import pytest

from repro.core import (
    Partition,
    PartitionSequence,
    TurnKind,
    extract_turns,
    theorem1_turns,
    theorem2_turns,
    theorem3_turns,
)
from repro.core.extraction import injection_channels
from repro.errors import TheoremViolation


class TestTheorem1Turns:
    def test_cross_dim_pairs_only(self):
        turns = theorem1_turns(Partition.of("X+ X- Y-"))
        labels = {str(t) for t in turns}
        assert labels == {"X+->Y-", "X-->Y-", "Y-->X+", "Y-->X-"}

    def test_single_channel_has_no_turns(self):
        assert theorem1_turns(Partition.of("X+")) == ()

    def test_count_for_full_3d_partition(self):
        # 4 channels, one dim paired: 10 cross-dimension ordered pairs.
        turns = theorem1_turns(Partition.of("X+ Y+ Z+ Z-"))
        assert len(turns) == 10


class TestTheorem2Turns:
    def test_one_uturn_for_pair(self):
        turns = theorem2_turns(Partition.of("X+ X- Y+"))
        assert [str(t) for t in turns] == ["X+->X-"]

    def test_numbering_order_controls_direction(self):
        turns = theorem2_turns(Partition.of("X- X+ Y+"))
        assert [str(t) for t in turns] == ["X-->X+"]

    def test_three_vc_partition_counts(self):
        # Figure 4(a): 9 U-turns and 6 I-turns.
        part = Partition.of("Y1+ Y1- Y2+ Y2- Y3+ Y3- X+")
        turns = theorem2_turns(part)
        u = [t for t in turns if t.kind == TurnKind.UTURN]
        i = [t for t in turns if t.kind == TurnKind.ITURN]
        assert (len(u), len(i)) == (9, 6)

    def test_unpaired_dim_gets_all_iturns(self):
        part = Partition.of("Y1+ Y2+ Y3+ X+")
        turns = theorem2_turns(part)
        assert all(t.kind == TurnKind.ITURN for t in turns)
        assert len(turns) == 6  # 3 channels, all ordered pairs


class TestTheorem3Turns:
    def test_full_cross_product(self):
        a = Partition.of("X+ Y-", name="PA")
        b = Partition.of("X- Y+", name="PB")
        turns = theorem3_turns(a, b)
        assert len(turns) == 4
        assert str(turns[0]).startswith("X+")


class TestExtractTurns:
    def test_rules_layout_matches_figure8(self):
        seq = PartitionSequence.parse("X+ X- Y- -> Y+")
        ts = extract_turns(seq)
        assert "Theorem1 in PA" in ts.rules
        assert "Theorem2 in PA" in ts.rules
        assert "Theorem3 PA->PB" in ts.rules

    def test_validates_by_default(self):
        bad = PartitionSequence.parse("X+ X- Y+ Y-")
        with pytest.raises(TheoremViolation):
            extract_turns(bad)
        # ... unless explicitly disabled (for negative-control experiments)
        extract_turns(bad, validate=False)

    def test_consecutive_transitions_are_subset(self):
        seq = PartitionSequence.parse("X+ -> Y+ -> X- -> Y-")
        all_t = extract_turns(seq, transitions="all")
        consecutive = extract_turns(seq, transitions="consecutive")
        assert consecutive.turns < all_t.turns

    def test_unknown_transition_mode(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        with pytest.raises(ValueError):
            extract_turns(seq, transitions="sometimes")

    def test_north_last_turn_inventory(self):
        # Theorem 3 example: 6 x 90-degree, S->N U-turn, one X U-turn.
        ts = extract_turns(PartitionSequence.parse("X+ X- Y- -> Y+"))
        assert len(ts.of_kind(TurnKind.DEGREE90)) == 6
        assert len(ts.of_kind(TurnKind.UTURN)) == 2

    def test_injection_channels(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        assert [str(c) for c in injection_channels(seq)] == ["X+", "Y+"]
