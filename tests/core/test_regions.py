"""Unit tests for the 2^n region model (Section 4)."""

import pytest

from repro.core import (
    Partition,
    PartitionSequence,
    all_regions,
    covers_all_regions,
    region_name,
    region_of,
    regions_covered,
    uncovered_regions,
)


class TestAllRegions:
    def test_counts(self):
        assert len(all_regions(1)) == 2
        assert len(all_regions(2)) == 4
        assert len(all_regions(4)) == 16

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            all_regions(0)


class TestRegionNames:
    @pytest.mark.parametrize(
        "region, name",
        [
            ((+1, +1), "NE"),
            ((-1, +1), "NW"),
            ((+1, -1), "SE"),
            ((-1, -1), "SW"),
            ((+1, +1, +1), "NEU"),
            ((-1, -1, -1), "SWD"),
            ((+1, -1, +1), "SEU"),
        ],
    )
    def test_compass_names(self, region, name):
        assert region_name(region) == name

    def test_high_dims_get_suffix(self):
        assert region_name((+1, +1, +1, -1)).startswith("NEU")
        assert "D4-" in region_name((+1, +1, +1, -1))


class TestRegionsCovered:
    def test_partition_with_pair_covers_two_regions(self):
        part = Partition.of("X+ Y+ Y-")
        assert set(regions_covered(part, 2)) == {(+1, +1), (+1, -1)}

    def test_partition_missing_dim_covers_nothing(self):
        part = Partition.of("X+ X-")
        assert regions_covered(part, 2) == ()

    def test_full_coverage_check(self):
        seq = PartitionSequence.of("X+ Y+ Y-", "X- Y2+ Y2-")
        assert covers_all_regions(seq, 2)

    def test_uncovered_regions(self):
        seq = PartitionSequence.of("X+ Y+")
        assert set(uncovered_regions(seq, 2)) == {(-1, +1), (+1, -1), (-1, -1)}


class TestRegionOf:
    def test_ties_positive(self):
        assert region_of((1, 1), (1, 3)) == (+1, +1)

    def test_mixed(self):
        assert region_of((2, 2), (0, 5)) == (-1, +1)

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            region_of((0, 0), (1, 1, 1))
