"""Unit tests for dimension sets and the §5.1 arrangements."""

import pytest

from repro.core import (
    DimensionSet,
    arrangement1,
    arrangement2,
    arrangement3,
    channels,
    sets_from_vc_counts,
)
from repro.core.arrangements import repaired_set
from repro.errors import PartitionError


class TestDimensionSet:
    def test_pairwise_layout(self):
        sets = sets_from_vc_counts([2])
        assert [str(c) for c in sets[0].channels] == ["X+", "X-", "X2+", "X2-"]

    def test_pair_count(self):
        s = sets_from_vc_counts([3])[0]
        assert s.pair_count == 3

    def test_pair_count_unbalanced(self):
        s = DimensionSet(0, channels("X+ X2+ X-"))
        assert s.pair_count == 1

    def test_head_pair_crosses_vcs(self):
        s = DimensionSet(0, channels("X2+ X1-"))
        pos, neg = s.head_pair()
        assert str(pos) == "X2+" and str(neg) == "X-"

    def test_head_pair_missing_direction(self):
        s = DimensionSet(0, channels("X+ X2+"))
        with pytest.raises(PartitionError):
            s.head_pair()

    def test_without(self):
        s = sets_from_vc_counts([2])[0]
        rest = s.without(channels("X+ X-"))
        assert [str(c) for c in rest.channels] == ["X2+", "X2-"]

    def test_wrong_dim_rejected(self):
        with pytest.raises(PartitionError):
            DimensionSet(0, channels("Y+"))

    def test_rotations(self):
        s = sets_from_vc_counts([2])[0]
        assert [str(c) for c in s.rotated_channels(1).channels] == [
            "X-", "X2+", "X2-", "X+",
        ]
        assert [str(c) for c in s.rotated_pairs(1).channels] == [
            "X2+", "X2-", "X+", "X-",
        ]

    def test_rotation_of_empty_set(self):
        s = DimensionSet(0, channels("X+ X-")).without(channels("X+ X-"))
        assert s.rotated_channels(3).is_empty


class TestArrangements:
    def test_arrangement1_orders_by_pairs(self):
        sets = sets_from_vc_counts([3, 2, 3])
        ordered = arrangement1(sets)
        assert [s.pair_count for s in ordered] == [3, 3, 2]
        # stable: X (dim 0) before Z (dim 2) on ties
        assert [s.dim for s in ordered] == [0, 2, 1]

    def test_arrangement2_permutes_tied_leaders(self):
        sets = sets_from_vc_counts([3, 2, 3])
        orders = [tuple(s.dim for s in arr) for arr in arrangement2(sets)]
        assert (0, 2, 1) in orders
        assert (2, 0, 1) in orders
        assert len(orders) == 2

    def test_arrangement2_single_leader(self):
        sets = sets_from_vc_counts([3, 1])
        assert len(list(arrangement2(sets))) == 1

    def test_arrangement3_counts_q_factorial(self):
        s = sets_from_vc_counts([3])[0]
        assert len(list(arrangement3(s))) == 6

    def test_repaired_set(self):
        s = sets_from_vc_counts([2])[0]
        repaired = repaired_set(s, [1, 0])
        assert [str(c) for c in repaired.channels] == ["X+", "X2-", "X2+", "X-"]
        assert repaired.pair_count == 2

    def test_repaired_rejects_bad_permutation(self):
        s = sets_from_vc_counts([2])[0]
        with pytest.raises(PartitionError):
            repaired_set(s, [0, 0])


class TestSetsFromVcCounts:
    def test_mapping_input(self):
        sets = sets_from_vc_counts({0: 1, 2: 2})
        assert [s.dim for s in sets] == [0, 2]

    def test_zero_vcs_rejected(self):
        with pytest.raises(PartitionError):
            sets_from_vc_counts([1, 0])
