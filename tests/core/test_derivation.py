"""Unit tests for Algorithm 2 and the §5.3 derivations."""

from itertools import islice

import pytest

from repro.core import (
    PartitionSequence,
    arrangement1,
    check_sequence,
    derivation_space_size,
    derive_by_rotation,
    fully_deterministic,
    sets_from_vc_counts,
    split_partitions,
    trace_orders,
)


class TestDeriveByRotation:
    def test_all_derived_designs_are_valid(self):
        sets = arrangement1(sets_from_vc_counts([2, 2]))
        for seq in islice(derive_by_rotation(sets), 20):
            check_sequence(seq).raise_if_failed()

    def test_yields_multiple_distinct_options(self):
        sets = arrangement1(sets_from_vc_counts([1, 1]))
        options = list(derive_by_rotation(sets))
        keys = {tuple(p.channel_set for p in seq) for seq in options}
        assert len(keys) == len(options) >= 2

    def test_limit_respected(self):
        sets = arrangement1(sets_from_vc_counts([2, 2]))
        assert len(list(derive_by_rotation(sets, limit=3))) <= 3

    def test_space_size(self):
        sets = arrangement1(sets_from_vc_counts([2, 2]))
        assert derivation_space_size(sets) == 2 * 4
        assert derivation_space_size([]) == 0


class TestSplitPartitions:
    def test_each_split_is_valid(self):
        seq = PartitionSequence.parse("X+ X- Y+ -> Y-")
        splits = list(split_partitions(seq))
        assert splits
        for s in splits:
            check_sequence(s).raise_if_failed()
            assert s.channel_count == seq.channel_count
            assert len(s) == len(seq) + 1

    def test_singletons_not_split(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        assert list(split_partitions(seq)) == []

    def test_split_preserves_channel_order(self):
        seq = PartitionSequence.parse("X+ X- Y+")
        first = next(iter(split_partitions(seq)))
        assert [str(c) for c in first.all_channels] == ["X+", "X-", "Y+"]


class TestFullyDeterministic:
    def test_all_singletons(self):
        seq = PartitionSequence.parse("X+ X- Y+ -> Y-")
        det = fully_deterministic(seq)
        assert all(len(p) == 1 for p in det)
        assert det.channel_count == 4
        check_sequence(det).raise_if_failed()


class TestTraceOrders:
    def test_original_first(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        first = next(iter(trace_orders(seq)))
        assert first.arrow_notation() == seq.arrow_notation()

    def test_counts_factorial(self):
        seq = PartitionSequence.parse("X+ -> Y+ -> X-")
        assert len(list(trace_orders(seq))) == 6

    def test_all_orders_valid(self):
        seq = PartitionSequence.parse("X+ X- Y+ -> Y-")
        for variant in trace_orders(seq):
            check_sequence(variant).raise_if_failed()

    def test_limit(self):
        seq = PartitionSequence.parse("X+ -> Y+ -> X- -> Y-")
        assert len(list(trace_orders(seq, limit=5))) == 5
