"""The stable top-level facade: repro.run_point / repro.sweep / repro.verify."""

import pytest

import repro
from repro.core import PartitionSequence, catalog
from repro.errors import EbdaError
from repro.routing import WestFirst
from repro.sim import RunConfig, SweepReport


class TestFacadeExports:
    def test_lazy_attributes_resolve(self):
        for name in ("run_point", "sweep", "verify", "RunConfig", "RunResult",
                     "SimStats", "SweepEngine", "SweepReport", "ResultCache"):
            assert getattr(repro, name) is not None
            assert name in dir(repro)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.nonesuch

    def test_facade_names_are_canonical(self):
        from repro.sim.parallel import SweepEngine
        from repro.sim.runner import RunConfig as CanonicalConfig

        assert repro.RunConfig is CanonicalConfig
        assert repro.SweepEngine is SweepEngine


class TestRunPoint:
    def test_named_spec(self, mesh4):
        result = repro.run_point(mesh4, "xy", RunConfig(cycles=200, seed=3))
        assert not result.deadlocked
        assert result.stats.packets_delivered > 0

    def test_default_config(self, mesh4):
        result = repro.run_point(mesh4, "west-first", RunConfig(cycles=150))
        assert result.routing_name == "west-first"

    def test_cached(self, mesh4, tmp_path):
        cfg = RunConfig(cycles=200, seed=3)
        cold = repro.run_point(mesh4, "xy", cfg, cache=tmp_path / "c")
        warm = repro.run_point(mesh4, "xy", cfg, cache=tmp_path / "c")
        assert warm.stats == cold.stats


class TestSweep:
    def test_returns_report(self, mesh4):
        report = repro.sweep(
            mesh4, "xy", [0.02, 0.05], RunConfig(cycles=200, seed=3)
        )
        assert isinstance(report, SweepReport)
        assert len(report.results) == 2
        assert report.cache_misses == 2  # no cache configured: all "misses"

    def test_jobs_and_cache(self, mesh4, tmp_path):
        cfg = RunConfig(cycles=200, seed=3)
        cold = repro.sweep(
            mesh4, "west-first", [0.02, 0.05], cfg, jobs=2, cache=tmp_path / "c"
        )
        warm = repro.sweep(
            mesh4, "west-first", [0.02, 0.05], cfg, jobs=2, cache=tmp_path / "c"
        )
        assert warm.cache_hits == 2
        assert warm.cycles_executed == 0
        assert [r.stats for r in warm.results] == [r.stats for r in cold.results]


class TestVerify:
    def test_catalog_name_implies_rule(self, mesh4):
        verdict = repro.verify("west-first", mesh4)
        assert verdict.acyclic

    def test_arrow_notation(self, mesh4):
        verdict = repro.verify("X- -> X+ Y+ Y-", mesh4)
        assert verdict.acyclic

    def test_partition_sequence(self, mesh4):
        design = catalog.north_last()
        assert repro.verify(design, mesh4).acyclic

    def test_turnset(self, mesh4):
        from repro.core import extract_turns

        turnset = extract_turns(catalog.p3_west_first())
        assert repro.verify(turnset, mesh4).acyclic

    def test_routing_function(self, mesh4):
        assert repro.verify(WestFirst(mesh4), mesh4).acyclic

    def test_unverifiable_subject(self, mesh4):
        with pytest.raises(EbdaError, match="cannot verify"):
            repro.verify(42, mesh4)

    def test_unknown_design_string(self, mesh4):
        with pytest.raises(EbdaError):
            repro.verify("not a design ->", mesh4)

    def test_all_catalog_designs_verify(self, mesh4):
        for name in sorted(catalog.NAMED_DESIGNS):
            assert repro.verify(name, mesh4).acyclic, name

    def test_explicit_rule_override(self, torus4):
        from repro.core.torus_designs import dateline_design
        from repro.topology.classes import dateline

        verdict = repro.verify(dateline_design(2), torus4, rule=dateline)
        assert verdict.acyclic
