"""Shared fixtures: topologies and designs reused across the suite."""

from __future__ import annotations

import pytest

from repro.core import PartitionSequence, catalog
from repro.topology import FaultyMesh, Mesh, PartiallyConnected3D, Torus


@pytest.fixture(scope="session")
def mesh4() -> Mesh:
    return Mesh(4, 4)


@pytest.fixture(scope="session")
def mesh3x3() -> Mesh:
    return Mesh(3, 3)


@pytest.fixture(scope="session")
def mesh3d() -> Mesh:
    return Mesh(3, 3, 3)


@pytest.fixture(scope="session")
def torus4() -> Torus:
    return Torus(4, 4)


@pytest.fixture(scope="session")
def partial3d() -> PartiallyConnected3D:
    return PartiallyConnected3D(4, 4, 2, elevators=[(1, 1), (3, 2)])


@pytest.fixture(scope="session")
def faulty_mesh() -> FaultyMesh:
    return FaultyMesh(Mesh(4, 4), failed=[((1, 1), (2, 1)), ((2, 2), (2, 3))])


@pytest.fixture(scope="session")
def north_last_design() -> PartitionSequence:
    return catalog.north_last()


@pytest.fixture(scope="session")
def west_first_design() -> PartitionSequence:
    return catalog.p3_west_first()


@pytest.fixture(params=sorted(catalog.NAMED_DESIGNS))
def named_design(request) -> tuple[str, PartitionSequence]:
    """Every catalog design, parameterised by name."""
    name = request.param
    return name, catalog.design(name)
