"""Unit tests for Monte-Carlo chaos campaigns and their checkpoints."""

import json

import pytest

from repro.chaos import (
    CampaignCheckpoint,
    CampaignConfig,
    ChaosCampaign,
    derive_trial,
    trial_record_bytes,
)
from repro.chaos.campaign import NAMED_RECOVERY_POLICIES, run_trial
from repro.errors import EbdaError, SimulationError
from repro.sim.parallel import SweepEngine

#: Small but non-trivial: covers every policy and several fault counts.
SMALL = CampaignConfig(trials=8, seed=0, mesh=(4, 4), cycles=200)


class TestCampaignConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            CampaignConfig(trials=0)
        with pytest.raises(SimulationError):
            CampaignConfig(workloads=())
        with pytest.raises(EbdaError):
            CampaignConfig(policies=("nope",))
        with pytest.raises(EbdaError):
            CampaignConfig(workloads=("nope",))

    def test_dict_round_trip(self):
        assert CampaignConfig.from_dict(SMALL.to_dict()) == SMALL
        with pytest.raises(SimulationError):
            CampaignConfig.from_dict({"trials": 5, "surprise": 1})

    def test_token_is_content_addressed(self):
        assert SMALL.token() == CampaignConfig(**{
            f: getattr(SMALL, f) for f in ("trials", "seed", "mesh", "cycles")
        }).token()
        assert SMALL.token() != CampaignConfig(trials=8, seed=1, cycles=200).token()


class TestDeriveTrial:
    def test_deterministic_and_order_free(self):
        specs = [derive_trial(SMALL, i) for i in range(SMALL.trials)]
        again = [derive_trial(SMALL, i) for i in reversed(range(SMALL.trials))]
        assert specs == list(reversed(again))

    def test_draws_within_config(self):
        for i in range(SMALL.trials):
            spec = derive_trial(SMALL, i)
            assert spec.workload in SMALL.workloads
            assert spec.policy in SMALL.policies
            assert 0 <= spec.n_faults <= SMALL.max_faults

    def test_index_out_of_range(self):
        with pytest.raises(SimulationError):
            derive_trial(SMALL, SMALL.trials)
        with pytest.raises(SimulationError):
            derive_trial(SMALL, -1)


class TestRunTrial:
    def test_record_is_strict_json_without_timing(self):
        record = run_trial(SMALL, 0)
        data = trial_record_bytes(record)  # allow_nan=False: raises on NaN
        parsed = json.loads(data)
        assert parsed == record
        assert "wall_time" not in record
        assert record["outcome"] in (
            "delivered", "degraded", "deadlock", "unroutable", "error"
        )

    def test_trial_reruns_identically(self):
        assert trial_record_bytes(run_trial(SMALL, 3)) == trial_record_bytes(
            run_trial(SMALL, 3)
        )


class TestCheckpoint:
    def test_store_and_load(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, "deadbeef")
        ckpt.store(0, b'{"a": 1}')
        ckpt.store(2, b'{"b": 2}')
        assert ckpt.completed() == {0: b'{"a": 1}', 2: b'{"b": 2}'}
        assert 0 in ckpt and 1 not in ckpt
        assert len(ckpt) == 2

    def test_idempotent_same_bytes(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, "deadbeef")
        ckpt.store(0, b"x")
        ckpt.store(0, b"x")
        assert len(ckpt) == 1

    def test_conflicting_bytes_rejected(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, "deadbeef")
        ckpt.store(0, b"x")
        with pytest.raises(ValueError):
            ckpt.store(0, b"y")

    def test_corrupt_record_dropped(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, "deadbeef")
        path = ckpt.store(0, b'{"a": 1}')
        path.write_bytes(b'{"tampered": true}')
        assert ckpt.completed() == {}

    def test_campaigns_do_not_collide(self, tmp_path):
        a = CampaignCheckpoint(tmp_path, "aaaa")
        b = CampaignCheckpoint(tmp_path, "bbbb")
        a.store(0, b"x")
        assert b.completed() == {}

    def test_clear(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path, "deadbeef")
        ckpt.store(0, b"x")
        assert ckpt.clear() == 1
        assert len(ckpt) == 0


class TestChaosCampaign:
    def test_deterministic_across_runs(self):
        a = ChaosCampaign(SMALL).run()
        b = ChaosCampaign(SMALL).run()
        assert a.trial_bytes == b.trial_bytes
        assert not a.interrupted
        assert a.trials_completed == SMALL.trials

    def test_parallel_matches_serial(self):
        serial = ChaosCampaign(SMALL).run()
        parallel = ChaosCampaign(SMALL, engine=SweepEngine(jobs=2)).run()
        assert serial.trial_bytes == parallel.trial_bytes

    def test_budget_interrupts_then_resume_is_byte_identical(self, tmp_path):
        # Needs more trials than one batch (8 at jobs=1), else budget_s=0
        # never gets a chance to interrupt.
        config = CampaignConfig(trials=12, seed=0, mesh=(4, 4), cycles=200)
        full = ChaosCampaign(config).run()
        partial = ChaosCampaign(config, checkpoint_dir=tmp_path).run(budget_s=0)
        assert partial.interrupted
        assert 0 < partial.trials_completed < config.trials
        resumed = ChaosCampaign(config, checkpoint_dir=tmp_path).run()
        assert not resumed.interrupted
        assert resumed.trial_bytes == full.trial_bytes

    def test_report_jsonl_round_trip(self, tmp_path):
        from repro.chaos import load_survival

        report = ChaosCampaign(SMALL).run()
        path = tmp_path / "campaign.jsonl"
        n = report.to_jsonl(path)
        records = load_survival(path)
        assert len(records) == n
        assert records[0]["record"] == "campaign-meta"
        assert records[0]["token"] == SMALL.token()
        trials = [r for r in records if r["record"] == "trial"]
        assert [t["index"] for t in trials] == list(range(SMALL.trials))
        assert any(r["record"] == "survival" for r in records)

    def test_report_jsonl_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        ChaosCampaign(SMALL).run().to_jsonl(a)
        ChaosCampaign(SMALL).run().to_jsonl(b)
        assert a.read_bytes() == b.read_bytes()

    def test_progress_reports_batches(self):
        lines = []
        ChaosCampaign(SMALL).run(progress=lines.append)
        assert lines and f"{SMALL.trials}/{SMALL.trials}" in lines[-1]

    def test_summary_and_outcomes(self):
        report = ChaosCampaign(SMALL).run()
        assert SMALL.token() in report.summary()
        assert sum(report.outcome_counts().values()) == SMALL.trials


class TestPolicies:
    def test_named_policies_cover_cli_defaults(self):
        assert set(NAMED_RECOVERY_POLICIES) >= {"none", "retry-2", "retry-8"}
        assert NAMED_RECOVERY_POLICIES["none"] is None
        assert NAMED_RECOVERY_POLICIES["retry-2"].max_retries == 2
