"""Unit tests for survival-curve analytics."""

import pytest

from repro.chaos.survival import (
    CHAOS_SCHEMA,
    _percentile,
    load_survival,
    render_survival,
    survival_curves,
)
from repro.errors import EbdaError


def trial(index, policy="none", n_faults=0, outcome="delivered", **extra):
    record = {
        "record": "trial",
        "index": index,
        "workload": "shuffle",
        "policy": policy,
        "n_faults": n_faults,
        "outcome": outcome,
        "delivery_ratio": 1.0 if outcome == "delivered" else 0.5,
        "packets_aborted": 0,
        "retransmissions": 0,
        "recovered_deadlocks": 0,
        "time_to_deadlock": None,
        "recovery_latency_mean": None,
    }
    record.update(extra)
    return record


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 50) is None

    def test_single(self):
        assert _percentile([7.0], 50) == 7.0
        assert _percentile([7.0], 95) == 7.0

    def test_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0) == 1.0
        assert _percentile(values, 100) == 4.0
        assert _percentile(values, 50) == pytest.approx(2.5)

    def test_matches_simstats_convention(self):
        from repro.sim.stats import SimStats

        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        stats = SimStats(latencies=[(v, v) for v in values])
        for q in (0, 25, 50, 90, 100):
            assert _percentile(values, q) == pytest.approx(
                stats.latency_percentile(q)
            )


class TestSurvivalCurves:
    def test_groups_by_policy_sorted(self):
        trials = [
            trial(0, policy="retry-2"),
            trial(1, policy="none"),
            trial(2, policy="none"),
        ]
        curves = survival_curves(trials)
        assert [s["policy"] for s in curves] == ["none", "retry-2"]
        assert [s["trials"] for s in curves] == [2, 1]

    def test_conditional_probability(self):
        trials = [
            trial(0, n_faults=1, outcome="delivered"),
            trial(1, n_faults=1, outcome="deadlock"),
            trial(2, n_faults=1, outcome="delivered"),
            trial(3, n_faults=0, outcome="delivered"),
        ]
        (s,) = survival_curves(trials)
        by_faults = {p["faults"]: p for p in s["curve"]}
        assert by_faults[0]["p_delivered"] == 1.0
        assert by_faults[1]["p_delivered"] == pytest.approx(2 / 3)
        assert by_faults[1]["deadlocks"] == 1

    def test_time_to_deadlock_distribution(self):
        trials = [
            trial(0, n_faults=2, outcome="deadlock", time_to_deadlock=40),
            trial(1, n_faults=2, outcome="deadlock", time_to_deadlock=80),
            trial(2, n_faults=1, outcome="delivered"),
        ]
        (s,) = survival_curves(trials)
        assert s["time_to_deadlock"]["n"] == 2
        assert s["time_to_deadlock"]["max"] == 80
        assert s["time_to_deadlock"]["p50"] == pytest.approx(60.0)

    def test_no_deadlocks_means_no_distribution(self):
        (s,) = survival_curves([trial(0)])
        assert s["time_to_deadlock"] is None

    def test_recovery_aggregates(self):
        trials = [
            trial(0, policy="retry-2", packets_aborted=3, retransmissions=2,
                  recovered_deadlocks=1, recovery_latency_mean=12.0),
            trial(1, policy="retry-2", packets_aborted=1, retransmissions=1,
                  recovered_deadlocks=0, recovery_latency_mean=20.0),
        ]
        (s,) = survival_curves(trials)
        assert s["recovery"]["aborts"] == 4
        assert s["recovery"]["retransmissions"] == 3
        assert s["recovery"]["recovered_deadlocks"] == 1
        assert s["recovery"]["latency_p50"] == pytest.approx(16.0)

    def test_ignores_non_trial_records(self):
        records = [{"record": "campaign-meta", "schema": CHAOS_SCHEMA}, trial(0)]
        assert survival_curves(records)[0]["trials"] == 1

    def test_empty_input(self):
        assert survival_curves([]) == []


class TestLoadSurvival:
    def write(self, tmp_path, text):
        path = tmp_path / "report.jsonl"
        path.write_text(text)
        return path

    def test_rejects_missing_meta(self, tmp_path):
        path = self.write(tmp_path, '{"record": "trial", "policy": "none"}\n')
        with pytest.raises(EbdaError):
            load_survival(path)

    def test_rejects_wrong_schema(self, tmp_path):
        path = self.write(
            tmp_path, '{"record": "campaign-meta", "schema": 999}\n'
        )
        with pytest.raises(EbdaError):
            load_survival(path)

    def test_rejects_nan(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"record": "campaign-meta", "schema": 1}\n'
            '{"record": "trial", "delivery_ratio": NaN}\n',
        )
        with pytest.raises(EbdaError):
            load_survival(path)

    def test_rejects_unknown_record_kind(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"record": "campaign-meta", "schema": 1}\n{"record": "mystery"}\n',
        )
        with pytest.raises(EbdaError):
            load_survival(path)

    def test_rejects_non_object_line(self, tmp_path):
        path = self.write(
            tmp_path, '{"record": "campaign-meta", "schema": 1}\n[1, 2]\n'
        )
        with pytest.raises(EbdaError):
            load_survival(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(EbdaError):
            load_survival(tmp_path / "absent.jsonl")

    def test_skips_blank_lines(self, tmp_path):
        path = self.write(
            tmp_path, '{"record": "campaign-meta", "schema": 1}\n\n'
        )
        assert len(load_survival(path)) == 1


class TestRenderSurvival:
    def test_renders_trials_without_survival_records(self):
        records = [
            {
                "record": "campaign-meta",
                "schema": CHAOS_SCHEMA,
                "token": "cafebabe",
                "mesh": [4, 4],
                "routing": "negative-first",
                "trials": 2,
            },
            trial(0, n_faults=1, outcome="deadlock", time_to_deadlock=40),
            trial(1, n_faults=0),
        ]
        text = render_survival(records)
        assert "cafebabe" in text
        assert "mesh 4x4" in text
        assert "P[delivered]" in text
        assert "deadlock 1" in text

    def test_renders_empty_campaign(self):
        records = [{"record": "campaign-meta", "schema": CHAOS_SCHEMA}]
        assert "(no trials recorded)" in render_survival(records)

    def test_accepts_path(self, tmp_path):
        path = tmp_path / "report.jsonl"
        path.write_text('{"record": "campaign-meta", "schema": 1, "trials": 0}\n')
        assert "chaos survival report" in render_survival(path)
