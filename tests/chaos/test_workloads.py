"""Unit tests for trace-driven workloads."""

import json

import pytest

from repro.errors import EbdaError, SimulationError
from repro.chaos.workloads import (
    NAMED_WORKLOADS,
    WorkloadTrace,
    load_workload,
    resolve_workload,
    workload_token,
)
from repro.sim import NetworkSimulator, RunConfig, run_point
from repro.sim.specs import spec_token


class TestWorkloadTrace:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadTrace(kind="gossip")

    def test_validation(self):
        with pytest.raises(SimulationError):
            WorkloadTrace(kind="bursty", rate=1.5)
        with pytest.raises(SimulationError):
            WorkloadTrace(kind="incast", fraction=0.0)
        with pytest.raises(SimulationError):
            WorkloadTrace(kind="all-reduce", rounds=0)
        with pytest.raises(SimulationError):
            WorkloadTrace(kind="replay")  # needs events

    def test_replay_events_validated(self):
        with pytest.raises(SimulationError):
            WorkloadTrace(kind="replay", events=(((-1), (0, 0), (1, 0), 4),))
        with pytest.raises(SimulationError):
            WorkloadTrace(kind="replay", events=((0, (0, 0), (0, 0), 4),))

    def test_dict_round_trip(self):
        for trace in NAMED_WORKLOADS.values():
            assert WorkloadTrace.from_dict(trace.to_dict()) == trace

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SimulationError):
            WorkloadTrace.from_dict({"kind": "shuffle", "surprise": 1})

    def test_token_stable_and_content_addressed(self):
        a = WorkloadTrace(kind="shuffle", seed=3)
        assert a.token() == WorkloadTrace(kind="shuffle", seed=3).token()
        assert a.token() != WorkloadTrace(kind="shuffle", seed=4).token()

    def test_with_seed(self):
        trace = NAMED_WORKLOADS["bursty"].with_seed(99)
        assert trace.seed == 99
        assert trace.kind == "bursty"


class TestMaterialize:
    def test_deterministic(self, mesh4):
        for trace in NAMED_WORKLOADS.values():
            a = trace.materialize(mesh4, 300)
            b = trace.materialize(mesh4, 300)
            assert a.schedule == b.schedule

    def test_all_reduce_shape(self, mesh4):
        trace = WorkloadTrace(kind="all-reduce", rounds=1, interval=4)
        tw = trace.materialize(mesh4, 300)
        n = len(mesh4.endpoints)
        # 2(N-1) phases, one packet per endpoint per phase.
        assert tw.total_packets == 2 * (n - 1) * n
        assert min(tw.schedule) == 0

    def test_shuffle_covers_all_to_all(self, mesh4):
        n = len(mesh4.endpoints)
        trace = WorkloadTrace(kind="shuffle", rounds=n - 1, interval=2)
        tw = trace.materialize(mesh4, 1000)
        pairs = {
            (src, dst)
            for entries in tw.schedule.values()
            for src, dst, _l in entries
        }
        assert len(pairs) == n * (n - 1)  # full all-to-all, no self-sends

    def test_incast_single_sink(self, mesh4):
        tw = NAMED_WORKLOADS["incast"].materialize(mesh4, 300)
        sinks = {dst for e in tw.schedule.values() for _s, dst, _l in e}
        assert len(sinks) == 1

    def test_bursty_respects_horizon(self, mesh4):
        tw = NAMED_WORKLOADS["bursty"].materialize(mesh4, 120)
        assert tw.last_cycle < 120

    def test_packets_have_sequential_pids(self, mesh4):
        tw = NAMED_WORKLOADS["shuffle"].materialize(mesh4, 300)
        pids = [
            p.pid for c in range(tw.last_cycle + 1) for p in tw.packets_for_cycle(c)
        ]
        assert pids == list(range(len(pids)))

    def test_foreign_nodes_rejected(self, mesh4):
        trace = WorkloadTrace(kind="replay", events=((0, (9, 9), (0, 0), 4),))
        with pytest.raises(SimulationError):
            trace.materialize(mesh4, 100)

    def test_needs_two_endpoints(self):
        class OneNode:
            endpoints = ((0, 0),)
            node_set = frozenset({(0, 0)})

        with pytest.raises(SimulationError):
            NAMED_WORKLOADS["shuffle"].materialize(OneNode(), 100)

    def test_as_replay_reproduces_schedule(self, mesh4):
        tw = NAMED_WORKLOADS["incast"].materialize(mesh4, 300)
        replayed = tw.as_replay().materialize(mesh4, 300)
        assert replayed.schedule == tw.schedule


class TestJsonl:
    def test_round_trip_generator(self, tmp_path):
        trace = NAMED_WORKLOADS["bursty"]
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        assert load_workload(path) == trace

    def test_round_trip_replay(self, tmp_path, mesh4):
        trace = NAMED_WORKLOADS["shuffle"].materialize(mesh4, 300).as_replay()
        path = tmp_path / "trace.jsonl"
        n = trace.save_jsonl(path)
        assert n == 1 + len(trace.events)
        assert load_workload(path) == trace

    def test_strict_loader_rejects_nan(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "workload-meta", "kind": "bursty", "rate": NaN}\n')
        with pytest.raises(EbdaError):
            load_workload(path)

    def test_loader_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "injection", "cycle": 0, "src": [0, 0], "dst": [1, 0], "length": 4}\n')
        with pytest.raises(EbdaError):
            load_workload(path)

    def test_loader_rejects_unknown_record(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "mystery"}\n')
        with pytest.raises(EbdaError):
            load_workload(path)


class TestSpecIntegration:
    def test_resolve_by_name(self):
        assert resolve_workload("incast") is NAMED_WORKLOADS["incast"]
        trace = WorkloadTrace(kind="shuffle")
        assert resolve_workload(trace) is trace
        with pytest.raises(EbdaError):
            resolve_workload("nope")

    def test_workload_tokens(self):
        assert workload_token(None) == "none"
        assert workload_token("incast") == "name:incast"
        assert workload_token(NAMED_WORKLOADS["incast"]) == "name:incast"
        anon = WorkloadTrace(kind="incast", seed=123)
        assert anon.token() == workload_token(anon)
        assert workload_token(lambda: None) is None

    def test_spec_token_kind(self):
        assert spec_token("workload", "shuffle") == "name:shuffle"
        assert spec_token("workload", None) == "none"

    def test_run_point_traced_mode(self, mesh4):
        config = RunConfig(cycles=200, workload="shuffle", watchdog=300)
        result = run_point(mesh4, "negative-first", config)
        expected = NAMED_WORKLOADS["shuffle"].materialize(mesh4, 200).total_packets
        assert result.stats.packets_injected == expected
        assert result.stats.packets_delivered == expected
        assert not result.stats.deadlocked

    def test_traced_mode_ignores_injection_rate(self, mesh4):
        a = run_point(
            mesh4, "xy", RunConfig(cycles=200, workload="incast", injection_rate=0.0)
        )
        b = run_point(
            mesh4, "xy", RunConfig(cycles=200, workload="incast", injection_rate=0.9)
        )
        assert a.stats.to_dict() == b.stats.to_dict()

    def test_traced_workload_drives_simulator_directly(self, mesh4):
        from repro.routing.deterministic import xy_routing

        tw = NAMED_WORKLOADS["all-reduce"].materialize(mesh4, 300)
        sim = NetworkSimulator(mesh4, xy_routing(mesh4), watchdog=400)
        stats = sim.run(300, tw, drain=True)
        assert stats.packets_delivered == tw.total_packets
