"""Unit tests for the exception hierarchy and experiment check types."""

import pytest

from repro.errors import (
    ChannelParseError,
    DeadlockDetected,
    EbdaError,
    FaultError,
    PartitionError,
    RoutingError,
    SimulationError,
    TheoremViolation,
    TopologyError,
    UnroutableError,
)
from repro.experiments.base import Check, ExperimentResult, check_eq, check_true


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ChannelParseError,
            PartitionError,
            TheoremViolation,
            TopologyError,
            RoutingError,
            SimulationError,
            DeadlockDetected,
            FaultError,
            UnroutableError,
        ],
    )
    def test_all_derive_from_ebda_error(self, exc):
        if exc is TheoremViolation:
            instance = exc(1, "msg")
        elif exc is DeadlockDetected:
            instance = exc([1, 2])
        else:
            instance = exc("msg")
        assert isinstance(instance, EbdaError)

    def test_value_errors_catchable_as_such(self):
        assert isinstance(PartitionError("x"), ValueError)
        assert isinstance(TopologyError("x"), ValueError)

    def test_theorem_violation_carries_number(self):
        exc = TheoremViolation(3, "bad")
        assert exc.theorem == 3
        assert "bad" in str(exc)

    def test_fault_errors_are_simulation_errors(self):
        assert isinstance(FaultError("x"), SimulationError)
        assert isinstance(UnroutableError("x"), FaultError)
        assert isinstance(UnroutableError("x"), SimulationError)

    def test_deadlock_detected_payload(self):
        exc = DeadlockDetected([4, 7, 9], cycle_channels=["a"])
        assert exc.cycle == [4, 7, 9]
        assert exc.cycle_channels == ["a"]
        assert "4" in str(exc)


class TestChecks:
    def test_check_eq(self):
        assert check_eq("x", 1, 1).passed
        assert not check_eq("x", 1, 2).passed
        assert "FAIL" in str(check_eq("x", 1, 2))

    def test_check_true_with_note(self):
        c = check_true("y", True, note="detail")
        assert c.passed and "detail" in str(c)

    def test_result_passed_and_require(self):
        good = ExperimentResult("E", "t", "body", {}, (check_eq("a", 1, 1),))
        assert good.passed
        assert good.require() is good

        bad = ExperimentResult("E", "t", "body", {}, (check_eq("a", 1, 2),))
        assert not bad.passed
        with pytest.raises(AssertionError):
            bad.require()

    def test_report_contains_everything(self):
        result = ExperimentResult("EX", "Title", "CONTENT", {}, (check_eq("a", 1, 1),))
        report = result.report()
        assert "EX" in report and "Title" in report and "CONTENT" in report
