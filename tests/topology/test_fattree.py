"""Unit tests for the fat-tree topology."""

import pytest

from repro.errors import TopologyError
from repro.topology.fattree import FatTree


@pytest.fixture
def ft() -> FatTree:
    return FatTree(leaves=4, spines=2, hosts_per_leaf=2)


class TestStructure:
    def test_node_census(self, ft):
        assert len(ft.nodes) == 8 + 4 + 2
        assert len(ft.endpoints) == 8
        assert all(n[0] == 0 for n in ft.endpoints)

    def test_link_census(self, ft):
        # 8 terminal<->leaf pairs + 4*2 leaf<->spine pairs, both directions
        assert len(ft.links) == 2 * (8 + 8)

    def test_up_down_labels(self, ft):
        up = [l for l in ft.links if l.sign == +1]
        for l in up:
            assert l.src[0] < l.dst[0]

    def test_leaf_of(self, ft):
        assert ft.leaf_of((0, 0)) == (1, 0)
        assert ft.leaf_of((0, 7)) == (1, 3)
        with pytest.raises(TopologyError):
            ft.leaf_of((1, 0))

    def test_validation(self):
        with pytest.raises(TopologyError):
            FatTree(leaves=1)


class TestOracles:
    def test_distance_same_leaf(self, ft):
        assert ft.distance((0, 0), (0, 1)) == 2  # up to leaf, down

    def test_distance_cross_leaf(self, ft):
        assert ft.distance((0, 0), (0, 7)) == 4  # terminal-leaf-spine-leaf-terminal

    def test_minimal_directions(self, ft):
        assert ft.minimal_directions((0, 0), (0, 7)) == ((0, +1),)
        # at the leaf, the cross-leaf route continues up
        assert ft.minimal_directions((1, 0), (0, 7)) == ((0, +1),)
        # at a spine, only down remains
        assert ft.minimal_directions((2, 0), (0, 7)) == ((0, -1),)

    def test_self_distance(self, ft):
        assert ft.distance((0, 3), (0, 3)) == 0


class TestUpDownIntegration:
    def test_level_based_updown_uses_all_spines(self, ft):
        from repro.routing import UpDownRouting

        levels = {node: 2 - node[0] for node in ft.nodes}
        routing = UpDownRouting(ft, levels=levels)
        cands = routing.candidates((1, 0), (0, 7), None)
        spines = {n for n, _c in cands if n[0] == 2}
        assert len(spines) == 2

    def test_levels_must_cover_all_nodes(self, ft):
        from repro.errors import RoutingError
        from repro.routing import UpDownRouting

        with pytest.raises(RoutingError):
            UpDownRouting(ft, levels={(0, 0): 0})
