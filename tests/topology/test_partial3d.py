"""Unit tests for the vertically partially connected 3D mesh."""

import pytest

from repro.errors import TopologyError
from repro.topology import PartiallyConnected3D


@pytest.fixture
def topo() -> PartiallyConnected3D:
    return PartiallyConnected3D(4, 4, 2, elevators=[(0, 0), (3, 3)])


class TestConstruction:
    def test_vertical_links_only_at_elevators(self, topo):
        z_links = [l for l in topo.links if l.dim == 2]
        xy = {(l.src[0], l.src[1]) for l in z_links}
        assert xy == {(0, 0), (3, 3)}
        assert len(z_links) == 4  # 2 elevators x 1 layer gap x 2 directions

    def test_layers_are_full_meshes(self, topo):
        for z in (0, 1):
            assert topo.has_link((0, 0, z), (1, 0, z))
            assert topo.has_link((2, 3, z), (1, 3, z))

    def test_elevator_outside_layer_rejected(self):
        with pytest.raises(TopologyError):
            PartiallyConnected3D(4, 4, 2, elevators=[(9, 0)])

    def test_no_elevators_rejected(self):
        with pytest.raises(TopologyError):
            PartiallyConnected3D(4, 4, 2, elevators=[])

    def test_default_elevators_connected(self):
        topo = PartiallyConnected3D(4, 4, 2)
        assert topo.elevators
        assert any(l.dim == 2 for l in topo.links)


class TestOracles:
    def test_same_layer_plain_mesh(self, topo):
        dirs = topo.minimal_directions((0, 0, 0), (2, 1, 0))
        assert set(dirs) == {(0, +1), (1, +1)}

    def test_at_elevator_offers_z(self, topo):
        dirs = topo.minimal_directions((0, 0, 0), (2, 1, 1))
        assert (2, +1) in dirs

    def test_cross_layer_offers_moves_toward_some_elevator(self, topo):
        dirs = topo.minimal_directions((1, 1, 0), (1, 1, 1))
        # toward (0,0): W/S; toward (3,3): E/N; all reduce a via-elevator
        # potential, so all four appear.
        assert set(dirs) == {(0, +1), (0, -1), (1, +1), (1, -1)}

    def test_distance_through_elevator(self, topo):
        # (1,0,0) -> (1,0,1): via (0,0): 1 + 1 + 1 = 3
        assert topo.distance((1, 0, 0), (1, 0, 1)) == 3

    def test_distance_same_layer(self, topo):
        assert topo.distance((0, 0, 0), (3, 3, 0)) == 6

    def test_nearest_elevator(self, topo):
        assert topo.nearest_elevator((1, 0, 0)) == (0, 0)
        assert topo.nearest_elevator((3, 2, 1)) == (3, 3)
