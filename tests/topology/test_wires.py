"""Unit tests for wire instantiation."""

import pytest

from repro.core import channels
from repro.errors import TopologyError
from repro.topology import (
    Mesh,
    check_full_instantiation,
    column_parity,
    wires_by_link,
    wires_for,
)


class TestWiresFor:
    def test_plain_2d_inventory(self):
        m = Mesh(3, 3)
        wires = wires_for(m, channels("X+ X- Y+ Y-"))
        assert len(wires) == len(m.links)

    def test_vcs_multiply_wires(self):
        m = Mesh(3, 3)
        wires = wires_for(m, channels("Y+ Y2+"))
        y_up_links = [l for l in m.links if l.dim == 1 and l.sign == +1]
        assert len(wires) == 2 * len(y_up_links)

    def test_class_rule_filters(self):
        m = Mesh(4, 4)
        wires = wires_for(m, channels("Y+@e"), column_parity)
        assert all(w.src[0] % 2 == 0 for w in wires)
        assert wires

    def test_mismatched_class_instantiates_nothing(self):
        m = Mesh(4, 4)
        assert wires_for(m, channels("Y+@e")) == ()

    def test_wire_accessors(self):
        m = Mesh(3, 3)
        wire = wires_for(m, channels("X+"))[0]
        assert wire.src == wire.link.src
        assert wire.dst == wire.link.dst
        assert "X+" in str(wire)


class TestWiresByLink:
    def test_grouping(self):
        m = Mesh(3, 3)
        grouped = wires_by_link(m, channels("X+ X- Y+ Y- Y2+ Y2-"))
        y_link = m.link((0, 0), (0, 1))
        x_link = m.link((0, 0), (1, 0))
        assert len(grouped[y_link]) == 2
        assert len(grouped[x_link]) == 1


class TestFullInstantiation:
    def test_complete_inventory_passes(self):
        m = Mesh(3, 3)
        check_full_instantiation(m, channels("X+ X- Y+ Y-"))

    def test_missing_direction_raises(self):
        m = Mesh(3, 3)
        with pytest.raises(TopologyError):
            check_full_instantiation(m, channels("X+ X- Y+"))

    def test_odd_even_inventory_with_rule(self):
        m = Mesh(4, 4)
        check_full_instantiation(
            m, channels("X+ X- Y+@e Y-@e Y+@o Y-@o"), column_parity
        )
