"""Unit tests for topology base helpers."""

import pytest

from repro.errors import TopologyError
from repro.topology import Mesh, dim_sign, grid_nodes
from repro.topology.base import Link


class TestDimSign:
    def test_labels(self):
        assert dim_sign(0, +1) == "X+"
        assert dim_sign(1, -1) == "Y-"
        assert dim_sign(2, +1) == "Z+"


class TestGridNodes:
    def test_counts_and_ordering(self):
        nodes = grid_nodes((2, 3))
        assert len(nodes) == 6
        assert nodes == tuple(sorted(nodes))
        assert nodes[0] == (0, 0)

    def test_1d(self):
        assert grid_nodes((4,)) == ((0,), (1,), (2,), (3,))

    def test_invalid_shape(self):
        with pytest.raises(TopologyError):
            grid_nodes(())
        with pytest.raises(TopologyError):
            grid_nodes((0, 3))


class TestLink:
    def test_str(self):
        link = Link((0, 0), (1, 0), 0, +1)
        assert str(link) == "(0, 0)->(1, 0)"

    def test_wraparound_detection(self):
        assert Link((3, 0), (0, 0), 0, +1).is_wraparound
        assert not Link((0, 0), (1, 0), 0, +1).is_wraparound
        assert Link((0, 0), (3, 0), 0, -1).is_wraparound


class TestBaseAccessors:
    def test_endpoints_default_to_all_nodes(self, mesh4):
        assert mesh4.endpoints == mesh4.nodes

    def test_has_link(self, mesh4):
        assert mesh4.has_link((0, 0), (1, 0))
        assert not mesh4.has_link((0, 0), (3, 3))

    def test_out_links_unknown_node(self, mesh4):
        with pytest.raises(TopologyError):
            mesh4.out_links((9, 9))

    def test_in_links_unknown_node(self, mesh4):
        with pytest.raises(TopologyError):
            mesh4.in_links((9, 9))

    def test_validate_node_returns_value(self, mesh4):
        assert mesh4.validate_node((1, 2)) == (1, 2)

    def test_step_helper(self, mesh4):
        assert mesh4._step((0, 0), 0, +1) == (1, 0)
        assert mesh4._step((0, 0), 0, -1) is None
