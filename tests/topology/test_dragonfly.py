"""Unit tests for the dragonfly topology and its routing."""

import pytest

from repro.cdg import verify_routing
from repro.errors import RoutingError, TopologyError
from repro.routing.dragonfly import (
    DragonflyRouting,
    DragonflySingleVC,
    G,
    L1,
    L2,
    dragonfly_rule,
)
from repro.topology.dragonfly import GLOBAL_DIM, LOCAL_DIM, Dragonfly


@pytest.fixture
def df() -> Dragonfly:
    return Dragonfly(groups=4)


class TestStructure:
    def test_node_census(self, df):
        assert len(df.nodes) == 4 * 3

    def test_local_links_complete_graph(self, df):
        local = [l for l in df.links if l.dim == LOCAL_DIM]
        assert len(local) == 4 * 3 * 2  # per group: a*(a-1) directed

    def test_every_router_has_one_global_link(self, df):
        for node in df.nodes:
            globals_out = [
                l for l in df.out_links(node) if l.dim == GLOBAL_DIM
            ]
            assert len(globals_out) == 1

    def test_global_links_cover_all_group_pairs(self, df):
        pairs = set()
        for a, b in df.global_peer.items():
            pairs.add(frozenset((a[0], b[0])))
        assert len(pairs) == 4 * 3 // 2

    def test_peer_is_symmetric(self, df):
        for a, b in df.global_peer.items():
            assert df.global_peer[b] == a
            assert a[0] != b[0]

    def test_minimum_groups(self):
        with pytest.raises(TopologyError):
            Dragonfly(groups=2)


class TestOracles:
    def test_distance_shapes(self, df):
        assert df.distance((0, 0), (0, 1)) == 1
        assert 1 <= df.distance((0, 0), (3, 0)) <= 3
        assert df.distance((1, 2), (1, 2)) == 0

    def test_diameter_is_three(self, df):
        assert max(df.distance(s, d) for s in df.nodes for d in df.nodes) == 3

    def test_gateway(self, df):
        gw = df.gateway(0, 3)
        assert gw[0] == 0
        assert df.global_peer[gw][0] == 3
        with pytest.raises(TopologyError):
            df.gateway(1, 1)


class TestRouting:
    def test_class_progression(self, df):
        r = DragonflyRouting(df)
        src, dst = (0, 0), None
        # find a pair requiring the full l-g-l route
        for cand in df.nodes:
            if cand[0] != 0 and df.distance(src, cand) == 3:
                dst = cand
                break
        assert dst is not None
        (n1, c1), = r.candidates(src, dst, None)
        assert c1 == L1
        (n2, c2), = r.candidates(n1, dst, c1)
        assert c2 == G
        (n3, c3), = r.candidates(n2, dst, c2)
        assert c3 == L2
        assert n3 == dst

    def test_same_group_uses_l1_from_injection(self, df):
        r = DragonflyRouting(df)
        (_n, ch), = r.candidates((0, 0), (0, 2), None)
        assert ch == L1

    def test_deterministic_and_connected(self, df):
        r = DragonflyRouting(df)
        for s in df.nodes:
            for d in df.nodes:
                if s != d:
                    assert len(r.candidates(s, d, None)) == 1

    def test_two_vc_acyclic_one_vc_cyclic(self, df):
        assert verify_routing(DragonflyRouting(df), df, dragonfly_rule).acyclic
        assert not verify_routing(DragonflySingleVC(df), df, dragonfly_rule).acyclic

    def test_requires_dragonfly(self, mesh4):
        with pytest.raises(RoutingError):
            DragonflyRouting(mesh4)


class TestValiant:
    def test_five_classes_acyclic(self, df):
        from repro.routing.dragonfly import DragonflyValiant

        r = DragonflyValiant(df)
        assert len(r.channel_classes) == 5
        assert verify_routing(r, df, dragonfly_rule).acyclic

    def test_prepare_stamps_intermediate_waypoint(self, df):
        import random

        from repro.routing.dragonfly import DragonflyValiant
        from repro.sim import Packet

        r = DragonflyValiant(df)
        p = Packet(pid=0, src=(0, 0), dst=(3, 1), length=1, created=0)
        r.prepare(p, random.Random(1))
        assert len(p.waypoints) == 1
        assert p.waypoints[0][0] not in (0, 3)

    def test_same_group_traffic_keeps_direct_route(self, df):
        import random

        from repro.routing.dragonfly import DragonflyValiant
        from repro.sim import Packet

        r = DragonflyValiant(df)
        p = Packet(pid=0, src=(1, 0), dst=(1, 2), length=1, created=0)
        r.prepare(p, random.Random(1))
        assert p.waypoints == ()

    def test_worm_traverses_five_legs(self, df):
        import random

        from repro.routing.dragonfly import DragonflyValiant
        from repro.sim import NetworkSimulator, Packet

        r = DragonflyValiant(df)
        sim = NetworkSimulator(df, r, dragonfly_rule, buffer_depth=4, watchdog=500)
        p = Packet(pid=0, src=(0, 0), dst=(3, 1), length=2, created=0)
        r.prepare(p, random.Random(2))
        sim.offer_packet(p)
        for _ in range(200):
            sim.step()
            if sim.is_idle():
                break
        assert p.delivered is not None
        assert not sim.stats.deadlocked
