"""Unit tests for the faulty-mesh irregular topology."""

import pytest

from repro.errors import TopologyError
from repro.topology import FaultyMesh, Mesh


class TestConstruction:
    def test_failed_links_removed_both_ways(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        assert not t.has_link((0, 0), (1, 0))
        assert not t.has_link((1, 0), (0, 0))
        assert t.has_link((0, 0), (0, 1))

    def test_link_count(self):
        base = Mesh(3, 3)
        t = FaultyMesh(base, failed=[((0, 0), (1, 0)), ((1, 1), (1, 2))])
        assert len(t.links) == len(base.links) - 4

    def test_unknown_link_rejected(self):
        with pytest.raises(TopologyError):
            FaultyMesh(Mesh(3, 3), failed=[((0, 0), (2, 2))])

    def test_disconnection_rejected(self):
        # isolate corner (0,0)
        with pytest.raises(TopologyError):
            FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0)), ((0, 0), (0, 1))])


class TestOracles:
    def test_distance_detours(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        assert t.distance((0, 0), (1, 0)) == 3  # around via (0,1)

    def test_minimal_directions_filter_failed(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        assert t.minimal_directions((0, 0), (2, 0)) == ()

    def test_progressive_directions_route_around(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        dirs = t.progressive_directions((0, 0), (2, 0))
        assert dirs == ((1, +1),)

    def test_failed_links_property(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((1, 0), (0, 0))])
        assert t.failed_links == (((0, 0), (1, 0)),)
