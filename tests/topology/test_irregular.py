"""Unit tests for the faulty-mesh irregular topology."""

import pytest

from repro.errors import TopologyError
from repro.topology import FaultyMesh, Mesh


class TestConstruction:
    def test_failed_links_removed_both_ways(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        assert not t.has_link((0, 0), (1, 0))
        assert not t.has_link((1, 0), (0, 0))
        assert t.has_link((0, 0), (0, 1))

    def test_link_count(self):
        base = Mesh(3, 3)
        t = FaultyMesh(base, failed=[((0, 0), (1, 0)), ((1, 1), (1, 2))])
        assert len(t.links) == len(base.links) - 4

    def test_unknown_link_rejected(self):
        with pytest.raises(TopologyError):
            FaultyMesh(Mesh(3, 3), failed=[((0, 0), (2, 2))])

    def test_disconnection_rejected(self):
        # isolate corner (0,0)
        with pytest.raises(TopologyError):
            FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0)), ((0, 0), (0, 1))])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            FaultyMesh(Mesh(3, 3), failed=[((1, 1), (1, 1))])

    def test_duplicate_and_reversed_entries_deduped(self):
        base = Mesh(3, 3)
        t = FaultyMesh(
            base,
            failed=[((0, 0), (1, 0)), ((1, 0), (0, 0)), ((0, 0), (1, 0))],
        )
        assert t.failed_links == (((0, 0), (1, 0)),)
        assert len(t.links) == len(base.links) - 2


class TestIncrementalDegradation:
    def test_without_link_stacks_failures(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        t2 = t.without_link((1, 1), (1, 2))
        assert set(t2.failed_links) == {((0, 0), (1, 0)), ((1, 1), (1, 2))}
        # the original is untouched
        assert t.failed_links == (((0, 0), (1, 0)),)
        assert t.has_link((1, 1), (1, 2))

    def test_without_link_disconnection_rejected(self):
        t = FaultyMesh(Mesh(2, 2), failed=[((0, 0), (1, 0))])
        with pytest.raises(TopologyError):
            t.without_link((0, 0), (0, 1))

    def test_without_router_removes_node_and_links(self):
        t = FaultyMesh(Mesh(3, 3), failed=[]).without_router((1, 1))
        assert (1, 1) not in t.node_set
        assert (1, 1) not in t.endpoints
        assert t.failed_nodes == ((1, 1),)
        assert not t.has_link((1, 1), (1, 0))
        assert all((1, 1) not in (l.src, l.dst) for l in t.links)

    def test_failed_nodes_at_construction(self):
        t = FaultyMesh(Mesh(3, 3), failed=[], failed_nodes=[(0, 1)])
        assert (0, 1) not in t.node_set
        assert len(t.nodes) == 8

    def test_router_failure_disconnection_rejected(self):
        # killing the centre of a plus-shaped remnant strands the arms
        t = FaultyMesh(
            Mesh(3, 3),
            failed=[((0, 0), (1, 0)), ((0, 0), (0, 1))],
            failed_nodes=[(0, 0)],
        )
        assert (0, 0) not in t.node_set
        with pytest.raises(TopologyError):
            FaultyMesh(Mesh(2, 2), failed=[], failed_nodes=[(0, 0), (1, 1)])


class TestOracles:
    def test_distance_detours(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        assert t.distance((0, 0), (1, 0)) == 3  # around via (0,1)

    def test_minimal_directions_filter_failed(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        assert t.minimal_directions((0, 0), (2, 0)) == ()

    def test_progressive_directions_route_around(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((0, 0), (1, 0))])
        dirs = t.progressive_directions((0, 0), (2, 0))
        assert dirs == ((1, +1),)

    def test_failed_links_property(self):
        t = FaultyMesh(Mesh(3, 3), failed=[((1, 0), (0, 0))])
        assert t.failed_links == (((0, 0), (1, 0)),)
