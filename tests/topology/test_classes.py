"""Unit tests for spatial class rules."""

from repro.topology import (
    Mesh,
    Torus,
    column_parity,
    no_classes,
    parity_rule,
    row_parity,
    rule_for_design,
)
from repro.topology.classes import NAMED_RULES, dateline


class TestNoClasses:
    def test_everything_untagged(self):
        m = Mesh(3, 3)
        assert all(no_classes(l) == "" for l in m.links)


class TestColumnParity:
    def test_y_links_tagged_by_column(self):
        m = Mesh(4, 4)
        assert column_parity(m.link((0, 0), (0, 1))) == "e"
        assert column_parity(m.link((1, 2), (1, 1))) == "o"
        assert column_parity(m.link((2, 0), (2, 1))) == "e"

    def test_x_links_untagged(self):
        m = Mesh(4, 4)
        assert column_parity(m.link((0, 0), (1, 0))) == ""


class TestRowParity:
    def test_x_links_tagged_by_row(self):
        m = Mesh(4, 4)
        assert row_parity(m.link((0, 0), (1, 0))) == "e"
        assert row_parity(m.link((2, 1), (1, 1))) == "o"

    def test_y_links_untagged(self):
        m = Mesh(4, 4)
        assert row_parity(m.link((0, 0), (0, 1))) == ""


class TestParityRule:
    def test_general_rule(self):
        m = Mesh(4, 4)
        rule = parity_rule(classed_dim=0, parity_of=0)
        assert rule(m.link((0, 0), (1, 0))) == "e"
        assert rule(m.link((1, 0), (2, 0))) == "o"


class TestDateline:
    def test_wrap_links_tagged_w(self):
        t = Torus(4, 4)
        assert dateline(t.link((3, 0), (0, 0))) == "w"
        assert dateline(t.link((0, 0), (1, 0))) == "r"


class TestRegistry:
    def test_named_rules(self):
        assert set(NAMED_RULES) == {
            "none",
            "column-parity",
            "row-parity",
            "dateline",
            "dragonfly",
            "updown-signs",
        }

    def test_rule_for_design(self):
        assert rule_for_design("odd-even") is column_parity
        assert rule_for_design("hamiltonian") is row_parity
        assert rule_for_design("xy") is no_classes
