"""Unit tests for the k-ary n-cube."""

import pytest

from repro.errors import TopologyError
from repro.topology import Torus


class TestConstruction:
    def test_counts(self):
        t = Torus(4, 4)
        assert len(t.nodes) == 16
        # every node has degree 4 out: 64 unidirectional links
        assert len(t.links) == 64

    def test_min_ring_size(self):
        with pytest.raises(TopologyError):
            Torus(2, 4)


class TestWraparound:
    def test_wrap_links_exist(self):
        t = Torus(4, 4)
        assert t.has_link((3, 0), (0, 0))
        assert t.has_link((0, 0), (3, 0))

    def test_wrap_label_keeps_sign(self):
        t = Torus(4, 4)
        wrap = t.link((3, 0), (0, 0))
        assert (wrap.dim, wrap.sign) == (0, +1)
        assert wrap.is_wraparound

    def test_regular_links_not_wrap(self):
        t = Torus(4, 4)
        assert not t.link((0, 0), (1, 0)).is_wraparound

    def test_wrap_count(self):
        t = Torus(4, 4)
        wraps = [l for l in t.links if l.is_wraparound]
        # 2 dims x 4 rings... 4 rows + 4 cols, 2 directions each
        assert len(wraps) == 16


class TestOracles:
    def test_shortest_way_around(self):
        t = Torus(4, 4)
        assert t.minimal_directions((0, 0), (3, 0)) == ((0, -1),)
        assert t.minimal_directions((0, 0), (1, 0)) == ((0, +1),)

    def test_tie_offers_both(self):
        t = Torus(4, 4)
        dirs = t.minimal_directions((0, 0), (2, 0))
        assert set(dirs) == {(0, +1), (0, -1)}

    def test_distance_wraps(self):
        t = Torus(5, 5)
        assert t.distance((0, 0), (4, 0)) == 1
        assert t.distance((0, 0), (2, 2)) == 4
        assert t.distance((1, 1), (1, 1)) == 0

    def test_ring_offset(self):
        t = Torus(5, 5)
        assert t.ring_offset(0, 4, 0) == -1
        assert t.ring_offset(0, 2, 0) == 2
