"""Unit tests for the n-dimensional mesh."""

import pytest

from repro.errors import TopologyError
from repro.topology import Mesh


class TestConstruction:
    def test_2d_counts(self):
        m = Mesh(4, 4)
        assert len(m.nodes) == 16
        assert len(m.links) == 2 * (2 * 4 * 3)  # 24 bidirectional edges

    def test_3d_counts(self):
        m = Mesh(3, 3, 3)
        assert len(m.nodes) == 27
        assert len(m.links) == 2 * 3 * (3 * 3 * 2)

    def test_rectangular(self):
        m = Mesh(2, 5)
        assert len(m.nodes) == 10

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            Mesh(1, 4)

    def test_no_dims_rejected(self):
        with pytest.raises(TopologyError):
            Mesh()


class TestLinks:
    def test_link_labels(self):
        m = Mesh(3, 3)
        link = m.link((0, 0), (1, 0))
        assert (link.dim, link.sign) == (0, +1)
        back = m.link((1, 0), (0, 0))
        assert (back.dim, back.sign) == (0, -1)

    def test_missing_link(self):
        m = Mesh(3, 3)
        with pytest.raises(TopologyError):
            m.link((0, 0), (2, 0))

    def test_no_wraparound(self):
        m = Mesh(3, 3)
        assert not m.has_link((2, 0), (0, 0))
        assert all(not l.is_wraparound for l in m.links)

    def test_neighbors_corner(self):
        m = Mesh(3, 3)
        assert set(m.neighbors((0, 0))) == {(1, 0), (0, 1)}

    def test_neighbors_center(self):
        m = Mesh(3, 3)
        assert len(m.neighbors((1, 1))) == 4

    def test_in_links_match_out_links(self):
        m = Mesh(3, 3)
        for node in m.nodes:
            assert {l.src for l in m.in_links(node)} == set(m.neighbors(node))


class TestRoutingOracles:
    def test_minimal_directions(self):
        m = Mesh(4, 4)
        assert set(m.minimal_directions((0, 0), (2, 3))) == {(0, +1), (1, +1)}
        assert m.minimal_directions((2, 2), (2, 2)) == ()
        assert m.minimal_directions((3, 1), (0, 1)) == ((0, -1),)

    def test_distance(self):
        m = Mesh(4, 4)
        assert m.distance((0, 0), (3, 3)) == 6
        assert m.distance((1, 2), (1, 2)) == 0

    def test_unknown_node(self):
        m = Mesh(3, 3)
        with pytest.raises(TopologyError):
            m.minimal_directions((9, 9), (0, 0))

    def test_minimal_path_count(self):
        m = Mesh(4, 4)
        assert m.minimal_path_count((0, 0), (2, 2)) == 6
        assert m.minimal_path_count((0, 0), (3, 0)) == 1
