"""Smoke tests: every example script runs to completion.

Each example asserts its own invariants internally; these tests keep the
examples from rotting as the library evolves.  The slow performance sweep
is exercised at reduced scale by V3's test instead.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "design_3d_fully_adaptive.py",
    "verify_classic_algorithms.py",
    "partial_3d_noc.py",
    "multicast_hamiltonian.py",
    "beyond_meshes.py",
    "debug_deadlock.py",
    "fault_tolerance.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert set(FAST_EXAMPLES) <= on_disk
    # the sweep example exists but is exercised via the V3 experiment
    assert "mesh_performance_sweep.py" in on_disk
