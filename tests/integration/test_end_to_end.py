"""End-to-end integration: budget -> Algorithm 1 -> turns -> CDG -> simulation.

The full pipeline a user of the library runs, across topologies.
"""

import pytest

from repro.cdg import verify_design, verify_routing
from repro.core import catalog, extract_turns, partition_vc_budget
from repro.core.torus_designs import dateline_design
from repro.routing import TurnTableRouting, UpDownRouting
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator
from repro.topology import (
    FaultyMesh,
    Mesh,
    PartiallyConnected3D,
    Torus,
    column_parity,
    row_parity,
)
from repro.topology.classes import dateline


def _simulate(topology, routing, rule, *, cycles=400, rate=0.08, seed=13, length=4):
    sim = NetworkSimulator(topology, routing, rule, buffer_depth=4, watchdog=1000)
    traffic = TrafficGenerator(
        topology, TrafficConfig(injection_rate=rate, packet_length=length, seed=seed)
    )
    stats = sim.run(cycles, traffic, drain=True)
    assert not stats.deadlocked, routing.name
    assert stats.packets_delivered == stats.packets_injected, routing.name
    return stats


class TestBudgetToSimulation:
    @pytest.mark.parametrize("budget", [[1, 1], [1, 2], [2, 2]])
    def test_2d_pipeline(self, budget):
        mesh = Mesh(4, 4)
        design = partition_vc_budget(budget)
        assert verify_design(design, mesh).acyclic
        routing = TurnTableRouting(mesh, design)
        assert routing.is_connected()
        assert verify_routing(routing, mesh).acyclic
        stats = _simulate(mesh, routing, lambda l: "")
        assert stats.packets_delivered > 0

    def test_3d_pipeline(self):
        mesh = Mesh(3, 3, 3)
        design = partition_vc_budget([1, 1, 2])
        assert verify_design(design, mesh).acyclic
        routing = TurnTableRouting(mesh, design)
        assert routing.is_connected()
        _simulate(mesh, routing, lambda l: "", cycles=250, rate=0.05)


class TestClassBasedDesigns:
    def test_odd_even_full_stack(self):
        mesh = Mesh(4, 4)
        design = catalog.odd_even_partitions()
        assert verify_design(design, mesh, column_parity).acyclic
        routing = TurnTableRouting(mesh, design, column_parity)
        _simulate(mesh, routing, column_parity)

    def test_hamiltonian_full_stack(self):
        mesh = Mesh(4, 4)
        design = catalog.hamiltonian_partitions()
        routing = TurnTableRouting(mesh, design, row_parity)
        assert routing.is_connected()
        _simulate(mesh, routing, row_parity)


class TestTorusStack:
    def test_dateline_design_simulates_clean(self):
        torus = Torus(4, 4)
        design = dateline_design(2)
        assert verify_design(design, torus, dateline).acyclic
        routing = TurnTableRouting(torus, design, dateline)
        assert routing.is_connected()
        _simulate(torus, routing, dateline, cycles=300, rate=0.05)


class TestIrregularStack:
    def test_updown_on_faulty_mesh(self):
        topo = FaultyMesh(Mesh(4, 4), failed=[((1, 1), (2, 1)), ((0, 2), (0, 3))])
        routing = UpDownRouting(topo)
        assert verify_routing(routing, topo, routing.class_rule).acyclic
        _simulate(topo, routing, routing.class_rule, cycles=300, rate=0.05)

    def test_ebda_design_with_progressive_directions(self):
        topo = FaultyMesh(Mesh(4, 4), failed=[((1, 1), (2, 1))])
        design = catalog.design("negative-first")
        routing = TurnTableRouting(topo, design, directions="progressive")
        # one failed link leaves most pairs routable; the progressive oracle
        # detours around the fault while respecting the turn set
        dead = routing.dead_pairs()
        assert len(dead) < 20


class TestPartial3DStack:
    def test_full_stack(self):
        topo = PartiallyConnected3D(4, 4, 2, elevators=[(1, 1), (3, 2)])
        design = catalog.partial3d_partitions()
        routing = TurnTableRouting(topo, design)
        assert routing.is_connected()
        _simulate(topo, routing, lambda l: "", cycles=300, rate=0.04)
