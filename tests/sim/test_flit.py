"""Unit tests for packets and flits."""

import pytest

from repro.sim import Packet


class TestPacket:
    def test_flit_roles(self):
        p = Packet(pid=1, src=(0, 0), dst=(1, 1), length=4, created=0)
        flits = list(p.flits())
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_packet_is_head_and_tail(self):
        p = Packet(pid=1, src=(0, 0), dst=(1, 1), length=1, created=0)
        (flit,) = p.flits()
        assert flit.is_head and flit.is_tail

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Packet(pid=1, src=(0, 0), dst=(1, 1), length=0, created=0)

    def test_latencies_none_until_delivered(self):
        p = Packet(pid=1, src=(0, 0), dst=(1, 1), length=1, created=5)
        assert p.total_latency is None
        assert p.network_latency is None
        p.entered = 7
        p.delivered = 12
        assert p.total_latency == 7
        assert p.network_latency == 5

    def test_flit_accessors(self):
        p = Packet(pid=9, src=(0, 0), dst=(2, 2), length=2, created=0)
        flit = next(p.flits())
        assert flit.pid == 9
        assert flit.dst == (2, 2)
