"""Unit tests for the experiment runner."""

import pytest

from repro.routing import MinimalFullyAdaptive, xy_routing
from repro.sim import (
    RunConfig,
    compare_table,
    run_point,
    saturation_rate,
    sweep_rates,
)
from repro.topology import Mesh
from repro.topology.classes import no_classes


class TestRunPoint:
    def test_returns_complete_result(self, mesh4):
        result = run_point(
            mesh4, xy_routing(mesh4), RunConfig(cycles=300, injection_rate=0.05)
        )
        assert result.routing_name == "XY-order"
        assert result.n_nodes == 16
        assert result.stats.packets_delivered > 0
        assert not result.deadlocked
        assert result.avg_latency > 0
        assert "rate=0.050" in result.row()

    def test_reproducible(self, mesh4):
        cfg = RunConfig(cycles=300, injection_rate=0.08, seed=21)
        a = run_point(mesh4, xy_routing(mesh4), cfg)
        b = run_point(mesh4, xy_routing(mesh4), cfg)
        assert a.stats.packets_injected == b.stats.packets_injected
        assert a.stats.latencies == b.stats.latencies


class TestSweep:
    def test_latency_monotone_with_rate(self, mesh4):
        results = sweep_rates(
            mesh4,
            lambda t: MinimalFullyAdaptive(t),
            rates=[0.02, 0.20],
            config=RunConfig(cycles=500, seed=2),
        )
        assert results[0].avg_latency < results[1].avg_latency

    def test_with_rate_builder(self):
        cfg = RunConfig(injection_rate=0.01)
        assert cfg.with_rate(0.5).injection_rate == 0.5
        assert cfg.injection_rate == 0.01


class TestSweepRatesPositionalRuleRemoved:
    def test_positional_rule_raises(self, mesh4):
        from repro.topology.classes import no_classes

        with pytest.raises(TypeError, match="rule positionally"):
            sweep_rates(
                mesh4, "xy", [0.02], RunConfig(cycles=200, seed=2), no_classes
            )

    def test_keyword_rule_works(self, mesh4):
        results = sweep_rates(
            mesh4, "xy", [0.02], RunConfig(cycles=200, seed=2), rule=no_classes
        )
        assert len(results) == 1

    def test_excess_positionals_rejected(self, mesh4):
        with pytest.raises(TypeError, match="positionally"):
            sweep_rates(
                mesh4, "xy", [0.02], RunConfig(cycles=200), no_classes, no_classes
            )


class TestSaturation:
    def test_detects_latency_blowup(self, mesh4):
        results = sweep_rates(
            mesh4,
            lambda t: xy_routing(t),
            rates=[0.02, 0.05, 0.30],
            config=RunConfig(cycles=500, seed=2),
        )
        sat = saturation_rate(results)
        assert sat == 0.30

    def test_none_when_unsaturated(self, mesh4):
        results = sweep_rates(
            mesh4,
            lambda t: xy_routing(t),
            rates=[0.01, 0.02],
            config=RunConfig(cycles=400, seed=2),
        )
        assert saturation_rate(results) is None

    def test_empty(self):
        assert saturation_rate([]) is None

    def test_baseline_is_minimum_rate_point(self, mesh4):
        # Regression: the zero-load baseline must come from the
        # minimum-rate point, so a sweep supplied in descending rate order
        # yields the same verdict as the ascending one.
        ascending = sweep_rates(
            mesh4, "xy", [0.02, 0.05, 0.30], config=RunConfig(cycles=500, seed=2)
        )
        descending = list(reversed(ascending))
        assert saturation_rate(ascending) == saturation_rate(descending) == 0.30


class TestCompareTable:
    def test_renders_rows(self, mesh4):
        results = sweep_rates(
            mesh4, lambda t: xy_routing(t), rates=[0.02],
            config=RunConfig(cycles=200, seed=2),
        )
        table = compare_table({"xy": results})
        assert "xy" in table and "0.020" in table

    def test_empty_table(self):
        assert compare_table({}) == "(no results)"
