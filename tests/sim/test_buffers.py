"""Unit tests for per-wire buffer state."""

import pytest

from repro.core import Channel
from repro.errors import SimulationError
from repro.sim import Packet, WireState
from repro.topology import Mesh, Wire


@pytest.fixture
def wire(mesh4):
    link = mesh4.link((0, 0), (1, 0))
    return Wire(link, Channel.parse("X+"))


def _flits(pid, length):
    return list(Packet(pid=pid, src=(0, 0), dst=(1, 0), length=length, created=0).flits())


class TestWireState:
    def test_capacity_enforced(self, wire):
        ws = WireState(wire, capacity=2)
        f = _flits(1, 3)
        ws.push(f[0])
        ws.push(f[1])
        assert ws.free_slots == 0
        with pytest.raises(SimulationError):
            ws.push(f[2])

    def test_fifo_order(self, wire):
        ws = WireState(wire, capacity=4)
        f = _flits(1, 3)
        for flit in f:
            ws.push(flit)
        assert ws.pop() is f[0]
        assert ws.front() is f[1]

    def test_pop_empty_rejected(self, wire):
        ws = WireState(wire, capacity=2)
        with pytest.raises(SimulationError):
            ws.pop()

    def test_front_of_empty_is_none(self, wire):
        assert WireState(wire, capacity=2).front() is None

    def test_zero_capacity_rejected(self, wire):
        with pytest.raises(SimulationError):
            WireState(wire, capacity=0)

    def test_packets_present_in_order(self, wire):
        ws = WireState(wire, capacity=4)
        ws.push(_flits(7, 1)[0])
        ws.push(_flits(9, 2)[0])
        assert ws.packets_present() == (7, 9)
