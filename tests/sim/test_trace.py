"""Unit tests for the simulation tracer."""

import json

import pytest

from repro.core import catalog
from repro.routing import TurnTableRouting, UnrestrictedAdaptive, xy_routing
from repro.routing.multicast import MulticastHamiltonianRouting, hamiltonian_label
from repro.sim import (
    FaultEvent,
    FaultSchedule,
    NetworkSimulator,
    Packet,
    RecoveryPolicy,
    TrafficConfig,
    TrafficGenerator,
)
from repro.sim.trace import Trace
from repro.topology import Mesh
from repro.topology.classes import row_parity


def _traced_run(mesh, length=3, dst=(2, 1)):
    trace = Trace()
    sim = NetworkSimulator(mesh, xy_routing(mesh), tracer=trace)
    p = Packet(pid=0, src=(0, 0), dst=dst, length=length, created=0)
    sim.offer_packet(p)
    for _ in range(60):
        sim.step()
        if sim.is_idle():
            break
    return trace, p


class TestEvents:
    def test_full_journey_recorded(self, mesh4):
        trace, p = _traced_run(mesh4)
        kinds = [e.kind for e in trace.for_packet(0)]
        assert kinds[0] == "offered"
        assert "allocated" in kinds
        assert kinds.count("ejected") == p.length
        assert kinds[-1] == "ejected"

    def test_hops_follow_xy(self, mesh4):
        trace, _p = _traced_run(mesh4)
        assert trace.hops_of(0) == [(1, 0), (2, 0), (2, 1)]

    def test_timeline_renders(self, mesh4):
        trace, _p = _traced_run(mesh4)
        text = trace.timeline(0)
        assert "offered at (0, 0)" in text
        assert "tail ejected at (2, 1)" in text

    def test_unknown_packet(self, mesh4):
        trace, _p = _traced_run(mesh4)
        assert "no events" in trace.timeline(99)

    def test_flit_move_count(self, mesh4):
        trace, p = _traced_run(mesh4)
        moved = trace.of_kind("moved")
        # every flit crosses 3 links
        assert len(moved) == p.length * 3

    def test_render_filters_and_limits(self, mesh4):
        trace, _p = _traced_run(mesh4)
        only_ejects = trace.render(kinds=["ejected"])
        assert "ejected" in only_ejects and "moves" not in only_ejects
        clipped = trace.render(limit=2)
        assert "more)" in clipped


class TestDeadlockEvent:
    def test_deadlock_recorded(self, mesh4):
        trace = Trace()
        sim = NetworkSimulator(
            mesh4, UnrestrictedAdaptive(mesh4), buffer_depth=2, watchdog=200,
            tracer=trace,
        )
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.35, packet_length=8, seed=3)
        )
        sim.run(2500, traffic)
        assert sim.stats.deadlocked
        assert trace.of_kind("deadlock")


class TestHookMethods:
    """Every simulator-facing hook records the right kind/pid/detail."""

    def test_fault_injected(self):
        t = Trace()
        t.fault_injected(12, "link (0, 0)-(1, 0) failed")
        (e,) = t.of_kind("fault")
        assert e.cycle == 12
        assert e.pid is None
        assert "link (0, 0)-(1, 0) failed" in e.detail

    def test_packet_aborted(self):
        t = Trace()
        t.packet_aborted(30, 7, "drop")
        (e,) = t.of_kind("abort")
        assert e.pid == 7
        assert "drop" in e.detail

    def test_packet_retransmitted(self):
        t = Trace()
        t.packet_retransmitted(31, 7, (0, 0))
        (e,) = t.of_kind("retransmit")
        assert e.pid == 7
        assert e.node == (0, 0)
        assert "retransmitted from (0, 0)" in e.detail

    def test_deadlock_recovered_names_victim_and_cycle(self):
        t = Trace()
        t.deadlock_recovered(99, 3, [1, 2, 3])
        (e,) = t.of_kind("recovered")
        assert e.pid == 3
        assert "[1, 2, 3]" in e.detail
        assert "#3" in e.detail

    def test_rerouted(self):
        t = Trace()
        t.rerouted(40, "recomputed tables on FaultyMesh")
        (e,) = t.of_kind("rerouted")
        assert e.pid is None
        assert "rerouted: recomputed tables on FaultyMesh" in e.detail


class TestFaultIntegration:
    def test_link_fault_records_fault_and_rerouted_events(self):
        mesh = Mesh(5, 5)
        design = catalog.design("negative-first")

        def factory(topo):
            return TurnTableRouting(
                topo, design, directions="progressive", fallback="escape"
            )

        trace = Trace()
        sim = NetworkSimulator(
            mesh,
            factory(mesh),
            faults=FaultSchedule([FaultEvent(40, "link", link=((2, 2), (3, 2)))]),
            recovery=RecoveryPolicy(),
            routing_factory=factory,
            tracer=trace,
        )
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=11)
        )
        stats = sim.run(200, traffic, drain=True)
        assert stats.faults_injected == 1
        (fault,) = trace.of_kind("fault")
        assert fault.cycle == 40
        assert "link" in fault.detail
        (reroute,) = trace.of_kind("rerouted")
        assert reroute.cycle == 40


class TestMulticastHops:
    def test_hops_of_covers_waypoints_in_label_order(self):
        mesh = Mesh(4, 4)
        routing = MulticastHamiltonianRouting(mesh, "up")
        trace = Trace()
        sim = NetworkSimulator(
            mesh, routing, row_parity, buffer_depth=4, watchdog=1000,
            tracer=trace,
        )
        worm = Packet(
            pid=0, src=(0, 0), dst=(0, 3), length=3, created=0,
            waypoints=((3, 0), (3, 1)),
        )
        sim.offer_packet(worm)
        for _ in range(500):
            sim.step()
            if sim.is_idle():
                break
        assert worm.delivered is not None
        hops = trace.hops_of(0)
        # the head walks the Hamiltonian snake: monotone labels,
        # through both waypoints, ending at the true destination
        labels = [hamiltonian_label(n, 4) for n in hops]
        assert labels == sorted(labels)
        assert (3, 0) in hops and (3, 1) in hops
        assert hops[-1] == (0, 3)
        copies = trace.of_kind("copy")
        assert {e.node for e in copies} == {(3, 0), (3, 1)}
        assert all(e.pid == 0 for e in copies)


class TestCapacity:
    def test_oldest_events_dropped(self, mesh4):
        trace = Trace(capacity=50)
        sim = NetworkSimulator(mesh4, xy_routing(mesh4), tracer=trace)
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.2, packet_length=4, seed=1)
        )
        sim.run(200, traffic, drain=True)
        assert len(trace) <= 50
        assert trace.truncated
        # evictions happen in batches of capacity // 10
        assert trace.dropped_events % 5 == 0
        assert trace.dropped_events > 0

    def test_complete_history_is_not_truncated(self, mesh4):
        trace, _p = _traced_run(mesh4)
        assert not trace.truncated
        assert trace.dropped_events == 0
        assert "truncated" not in trace.timeline(0)

    def test_tiny_capacity_evicts_one_at_a_time(self):
        t = Trace(capacity=3)
        for i in range(10):
            t.fault_injected(i, f"f{i}")
        # capacity // 10 == 0, but eviction must still make room
        assert len(t) == 3
        assert t.dropped_events == 7
        assert [e.cycle for e in t.events] == [7, 8, 9]

    def test_timeline_warns_when_truncated(self):
        t = Trace(capacity=4)
        for i in range(8):
            t.packet_aborted(i, 0, "r")
        text = t.timeline(0)
        assert "history truncated" in text
        assert str(t.dropped_events) in text


class TestJsonlExport:
    def test_to_jsonl_round_trips(self, mesh4, tmp_path):
        trace, _p = _traced_run(mesh4)
        path = tmp_path / "trace.jsonl"
        written = trace.to_jsonl(path)
        lines = path.read_text().splitlines()
        assert written == len(lines) == len(trace) + 1

        def _reject(name):
            raise ValueError(f"non-finite constant {name}")

        meta = json.loads(lines[0], parse_constant=_reject)
        assert meta["record"] == "trace-meta"
        assert meta["events"] == len(trace)
        assert meta["dropped_events"] == 0
        records = [json.loads(ln, parse_constant=_reject) for ln in lines[1:]]
        assert all(r["record"] == "trace" for r in records)
        first = records[0]
        assert first["kind"] == "offered"
        assert first["pid"] == 0
        assert first["node"] == [0, 0]
        kinds = {r["kind"] for r in records}
        assert {"offered", "allocated", "moved", "ejected"} <= kinds
        roles = {r["role"] for r in records if r["kind"] == "moved"}
        assert roles == {"head", "body", "tail"}
