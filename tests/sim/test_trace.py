"""Unit tests for the simulation tracer."""

import pytest

from repro.routing import UnrestrictedAdaptive, xy_routing
from repro.sim import NetworkSimulator, Packet, TrafficConfig, TrafficGenerator
from repro.sim.trace import Trace


def _traced_run(mesh, length=3, dst=(2, 1)):
    trace = Trace()
    sim = NetworkSimulator(mesh, xy_routing(mesh), tracer=trace)
    p = Packet(pid=0, src=(0, 0), dst=dst, length=length, created=0)
    sim.offer_packet(p)
    for _ in range(60):
        sim.step()
        if sim.is_idle():
            break
    return trace, p


class TestEvents:
    def test_full_journey_recorded(self, mesh4):
        trace, p = _traced_run(mesh4)
        kinds = [e.kind for e in trace.for_packet(0)]
        assert kinds[0] == "offered"
        assert "allocated" in kinds
        assert kinds.count("ejected") == p.length
        assert kinds[-1] == "ejected"

    def test_hops_follow_xy(self, mesh4):
        trace, _p = _traced_run(mesh4)
        assert trace.hops_of(0) == [(1, 0), (2, 0), (2, 1)]

    def test_timeline_renders(self, mesh4):
        trace, _p = _traced_run(mesh4)
        text = trace.timeline(0)
        assert "offered at (0, 0)" in text
        assert "tail ejected at (2, 1)" in text

    def test_unknown_packet(self, mesh4):
        trace, _p = _traced_run(mesh4)
        assert "no events" in trace.timeline(99)

    def test_flit_move_count(self, mesh4):
        trace, p = _traced_run(mesh4)
        moved = trace.of_kind("moved")
        # every flit crosses 3 links
        assert len(moved) == p.length * 3

    def test_render_filters_and_limits(self, mesh4):
        trace, _p = _traced_run(mesh4)
        only_ejects = trace.render(kinds=["ejected"])
        assert "ejected" in only_ejects and "moves" not in only_ejects
        clipped = trace.render(limit=2)
        assert "more)" in clipped


class TestDeadlockEvent:
    def test_deadlock_recorded(self, mesh4):
        trace = Trace()
        sim = NetworkSimulator(
            mesh4, UnrestrictedAdaptive(mesh4), buffer_depth=2, watchdog=200,
            tracer=trace,
        )
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.35, packet_length=8, seed=3)
        )
        sim.run(2500, traffic)
        assert sim.stats.deadlocked
        assert trace.of_kind("deadlock")


class TestCapacity:
    def test_oldest_events_dropped(self, mesh4):
        trace = Trace(capacity=50)
        sim = NetworkSimulator(mesh4, xy_routing(mesh4), tracer=trace)
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.2, packet_length=4, seed=1)
        )
        sim.run(200, traffic, drain=True)
        assert len(trace) <= 50
