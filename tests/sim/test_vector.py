"""Cycle-exactness tests: the vector backend against the reference.

Every test runs the identical configuration through both engines and
requires bit-identical ``SimStats.to_dict()`` — counters, the full
per-packet latency list in delivery order, and the deadlock declaration
cycle.
"""

import pytest

from repro.errors import ConfigError
from repro.routing import (
    MinimalFullyAdaptive,
    OddEven,
    TurnTableRouting,
    UnrestrictedAdaptive,
    xy_routing,
)
from repro.core import catalog
from repro.core.torus_designs import dateline_design
from repro.sim import (
    NetworkSimulator,
    RunConfig,
    TrafficConfig,
    TrafficGenerator,
    VectorSimulator,
    run_point,
)
from repro.topology import Mesh, Torus
from repro.topology.classes import NAMED_RULES, no_classes, rule_for_design


def both_backends(topology, routing_factory, rule=no_classes, *, cycles=300,
                  rate=0.08, seed=3, drain=True, **sim_kwargs):
    """Run the same point through both engines; return the two stat dicts."""
    results = []
    for cls in (NetworkSimulator, VectorSimulator):
        sim = cls(topology, routing_factory(topology), rule, seed=seed, **sim_kwargs)
        traffic = TrafficGenerator(
            topology,
            TrafficConfig(injection_rate=rate, packet_length=4, seed=seed),
        )
        results.append(sim.run(cycles, traffic, drain=drain).to_dict())
    return results


class TestParity:
    def test_xy_mesh(self, mesh4):
        ref, vec = both_backends(mesh4, xy_routing)
        assert ref == vec

    def test_west_first_atomic_buffers(self, mesh4):
        design = catalog.p3_west_first()

        def factory(t):
            return TurnTableRouting(t, design)

        ref, vec = both_backends(mesh4, factory, atomic_buffers=True, rate=0.12)
        assert ref == vec

    def test_fully_adaptive_8x8(self):
        mesh = Mesh(8, 8)
        ref, vec = both_backends(mesh, MinimalFullyAdaptive, cycles=400, rate=0.06)
        assert ref == vec
        assert vec["packets_delivered"] > 0

    def test_odd_even_uses_in_channel(self, mesh4):
        # OddEven reads the arrival channel: exercises per-site memos.
        ref, vec = both_backends(mesh4, OddEven, rate=0.1)
        assert ref == vec

    def test_dateline_torus(self):
        torus = Torus(4, 4)
        design = dateline_design(2)
        rule = NAMED_RULES["dateline"]

        def factory(t):
            return TurnTableRouting(t, design, rule)

        ref, vec = both_backends(torus, factory, rule, rate=0.08)
        assert ref == vec

    def test_pipeline_delay(self, mesh4):
        ref, vec = both_backends(mesh4, xy_routing, pipeline_delay=2, rate=0.06)
        assert ref == vec

    def test_deadlock_declared_same_cycle(self, mesh4):
        # The negative control deadlocks under load; the declaration
        # cycle (and everything else) must match exactly.
        ref, vec = both_backends(
            mesh4, UnrestrictedAdaptive, cycles=800, rate=0.3,
            watchdog=200, buffer_depth=2, drain=False,
        )
        assert ref == vec
        assert ref["deadlocked"]
        assert ref["deadlock_declared_at"] is not None


class TestRunPointBackend:
    def test_backend_field_selects_vector(self, mesh4):
        from dataclasses import replace

        cfg = RunConfig(cycles=300, injection_rate=0.08, seed=5)
        ref = run_point(mesh4, "xy", cfg)
        vec = run_point(mesh4, "xy", replace(cfg, backend="vector"))
        assert ref.stats.to_dict() == vec.stats.to_dict()

    def test_unknown_backend_rejected(self, mesh4):
        with pytest.raises(ConfigError, match="unknown backend"):
            run_point(mesh4, "xy", RunConfig(cycles=100, backend="warp"))


class TestUnsupportedFeatures:
    def test_metrics_refused_up_front(self, mesh4):
        with pytest.raises(ConfigError, match="metrics"):
            run_point(
                mesh4, "xy", RunConfig(cycles=100, metrics=True, backend="vector")
            )

    def test_faults_refused_up_front(self, mesh4):
        from repro.sim import FaultEvent, FaultSchedule

        faults = FaultSchedule([FaultEvent(10, "drop")], seed=0)
        with pytest.raises(ConfigError, match="fault"):
            run_point(
                mesh4, "xy", RunConfig(cycles=100, faults=faults, backend="vector")
            )

    def test_non_first_selection_refused(self, mesh4):
        with pytest.raises(ConfigError, match="selection"):
            run_point(
                mesh4, "xy",
                RunConfig(cycles=100, selection="random", backend="vector"),
            )

    def test_constructor_refuses_tracer(self, mesh4):
        from repro.sim import Trace

        with pytest.raises(ConfigError):
            VectorSimulator(mesh4, xy_routing(mesh4), tracer=Trace())
