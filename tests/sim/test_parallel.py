"""SweepEngine: parallel fan-out, determinism, and the result cache."""

import json

import pytest

from repro.sim import (
    ResultCache,
    RunConfig,
    SweepEngine,
    cache_key,
    default_cache_dir,
    sweep_rates,
)
from repro.sim.parallel import topology_token
from repro.topology import Mesh
from repro.topology.classes import no_classes

RATES = [0.02, 0.06]


def _config(**overrides) -> RunConfig:
    base = dict(cycles=250, packet_length=4, buffer_depth=4, seed=7)
    base.update(overrides)
    return RunConfig(**base)


class TestDeterminism:
    def test_jobs4_matches_jobs1_bitwise(self, mesh4):
        serial = SweepEngine(jobs=1).sweep(mesh4, "west-first", RATES, _config())
        fanned = SweepEngine(jobs=4).sweep(mesh4, "west-first", RATES, _config())
        assert [r.stats for r in serial.results] == [r.stats for r in fanned.results]
        assert [r.routing_name for r in serial.results] == [
            r.routing_name for r in fanned.results
        ]

    def test_parallel_preserves_point_order(self, mesh4):
        report = SweepEngine(jobs=4).sweep(mesh4, "xy", RATES, _config())
        assert [r.config.injection_rate for r in report.results] == RATES

    def test_unpicklable_pattern_falls_back_in_process(self, mesh4):
        cfg = _config(pattern=lambda src, nodes, rng: nodes[0] if src != nodes[0] else nodes[-1])
        report = SweepEngine(jobs=4).sweep(mesh4, "xy", RATES, cfg)
        assert report.jobs == 1  # degraded to the serial path
        assert len(report.results) == len(RATES)
        assert all(r.stats.packets_delivered > 0 for r in report.results)

    def test_sweep_rates_engine_path_matches_serial(self, mesh4):
        direct = sweep_rates(mesh4, "xy", RATES, _config())
        engined = sweep_rates(mesh4, "xy", RATES, _config(), jobs=2)
        assert [r.stats for r in direct] == [r.stats for r in engined]


class TestResultCache:
    def test_cold_then_warm(self, mesh4, tmp_path):
        engine = SweepEngine(cache=tmp_path / "cache")
        cold = engine.sweep(mesh4, "west-first", RATES, _config())
        assert cold.cache_hits == 0
        assert cold.cache_misses == len(RATES)
        assert cold.cycles_executed > 0

        warm = engine.sweep(mesh4, "west-first", RATES, _config())
        assert warm.cache_hits == len(RATES)
        assert warm.cache_misses == 0
        assert warm.cycles_executed == 0  # zero simulation on a warm rerun
        assert [r.stats for r in warm.results] == [r.stats for r in cold.results]

    def test_cache_shared_across_engines(self, mesh4, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(cache=cache).sweep(mesh4, "xy", RATES, _config())
        warm = SweepEngine(jobs=4, cache=cache).sweep(mesh4, "xy", RATES, _config())
        assert warm.cache_hits == len(RATES)

    def test_differing_config_misses(self, mesh4, tmp_path):
        engine = SweepEngine(cache=tmp_path / "cache")
        engine.sweep(mesh4, "xy", RATES, _config(seed=7))
        other = engine.sweep(mesh4, "xy", RATES, _config(seed=8))
        assert other.cache_hits == 0

    def test_differing_topology_misses(self, tmp_path):
        engine = SweepEngine(cache=tmp_path / "cache")
        engine.sweep(Mesh(4, 4), "xy", RATES, _config())
        other = engine.sweep(Mesh(4, 5), "xy", RATES, _config())
        assert other.cache_hits == 0

    def test_unpicklable_points_never_cached(self, mesh4, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cfg = _config(pattern=lambda src, nodes, rng: nodes[0] if src != nodes[0] else nodes[-1])
        report = SweepEngine(cache=cache).sweep(mesh4, "xy", RATES, cfg)
        assert report.cache_misses == len(RATES)
        assert len(cache) == 0  # nothing written: lambda has no stable token

    def test_atomic_entries_roundtrip(self, mesh4, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(cache=cache)
        outcome = engine.run_point(mesh4, "xy", _config())
        assert outcome.key in cache
        again = engine.run_point(mesh4, "xy", _config())
        assert again.cached
        assert again.result.stats == outcome.result.stats

    def test_corrupt_entry_ignored(self, mesh4, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(cache=cache)
        outcome = engine.run_point(mesh4, "xy", _config())
        (tmp_path / "cache" / f"{outcome.key}.json").write_text("{not json")
        again = engine.run_point(mesh4, "xy", _config())
        assert not again.cached  # re-simulated, not crashed

    def test_clear(self, mesh4, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(cache=cache).sweep(mesh4, "xy", RATES, _config())
        assert len(cache) == len(RATES)
        assert cache.clear() == len(RATES)
        assert len(cache) == 0

    def test_default_dir_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_EBDA_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"


class TestCacheKey:
    def test_stable_for_equal_inputs(self, mesh4):
        a = cache_key(mesh4, "xy", _config())
        b = cache_key(Mesh(4, 4), "xy", _config())
        assert a is not None and a == b

    def test_sensitive_to_every_input(self, mesh4):
        base = cache_key(mesh4, "xy", _config())
        assert cache_key(mesh4, "yx", _config()) != base
        assert cache_key(mesh4, "xy", _config(cycles=251)) != base
        assert cache_key(Mesh(5, 4), "xy", _config()) != base

    def test_none_for_unresolvable_callables(self, mesh4):
        assert cache_key(mesh4, lambda t: None, _config()) is None
        assert cache_key(mesh4, "xy", _config(pattern=lambda n, rng: 0)) is None

    def test_rule_participates(self, mesh4):
        from repro.topology.classes import NAMED_RULES

        other = next(r for n, r in sorted(NAMED_RULES.items()) if r is not no_classes)
        assert cache_key(mesh4, "xy", _config(), other) != cache_key(
            mesh4, "xy", _config(), no_classes
        )

    def test_topology_token_reflects_links(self, mesh4):
        from repro.topology import FaultyMesh

        degraded = FaultyMesh(Mesh(4, 4), failed=[((0, 0), (1, 0))])
        assert topology_token(degraded) != topology_token(mesh4)


class TestSweepReport:
    def test_to_dict_shape(self, mesh4, tmp_path):
        engine = SweepEngine(cache=tmp_path / "cache")
        report = engine.sweep(mesh4, "west-first", RATES, _config())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["n_points"] == len(RATES)
        assert payload["cache_misses"] == len(RATES)
        assert payload["cycles_executed"] == report.cycles_executed
        assert len(payload["points"]) == len(RATES)
        point = payload["points"][0]
        assert point["routing"] == "west-first"
        assert point["injection_rate"] == RATES[0]
        assert point["cached"] is False
        assert point["wall_time"] > 0

    def test_summary_mentions_cache(self, mesh4, tmp_path):
        engine = SweepEngine(cache=tmp_path / "cache")
        engine.sweep(mesh4, "xy", RATES, _config())
        warm = engine.sweep(mesh4, "xy", RATES, _config())
        assert f"cache {len(RATES)} hit/0 miss" in warm.summary()
        assert "0 sim cycles" in warm.summary()


class TestEngineValidation:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepEngine(jobs=0)

    def test_rejects_unknown_routing_early(self, mesh4):
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            SweepEngine().sweep(mesh4, object(), RATES, _config())


class TestTelemetry:
    def test_stage_times_in_report_and_dict(self, mesh4):
        report = SweepEngine(jobs=1).sweep(mesh4, "xy", RATES, _config())
        assert set(report.stage_times) == {
            "cache_read", "spawn", "simulate", "simulate:reference",
            "cache_write",
        }
        assert all(v >= 0.0 for v in report.stage_times.values())
        assert report.stage_times["simulate"] > 0.0
        assert report.stage_times["simulate:reference"] > 0.0
        payload = report.to_dict()
        assert payload["stage_times"] == report.stage_times

    def test_metered_points_are_uncacheable(self, mesh4, tmp_path):
        cfg = _config(metrics=True)
        assert cache_key(mesh4, "xy", cfg) is None
        engine = SweepEngine(jobs=1, cache=tmp_path / "cache")
        first = engine.sweep(mesh4, "xy", RATES, cfg)
        assert first.cache_hits == 0
        second = engine.sweep(mesh4, "xy", RATES, cfg)
        assert second.cache_hits == 0  # metered runs never hit the cache

    def test_disabled_metrics_hashes_like_absent(self, mesh4):
        # metrics=False/None are cacheable and share a key
        assert cache_key(mesh4, "xy", _config(metrics=False)) == cache_key(
            mesh4, "xy", _config()
        )

    def test_per_point_metrics_summary_in_to_dict(self, mesh4):
        report = SweepEngine(jobs=1).sweep(
            mesh4, "xy", RATES, _config(metrics=True, sample_every=50)
        )
        payload = report.to_dict()
        assert len(payload["points"]) == len(RATES)
        for entry in payload["points"]:
            summary = entry["metrics"]
            assert summary["samples"] > 0
            assert summary["sample_every"] == 50
            assert summary["mean_link_utilization"] is not None
        json.dumps(payload, allow_nan=False)  # strict JSON end to end

    def test_metered_points_survive_process_pool(self, mesh4):
        report = SweepEngine(jobs=2).sweep(
            mesh4, "xy", RATES, _config(metrics=True, sample_every=50)
        )
        for outcome in report.results:
            collector = outcome.metrics
            assert collector is not None
            assert collector.samples_taken > 0
            assert collector._sim is None  # finalized, hence picklable
