"""Unit tests for traffic patterns."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim import (
    NAMED_PATTERNS,
    bit_complement,
    bit_reverse,
    hotspot,
    neighbor,
    rotate90,
    shuffle,
    tornado,
    transpose,
    uniform,
)
from repro.topology import Mesh


@pytest.fixture
def nodes():
    return Mesh(4, 4).nodes


RNG = random.Random(1)


class TestDeterministicPatterns:
    def test_transpose(self, nodes):
        assert transpose((1, 3), nodes, RNG) == (3, 1)
        assert transpose((2, 2), nodes, RNG) == (2, 2)

    def test_bit_complement(self, nodes):
        assert bit_complement((0, 0), nodes, RNG) == (3, 3)
        assert bit_complement((1, 2), nodes, RNG) == (2, 1)

    def test_tornado(self, nodes):
        assert tornado((0, 0), nodes, RNG) == (1, 1)

    def test_neighbor_wraps(self, nodes):
        assert neighbor((3, 2), nodes, RNG) == (0, 2)

    def test_rotate90(self, nodes):
        assert rotate90((0, 0), nodes, RNG) == (0, 3)
        assert rotate90((3, 0), nodes, RNG) == (0, 0)

    def test_rotate90_needs_square(self):
        rect = Mesh(4, 2).nodes
        with pytest.raises(SimulationError):
            rotate90((0, 0), rect, RNG)

    def test_permutations_are_bijections(self, nodes):
        for name in ("transpose", "bit-complement", "bit-reverse", "shuffle",
                     "tornado", "neighbor", "rotate90"):
            pattern = NAMED_PATTERNS[name]
            images = {pattern(n, nodes, RNG) for n in nodes}
            assert len(images) == len(nodes), name

    def test_bit_reverse_requires_pow2(self):
        odd = Mesh(3, 3).nodes
        with pytest.raises(SimulationError):
            bit_reverse((0, 0), odd, RNG)

    def test_shuffle_requires_pow2(self):
        odd = Mesh(3, 3).nodes
        with pytest.raises(SimulationError):
            shuffle((0, 0), odd, RNG)


class TestRandomPatterns:
    def test_uniform_stays_in_network(self, nodes):
        rng = random.Random(7)
        for _ in range(100):
            assert uniform((0, 0), nodes, rng) in set(nodes)

    def test_hotspot_bias(self, nodes):
        rng = random.Random(7)
        pattern = hotspot(targets=[(0, 0)], fraction=0.5)
        hits = sum(
            1 for _ in range(2000) if pattern((3, 3), nodes, rng) == (0, 0)
        )
        # 50% directed + ~1/16 of the uniform remainder
        assert 900 < hits < 1300

    def test_hotspot_fraction_validated(self):
        with pytest.raises(SimulationError):
            hotspot(targets=[(0, 0)], fraction=1.5)
