"""Unit tests for the router pipeline-delay model."""

import pytest

from repro.errors import SimulationError
from repro.routing import MinimalFullyAdaptive, xy_routing
from repro.sim import NetworkSimulator, Packet, TrafficConfig, TrafficGenerator
from repro.topology import Mesh


def _latency(mesh, delay, src=(0, 0), dst=(3, 0), length=4):
    sim = NetworkSimulator(mesh, xy_routing(mesh), pipeline_delay=delay)
    p = Packet(pid=0, src=src, dst=dst, length=length, created=0)
    sim.offer_packet(p)
    for _ in range(500):
        sim.step()
        if p.delivered is not None:
            return p.total_latency
    raise AssertionError("packet never delivered")


class TestPipelineDelay:
    def test_negative_rejected(self, mesh4):
        with pytest.raises(SimulationError):
            NetworkSimulator(mesh4, xy_routing(mesh4), pipeline_delay=-1)

    def test_zero_delay_matches_default(self, mesh4):
        assert _latency(mesh4, 0) == _latency(mesh4, 0)

    def test_latency_grows_per_hop(self, mesh4):
        base = _latency(mesh4, 0)
        deeper = _latency(mesh4, 2)
        hops = 3
        # every hop pays the extra pipeline cycles
        assert deeper >= base + 2 * hops

    def test_latency_monotone_in_delay(self, mesh4):
        lats = [_latency(mesh4, d) for d in (0, 1, 2, 4)]
        assert lats == sorted(lats)
        assert len(set(lats)) == len(lats)

    def test_conservation_with_pipeline(self, mesh4):
        sim = NetworkSimulator(
            mesh4, MinimalFullyAdaptive(mesh4), pipeline_delay=2, watchdog=1500
        )
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.05, packet_length=4, seed=6)
        )
        stats = sim.run(400, traffic, drain=True)
        assert not stats.deadlocked
        assert stats.delivery_ratio == 1.0
