"""Unit tests for the switching modes (Assumption 1: WH / VCT / SAF)."""

import pytest

from repro.errors import SimulationError
from repro.routing import MinimalFullyAdaptive, xy_routing
from repro.sim import NetworkSimulator, Packet, TrafficConfig, TrafficGenerator
from repro.topology import Mesh


class TestModeValidation:
    def test_unknown_mode_rejected(self, mesh4):
        with pytest.raises(SimulationError):
            NetworkSimulator(mesh4, xy_routing(mesh4), switching="psychic")

    def test_vct_needs_whole_packet_buffers(self, mesh4):
        sim = NetworkSimulator(
            mesh4, xy_routing(mesh4), buffer_depth=2, switching="vct"
        )
        sim.offer_packet(Packet(pid=0, src=(0, 0), dst=(2, 0), length=4, created=0))
        with pytest.raises(SimulationError):
            for _ in range(10):
                sim.step()


class TestVCT:
    def test_delivers_everything(self, mesh4):
        sim = NetworkSimulator(
            mesh4, MinimalFullyAdaptive(mesh4), buffer_depth=4, switching="vct"
        )
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.10, packet_length=4, seed=8)
        )
        stats = sim.run(400, traffic, drain=True)
        assert not stats.deadlocked
        assert stats.delivery_ratio == 1.0

    def test_head_waits_for_whole_packet_space(self, mesh4):
        # With depth == length, VCT allocation happens only when the
        # downstream buffer is completely empty.
        sim = NetworkSimulator(
            mesh4, xy_routing(mesh4), buffer_depth=4, switching="vct"
        )
        sim.offer_packet(Packet(pid=0, src=(0, 0), dst=(3, 0), length=4, created=0))
        for _ in range(100):
            sim.step()
            for ws in sim.state.values():
                if ws.owner is not None and ws.occupancy == 0:
                    # freshly allocated: whole-packet space was available
                    assert ws.free_slots >= 4
        assert sim.is_idle()


class TestSAF:
    def test_delivers_everything(self, mesh4):
        sim = NetworkSimulator(
            mesh4, MinimalFullyAdaptive(mesh4), buffer_depth=4, switching="saf"
        )
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.08, packet_length=4, seed=8)
        )
        stats = sim.run(400, traffic, drain=True)
        assert not stats.deadlocked
        assert stats.delivery_ratio == 1.0

    def test_latency_reflects_per_hop_serialisation(self, mesh4):
        def latency(mode):
            sim = NetworkSimulator(
                mesh4, xy_routing(mesh4), buffer_depth=4, switching=mode
            )
            p = Packet(pid=0, src=(0, 0), dst=(3, 3), length=4, created=0)
            sim.offer_packet(p)
            for _ in range(200):
                sim.step()
                if p.delivered is not None:
                    break
            assert p.delivered is not None
            return p.total_latency

        wh = latency("wormhole")
        saf = latency("saf")
        # SAF stores all L flits at each of the 6 intermediate hops.
        assert saf >= wh + 3 * 5  # (length-1) extra per intermediate router
        assert wh < saf

    def test_forwarding_only_starts_once_fully_stored(self, mesh4):
        # The packet naturally spans two wires *while* crossing a link; the
        # SAF invariant is that the forwarding decision (an allocated
        # output for a head at a buffer front) is only ever made when the
        # whole packet sits in that buffer.
        sim = NetworkSimulator(
            mesh4, xy_routing(mesh4), buffer_depth=6, switching="saf"
        )
        sim.offer_packet(Packet(pid=0, src=(0, 0), dst=(3, 0), length=3, created=0))
        for _ in range(100):
            sim.step()
            for (wire, pid), _out in sim.route_assignment.items():
                ws = sim.state[wire]
                flit = ws.front()
                if flit is not None and flit.is_head and flit.pid == pid:
                    stored = sum(1 for f in ws.buffer if f.pid == pid)
                    assert stored == flit.packet.length, (
                        f"SAF forwarded a head with only {stored} flits stored"
                    )
        assert sim.is_idle()
