"""Named-spec registries: resolution, pickling and cache tokens."""

import pickle

import pytest

from repro.core import catalog
from repro.errors import EbdaError, RoutingError
from repro.routing import WestFirst, xy_routing
from repro.routing.base import RoutingFunction
from repro.routing.selection import NAMED_POLICIES
from repro.sim import (
    NAMED_PATTERNS,
    NAMED_ROUTING_FACTORIES,
    EbdaDesignFactory,
    RunConfig,
    register_routing_factory,
    resolve_pattern,
    resolve_routing_factory,
    resolve_selection,
    run_point,
)
from repro.sim.patterns import uniform
from repro.sim.specs import spec_token
from repro.sim.stats import SimStats


class TestResolvePattern:
    @pytest.mark.parametrize("name", sorted(NAMED_PATTERNS))
    def test_every_named_pattern_resolves(self, name):
        assert resolve_pattern(name) is NAMED_PATTERNS[name]

    def test_callable_passthrough(self):
        assert resolve_pattern(uniform) is uniform

    def test_unknown_name(self):
        with pytest.raises(EbdaError, match="unknown pattern"):
            resolve_pattern("nonesuch")


class TestResolveSelection:
    @pytest.mark.parametrize("name", sorted(NAMED_POLICIES))
    def test_every_named_policy_resolves(self, name):
        assert resolve_selection(name) is NAMED_POLICIES[name]

    def test_unknown_name(self):
        with pytest.raises(EbdaError, match="unknown selection"):
            resolve_selection("nonesuch")


class TestResolveRoutingFactory:
    @pytest.mark.parametrize("name", sorted(NAMED_ROUTING_FACTORIES))
    def test_native_names_build_routing(self, name, mesh4):
        routing = resolve_routing_factory(name)(mesh4)
        assert isinstance(routing, RoutingFunction)

    @pytest.mark.parametrize("name", sorted(catalog.NAMED_DESIGNS))
    def test_catalog_names_build_ebda_factories(self, name):
        factory = resolve_routing_factory(name)
        if name in NAMED_ROUTING_FACTORIES:
            # Native implementations take precedence over same-named designs;
            # the explicit "ebda:" prefix still reaches the catalog.
            assert factory is NAMED_ROUTING_FACTORIES[name]
            factory = resolve_routing_factory(f"ebda:{name}")
        assert isinstance(factory, EbdaDesignFactory)
        assert factory.spec == name

    def test_ebda_prefix(self, mesh4):
        routing = resolve_routing_factory("ebda:north-last")(mesh4)
        assert routing.name == "ebda:north-last"

    def test_arrow_notation(self, mesh4):
        factory = resolve_routing_factory("X- -> X+ Y+ Y-")
        routing = factory(mesh4)
        assert isinstance(routing, RoutingFunction)

    def test_callable_passthrough(self):
        factory = lambda t: xy_routing(t)  # noqa: E731
        assert resolve_routing_factory(factory) is factory

    def test_unknown_spec(self):
        with pytest.raises(RoutingError, match="unknown routing spec"):
            resolve_routing_factory("definitely-not-a-routing")

    def test_register_custom_factory(self, mesh4):
        def _custom(topology):
            return WestFirst(topology)

        register_routing_factory("custom-wf-for-test", _custom)
        try:
            routing = resolve_routing_factory("custom-wf-for-test")(mesh4)
            assert isinstance(routing, WestFirst)
        finally:
            del NAMED_ROUTING_FACTORIES["custom-wf-for-test"]


class TestSpecToken:
    def test_string_spec(self):
        assert spec_token("pattern", "uniform") == "name:uniform"

    def test_none(self):
        assert spec_token("routing", None) == "none"

    @pytest.mark.parametrize("name", sorted(NAMED_PATTERNS))
    def test_registered_pattern_values_tokenise(self, name):
        assert spec_token("pattern", NAMED_PATTERNS[name]) == f"name:{name}"

    @pytest.mark.parametrize("name", sorted(NAMED_POLICIES))
    def test_registered_policy_values_tokenise(self, name):
        assert spec_token("selection", NAMED_POLICIES[name]) == f"name:{name}"

    def test_ebda_factory_tokenises_by_repr(self):
        factory = EbdaDesignFactory("north-last", directions="progressive")
        token = spec_token("routing", factory)
        assert token is not None and "north-last" in token and "progressive" in token

    def test_module_level_function_tokenises(self):
        assert spec_token("pattern", uniform) == "name:uniform"
        # A module-level function outside every registry still tokenises
        # because it is importable by name.
        from repro.sim.specs import _xy

        assert spec_token("other", _xy) == "func:repro.sim.specs._xy"

    def test_lambda_has_no_token(self):
        assert spec_token("pattern", lambda n, rng: 0) is None

    def test_closure_has_no_token(self):
        def make():
            bound = 3

            def pattern(n, rng):
                return bound

            return pattern

        assert spec_token("pattern", make()) is None


class TestPicklability:
    @pytest.mark.parametrize("name", sorted(NAMED_PATTERNS))
    def test_config_with_every_named_pattern(self, name):
        cfg = RunConfig(pattern=name)
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    @pytest.mark.parametrize("name", sorted(NAMED_POLICIES))
    def test_config_with_every_named_selection(self, name):
        cfg = RunConfig(selection=name)
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    @pytest.mark.parametrize("name", sorted(NAMED_ROUTING_FACTORIES))
    def test_every_named_routing_factory(self, name):
        factory = NAMED_ROUTING_FACTORIES[name]
        assert pickle.loads(pickle.dumps(factory)) is factory

    def test_ebda_design_factory_roundtrip(self, mesh4):
        factory = EbdaDesignFactory("negative-first", fallback="escape")
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert clone(mesh4).name == "ebda:negative-first"

    def test_run_result_roundtrip(self, mesh4):
        result = run_point(mesh4, "xy", RunConfig(cycles=200, seed=5))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.stats == result.stats
        assert clone.config == result.config
        assert clone.routing_name == result.routing_name

    def test_sim_stats_roundtrip(self, mesh4):
        stats = run_point(mesh4, "xy", RunConfig(cycles=200, seed=5)).stats
        assert pickle.loads(pickle.dumps(stats)) == stats


class TestSimStatsDictRoundtrip:
    def test_to_from_dict_identity(self, mesh4):
        stats = run_point(mesh4, "west-first", RunConfig(cycles=250, seed=9)).stats
        assert SimStats.from_dict(stats.to_dict()) == stats

    def test_json_safe(self, mesh4):
        import json

        stats = run_point(mesh4, "xy", RunConfig(cycles=200)).stats
        rebuilt = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats
