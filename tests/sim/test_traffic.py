"""Unit tests for traffic generation."""

import pytest

from repro.errors import SimulationError
from repro.sim import ScriptedTraffic, TrafficConfig, TrafficGenerator, transpose
from repro.topology import Mesh


class TestTrafficConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            TrafficConfig(injection_rate=1.5)
        with pytest.raises(SimulationError):
            TrafficConfig(packet_length=0)


class TestTrafficGenerator:
    def test_reproducible_given_seed(self, mesh4):
        cfg = TrafficConfig(injection_rate=0.3, seed=42)
        a = TrafficGenerator(mesh4, cfg)
        b = TrafficGenerator(mesh4, cfg)
        pa = [(p.src, p.dst) for c in range(20) for p in a.packets_for_cycle(c)]
        pb = [(p.src, p.dst) for c in range(20) for p in b.packets_for_cycle(c)]
        assert pa == pb
        assert pa  # something was generated

    def test_rate_roughly_respected(self, mesh4):
        gen = TrafficGenerator(mesh4, TrafficConfig(injection_rate=0.25, seed=1))
        count = sum(len(gen.packets_for_cycle(c)) for c in range(500))
        expect = 0.25 * 16 * 500
        assert 0.85 * expect < count < 1.15 * expect

    def test_unique_monotone_pids(self, mesh4):
        gen = TrafficGenerator(mesh4, TrafficConfig(injection_rate=0.5, seed=1))
        pids = [p.pid for c in range(20) for p in gen.packets_for_cycle(c)]
        assert pids == sorted(pids)
        assert len(set(pids)) == len(pids)

    def test_self_addressed_skipped(self, mesh4):
        gen = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=1.0, pattern=transpose, seed=1)
        )
        packets = gen.packets_for_cycle(0)
        assert all(p.src != p.dst for p in packets)
        # diagonal nodes map to themselves under transpose -> 12 packets
        assert len(packets) == 12

    def test_zero_rate_generates_nothing(self, mesh4):
        gen = TrafficGenerator(mesh4, TrafficConfig(injection_rate=0.0))
        assert not any(gen.packets_for_cycle(c) for c in range(50))


class TestScriptedTraffic:
    def test_script_replayed(self):
        script = ScriptedTraffic({0: [((0, 0), (1, 1), 4)], 3: [((1, 0), (0, 1), 2)]})
        assert len(script.packets_for_cycle(0)) == 1
        assert script.packets_for_cycle(1) == []
        (p,) = script.packets_for_cycle(3)
        assert p.length == 2 and p.created == 3

    def test_dict_round_trip(self):
        script = ScriptedTraffic(
            {0: [((0, 0), (1, 1), 4)], 3: [((1, 0), (0, 1), 2), ((2, 0), (0, 2), 6)]}
        )
        rebuilt = ScriptedTraffic.from_dict(script.to_dict())
        assert rebuilt.script == script.script

    def test_to_dict_is_json_safe_and_canonical(self):
        import json

        script = ScriptedTraffic({3: [((1, 0), (0, 1), 2)], 0: [((0, 0), (1, 1), 4)]})
        data = json.loads(json.dumps(script.to_dict()))
        rebuilt = ScriptedTraffic.from_dict(data)
        assert rebuilt.script == script.script
        assert list(script.to_dict()["script"]) == ["0", "3"]  # sorted cycles

    def test_from_dict_rejects_missing_script(self):
        with pytest.raises(SimulationError):
            ScriptedTraffic.from_dict({})

    def test_round_trip_preserves_injection_sequence(self):
        script = ScriptedTraffic(
            {0: [((0, 0), (1, 1), 4)], 2: [((1, 0), (0, 1), 2), ((0, 1), (1, 0), 3)]}
        )
        rebuilt = ScriptedTraffic.from_dict(script.to_dict())
        original = [
            (p.pid, p.src, p.dst, p.length, p.created)
            for c in range(5)
            for p in script.packets_for_cycle(c)
        ]
        replayed = [
            (p.pid, p.src, p.dst, p.length, p.created)
            for c in range(5)
            for p in rebuilt.packets_for_cycle(c)
        ]
        assert original == replayed
        assert [p[0] for p in original] == list(range(len(original)))
