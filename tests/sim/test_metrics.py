"""Tests for the telemetry layer: sampling, export, forensics."""

import json

import pytest

from repro.errors import EbdaError, SimulationError
from repro.routing import TurnTableRouting
from repro.routing.deterministic import xy_routing
from repro.sim import (
    MetricsCollector,
    NetworkSimulator,
    RunConfig,
    ScriptedTraffic,
    TimeSeries,
    Trace,
    TrafficConfig,
    TrafficGenerator,
    load_metrics,
    render_forensics,
    render_heatmap,
    render_summary,
    run_point,
)
from repro.sim.metrics import METRICS_SCHEMA
from repro.sim.specs import spec_token
from repro.core import catalog
from repro.topology import Mesh
from tests.sim.test_deadlock import RingRouting


def _metered_run(cycles=400, sample_every=50, rate=0.05, tracer=None):
    mesh = Mesh(4, 4)
    collector = MetricsCollector(sample_every=sample_every)
    sim = NetworkSimulator(
        mesh, xy_routing(mesh), metrics=collector, tracer=tracer
    )
    traffic = TrafficGenerator(
        mesh, TrafficConfig(injection_rate=rate, packet_length=4, seed=3)
    )
    stats = sim.run(cycles, traffic, drain=True)
    collector.finalize()  # final partial-window sample; exact counters
    return collector, stats, mesh


def _deadlocked_collector(sample_every=10, with_tracer=True):
    mesh = Mesh(2, 2)
    collector = MetricsCollector(sample_every=sample_every)
    tracer = Trace() if with_tracer else None
    sim = NetworkSimulator(
        mesh, RingRouting(mesh), buffer_depth=2, watchdog=50,
        tracer=tracer, metrics=collector,
    )
    script = ScriptedTraffic(
        {
            0: [
                ((0, 0), (1, 1), 4),
                ((1, 0), (0, 1), 4),
                ((1, 1), (0, 0), 4),
                ((0, 1), (1, 0), 4),
            ]
        }
    )
    stats = sim.run(300, script)
    assert stats.deadlocked
    return collector, stats


class TestTimeSeries:
    def test_ring_buffer_evicts_and_counts(self):
        ts = TimeSeries("t", capacity=3)
        for c in range(5):
            ts.append(c, float(c))
        assert len(ts) == 3
        assert ts.cycles == [2, 3, 4]
        assert ts.values == [2.0, 3.0, 4.0]
        assert ts.dropped == 2

    def test_aggregates(self):
        ts = TimeSeries("t")
        assert ts.mean() is None and ts.max() is None and ts.last() is None
        ts.append(1, 2.0)
        ts.append(2, 4.0)
        assert ts.mean() == 3.0
        assert ts.max() == 4.0
        assert ts.last() == 4.0
        assert list(ts) == [(1, 2.0), (2, 4.0)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            TimeSeries("t", capacity=0)

    def test_to_dict(self):
        ts = TimeSeries("t", capacity=2)
        ts.append(5, 1.5)
        d = ts.to_dict()
        assert d == {"name": "t", "cycles": [5], "values": [1.5], "dropped": 0}


class TestCollector:
    def test_sample_every_validated(self):
        with pytest.raises(SimulationError):
            MetricsCollector(sample_every=0)

    def test_bind_is_one_shot(self):
        mesh = Mesh(3, 3)
        collector = MetricsCollector()
        NetworkSimulator(mesh, xy_routing(mesh), metrics=collector)
        with pytest.raises(SimulationError):
            NetworkSimulator(mesh, xy_routing(mesh), metrics=collector)

    def test_sampling_cadence_and_final_partial_window(self):
        collector, stats, _mesh = _metered_run(cycles=400, sample_every=50)
        # One sample per full 50-cycle window, plus the finalize() sample
        # covering the partial drain tail (if the run did not end on a
        # boundary).
        assert collector.samples_taken >= stats.cycles // 50
        assert collector.cycles_observed == stats.cycles
        thr = collector.series["throughput"]
        assert len(thr) == collector.samples_taken
        assert all(c <= stats.cycles for c in thr.cycles)

    def test_flit_conservation_against_stats(self):
        collector, stats, _mesh = _metered_run()
        assert stats.packets_aborted == 0
        total = sum(c.flits for c in collector._channels.values())
        # Every traversal move lands a flit in some wire buffer, except
        # ejections: carried == moves - delivered exactly.
        assert total == stats.flit_moves - stats.flits_delivered

    def test_vc_stalls_counted_per_router(self):
        collector, _stats, _mesh = _metered_run(rate=0.15)
        assert collector.total_vc_stalls > 0
        per_router = sum(r.vc_stalls for r in collector._routers.values())
        assert per_router == collector.total_vc_stalls

    def test_disabled_metrics_leaves_simulator_untouched(self):
        mesh = Mesh(3, 3)
        sim = NetworkSimulator(mesh, xy_routing(mesh))
        assert sim.metrics is None
        sim.run(50)

    def test_utilization_and_hottest(self):
        collector, _stats, _mesh = _metered_run()
        hottest = collector.hottest_channels(3)
        assert len(hottest) == 3
        assert hottest[0][1] >= hottest[1][1] >= hottest[2][1]
        wire, util = hottest[0]
        assert util == pytest.approx(collector.utilization_of(wire))
        assert 0.0 < util <= 1.0

    def test_summary_dict_is_json_safe(self):
        collector, _stats, _mesh = _metered_run()
        d = collector.summary_dict()
        json.dumps(d, allow_nan=False)
        assert d["deadlock"] is False
        assert d["samples"] == collector.samples_taken


class TestPartitionHeatmap:
    def test_heatmap_keys_are_ebda_partitions(self):
        mesh = Mesh(4, 4)
        design = catalog.design("west-first")
        routing = TurnTableRouting(mesh, design, label="west-first")
        collector = MetricsCollector(sample_every=50)
        sim = NetworkSimulator(mesh, routing, metrics=collector)
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=1)
        )
        sim.run(300, traffic, drain=True)
        heat = collector.heatmap()
        names = {p.name for p in design.partitions}
        assert set(heat) == names
        for entry in heat.values():
            assert entry["wires"] > 0
            assert 0.0 <= entry["mean_utilization"] <= entry["max_utilization"]
            assert entry["hottest"]

    def test_heatmap_falls_back_to_channel_groups_without_design(self):
        collector, _stats, _mesh = _metered_run()
        heat = collector.heatmap()
        assert set(heat) == {"X+", "X-", "Y+", "Y-"}

    def test_render_heatmap_draws_2d_grids(self):
        collector, _stats, _mesh = _metered_run()
        text = collector.render_heatmap()
        assert "partition" in text
        assert "|" in text  # grid rows rendered for the 2D mesh


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        collector, stats, mesh = _metered_run()
        path = tmp_path / "m.jsonl"
        n = collector.to_jsonl(path, stats=stats)
        records = load_metrics(path)
        assert len(records) == n
        meta = records[0]
        assert meta["record"] == "meta"
        assert meta["schema"] == METRICS_SCHEMA
        assert meta["n_nodes"] == len(mesh.nodes)
        assert meta["shape"] == [4, 4]
        kinds = {r["record"] for r in records}
        assert {"meta", "sample", "channel", "router", "stats"} <= kinds
        channels = [r for r in records if r["record"] == "channel"]
        assert len(channels) == meta["n_channels"] == 48
        assert sum(c["flits"] for c in channels) == (
            stats.flit_moves - stats.flits_delivered
        )

    def test_jsonl_is_strict_json(self, tmp_path):
        collector, _stats, _mesh = _metered_run()
        path = tmp_path / "m.jsonl"
        collector.to_jsonl(path)
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=lambda t: pytest.fail(f"bad token {t}"))

    def test_load_metrics_rejects_nan(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "meta", "schema": 1, "x": NaN}\n')
        with pytest.raises(EbdaError, match="strict JSON"):
            load_metrics(path)

    def test_load_metrics_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "meta", "schema": 999}\n')
        with pytest.raises(EbdaError, match="schema"):
            load_metrics(path)

    def test_load_metrics_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "sample", "cycle": 1}\n')
        with pytest.raises(EbdaError, match="meta"):
            load_metrics(path)

    def test_csv_export(self, tmp_path):
        collector, _stats, _mesh = _metered_run()
        path = tmp_path / "m.csv"
        rows = collector.to_csv(path)
        lines = path.read_text().splitlines()
        assert len(lines) == rows + 1  # header
        assert lines[0].startswith("cycle,throughput,")

    def test_summary_renders(self):
        collector, stats, _mesh = _metered_run()
        text = collector.summary(stats)
        assert "telemetry summary" in text
        assert "hottest channels" in text
        assert "Mesh(4, 4)" in text

    def test_render_functions_accept_loaded_records(self, tmp_path):
        collector, stats, _mesh = _metered_run()
        path = tmp_path / "m.jsonl"
        collector.to_jsonl(path, stats=stats)
        records = load_metrics(path)
        assert "telemetry summary" in render_summary(records)
        assert "heatmap" in render_heatmap(records)
        assert "no deadlock forensics" in render_forensics(records)


class TestForensics:
    def test_crafted_ring_deadlock_names_witness_and_packets(self):
        collector, stats, = _deadlocked_collector()
        f = collector.forensics
        assert f is not None
        assert f.declared_at == stats.deadlock_declared_at
        assert sorted(f.wait_cycle) == [0, 1, 2, 3]
        # Each participant holds exactly its source wire of the 2x2 ring.
        held = {w for wires in f.witness_channels for w in wires}
        assert held == {
            "X+@(0, 0)->(1, 0)",
            "Y+@(1, 0)->(1, 1)",
            "X-@(1, 1)->(0, 1)",
            "Y-@(0, 1)->(0, 0)",
        }
        pids = {b.pid for b in f.blocked}
        assert pids == {0, 1, 2, 3}
        for b in f.blocked:
            assert b.waits_on in pids
            assert b.holds
            assert b.trace_tail  # tracer attached -> journeys recorded
        assert set(f.buffer_occupancy) == held
        assert all(occ == 2 for occ in f.buffer_occupancy.values())

    def test_forensics_without_tracer_has_empty_tails(self):
        collector, _stats = _deadlocked_collector(with_tracer=False)
        assert all(not b.trace_tail for b in collector.forensics.blocked)

    def test_forensics_round_trips_through_jsonl(self, tmp_path):
        collector, stats = _deadlocked_collector()
        path = tmp_path / "dl.jsonl"
        collector.to_jsonl(path, stats=stats)
        records = load_metrics(path)
        forensics = [r for r in records if r["record"] == "forensics"]
        assert len(forensics) == 1
        text = render_forensics(records)
        assert "cyclic wait" in text
        assert "X+@(0, 0)->(1, 0)" in text
        assert "#0" in text and "#3" in text

    def test_forensics_render_method(self):
        collector, _stats = _deadlocked_collector()
        assert "deadlock forensics" in collector.forensics.render()


class TestRunnerIntegration:
    def test_run_config_metrics_true_attaches_collector(self):
        result = run_point(
            Mesh(3, 3), xy_routing(Mesh(3, 3)),
            RunConfig(cycles=200, metrics=True, sample_every=40),
        )
        assert result.metrics is not None
        assert result.metrics.samples_taken > 0
        assert result.metrics.sample_every == 40

    def test_run_config_default_has_no_metrics(self):
        result = run_point(Mesh(3, 3), xy_routing(Mesh(3, 3)), RunConfig(cycles=100))
        assert result.metrics is None

    def test_ready_collector_is_used_and_finalized(self):
        collector = MetricsCollector(sample_every=25)
        result = run_point(
            Mesh(3, 3), xy_routing(Mesh(3, 3)),
            RunConfig(cycles=150, metrics=collector),
        )
        assert result.metrics is collector
        assert collector._sim is None  # finalized: picklable, detached

    def test_metrics_spec_tokens(self):
        assert spec_token("metrics", None) == "none"
        assert spec_token("metrics", False) == "none"
        assert spec_token("metrics", True) is None
        assert spec_token("metrics", MetricsCollector()) is None
