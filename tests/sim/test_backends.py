"""Unit tests for the backend registry and capability checks."""

import pytest

from repro.errors import ConfigError
from repro.sim import (
    BackendInfo,
    NetworkSimulator,
    RunConfig,
    VectorSimulator,
    backends,
    check_run_config,
    resolve_backend,
    simulator_class,
)


class TestRegistry:
    def test_reference_listed_first(self):
        names = [b.name for b in backends()]
        assert names[0] == "reference"
        assert "vector" in names

    def test_every_backend_claims_cycle_exact(self):
        # The cache-key sharing contract rests on this.
        assert all(b.cycle_exact for b in backends())

    def test_resolve_known(self):
        info = resolve_backend("vector")
        assert isinstance(info, BackendInfo)
        assert not info.supports_faults
        assert info.supported_selections == ("first",)

    def test_resolve_unknown_names_alternatives(self):
        with pytest.raises(ConfigError, match="reference"):
            resolve_backend("quantum")

    def test_simulator_class_dispatch(self):
        assert simulator_class("reference") is NetworkSimulator
        assert simulator_class("vector") is VectorSimulator

    def test_to_dict_round_trips_fields(self):
        d = resolve_backend("reference").to_dict()
        assert d["name"] == "reference"
        assert d["supports_metrics"] is True


class TestCheckRunConfig:
    def test_reference_accepts_everything(self):
        info = resolve_backend("reference")
        check_run_config(info, RunConfig(metrics=True, selection="random"))

    def test_vector_accepts_plain_config(self):
        check_run_config(resolve_backend("vector"), RunConfig())

    def test_vector_rejects_recovery(self):
        from repro.sim import RecoveryPolicy

        with pytest.raises(ConfigError, match="recovery"):
            check_run_config(
                resolve_backend("vector"),
                RunConfig(recovery=RecoveryPolicy(max_retries=2)),
            )

    def test_vector_accepts_callable_first_policy(self):
        from repro.routing.selection import first_candidate

        check_run_config(resolve_backend("vector"), RunConfig(selection=first_candidate))

    def test_vector_rejects_other_callables(self):
        from repro.routing.selection import random_candidate

        with pytest.raises(ConfigError, match="selection"):
            check_run_config(
                resolve_backend("vector"), RunConfig(selection=random_candidate)
            )


class TestCacheKeySharing:
    def test_backend_absent_from_cache_key(self, mesh4):
        from repro.sim import cache_key

        ref = cache_key(mesh4, "xy", RunConfig(cycles=200, backend="reference"))
        vec = cache_key(mesh4, "xy", RunConfig(cycles=200, backend="vector"))
        assert ref is not None
        assert ref == vec

    def test_vector_point_served_to_reference(self, mesh4, tmp_path):
        from repro.sim import SweepEngine

        engine = SweepEngine(cache=tmp_path)
        cfg = RunConfig(cycles=200, injection_rate=0.05, seed=4)
        first = engine.run_point(mesh4, "xy", RunConfig(**{
            **{f: getattr(cfg, f) for f in ("cycles", "injection_rate", "seed")},
            "backend": "vector",
        }))
        assert not first.cached
        second = engine.run_point(mesh4, "xy", cfg)
        assert second.cached
        assert second.result.stats.to_dict() == first.result.stats.to_dict()


class TestStageTimesSplit:
    def test_simulate_attributed_per_backend(self, mesh4):
        from repro.sim import SweepEngine

        report = SweepEngine().sweep(
            mesh4, "xy", [0.02, 0.05], RunConfig(cycles=150, backend="vector")
        )
        assert "simulate:vector" in report.stage_times
        assert "simulate:reference" not in report.stage_times
        assert report.stage_times["simulate:vector"] > 0
