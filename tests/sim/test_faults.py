"""Unit tests for runtime fault injection and regressive recovery."""

import pytest

from repro.core import catalog
from repro.errors import (
    FaultError,
    SimulationError,
    TopologyError,
    UnroutableError,
)
from repro.routing import TurnTableRouting, UnrestrictedAdaptive
from repro.sim import (
    FaultEvent,
    FaultSchedule,
    NetworkSimulator,
    RecoveryPolicy,
    RunConfig,
    ScriptedTraffic,
    Trace,
    TrafficConfig,
    TrafficGenerator,
    run_point,
)
from repro.topology import FaultyMesh, Mesh


def _ebda_factory(design):
    def factory(topo):
        return TurnTableRouting(
            topo, design, directions="progressive", fallback="escape"
        )

    return factory


NEGATIVE_FIRST = catalog.design("negative-first")


def _faulty_sim(mesh, faults, **kwargs):
    factory = _ebda_factory(NEGATIVE_FIRST)
    defaults = dict(
        faults=faults, recovery=RecoveryPolicy(), routing_factory=factory
    )
    defaults.update(kwargs)
    return NetworkSimulator(mesh, factory(mesh), **defaults)


class TestFaultEvent:
    def test_negative_cycle_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(-1, "drop")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(0, "gamma-ray")

    def test_link_fault_needs_link(self):
        with pytest.raises(SimulationError):
            FaultEvent(0, "link")

    def test_router_fault_needs_node(self):
        with pytest.raises(SimulationError):
            FaultEvent(0, "router")

    def test_str_mentions_the_target(self):
        e = FaultEvent(10, "link", link=((0, 0), (1, 0)))
        assert "link" in str(e) and "10" in str(e)


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(SimulationError):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(SimulationError):
            RecoveryPolicy(backoff_base=0)
        with pytest.raises(SimulationError):
            RecoveryPolicy(backoff_factor=0.5)

    def test_backoff_grows_exponentially(self):
        p = RecoveryPolicy(backoff_base=4, backoff_factor=2.0)
        delays = [p.backoff_delay(a) for a in range(4)]
        assert delays == [4, 8, 16, 32]
        assert p.backoff_delay(0) >= 1


class TestFaultSchedule:
    def test_events_sorted_by_cycle(self):
        sched = FaultSchedule(
            [FaultEvent(20, "drop"), FaultEvent(5, "drop")]
        )
        assert [e.cycle for e in sched] == [5, 20]
        assert sched.last_cycle == 20
        assert len(sched) == 2

    def test_at_groups_by_cycle(self):
        sched = FaultSchedule(
            [FaultEvent(7, "drop"), FaultEvent(7, "drop"), FaultEvent(9, "drop")]
        )
        assert len(sched.at(7)) == 2
        assert sched.at(8) == ()

    def test_empty_schedule(self):
        sched = FaultSchedule([])
        assert sched.last_cycle == -1
        assert "0 events" in repr(sched)

    def test_random_is_deterministic(self):
        a = FaultSchedule.random(Mesh(4, 4), seed=3, n_link_failures=2, n_drops=2)
        b = FaultSchedule.random(Mesh(4, 4), seed=3, n_link_failures=2, n_drops=2)
        assert a.events == b.events

    def test_random_keeps_network_connected(self):
        sched = FaultSchedule.random(Mesh(4, 4), seed=1, n_link_failures=5)
        failed = [e.link for e in sched if e.kind == "link"]
        assert len(failed) == 5
        FaultyMesh(Mesh(4, 4), failed=failed)  # must not raise

    def test_random_rejects_impossible_request(self):
        with pytest.raises(SimulationError):
            FaultSchedule.random(Mesh(2, 2), seed=1, n_link_failures=4)

    def test_random_empty_window_rejected(self):
        with pytest.raises(SimulationError):
            FaultSchedule.random(Mesh(3, 3), seed=1, window=(10, 10))

    def test_random_routing_filter_keeps_full_routability(self):
        factory = _ebda_factory(NEGATIVE_FIRST)
        sched = FaultSchedule.random(
            Mesh(4, 4), seed=2, n_link_failures=2, routing_factory=factory
        )
        failed = [e.link for e in sched if e.kind == "link"]
        topo = FaultyMesh(Mesh(4, 4), failed=failed)
        routing = factory(topo)
        assert all(
            routing.candidates(s, d, None)
            for s in topo.nodes
            for d in topo.nodes
            if s != d
        )


class TestLinkFailure:
    def test_reroutes_and_delivers_everything(self):
        mesh = Mesh(5, 5)
        faults = FaultSchedule(
            [FaultEvent(40, "link", link=((2, 2), (3, 2)))]
        )
        sim = _faulty_sim(mesh, faults)
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=11)
        )
        stats = sim.run(200, traffic, drain=True)
        assert not stats.deadlocked
        assert stats.faults_injected == 1
        assert stats.delivery_ratio == 1.0
        assert isinstance(sim.topology, FaultyMesh)
        assert sim.topology.failed_links == (((2, 2), (3, 2)),)
        assert sim.last_reroute_verdict is not None
        assert sim.last_reroute_verdict.acyclic

    def test_duplicate_failure_is_ignored(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule(
            [
                FaultEvent(30, "link", link=((1, 1), (2, 1))),
                FaultEvent(60, "link", link=((2, 1), (1, 1))),
            ]
        )
        sim = _faulty_sim(mesh, faults)
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.03, packet_length=4, seed=2)
        )
        stats = sim.run(120, traffic, drain=True)
        assert stats.faults_injected == 1
        assert stats.delivery_ratio == 1.0

    def test_unknown_link_fault_is_an_error(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule(
            [FaultEvent(5, "link", link=((0, 0), (3, 3)))]  # not adjacent
        )
        sim = _faulty_sim(mesh, faults)
        with pytest.raises(FaultError):
            sim.run(20)

    def test_unknown_router_fault_is_an_error(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule([FaultEvent(5, "router", node=(9, 9))])
        sim = _faulty_sim(mesh, faults)
        with pytest.raises(FaultError):
            sim.run(20)

    def test_disconnecting_failure_raises_unroutable(self):
        mesh = Mesh(2, 2)
        faults = FaultSchedule(
            [
                FaultEvent(10, "link", link=((0, 0), (1, 0))),
                FaultEvent(20, "link", link=((0, 0), (0, 1))),
            ]
        )
        sim = _faulty_sim(mesh, faults)
        with pytest.raises(UnroutableError):
            sim.run(50)

    def test_cyclic_reroute_raises_fault_error(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule([FaultEvent(10, "link", link=((1, 1), (2, 1)))])
        sim = NetworkSimulator(
            mesh,
            UnrestrictedAdaptive(mesh),
            faults=faults,
            recovery=RecoveryPolicy(),
            routing_factory=lambda topo: UnrestrictedAdaptive(topo),
        )
        with pytest.raises(FaultError):
            sim.run(50)

    def test_cyclic_reroute_tolerated_when_not_required(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule([FaultEvent(10, "link", link=((1, 1), (2, 1)))])
        sim = NetworkSimulator(
            mesh,
            UnrestrictedAdaptive(mesh),
            faults=faults,
            recovery=RecoveryPolicy(),
            routing_factory=lambda topo: UnrestrictedAdaptive(topo),
            require_acyclic_reroute=False,
        )
        sim.run(50)
        assert sim.last_reroute_verdict is not None
        assert not sim.last_reroute_verdict.acyclic

    def test_permanent_fault_without_factory_raises(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule([FaultEvent(10, "link", link=((1, 1), (2, 1)))])
        sim = NetworkSimulator(mesh, UnrestrictedAdaptive(mesh), faults=faults)
        with pytest.raises(FaultError):
            sim.run(50)


class TestRouterFailure:
    def test_dead_router_traffic_is_lost_rest_delivered(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule([FaultEvent(50, "router", node=(1, 1))])
        sim = _faulty_sim(mesh, faults)
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=4)
        )
        stats = sim.run(200, traffic, drain=True)
        assert stats.faults_injected == 1
        assert (1, 1) not in sim.topology.node_set
        assert not stats.deadlocked
        # every packet either arrived or was counted lost — none vanished
        assert (
            stats.packets_delivered + stats.packets_lost
            == stats.packets_injected
        )
        assert stats.packets_lost > 0  # (1,1) was sourcing/sinking traffic


class TestDropFault:
    def test_targeted_drop_retransmits_end_to_end(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule([FaultEvent(3, "drop", pid=0)])
        tracer = Trace()
        sim = _faulty_sim(mesh, faults, tracer=tracer)
        script = ScriptedTraffic({0: [((0, 0), (3, 3), 6)]})
        stats = sim.run(2, script, drain=True)
        assert stats.faults_injected == 1
        assert stats.packets_aborted == 1
        assert stats.retransmissions == 1
        assert stats.delivery_ratio == 1.0
        assert len(stats.recovery_latencies) == 1
        assert stats.avg_recovery_latency > 0
        kinds = [e.kind for e in tracer.events]
        assert "fault" in kinds and "abort" in kinds and "retransmit" in kinds

    def test_drop_without_recovery_loses_the_packet(self):
        mesh = Mesh(4, 4)
        faults = FaultSchedule([FaultEvent(3, "drop", pid=0)])
        sim = _faulty_sim(mesh, faults, recovery=None)
        script = ScriptedTraffic({0: [((0, 0), (3, 3), 6)]})
        stats = sim.run(2, script, drain=True)
        assert stats.packets_lost == 1
        assert stats.packets_delivered == 0

    def test_random_drop_waits_for_in_flight_traffic(self):
        mesh = Mesh(4, 4)
        # nothing is in flight at cycle 1: the drop must be a no-op
        faults = FaultSchedule([FaultEvent(1, "drop")])
        sim = _faulty_sim(mesh, faults)
        stats = sim.run(10)
        assert stats.faults_injected == 0


class TestDeadlockRecovery:
    def test_cyclic_wait_recovered_and_drained(self):
        mesh = Mesh(4, 4)
        tracer = Trace()
        sim = NetworkSimulator(
            mesh,
            UnrestrictedAdaptive(mesh),
            watchdog=80,
            seed=3,
            recovery=RecoveryPolicy(max_retries=20),
            tracer=tracer,
        )
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.35, packet_length=6, seed=3)
        )
        stats = sim.run(400, traffic, drain=True)
        assert not stats.deadlocked
        assert stats.recovered_deadlocks >= 1
        assert stats.retransmissions >= 1
        assert stats.delivery_ratio == 1.0
        assert tracer.of_kind("recovered")

    def test_exhausted_retries_fall_back_to_deadlock(self):
        mesh = Mesh(4, 4)
        sim = NetworkSimulator(
            mesh,
            UnrestrictedAdaptive(mesh),
            watchdog=80,
            seed=3,
            recovery=RecoveryPolicy(max_retries=2),
        )

        # Pretend every packet has already burnt its retry budget: the
        # watchdog must then fall back to declaring a hard deadlock.
        class _Spent(dict):
            def get(self, key, default=0):
                return 10**9

        sim._retries = _Spent()
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.35, packet_length=6, seed=3)
        )
        stats = sim.run(400, traffic, drain=True)
        assert stats.deadlocked
        assert stats.deadlock_declared_at is not None
        assert stats.recovered_deadlocks == 0


class TestAcceptanceScenario:
    """ISSUE acceptance: deadlock recovery + fault-triggered reconfiguration."""

    @staticmethod
    def _run():
        mesh = Mesh(4, 4)
        faults = FaultSchedule(
            [FaultEvent(450, "link", link=((1, 1), (2, 1)))], seed=9
        )
        sim = NetworkSimulator(
            mesh,
            UnrestrictedAdaptive(mesh),  # adaptive, deadlock-prone
            watchdog=80,
            seed=3,
            faults=faults,
            recovery=RecoveryPolicy(max_retries=20),
            routing_factory=_ebda_factory(NEGATIVE_FIRST),
        )
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.35, packet_length=6, seed=3)
        )
        stats = sim.run(300, traffic, drain=True)
        return sim, stats

    def test_recovers_reroutes_and_delivers_everything(self):
        sim, stats = self._run()
        assert stats.recovered_deadlocks >= 1
        assert stats.faults_injected == 1
        assert stats.delivery_ratio == 1.0
        assert sim.last_reroute_verdict is not None
        assert sim.last_reroute_verdict.acyclic
        assert sim.routing.name.startswith("EbDa")

    def test_same_seed_runs_are_identical(self):
        _, a = self._run()
        _, b = self._run()
        assert a.summary(16) == b.summary(16)
        assert a.recovery_latencies == b.recovery_latencies


class TestRunnerIntegration:
    def test_run_config_passes_fault_knobs_through(self):
        mesh = Mesh(4, 4)
        factory = _ebda_factory(NEGATIVE_FIRST)
        cfg = RunConfig(
            cycles=150,
            injection_rate=0.04,
            faults=FaultSchedule(
                [FaultEvent(40, "link", link=((1, 1), (2, 1)))]
            ),
            recovery=RecoveryPolicy(),
            routing_factory=factory,
        )
        result = run_point(mesh, factory(mesh), cfg)
        assert result.stats.faults_injected == 1
        assert result.stats.delivery_ratio == 1.0


class TestScheduleValidation:
    """Construction-time rejection of unapplyable schedules."""

    def test_event_at_horizon_rejected(self):
        event = FaultEvent(100, "link", link=((0, 0), (1, 0)))
        with pytest.raises(FaultError, match="max_cycles=100"):
            FaultSchedule([event], max_cycles=100)

    def test_event_after_horizon_rejected(self):
        event = FaultEvent(250, "drop")
        with pytest.raises(FaultError, match="horizon"):
            FaultSchedule([event], max_cycles=200)

    def test_error_names_the_offending_event(self):
        event = FaultEvent(99, "router", node=(1, 1))
        with pytest.raises(FaultError, match=r"cycle 99: router \(1, 1\)"):
            FaultSchedule([event], max_cycles=50)

    def test_event_inside_horizon_accepted(self):
        sched = FaultSchedule(
            [FaultEvent(99, "link", link=((0, 0), (1, 0)))], max_cycles=100
        )
        assert sched.max_cycles == 100
        assert len(sched) == 1

    def test_no_horizon_accepts_any_cycle(self):
        assert len(FaultSchedule([FaultEvent(10**6, "drop")])) == 1

    def test_duplicate_link_same_cycle_rejected(self):
        a = FaultEvent(10, "link", link=((0, 0), (1, 0)))
        b = FaultEvent(10, "link", link=((1, 0), (0, 0)))  # same pair, flipped
        with pytest.raises(FaultError, match="duplicate"):
            FaultSchedule([a, b])

    def test_same_link_different_cycles_accepted(self):
        a = FaultEvent(10, "link", link=((0, 0), (1, 0)))
        b = FaultEvent(20, "link", link=((0, 0), (1, 0)))
        assert len(FaultSchedule([a, b])) == 2

    def test_duplicate_router_same_cycle_rejected(self):
        with pytest.raises(FaultError, match="duplicate"):
            FaultSchedule(
                [FaultEvent(5, "router", node=(1, 1)),
                 FaultEvent(5, "router", node=(1, 1))]
            )

    def test_duplicate_targeted_drop_rejected(self):
        with pytest.raises(FaultError, match="duplicate"):
            FaultSchedule(
                [FaultEvent(5, "drop", pid=3), FaultEvent(5, "drop", pid=3)]
            )

    def test_untargeted_drops_exempt(self):
        sched = FaultSchedule([FaultEvent(5, "drop"), FaultEvent(5, "drop")])
        assert len(sched) == 2

    def test_random_schedules_pass_validation(self):
        mesh = Mesh(4, 4)
        sched = FaultSchedule.random(
            mesh, seed=11, n_link_failures=2, n_drops=2, window=(10, 150)
        )
        # Re-validating against the window's end must not raise.
        revalidated = FaultSchedule(
            sched.events, seed=sched.seed, max_cycles=150
        )
        assert revalidated.events == sched.events
