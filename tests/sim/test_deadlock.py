"""Unit tests for wait-for graph analysis."""

import networkx as nx
import pytest

from repro.routing import MinimalFullyAdaptive, UnrestrictedAdaptive
from repro.sim import (
    NetworkSimulator,
    TrafficConfig,
    TrafficGenerator,
    build_waitfor_graph,
    held_wires,
    waitfor_cycle,
)
from repro.topology import Mesh


def _deadlocked_sim(mesh):
    sim = NetworkSimulator(
        mesh, UnrestrictedAdaptive(mesh), buffer_depth=2, watchdog=200
    )
    traffic = TrafficGenerator(
        mesh, TrafficConfig(injection_rate=0.35, packet_length=8, seed=3)
    )
    sim.run(2500, traffic)
    assert sim.stats.deadlocked
    return sim


class TestWaitForGraph:
    def test_deadlock_produces_cyclic_wait(self, mesh4):
        sim = _deadlocked_sim(mesh4)
        cycle = waitfor_cycle(sim)
        assert cycle is not None
        assert len(cycle) >= 2
        # every packet in the witness is genuinely in flight
        in_flight_pids = set()
        for ws in sim.state.values():
            in_flight_pids.update(ws.packets_present())
        assert set(cycle) <= in_flight_pids

    def test_cycle_members_hold_resources(self, mesh4):
        sim = _deadlocked_sim(mesh4)
        cycle = waitfor_cycle(sim)
        for pid in cycle:
            assert held_wires(sim, pid)

    def test_healthy_network_has_no_cyclic_wait(self, mesh4):
        sim = NetworkSimulator(mesh4, MinimalFullyAdaptive(mesh4), buffer_depth=2)
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.2, packet_length=4, seed=5)
        )
        for cycle_no in range(300):
            new = traffic.packets_for_cycle(cycle_no)
            sim.step(new)
            if cycle_no % 50 == 0:
                assert waitfor_cycle(sim) is None

    def test_graph_nodes_are_packet_ids(self, mesh4):
        sim = _deadlocked_sim(mesh4)
        graph = build_waitfor_graph(sim)
        assert all(isinstance(n, int) for n in graph.nodes)
        assert graph.number_of_edges() > 0
