"""Unit tests for wait-for graph analysis."""

import networkx as nx
import pytest

from repro.core import Channel, catalog
from repro.errors import DeadlockDetected
from repro.routing import (
    MinimalFullyAdaptive,
    RoutingFunction,
    TurnTableRouting,
    UnrestrictedAdaptive,
)
from repro.sim import (
    NetworkSimulator,
    ScriptedTraffic,
    TrafficConfig,
    TrafficGenerator,
    build_waitfor_graph,
    cycle_witness,
    held_wires,
    waitfor_cycle,
)
from repro.topology import Mesh


def _deadlocked_sim(mesh):
    sim = NetworkSimulator(
        mesh, UnrestrictedAdaptive(mesh), buffer_depth=2, watchdog=200
    )
    traffic = TrafficGenerator(
        mesh, TrafficConfig(injection_rate=0.35, packet_length=8, seed=3)
    )
    sim.run(2500, traffic)
    assert sim.stats.deadlocked
    return sim


class TestWaitForGraph:
    def test_deadlock_produces_cyclic_wait(self, mesh4):
        sim = _deadlocked_sim(mesh4)
        cycle = waitfor_cycle(sim)
        assert cycle is not None
        assert len(cycle) >= 2
        # every packet in the witness is genuinely in flight
        in_flight_pids = set()
        for ws in sim.state.values():
            in_flight_pids.update(ws.packets_present())
        assert set(cycle) <= in_flight_pids

    def test_cycle_members_hold_resources(self, mesh4):
        sim = _deadlocked_sim(mesh4)
        cycle = waitfor_cycle(sim)
        for pid in cycle:
            assert held_wires(sim, pid)

    def test_healthy_network_has_no_cyclic_wait(self, mesh4):
        sim = NetworkSimulator(mesh4, MinimalFullyAdaptive(mesh4), buffer_depth=2)
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.2, packet_length=4, seed=5)
        )
        for cycle_no in range(300):
            new = traffic.packets_for_cycle(cycle_no)
            sim.step(new)
            if cycle_no % 50 == 0:
                assert waitfor_cycle(sim) is None

    def test_graph_nodes_are_packet_ids(self, mesh4):
        sim = _deadlocked_sim(mesh4)
        graph = build_waitfor_graph(sim)
        assert all(isinstance(n, int) for n in graph.nodes)
        assert graph.number_of_edges() > 0


class RingRouting(RoutingFunction):
    """Deliberately deadlock-prone: every packet rides the clockwise ring
    (0,0) -> (1,0) -> (1,1) -> (0,1) -> (0,0) on a 2x2 mesh, one channel
    per ring hop.  The channel dependency graph is a single 4-cycle."""

    _NEXT = {
        (0, 0): ((1, 0), Channel(0, +1)),
        (1, 0): ((1, 1), Channel(1, +1)),
        (1, 1): ((0, 1), Channel(0, -1)),
        (0, 1): ((0, 0), Channel(1, -1)),
    }

    @property
    def channel_classes(self):
        return (
            Channel(0, +1),
            Channel(1, +1),
            Channel(0, -1),
            Channel(1, -1),
        )

    def candidates(self, cur, dst, in_channel):
        if cur == dst:
            return []
        return [self._NEXT[cur]]


def _crafted_deadlock_sim():
    """Four 4-flit worms on a 2x2 ring, each destined 2 hops clockwise.

    With 2-slot buffers no worm's tail ever leaves its source wire, so
    ownership is never released and all four head flits block on the wire
    held by the next worm: a guaranteed, stable 4-cycle.
    """
    mesh = Mesh(2, 2)
    sim = NetworkSimulator(
        mesh, RingRouting(mesh), buffer_depth=2, watchdog=50
    )
    script = ScriptedTraffic(
        {
            0: [
                ((0, 0), (1, 1), 4),
                ((1, 0), (0, 1), 4),
                ((1, 1), (0, 0), 4),
                ((0, 1), (1, 0), 4),
            ]
        }
    )
    return sim, script


class TestCraftedDeadlock:
    """Satellite: a hand-built wormhole deadlock with an exact witness."""

    def test_watchdog_fires_with_cyclic_witness(self):
        sim, script = _crafted_deadlock_sim()
        stats = sim.run(200, script)
        assert stats.deadlocked
        assert stats.deadlock_declared_at is not None
        assert stats.deadlock_declared_at <= 200

        pids = waitfor_cycle(sim)
        assert pids is not None
        assert set(pids) <= {0, 1, 2, 3}
        assert len(pids) == 4  # the full ring participates

        witness = cycle_witness(sim)
        assert witness is not None
        w_pids, held = witness
        assert w_pids == pids
        assert len(held) == len(pids)
        assert all(held_for_one for held_for_one in held)

    def test_raise_on_deadlock_carries_channel_witness(self):
        sim, script = _crafted_deadlock_sim()
        with pytest.raises(DeadlockDetected) as excinfo:
            sim.run(200, script, raise_on_deadlock=True)
        exc = excinfo.value
        assert set(exc.cycle) <= {0, 1, 2, 3}
        assert exc.cycle_channels is not None
        assert len(exc.cycle_channels) == len(exc.cycle)
        assert all(wires for wires in exc.cycle_channels)

    @pytest.mark.parametrize("seed", [1, 2, 3, 7])
    def test_ebda_design_never_trips_the_watchdog(self, seed):
        """Regression: the same load never deadlocks an EbDa design."""
        mesh = Mesh(4, 4)
        routing = TurnTableRouting(mesh, catalog.design("negative-first"))
        sim = NetworkSimulator(mesh, routing, buffer_depth=2, watchdog=200)
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.35, packet_length=8, seed=seed)
        )
        stats = sim.run(1500, traffic, drain=True)
        assert not stats.deadlocked
        assert stats.delivery_ratio == 1.0
