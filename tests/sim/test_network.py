"""Unit and behavioural tests for the wormhole network simulator."""

import pytest

from repro.errors import SimulationError
from repro.routing import MinimalFullyAdaptive, UnrestrictedAdaptive, xy_routing
from repro.sim import (
    NetworkSimulator,
    Packet,
    ScriptedTraffic,
    TrafficConfig,
    TrafficGenerator,
)
from repro.topology import Mesh


def _sim(mesh, routing=None, **kwargs):
    return NetworkSimulator(mesh, routing or xy_routing(mesh), **kwargs)


class TestSinglePacket:
    def test_delivery_and_latency(self, mesh4):
        sim = _sim(mesh4)
        p = Packet(pid=0, src=(0, 0), dst=(2, 1), length=4, created=0)
        sim.offer_packet(p)
        for _ in range(100):
            sim.step()
            if p.delivered is not None:
                break
        assert p.delivered is not None
        assert p.entered is not None
        # 3 hops + pipeline: latency at least hops + length - 1
        assert p.network_latency >= 3 + 3
        assert sim.stats.packets_delivered == 1
        assert sim.stats.flits_delivered == 4

    def test_single_flit_packet(self, mesh4):
        sim = _sim(mesh4)
        p = Packet(pid=0, src=(0, 0), dst=(0, 1), length=1, created=0)
        sim.offer_packet(p)
        for _ in range(20):
            sim.step()
        assert p.delivered is not None

    def test_xy_route_taken(self, mesh4):
        sim = _sim(mesh4)
        p = Packet(pid=0, src=(0, 0), dst=(2, 2), length=2, created=0)
        sim.offer_packet(p)
        visited = set()
        for _ in range(60):
            sim.step()
            for wire, ws in sim.state.items():
                if ws.buffer:
                    visited.add(wire.link.dst)
        assert (2, 0) in visited       # X resolved first
        assert (0, 1) not in visited   # never north before east

    def test_idle_after_drain(self, mesh4):
        sim = _sim(mesh4)
        sim.offer_packet(Packet(pid=0, src=(0, 0), dst=(3, 3), length=3, created=0))
        for _ in range(100):
            sim.step()
        assert sim.is_idle()
        assert sim.flits_in_network() == 0


class TestConservation:
    def test_flits_neither_lost_nor_duplicated(self, mesh4):
        sim = _sim(mesh4, MinimalFullyAdaptive(mesh4))
        traffic = TrafficGenerator(mesh4, TrafficConfig(injection_rate=0.15, seed=9))
        stats = sim.run(400, traffic, drain=True)
        assert stats.packets_delivered == stats.packets_injected
        assert stats.flits_delivered == stats.packets_injected * 4
        assert sim.is_idle()

    def test_per_packet_flit_sequencing(self, mesh4):
        # All flits of a packet arrive in order: latency of tail >= head.
        sim = _sim(mesh4)
        packets = [
            Packet(pid=i, src=(0, 0), dst=(3, 3), length=5, created=0)
            for i in range(3)
        ]
        for p in packets:
            sim.offer_packet(p)
        for _ in range(200):
            sim.step()
        for p in packets:
            assert p.delivered is not None


class TestBackpressure:
    def test_wormhole_blocking_chain(self, mesh4):
        # Tiny buffers: a long packet spans several routers; the simulator
        # must respect per-buffer capacity everywhere.
        sim = _sim(mesh4, buffer_depth=1)
        p = Packet(pid=0, src=(0, 0), dst=(3, 0), length=8, created=0)
        sim.offer_packet(p)
        for _ in range(10):
            sim.step()
            for ws in sim.state.values():
                assert len(ws.buffer) <= 1
        for _ in range(100):
            sim.step()
        assert p.delivered is not None


class TestOwnership:
    def test_relaxed_mode_allows_multiple_packets_per_buffer(self, mesh4):
        # Under contention, a trailing packet's head queues behind the
        # leading packet's tail in the same buffer — the EbDa assumption
        # Duato's theory forbids.
        sim = _sim(
            mesh4, MinimalFullyAdaptive(mesh4), buffer_depth=4, atomic_buffers=False
        )
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.3, packet_length=6, seed=4)
        )
        saw_shared = False
        for cycle in range(400):
            sim.step(traffic.packets_for_cycle(cycle))
            if any(len(ws.packets_present()) > 1 for ws in sim.state.values()):
                saw_shared = True
                break
        assert saw_shared

    def test_atomic_mode_one_packet_per_buffer(self, mesh4):
        sim = _sim(mesh4, buffer_depth=8, atomic_buffers=True)
        for i in range(4):
            sim.offer_packet(Packet(pid=i, src=(0, 0), dst=(3, 0), length=2, created=0))
        for _ in range(120):
            sim.step()
            for ws in sim.state.values():
                assert len(ws.packets_present()) <= 1
        assert sim.stats.packets_delivered == 4


class TestDeadlockDetection:
    def test_unrestricted_deadlocks_and_watchdog_fires(self, mesh4):
        sim = NetworkSimulator(
            mesh4,
            UnrestrictedAdaptive(mesh4),
            buffer_depth=2,
            watchdog=200,
        )
        traffic = TrafficGenerator(
            mesh4,
            TrafficConfig(injection_rate=0.35, packet_length=8, seed=3),
        )
        stats = sim.run(2500, traffic)
        assert stats.deadlocked
        assert stats.deadlock_declared_at is not None

    def test_safe_routing_never_trips_watchdog(self, mesh4):
        sim = _sim(mesh4, MinimalFullyAdaptive(mesh4), buffer_depth=2, watchdog=200)
        traffic = TrafficGenerator(
            mesh4,
            TrafficConfig(injection_rate=0.35, packet_length=8, seed=3),
        )
        stats = sim.run(1500, traffic, drain=True)
        assert not stats.deadlocked


class TestValidation:
    def test_unknown_source_rejected(self, mesh4):
        sim = _sim(mesh4)
        with pytest.raises(Exception):
            sim.offer_packet(Packet(pid=0, src=(9, 9), dst=(0, 0), length=1, created=0))

    def test_no_wires_rejected(self, mesh4):
        class NoChannels(UnrestrictedAdaptive):
            @property
            def channel_classes(self):
                return ()

        with pytest.raises(SimulationError):
            NetworkSimulator(mesh4, NoChannels(mesh4))
