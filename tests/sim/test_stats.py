"""Unit tests for simulation statistics."""

import math

from repro.sim import SimStats


class TestSimStats:
    def test_latency_aggregates(self):
        s = SimStats()
        s.record_delivery(10, 8, 4)
        s.record_delivery(20, 15, 4)
        assert s.avg_total_latency == 15.0
        assert s.avg_network_latency == 11.5
        assert s.max_total_latency == 20
        assert s.packets_delivered == 2
        assert s.flits_delivered == 8

    def test_empty_latency_is_nan(self):
        s = SimStats()
        assert math.isnan(s.avg_total_latency)
        assert math.isnan(s.avg_network_latency)
        assert s.max_total_latency == 0

    def test_percentile(self):
        s = SimStats()
        for v in range(1, 101):
            s.record_delivery(v, v, 1)
        assert s.latency_percentile(50) in (50.0, 51.0)  # either median convention
        assert s.latency_percentile(99) == 99.0
        assert s.latency_percentile(0) == 1.0

    def test_throughput(self):
        s = SimStats()
        s.cycles = 100
        s.flits_delivered = 400
        assert s.throughput(16) == 0.25
        assert SimStats().throughput(16) == 0.0

    def test_delivery_ratio(self):
        s = SimStats()
        assert s.delivery_ratio == 1.0
        s.packets_injected = 10
        s.packets_delivered = 7
        assert s.delivery_ratio == 0.7

    def test_summary_mentions_deadlock(self):
        s = SimStats()
        s.deadlocked = True
        assert "DEADLOCK" in s.summary(16)
        assert "ok" in SimStats().summary(16)
