"""Unit tests for simulation statistics."""

import math

import pytest

from repro.sim import SimStats


class TestSimStats:
    def test_latency_aggregates(self):
        s = SimStats()
        s.record_delivery(10, 8, 4)
        s.record_delivery(20, 15, 4)
        assert s.avg_total_latency == 15.0
        assert s.avg_network_latency == 11.5
        assert s.max_total_latency == 20
        assert s.packets_delivered == 2
        assert s.flits_delivered == 8

    def test_empty_latency_is_nan(self):
        s = SimStats()
        assert math.isnan(s.avg_total_latency)
        assert math.isnan(s.avg_network_latency)
        assert s.max_total_latency == 0

    def test_percentile_linear_interpolation(self):
        # Linear interpolation between closest ranks (numpy's default):
        # with values 1..100, rank q/100*(n-1) is fractional for most q.
        s = SimStats()
        for v in range(1, 101):
            s.record_delivery(v, v, 1)
        assert s.latency_percentile(50) == 50.5
        assert math.isclose(s.latency_percentile(95), 95.05)
        assert math.isclose(s.latency_percentile(99), 99.01)
        assert s.latency_percentile(0) == 1.0
        assert s.latency_percentile(100) == 100.0

    def test_percentile_interpolates_between_two_values(self):
        s = SimStats()
        s.record_delivery(10, 10, 1)
        s.record_delivery(20, 20, 1)
        assert s.latency_percentile(50) == 15.0
        assert s.latency_percentile(25) == 12.5

    def test_percentile_clamps_out_of_range_q(self):
        s = SimStats()
        s.record_delivery(5, 5, 1)
        s.record_delivery(9, 9, 1)
        assert s.latency_percentile(-10) == 5.0
        assert s.latency_percentile(200) == 9.0

    def test_percentile_empty_is_nan(self):
        assert math.isnan(SimStats().latency_percentile(50))

    def test_to_dict_is_strict_json_when_empty(self):
        # Empty-latency runs: derived metrics serialize as null, never NaN.
        import json

        data = SimStats().to_dict()
        assert data["avg_total_latency"] is None
        assert data["p50_latency"] is None
        assert data["avg_recovery_latency"] is None
        text = json.dumps(data, allow_nan=False)  # raises on NaN/Infinity
        assert "NaN" not in text

    def test_to_dict_derived_fields_round_trip(self):
        s = SimStats()
        s.record_delivery(10, 8, 4)
        s.record_delivery(20, 15, 4)
        data = s.to_dict()
        assert data["avg_total_latency"] == 15.0
        assert data["p50_latency"] == 15.0
        assert data["delivery_ratio"] is not None
        # from_dict drops the derived keys: exact equality survives.
        assert SimStats.from_dict(data) == s

    def test_from_dict_accepts_legacy_payload_without_derived_keys(self):
        s = SimStats()
        s.record_delivery(7, 5, 4)
        legacy = {
            k: v
            for k, v in s.to_dict().items()
            if not k.endswith("_latency") and k not in ("delivery_ratio",)
        }
        assert SimStats.from_dict(legacy) == s

    def test_throughput(self):
        s = SimStats()
        s.cycles = 100
        s.flits_delivered = 400
        assert s.throughput(16) == 0.25
        assert SimStats().throughput(16) == 0.0

    def test_delivery_ratio(self):
        s = SimStats()
        assert s.delivery_ratio == 1.0
        s.packets_injected = 10
        s.packets_delivered = 7
        assert s.delivery_ratio == 0.7

    def test_summary_mentions_deadlock(self):
        s = SimStats()
        s.deadlocked = True
        assert "DEADLOCK" in s.summary(16)
        assert "ok" in SimStats().summary(16)

    def test_fault_counters_default_to_zero(self):
        s = SimStats()
        assert s.faults_injected == 0
        assert s.packets_aborted == 0
        assert s.retransmissions == 0
        assert s.recovered_deadlocks == 0
        assert s.packets_lost == 0
        assert s.recovery_latencies == []

    def test_deadlock_cycle_alias_removed(self):
        s = SimStats()
        s.deadlock_declared_at = 123
        with pytest.raises(AttributeError, match="deadlock_declared_at"):
            s.deadlock_cycle

    def test_avg_recovery_latency(self):
        s = SimStats()
        assert math.isnan(s.avg_recovery_latency)
        s.recovery_latencies.extend([10, 30])
        assert s.avg_recovery_latency == 20.0

    def test_summary_shows_fault_accounting_when_present(self):
        s = SimStats()
        assert "faults" not in s.summary(16)
        s.faults_injected = 2
        s.recovered_deadlocks = 1
        s.packets_lost = 3
        text = s.summary(16)
        assert "faults=2" in text
        assert "recovered=1" in text
        assert "lost=3" in text
