"""Unit tests for span tracing: nesting, balance, JSONL, the null tracer."""

import json

import pytest

from repro.errors import EbdaError
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    check_balance,
    current_tracer,
    load_trace,
    set_tracer,
    tracing,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestTracer:
    def test_start_and_end_events_per_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            pass
        kinds = [e["event"] for e in tracer.events]
        assert kinds == ["span-start", "span-end"]
        assert len(tracer) == 2

    def test_nested_span_records_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        starts = {e["name"]: e for e in tracer.events if e["event"] == "span-start"}
        assert starts["outer"]["parent"] is None
        assert starts["inner"]["parent"] == starts["outer"]["span"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        starts = {e["name"]: e for e in tracer.events if e["event"] == "span-start"}
        assert starts["a"]["parent"] == starts["b"]["parent"] == starts["root"]["span"]

    def test_start_attrs_on_start_end_attrs_on_end(self):
        tracer = Tracer()
        with tracer.span("s", points=3) as span:
            span.set(hits=2)
        start, end = tracer.events
        assert start["attrs"] == {"points": 3}
        assert end["attrs"] == {"hits": 2}

    def test_elapsed_uses_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("s"):
            pass
        end = tracer.events[-1]
        assert end["elapsed_s"] == pytest.approx(1.0)

    def test_exception_records_error_attr_and_balances(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        end = tracer.events[-1]
        assert end["event"] == "span-end"
        assert end["attrs"]["error"] == "ValueError"
        check_balance(tracer.events)

    def test_non_json_attrs_rejected(self):
        tracer = Tracer()
        with pytest.raises(EbdaError, match="strict-JSON"):
            tracer.span("s", bad=object())
        with pytest.raises(EbdaError, match="strict-JSON"):
            tracer.span("s", nan=float("nan"))

    def test_leaked_child_closed_with_parent(self):
        # A span object that escapes its parent's scope must not leave
        # the stream unbalanced when the parent exits first.
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.span("leaked")  # never exited explicitly
        check_balance(tracer.events)

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", n=1):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.to_jsonl(path) == 4
        events = load_trace(path)
        assert events == tracer.events
        check_balance(events)


class TestNullTracer:
    def test_shared_noop_span(self):
        a = NULL_TRACER.span("x", k=1)
        b = NULL_TRACER.span("y")
        assert a is b
        with a as span:
            assert span.set(any=1) is span
        assert len(NULL_TRACER) == 0

    def test_to_jsonl_raises(self, tmp_path):
        with pytest.raises(EbdaError, match="null tracer"):
            NULL_TRACER.to_jsonl(tmp_path / "x.jsonl")

    def test_default_current_tracer_disabled(self):
        assert isinstance(current_tracer(), NullTracer)
        assert not current_tracer().enabled


class TestCurrentTracer:
    def test_tracing_scopes_and_restores(self):
        tracer = Tracer()
        before = current_tracer()
        with tracing(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is before

    def test_tracing_restores_on_exception(self):
        before = current_tracer()
        with pytest.raises(RuntimeError):
            with tracing(Tracer()):
                raise RuntimeError
        assert current_tracer() is before

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer())
        try:
            set_tracer(None)
            assert isinstance(current_tracer(), NullTracer)
        finally:
            set_tracer(previous)


class TestLoadTrace:
    def _write(self, tmp_path, lines):
        path = tmp_path / "spans.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_rejects_invalid_json(self, tmp_path):
        with pytest.raises(EbdaError, match="not valid JSON"):
            load_trace(self._write(tmp_path, ["{nope"]))

    def test_rejects_wrong_schema(self, tmp_path):
        line = json.dumps({"event": "span-start", "schema": 99, "span": 0,
                           "parent": None, "name": "x", "t": 0.0, "attrs": {}})
        with pytest.raises(EbdaError, match="schema"):
            load_trace(self._write(tmp_path, [line]))

    def test_rejects_unknown_event(self, tmp_path):
        line = json.dumps({"event": "weird", "schema": 1, "span": 0,
                           "name": "x", "t": 0.0, "attrs": {}})
        with pytest.raises(EbdaError, match="unknown event"):
            load_trace(self._write(tmp_path, [line]))

    def test_rejects_missing_fields(self, tmp_path):
        line = json.dumps({"event": "span-end", "schema": 1, "span": 0})
        with pytest.raises(EbdaError, match="missing field"):
            load_trace(self._write(tmp_path, [line]))


class TestCheckBalance:
    def test_unclosed_span_detected(self):
        tracer = Tracer()
        tracer.span("open")
        with pytest.raises(EbdaError, match="never ended"):
            check_balance(tracer.events)

    def test_end_without_start_detected(self):
        events = [{"event": "span-end", "schema": 1, "span": 7, "name": "x",
                   "t": 1.0, "elapsed_s": 1.0, "attrs": {}}]
        with pytest.raises(EbdaError, match="without a matching start"):
            check_balance(events)

    def test_name_mismatch_detected(self):
        events = [
            {"event": "span-start", "schema": 1, "span": 0, "parent": None,
             "name": "a", "t": 0.0, "attrs": {}},
            {"event": "span-end", "schema": 1, "span": 0, "name": "b",
             "t": 1.0, "elapsed_s": 1.0, "attrs": {}},
        ]
        with pytest.raises(EbdaError, match="started as"):
            check_balance(events)

    def test_child_under_closed_parent_detected(self):
        events = [
            {"event": "span-start", "schema": 1, "span": 0, "parent": None,
             "name": "a", "t": 0.0, "attrs": {}},
            {"event": "span-end", "schema": 1, "span": 0, "name": "a",
             "t": 1.0, "elapsed_s": 1.0, "attrs": {}},
            {"event": "span-start", "schema": 1, "span": 1, "parent": 0,
             "name": "b", "t": 2.0, "attrs": {}},
            {"event": "span-end", "schema": 1, "span": 1, "name": "b",
             "t": 3.0, "elapsed_s": 1.0, "attrs": {}},
        ]
        with pytest.raises(EbdaError, match="not open"):
            check_balance(events)
