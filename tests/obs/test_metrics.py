"""Unit tests for the metrics registry and its two exporters."""

import json

import pytest

from repro.errors import EbdaError
from repro.obs import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_get_or_create_accumulates(self, registry):
        registry.counter("repro_hits_total").inc()
        registry.counter("repro_hits_total").inc(2)
        assert registry.counter("repro_hits_total").value == 3.0

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(EbdaError, match="cannot decrease"):
            registry.counter("c_total").inc(-1)

    def test_labels_separate_series(self, registry):
        registry.counter("c_total", labels={"backend": "vector"}).inc()
        registry.counter("c_total", labels={"backend": "reference"}).inc(5)
        assert registry.counter("c_total", labels={"backend": "vector"}).value == 1.0
        assert len(registry) == 2

    def test_label_order_irrelevant(self, registry):
        a = registry.counter("c_total", labels={"x": "1", "y": "2"})
        b = registry.counter("c_total", labels={"y": "2", "x": "1"})
        assert a is b


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.cumulative() == [(0.1, 1), (1.0, 3), (10.0, 4)]
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(EbdaError, match="at least one bucket"):
            registry.histogram("h", buckets=())


class TestRegistry:
    def test_kind_clash_rejected(self, registry):
        registry.counter("x")
        with pytest.raises(EbdaError, match="already registered"):
            registry.gauge("x")

    def test_bad_name_rejected(self, registry):
        with pytest.raises(EbdaError, match="bad metric name"):
            registry.counter("no spaces allowed")
        with pytest.raises(EbdaError, match="bad metric name"):
            registry.counter("9starts_with_digit")

    def test_reset_clears(self, registry):
        registry.counter("c_total").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.counter("c_total").value == 0.0

    def test_iteration_sorted(self, registry):
        registry.counter("b_total")
        registry.counter("a_total")
        assert [i.name for i in registry] == ["a_total", "b_total"]


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("repro_hits_total", help="Cache hits.").inc(3)
        registry.gauge("repro_level").set(1.5)
        text = registry.to_prometheus()
        assert "# HELP repro_hits_total Cache hits.\n" in text
        assert "# TYPE repro_hits_total counter\n" in text
        assert "repro_hits_total 3\n" in text
        assert "# TYPE repro_level gauge\n" in text
        assert "repro_level 1.5\n" in text

    def test_label_rendering(self, registry):
        registry.counter("c_total", labels={"backend": "vector"}).inc()
        assert 'c_total{backend="vector"} 1\n' in registry.to_prometheus()

    def test_histogram_series(self, registry):
        hist = registry.histogram("h_seconds", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(100.0)
        text = registry.to_prometheus()
        assert 'h_seconds_bucket{le="1"} 1\n' in text
        assert 'h_seconds_bucket{le="10"} 1\n' in text
        assert 'h_seconds_bucket{le="+Inf"} 2\n' in text
        assert "h_seconds_sum 100.5\n" in text
        assert "h_seconds_count 2\n" in text

    def test_type_header_emitted_once_per_name(self, registry):
        registry.counter("c_total", labels={"k": "a"}).inc()
        registry.counter("c_total", labels={"k": "b"}).inc()
        assert registry.to_prometheus().count("# TYPE c_total counter") == 1

    def test_empty_registry_empty_exposition(self, registry):
        assert registry.to_prometheus() == ""


class TestSnapshot:
    def test_records_are_strict_json(self, registry):
        registry.counter("c_total").inc()
        registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        for record in registry.snapshot():
            json.dumps(record, allow_nan=False)
            assert record["record"] == "metric"
            assert record["schema"] == 1

    def test_jsonl_export(self, registry, tmp_path):
        registry.counter("c_total").inc(2)
        path = tmp_path / "metrics.jsonl"
        assert registry.to_jsonl(path) == 2  # meta line + one instrument
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["record"] == "metrics-meta"
        assert lines[1] == {
            "schema": 1, "record": "metric", "name": "c_total",
            "kind": "counter", "labels": {}, "value": 2.0,
        }
