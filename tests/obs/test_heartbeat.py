"""Unit tests for heartbeat files and the ``repro top`` renderer."""

import json

import pytest

from repro.errors import EbdaError
from repro.obs import (
    HeartbeatWriter,
    load_heartbeat,
    read_heartbeats,
    render_top,
)


class FakeClock:
    def __init__(self, t=100.0):
        self.t = t

    def __call__(self):
        return self.t


class TestHeartbeatWriter:
    def test_beat_writes_valid_record(self, tmp_path):
        clock = FakeClock()
        writer = HeartbeatWriter("chaos-abc", "chaos", 50, tmp_path, clock=clock)
        clock.t = 110.0
        record = writer.beat(10, batch=2, disagreements=0)
        assert record["done"] == 10
        assert record["total"] == 50
        assert record["elapsed_s"] == pytest.approx(10.0)
        assert record["eta_s"] == pytest.approx(40.0)  # 10 trials in 10s, 40 left
        assert record["disagreements"] == 0
        assert load_heartbeat(writer.path) == record

    def test_atomic_replace_leaves_no_tmp(self, tmp_path):
        writer = HeartbeatWriter("x", "fuzz", 10, tmp_path)
        writer.beat(1)
        writer.beat(2)
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]

    def test_id_sanitised_for_filename(self, tmp_path):
        writer = HeartbeatWriter("mesh 4x4/adaptive", "chaos", 1, tmp_path)
        assert "/" not in writer.id and " " not in writer.id
        writer.beat(0)
        assert writer.path.exists()

    def test_unsafe_id_rejected(self, tmp_path):
        with pytest.raises(EbdaError, match="filename-safe"):
            HeartbeatWriter("", "chaos", 1, tmp_path)

    def test_finish_marks_done_with_zero_eta(self, tmp_path):
        clock = FakeClock()
        writer = HeartbeatWriter("x", "fuzz", 5, tmp_path, clock=clock)
        clock.t = 101.0
        record = writer.finish(5)
        assert record["state"] == "done"
        assert record["eta_s"] == 0.0
        assert writer.beats == 1

    def test_zero_done_has_no_eta(self, tmp_path):
        writer = HeartbeatWriter("x", "fuzz", 5, tmp_path, clock=FakeClock())
        assert writer.beat(0)["eta_s"] is None

    def test_non_json_extra_rejected(self, tmp_path):
        writer = HeartbeatWriter("x", "fuzz", 5, tmp_path)
        with pytest.raises(EbdaError, match="strict-JSON"):
            writer.beat(1, payload=object())


class TestLoadHeartbeat:
    def test_missing_file(self, tmp_path):
        with pytest.raises(EbdaError, match="cannot read"):
            load_heartbeat(tmp_path / "nope.json")

    def test_not_a_heartbeat(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"record": "bench"}))
        with pytest.raises(EbdaError, match="not a heartbeat"):
            load_heartbeat(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"record": "heartbeat", "schema": 99}))
        with pytest.raises(EbdaError, match="schema"):
            load_heartbeat(path)

    def test_missing_fields(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"record": "heartbeat", "schema": 1, "id": "x"}))
        with pytest.raises(EbdaError, match="missing field"):
            load_heartbeat(path)


class TestReadHeartbeats:
    def test_most_recent_first_and_torn_skipped(self, tmp_path):
        old = FakeClock(100.0)
        new = FakeClock(200.0)
        HeartbeatWriter("old", "fuzz", 5, tmp_path, clock=old).beat(1)
        HeartbeatWriter("new", "chaos", 5, tmp_path, clock=new).beat(1)
        (tmp_path / "torn.json").write_text('{"half a rec')
        ids = [r["id"] for r in read_heartbeats(tmp_path)]
        assert ids == ["new", "old"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert list(read_heartbeats(tmp_path / "absent")) == []


class TestRenderTop:
    def test_empty(self, tmp_path):
        assert render_top(directory=tmp_path) == "(no campaign heartbeats)"

    def test_renders_progress_row(self, tmp_path):
        clock = FakeClock()
        writer = HeartbeatWriter("camp", "chaos", 100, tmp_path, clock=clock)
        clock.t = 110.0
        writer.beat(25, n_clean=20, n_deadlock=5)
        out = render_top(directory=tmp_path, now=110.0)
        row = out.splitlines()[1]
        assert "camp" in row
        assert "25/100" in row
        assert "2.5/s" in row
        assert "30s" in row  # eta: 75 left at 2.5/s
        assert "running" in row
        assert "n_clean=20" in row and "n_deadlock=5" in row

    def test_stale_campaign_flagged(self, tmp_path):
        clock = FakeClock(100.0)
        writer = HeartbeatWriter("camp", "fuzz", 10, tmp_path, clock=clock)
        writer.beat(1)
        out = render_top(directory=tmp_path, now=100.0 + 120.0)
        assert "stale 120s" in out

    def test_done_campaign_not_stale(self, tmp_path):
        clock = FakeClock(100.0)
        HeartbeatWriter("camp", "fuzz", 10, tmp_path, clock=clock).finish(10)
        out = render_top(directory=tmp_path, now=100.0 + 120.0)
        assert "stale" not in out
        assert "done" in out
