"""CLI surface of the observability runtime: --spans-out / --ledger on
pipeline commands, `repro runs`, `repro top`, and campaign progress."""

import json

import pytest

from repro.cli import main
from repro.obs import HeartbeatWriter, check_balance, load_trace, set_ledger


@pytest.fixture(autouse=True)
def _clean_obs(monkeypatch):
    monkeypatch.delenv("REPRO_EBDA_LEDGER_DIR", raising=False)
    monkeypatch.delenv("REPRO_EBDA_HEARTBEAT_DIR", raising=False)
    previous = set_ledger(None)
    yield
    set_ledger(previous)


SWEEP = ["sweep", "xy", "--mesh", "4x4", "--rates", "0.05",
         "--cycles", "150", "--no-cache"]


class TestSpansOut:
    def test_sweep_writes_balanced_trace(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(SWEEP + ["--spans-out", str(spans)]) == 0
        err = capsys.readouterr().err
        assert f"-> {spans}" in err
        events = load_trace(spans)
        check_balance(events)
        names = {e["name"] for e in events if e["event"] == "span-start"}
        assert "sweep.run_many" in names
        assert "sweep.simulate" in names

    def test_lint_writes_lint_unit_spans(self, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(["lint", "odd-even", "--spans-out", str(spans)]) == 0
        events = load_trace(spans)
        check_balance(events)
        assert any(
            e["name"] == "lint.unit"
            for e in events
            if e["event"] == "span-start"
        )


class TestLedgerFlag:
    def test_sweep_appends_and_runs_list_shows_it(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        assert main(SWEEP + ["--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out
        assert "RUN-ID" in out

    def test_runs_show_by_prefix(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        main(SWEEP + ["--ledger", str(ledger)])
        capsys.readouterr()
        main(["runs", "list", "--ledger", str(ledger)])
        run_id = capsys.readouterr().out.splitlines()[1].split()[0]
        assert main(["runs", "show", run_id[:8], "--ledger", str(ledger)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["run_id"] == run_id
        assert record["kind"] == "sweep"

    def test_runs_show_unknown_prefix_exits(self, tmp_path):
        ledger = tmp_path / "ledger"
        main(SWEEP + ["--ledger", str(ledger)])
        with pytest.raises(SystemExit):
            main(["runs", "show", "ffffffff", "--ledger", str(ledger)])

    def test_runs_diff_clean_after_rerun(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        main(SWEEP + ["--ledger", str(ledger)])
        main(SWEEP + ["--ledger", str(ledger)])
        capsys.readouterr()
        assert main(["runs", "diff", "--ledger", str(ledger)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_runs_list_empty_ledger(self, tmp_path, capsys):
        assert main(["runs", "list", "--ledger", str(tmp_path)]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_lint_records_run(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        assert main(["lint", "odd-even", "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        main(["runs", "list", "--ledger", str(ledger)])
        assert "lint" in capsys.readouterr().out

    def test_certify_records_run(self, tmp_path, capsys):
        ledger = tmp_path / "ledger"
        assert main(
            ["certify", "mesh-backward-turn", "--ledger", str(ledger)]
        ) == 0
        capsys.readouterr()
        main(["runs", "list", "--ledger", str(ledger)])
        assert "certify" in capsys.readouterr().out


class TestSweepStageSummary:
    def test_stage_times_in_cli_summary(self, capsys):
        assert main(SWEEP) == 0
        out = capsys.readouterr().out
        assert "stages:" in out
        assert "simulate=" in out
        assert "simulate:reference=" in out


class TestFuzzProgress:
    def test_progress_lines_by_default(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_EBDA_HEARTBEAT_DIR", str(tmp_path))
        assert main(["fuzz", "--runs", "4", "--fast"]) == 0
        err = capsys.readouterr().err
        assert "fuzz:" in err and "trials" in err
        assert list(tmp_path.glob("fuzz-*.json"))

    def test_quiet_suppresses_progress(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_EBDA_HEARTBEAT_DIR", str(tmp_path))
        assert main(["fuzz", "--runs", "4", "--fast", "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "fuzz:" not in err
        assert not list(tmp_path.glob("fuzz-*.json"))


class TestTop:
    def test_one_shot_renders_heartbeats(self, tmp_path, capsys):
        HeartbeatWriter("camp", "chaos", 10, tmp_path).beat(3)
        assert main(["top", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "camp" in out
        assert "3/10" in out

    def test_empty_directory(self, tmp_path, capsys):
        assert main(["top", "--dir", str(tmp_path)]) == 0
        assert "no campaign heartbeats" in capsys.readouterr().out
