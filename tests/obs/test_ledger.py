"""Unit tests for the run ledger: identity, drift, append-only JSONL."""

import json

import pytest

from repro.errors import EbdaError
from repro.obs import (
    RunLedger,
    RunRecord,
    current_ledger,
    outcome_digest,
    record_run,
    set_ledger,
)


@pytest.fixture(autouse=True)
def _no_installed_ledger():
    previous = set_ledger(None)
    yield
    set_ledger(previous)


class TestOutcomeDigest:
    def test_deterministic_and_order_free(self):
        assert outcome_digest({"a": 1, "b": 2}) == outcome_digest({"b": 2, "a": 1})

    def test_different_payloads_differ(self):
        assert outcome_digest({"a": 1}) != outcome_digest({"a": 2})

    def test_rejects_non_json(self):
        with pytest.raises(EbdaError, match="strict-JSON"):
            outcome_digest(object())
        with pytest.raises(EbdaError, match="strict-JSON"):
            outcome_digest(float("inf"))


class TestRunRecord:
    def test_unknown_kind_rejected(self):
        with pytest.raises(EbdaError, match="unknown run kind"):
            RunRecord(kind="dance", spec="x")

    def test_run_id_covers_identity_not_outcome(self):
        a = RunRecord(kind="sweep", spec="s", seed=1, outcome="ok", wall_s=1.0)
        b = RunRecord(kind="sweep", spec="s", seed=1, outcome="deadlock", wall_s=9.0)
        assert a.run_id == b.run_id
        assert a.run_id != RunRecord(kind="sweep", spec="s", seed=2).run_id

    def test_run_id_changes_with_versions(self):
        a = RunRecord(kind="fuzz", spec="s", versions={"repro": "1.0"})
        b = RunRecord(kind="fuzz", spec="s", versions={"repro": "2.0"})
        assert a.run_id != b.run_id
        assert a.identity == b.identity  # the drift group key is version-free

    def test_dict_round_trip(self):
        record = RunRecord(kind="chaos", spec="tok", backend="vector", seed=3,
                           outcome="ok", digest="ab" * 8, wall_s=1.5,
                           created_at=123.0)
        again = RunRecord.from_dict(record.to_dict())
        assert again == record
        assert again.run_id == record.run_id

    def test_tampered_line_detected(self):
        data = RunRecord(kind="lint", spec="x").to_dict()
        data["spec"] = "y"  # edit the line without recomputing run_id
        with pytest.raises(EbdaError, match="id mismatch"):
            RunRecord.from_dict(data)

    def test_wrong_schema_rejected(self):
        data = RunRecord(kind="lint", spec="x").to_dict()
        data["schema"] = 99
        with pytest.raises(EbdaError, match="schema"):
            RunRecord.from_dict(data)


class TestRunLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(RunRecord(kind="sweep", spec="a"))
        ledger.append(RunRecord(kind="fuzz", spec="b"))
        records = ledger.records()
        assert [r.kind for r in records] == ["sweep", "fuzz"]
        assert len(ledger) == 2
        assert all(r.created_at > 0 for r in records)

    def test_append_only_jsonl_on_disk(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(RunRecord(kind="sweep", spec="a"))
        before = ledger.path.read_text()
        ledger.append(RunRecord(kind="sweep", spec="b"))
        assert ledger.path.read_text().startswith(before)

    def test_find_by_prefix(self, tmp_path):
        ledger = RunLedger(tmp_path)
        record = ledger.append(RunRecord(kind="chaos", spec="tok"))
        assert ledger.find(record.run_id[:6]) == [record]
        assert ledger.find("ffffff" * 3) == []

    def test_corrupt_line_raises(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(RunRecord(kind="sweep", spec="a"))
        with ledger.path.open("a") as fh:
            fh.write("{broken\n")
        with pytest.raises(EbdaError, match="not valid JSON"):
            ledger.records()

    def test_empty_ledger(self, tmp_path):
        ledger = RunLedger(tmp_path)
        assert ledger.records() == []
        assert ledger.drift() == []


class TestDrift:
    def test_version_drift_detected(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(RunRecord(kind="sweep", spec="s", digest="aaaa",
                                versions={"repro": "1.0", "python": "3"}))
        ledger.append(RunRecord(kind="sweep", spec="s", digest="bbbb",
                                versions={"repro": "2.0", "python": "3"}))
        rows = ledger.drift()
        assert len(rows) == 1
        assert rows[0]["spec"] == "s"
        assert [v["digest"] for v in rows[0]["variants"]] == ["aaaa", "bbbb"]

    def test_stable_digest_is_not_drift(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for version in ("1.0", "2.0"):
            ledger.append(RunRecord(kind="sweep", spec="s", digest="aaaa",
                                    versions={"repro": version, "python": "3"}))
        assert ledger.drift() == []

    def test_same_version_nondeterminism_is_drift(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for digest in ("aaaa", "bbbb"):
            ledger.append(RunRecord(kind="chaos", spec="s", digest=digest,
                                    versions={"repro": "1.0", "python": "3"}))
        rows = ledger.drift()
        assert len(rows) == 1
        assert len(rows[0]["variants"]) == 2

    def test_distinct_identities_do_not_group(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(RunRecord(kind="sweep", spec="s", seed=1, digest="aaaa"))
        ledger.append(RunRecord(kind="sweep", spec="s", seed=2, digest="bbbb"))
        assert ledger.drift() == []


class TestCurrentLedger:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EBDA_LEDGER_DIR", raising=False)
        assert current_ledger() is None
        assert record_run("sweep", spec="x") is None

    def test_env_var_activates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EBDA_LEDGER_DIR", str(tmp_path))
        record = record_run("fuzz", spec="x", payload={"n": 1}, wall_s=0.5)
        assert record is not None
        assert RunLedger(tmp_path).records() == [record]

    def test_set_ledger_overrides_and_restores(self, tmp_path):
        installed = RunLedger(tmp_path)
        previous = set_ledger(installed)
        try:
            assert current_ledger() is installed
            record_run("lint", spec="x", payload=["EBDA001"])
            assert len(installed) == 1
        finally:
            set_ledger(previous)

    def test_set_ledger_accepts_path(self, tmp_path):
        previous = set_ledger(tmp_path)
        try:
            assert current_ledger().directory == tmp_path
        finally:
            set_ledger(previous)

    def test_payload_digested_not_stored(self, tmp_path):
        previous = set_ledger(tmp_path)
        try:
            record_run("chaos", spec="x", payload={"secret": list(range(100))})
        finally:
            set_ledger(previous)
        line = json.loads(RunLedger(tmp_path).path.read_text())
        assert "payload" not in line
        assert line["digest"] == outcome_digest({"secret": list(range(100))})
