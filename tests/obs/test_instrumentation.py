"""Cross-subsystem integration: every instrumented path emits balanced
spans, bumps the process metrics, beats heartbeats, and appends ledger
records — without changing what the subsystem computes."""

import pytest

from repro.analyze import Analyzer, DesignUnit
from repro.chaos import CampaignConfig, ChaosCampaign
from repro.fuzz import fast_profile, run_fuzz
from repro.obs import (
    REGISTRY,
    HeartbeatWriter,
    RunLedger,
    Tracer,
    check_balance,
    load_heartbeat,
    set_ledger,
    tracing,
)
from repro.sim import RunConfig
from repro.sim.parallel import ResultCache, SweepEngine
from repro.topology import Mesh

CONFIG = RunConfig(cycles=150, seed=3, watchdog=300)


@pytest.fixture(autouse=True)
def _clean_obs(monkeypatch):
    monkeypatch.delenv("REPRO_EBDA_LEDGER_DIR", raising=False)
    previous = set_ledger(None)
    REGISTRY.reset()
    yield
    set_ledger(previous)
    REGISTRY.reset()


def spans_named(tracer, name):
    return [
        e for e in tracer.events if e["event"] == "span-start" and e["name"] == name
    ]


class TestSweepInstrumentation:
    def test_traced_sweep_is_balanced_with_stage_spans(self, tmp_path):
        engine = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "cache"))
        tracer = Tracer()
        with tracing(tracer):
            engine.sweep(Mesh(4, 4), "xy", [0.05, 0.1], CONFIG)
        check_balance(tracer.events)
        assert len(spans_named(tracer, "sweep.run_many")) == 1
        assert spans_named(tracer, "sweep.simulate")
        assert spans_named(tracer, "sweep.cache_read")
        assert spans_named(tracer, "sweep.cache_write")

    def test_cache_metrics_track_hits_and_misses(self, tmp_path):
        engine = SweepEngine(jobs=1, cache=ResultCache(tmp_path / "cache"))
        engine.sweep(Mesh(4, 4), "xy", [0.05], CONFIG)
        misses = REGISTRY.counter("repro_cache_misses_total").value
        assert misses >= 1
        engine.sweep(Mesh(4, 4), "xy", [0.05], CONFIG)
        assert REGISTRY.counter("repro_cache_hits_total").value >= 1
        assert REGISTRY.counter("repro_cache_misses_total").value == misses

    def test_simulate_histogram_labelled_by_backend(self, tmp_path):
        engine = SweepEngine(jobs=1, cache=None)
        engine.sweep(Mesh(4, 4), "xy", [0.05], CONFIG)
        hist = REGISTRY.histogram(
            "repro_simulate_seconds", labels={"backend": CONFIG.backend}
        )
        assert hist.count >= 1

    def test_stage_summary_lists_simulate_backend(self):
        engine = SweepEngine(jobs=1, cache=None)
        report = engine.sweep(Mesh(4, 4), "xy", [0.05], CONFIG)
        summary = report.stage_summary()
        assert summary.startswith("stages:")
        assert "simulate=" in summary
        assert f"simulate:{CONFIG.backend}=" in summary

    def test_sweep_appends_ledger_record(self, tmp_path):
        set_ledger(tmp_path)
        try:
            SweepEngine(jobs=1, cache=None).sweep(Mesh(4, 4), "xy", [0.05], CONFIG)
        finally:
            set_ledger(None)
        records = RunLedger(tmp_path).records()
        assert [r.kind for r in records] == ["sweep"]
        assert records[0].outcome == "ok"
        assert records[0].backend == CONFIG.backend


class TestFuzzInstrumentation:
    def test_traced_fuzz_balanced_with_campaign_and_batches(self, tmp_path):
        tracer = Tracer()
        set_ledger(tmp_path)
        try:
            with tracing(tracer):
                report = run_fuzz(6, seed=0, profile=fast_profile())
        finally:
            set_ledger(None)
        assert report.runs_completed == 6
        check_balance(tracer.events)
        campaign = spans_named(tracer, "fuzz.campaign")
        assert len(campaign) == 1
        assert spans_named(tracer, "fuzz.batch")
        end = next(
            e
            for e in tracer.events
            if e["event"] == "span-end" and e["name"] == "fuzz.campaign"
        )
        assert end["attrs"]["completed"] == 6
        assert REGISTRY.counter("repro_fuzz_trials_total").value == 6
        records = RunLedger(tmp_path).records()
        assert [r.kind for r in records] == ["fuzz"]
        assert records[0].outcome == "ok"

    def test_fuzz_progress_and_heartbeat_per_batch(self, tmp_path):
        lines = []
        writer = HeartbeatWriter("fuzz-0", "fuzz", 6, tmp_path)
        run_fuzz(6, seed=0, profile=fast_profile(),
                 progress=lines.append, heartbeat=writer)
        assert lines and all("trials" in line for line in lines)
        final = load_heartbeat(writer.path)
        assert final["state"] == "done"
        assert final["done"] == 6


class TestChaosInstrumentation:
    def test_traced_chaos_balanced_with_ledger_and_heartbeat(self, tmp_path):
        config = CampaignConfig(trials=4, seed=0, mesh=(4, 4), cycles=200)
        tracer = Tracer()
        writer = HeartbeatWriter(config.token(), "chaos", 4, tmp_path / "hb")
        lines = []
        set_ledger(tmp_path / "ledger")
        try:
            with tracing(tracer):
                report = ChaosCampaign(config).run(
                    progress=lines.append, heartbeat=writer
                )
        finally:
            set_ledger(None)
        assert report.trials_completed == 4
        check_balance(tracer.events)
        assert len(spans_named(tracer, "chaos.campaign")) == 1
        assert spans_named(tracer, "chaos.batch")
        assert lines
        final = load_heartbeat(writer.path)
        assert final["state"] == "done"
        assert final["done"] == 4
        assert REGISTRY.counter("repro_chaos_trials_total").value == 4
        records = RunLedger(tmp_path / "ledger").records()
        assert [r.kind for r in records] == ["chaos"]
        assert records[0].spec == config.token()

    def test_chaos_rerun_digest_is_stable(self, tmp_path):
        config = CampaignConfig(trials=4, seed=0, mesh=(4, 4), cycles=200)
        set_ledger(tmp_path)
        try:
            ChaosCampaign(config).run()
            ChaosCampaign(config).run()
        finally:
            set_ledger(None)
        ledger = RunLedger(tmp_path)
        first, second = ledger.records()
        assert first.digest == second.digest
        assert ledger.drift() == []


class TestLintInstrumentation:
    def test_lint_unit_span_and_counters(self):
        tracer = Tracer()
        with tracing(tracer):
            report = Analyzer().run(DesignUnit.from_sequence("X+ -> Y+", name="ok"))
        check_balance(tracer.events)
        starts = spans_named(tracer, "lint.unit")
        assert len(starts) == 1
        assert starts[0]["attrs"]["unit"] == "ok"
        end = next(e for e in tracer.events if e["event"] == "span-end")
        assert end["attrs"]["diagnostics"] == len(report.diagnostics)
        assert REGISTRY.counter("repro_lint_units_total").value == 1
