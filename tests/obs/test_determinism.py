"""Observability must never alter results, cache keys, or seeds.

The contract: tracing, metrics, heartbeats and the ledger are pure
observers.  Enabling any of them produces bit-identical ``SimStats``,
identical spec tokens and cache keys, and rerunning a campaign appends
ledger records with identical outcome digests (no self-drift).
"""

import pytest

from repro import RunConfig, run_point
from repro.obs import RunLedger, Tracer, set_ledger, tracing
from repro.sim.parallel import SweepEngine, cache_key, point_token, sweep_token
from repro.topology import Mesh


@pytest.fixture(autouse=True)
def _no_installed_ledger(monkeypatch):
    monkeypatch.delenv("REPRO_EBDA_LEDGER_DIR", raising=False)
    previous = set_ledger(None)
    yield
    set_ledger(previous)


CONFIG = RunConfig(cycles=150, seed=7, watchdog=300)


class TestTracingDeterminism:
    def test_traced_run_point_identical_stats(self):
        mesh = Mesh(4, 4)
        plain = run_point(mesh, "xy", CONFIG)
        with tracing(Tracer()):
            traced = run_point(mesh, "xy", CONFIG)
        assert traced.stats.to_dict() == plain.stats.to_dict()

    def test_traced_sweep_identical_stats(self):
        mesh = Mesh(4, 4)
        rates = [0.05, 0.1]
        engine = SweepEngine(jobs=1, cache=None)
        plain = engine.sweep(mesh, "xy", rates, CONFIG)
        tracer = Tracer()
        with tracing(tracer):
            traced = engine.sweep(mesh, "xy", rates, CONFIG)
        assert [r.stats.to_dict() for r in traced.results] == [
            r.stats.to_dict() for r in plain.results
        ]
        assert len(tracer) > 0  # the traced run really was traced

    def test_tokens_unaffected_by_active_tracer(self):
        mesh = Mesh(4, 4)
        plain = (
            point_token(mesh, "xy", CONFIG),
            sweep_token(mesh, "xy", [0.05], CONFIG),
            cache_key(mesh, "xy", CONFIG),
        )
        tracer = Tracer()
        with tracing(tracer):
            # Span attrs carry run metadata; none of it may reach the tokens.
            with tracer.span("outer", seed=999, cycles=1):
                traced = (
                    point_token(mesh, "xy", CONFIG),
                    sweep_token(mesh, "xy", [0.05], CONFIG),
                    cache_key(mesh, "xy", CONFIG),
                )
        assert traced == plain
        assert all(token is not None for token in plain)


class TestLedgerDeterminism:
    def test_ledger_does_not_change_stats(self, tmp_path):
        mesh = Mesh(4, 4)
        plain = run_point(mesh, "xy", CONFIG)
        set_ledger(tmp_path)
        try:
            recorded = run_point(mesh, "xy", CONFIG)
        finally:
            set_ledger(None)
        assert recorded.stats.to_dict() == plain.stats.to_dict()
        assert len(RunLedger(tmp_path)) == 1

    def test_rerun_appends_identical_digest(self, tmp_path):
        mesh = Mesh(4, 4)
        set_ledger(tmp_path)
        try:
            run_point(mesh, "xy", CONFIG)
            run_point(mesh, "xy", CONFIG)
        finally:
            set_ledger(None)
        ledger = RunLedger(tmp_path)
        first, second = ledger.records()
        assert first.run_id == second.run_id
        assert first.digest == second.digest
        assert ledger.drift() == []

    def test_sweep_rerun_has_no_self_drift(self, tmp_path):
        mesh = Mesh(4, 4)
        engine = SweepEngine(jobs=1, cache=None)
        set_ledger(tmp_path)
        try:
            engine.sweep(mesh, "xy", [0.05], CONFIG)
            engine.sweep(mesh, "xy", [0.05], CONFIG)
        finally:
            set_ledger(None)
        ledger = RunLedger(tmp_path)
        digests = {r.digest for r in ledger.records() if r.kind == "sweep"}
        assert len(digests) == 1
        assert ledger.drift() == []

    def test_wall_time_not_in_identity_or_digest(self, tmp_path):
        # Two runs never share wall time; identity and digest must anyway.
        mesh = Mesh(4, 4)
        set_ledger(tmp_path)
        try:
            run_point(mesh, "xy", CONFIG)
            run_point(mesh, "xy", CONFIG)
        finally:
            set_ledger(None)
        first, second = RunLedger(tmp_path).records()
        assert first.wall_s != second.wall_s or first.wall_s >= 0
        assert first.identity == second.identity
        assert first.digest == second.digest
