"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments_and_designs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table1" in out
        assert "north-last" in out
        assert "column-parity" in out


class TestVerify:
    def test_arrow_notation_acyclic(self, capsys):
        assert main(["verify", "X+ X- Y- -> Y+", "--mesh", "4x4"]) == 0
        assert "ACYCLIC" in capsys.readouterr().out

    def test_catalog_name_with_implied_rule(self, capsys):
        assert main(["verify", "odd-even", "--mesh", "4x4"]) == 0

    def test_explicit_rule(self, capsys):
        assert main(["verify", "hamiltonian", "--mesh", "4x4", "--rule", "row-parity"]) == 0

    def test_invalid_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "X+ X- Y+ Y-", "--mesh", "4x4"])

    def test_bad_mesh_spec(self):
        with pytest.raises(SystemExit):
            main(["verify", "xy", "--mesh", "huge"])

    def test_unknown_rule(self):
        with pytest.raises(SystemExit):
            main(["verify", "xy", "--mesh", "4x4", "--rule", "nope"])


class TestDesign:
    def test_budget_design(self, capsys):
        assert main(["design", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1 output" in out
        assert "ACYCLIC" in out

    def test_bad_budget(self):
        with pytest.raises(SystemExit):
            main(["design", "abc"])


class TestRun:
    def test_single_experiment(self, capsys):
        assert main(["run", "Fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig4" in out and "[PASS]" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "Fig99"])


class TestSimulate:
    def test_catalog_design(self, capsys):
        code = main(
            ["simulate", "north-last", "--mesh", "4x4", "--cycles", "300",
             "--rate", "0.05"]
        )
        assert code == 0
        assert "delivered" in capsys.readouterr().out

    def test_arrow_notation(self, capsys):
        code = main(
            ["simulate", "X- -> X+ Y+ Y-", "--mesh", "4x4", "--cycles", "200"]
        )
        assert code == 0

    def test_fault_injection_with_recovery(self, capsys):
        code = main(
            ["simulate", "negative-first", "--mesh", "4x4", "--cycles", "200",
             "--rate", "0.05", "--fail-link", "1,1-2,1", "--fail-at", "50",
             "--drops", "1", "--recover"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out
        assert "reroute" in out.lower()

    def test_bad_link_spec_exits(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "negative-first", "--mesh", "4x4",
                 "--fail-link", "garbage"]
            )


class TestLogic:
    def test_emits_routing_pseudocode(self, capsys):
        assert main(["logic", "north-last", "--mesh", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "if X_offset" in out
        assert "arriving on" in out
