"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments_and_designs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table1" in out
        assert "north-last" in out
        assert "column-parity" in out


class TestVerify:
    def test_arrow_notation_acyclic(self, capsys):
        assert main(["verify", "X+ X- Y- -> Y+", "--mesh", "4x4"]) == 0
        assert "ACYCLIC" in capsys.readouterr().out

    def test_catalog_name_with_implied_rule(self, capsys):
        assert main(["verify", "odd-even", "--mesh", "4x4"]) == 0

    def test_explicit_rule(self, capsys):
        assert main(["verify", "hamiltonian", "--mesh", "4x4", "--rule", "row-parity"]) == 0

    def test_invalid_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["verify", "X+ X- Y+ Y-", "--mesh", "4x4"])

    def test_bad_mesh_spec(self):
        with pytest.raises(SystemExit):
            main(["verify", "xy", "--mesh", "huge"])

    def test_unknown_rule(self):
        with pytest.raises(SystemExit):
            main(["verify", "xy", "--mesh", "4x4", "--rule", "nope"])


class TestDesign:
    def test_budget_design(self, capsys):
        assert main(["design", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 1 output" in out
        assert "ACYCLIC" in out

    def test_bad_budget(self):
        with pytest.raises(SystemExit):
            main(["design", "abc"])


class TestRun:
    def test_single_experiment(self, capsys):
        assert main(["run", "Fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig4" in out and "[PASS]" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["run", "Fig99"])


class TestSimulate:
    def test_catalog_design(self, capsys):
        code = main(
            ["simulate", "north-last", "--mesh", "4x4", "--cycles", "300",
             "--rate", "0.05"]
        )
        assert code == 0
        assert "delivered" in capsys.readouterr().out

    def test_arrow_notation(self, capsys):
        code = main(
            ["simulate", "X- -> X+ Y+ Y-", "--mesh", "4x4", "--cycles", "200"]
        )
        assert code == 0

    def test_fault_injection_with_recovery(self, capsys):
        code = main(
            ["simulate", "negative-first", "--mesh", "4x4", "--cycles", "200",
             "--rate", "0.05", "--fail-link", "1,1-2,1", "--fail-at", "50",
             "--drops", "1", "--recover"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered" in out
        assert "reroute" in out.lower()

    def test_bad_link_spec_exits(self):
        with pytest.raises(SystemExit):
            main(
                ["simulate", "negative-first", "--mesh", "4x4",
                 "--fail-link", "garbage"]
            )


class TestSimulateCache:
    def test_second_run_served_from_cache(self, capsys, tmp_path):
        argv = ["simulate", "north-last", "--mesh", "4x4", "--cycles", "300",
                "--rate", "0.05", "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert "cache" not in capsys.readouterr().out
        assert main(argv) == 0
        assert "served from cache" in capsys.readouterr().out

    def test_bad_jobs_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "xy", "--mesh", "4x4", "--jobs", "0"])


class TestSweepCommand:
    def test_table_and_summary(self, capsys, tmp_path):
        argv = ["sweep", "west-first", "--mesh", "4x4",
                "--rates", "0.02,0.05", "--cycles", "300",
                "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "west-first" in out
        assert "0.020" in out
        assert "cache 0 hit/2 miss" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache 2 hit/0 miss" in out
        assert "0 sim cycles" in out

    def test_report_file(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "report.json"
        argv = ["sweep", "xy", "--mesh", "4x4", "--rates", "0.02",
                "--cycles", "200", "--report", str(report_path)]
        assert main(argv) == 0
        payload = json.loads(report_path.read_text())
        assert payload["n_points"] == 1

    def test_jobs_flag(self, capsys):
        argv = ["sweep", "xy", "--mesh", "4x4", "--rates", "0.02,0.05",
                "--cycles", "200", "--jobs", "2"]
        assert main(argv) == 0

    def test_unknown_routing_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "not-a-routing", "--mesh", "4x4", "--rates", "0.02"])


class TestRunEngineFlags:
    def test_run_with_jobs(self, capsys):
        assert main(["run", "Fig4", "--jobs", "2"]) == 0
        assert "[PASS]" in capsys.readouterr().out


class TestLogic:
    def test_emits_routing_pseudocode(self, capsys):
        assert main(["logic", "north-last", "--mesh", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "if X_offset" in out
        assert "arriving on" in out


class TestTelemetryCli:
    def _export(self, tmp_path, capsys):
        mpath = tmp_path / "metrics.jsonl"
        code = main(
            ["simulate", "west-first", "--mesh", "4x4", "--cycles", "300",
             "--rate", "0.05", "--metrics-out", str(mpath),
             "--sample-every", "50"]
        )
        assert code == 0
        capsys.readouterr()
        return mpath

    def test_simulate_exports_metrics_and_trace(self, capsys, tmp_path):
        mpath = tmp_path / "metrics.jsonl"
        tpath = tmp_path / "trace.jsonl"
        code = main(
            ["simulate", "xy", "--mesh", "4x4", "--cycles", "200",
             "--rate", "0.05", "--metrics-out", str(mpath),
             "--trace-out", str(tpath)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out and "trace:" in out
        assert mpath.exists() and tpath.exists()
        import json

        first = json.loads(mpath.read_text().splitlines()[0])
        assert first["record"] == "meta"

    def test_inspect_renders_all_sections(self, capsys, tmp_path):
        mpath = self._export(tmp_path, capsys)
        assert main(["inspect", str(mpath)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "link utilization" in out
        assert "no deadlock forensics" in out

    def test_inspect_heatmap_only(self, capsys, tmp_path):
        mpath = self._export(tmp_path, capsys)
        assert main(["inspect", str(mpath), "--heatmap"]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" not in out
        # west-first partitions key the rollup
        assert "P1" in out or "X-" in out or "partition" in out

    def test_inspect_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["inspect", str(bad)])

    def test_inspect_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["inspect", str(tmp_path / "absent.jsonl")])

    def test_sweep_metrics_out_writes_per_point_lines(self, capsys, tmp_path):
        import json

        mpath = tmp_path / "sweep-metrics.jsonl"
        argv = ["sweep", "xy", "--mesh", "4x4", "--rates", "0.02,0.05",
                "--cycles", "200", "--metrics-out", str(mpath),
                "--sample-every", "50"]
        assert main(argv) == 0
        assert "per-point metrics" in capsys.readouterr().out
        lines = mpath.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(ln) for ln in lines]
        assert all(r["record"] == "sweep-point" for r in records)
        assert [r["injection_rate"] for r in records] == [0.02, 0.05]
        assert all(r["samples"] > 0 for r in records)


class TestLint:
    def test_catalog_design_clean_exit_zero(self, capsys):
        assert main(["lint", "west-first"]) == 0
        out = capsys.readouterr().out
        assert "west-first" in out
        assert "checked 1 design(s)" in out

    def test_all_catalog_designs_lint_clean(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out.splitlines()[-1]

    def test_invalid_design_reports_and_fails(self, capsys):
        assert main(["lint", "X+ X- Y+ Y- -> X2+"]) == 1
        out = capsys.readouterr().out
        assert "EBDA001" in out
        assert "error" in out

    def test_fail_on_never_masks_exit(self, capsys):
        assert main(["lint", "X+ X- Y+ Y- -> X2+", "--fail-on", "never"]) == 0

    def test_fail_on_note_tightens(self, capsys):
        # west-first is error-free but carries EBDA010 notes
        assert main(["lint", "west-first", "--fail-on", "note"]) == 1

    def test_torus_topology_flags_unbroken_rings(self, capsys):
        assert main(["lint", "X+ X- -> Y+ Y-", "--torus", "4x4"]) == 1
        assert "EBDA005" in capsys.readouterr().out

    def test_no_topology_skips_ring_check(self, capsys):
        assert main(["lint", "X+ X- -> Y+ Y-", "--no-topology"]) == 0

    def test_select_runs_exactly_those_rules(self, capsys):
        import json

        assert main([
            "lint", "west-first", "--select", "EBDA001,EBDA011",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["designs"][0]["rules_run"] == ["EBDA001", "EBDA011"]

    def test_unknown_select_exits(self):
        with pytest.raises(SystemExit, match="unknown rule id"):
            main(["lint", "xy", "--select", "EBDA999"])

    def test_sarif_output_to_file(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "lint.sarif"
        assert main([
            "lint", "west-first", "--format", "sarif",
            "--output", str(out_file),
        ]) == 0
        log = json.loads(out_file.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_baseline_round_trip(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        bad = "X+ X- Y+ Y- -> X2+"
        assert main(["lint", bad, "--write-baseline", str(baseline)]) == 0
        assert main(["lint", bad, "--baseline", str(baseline)]) == 0

    def test_missing_baseline_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["lint", "xy", "--baseline", str(tmp_path / "nope.json")])

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "EBDA001" in out and "EBDA011" in out
        assert "Theorem 1" in out

    def test_nothing_to_lint_exits(self):
        with pytest.raises(SystemExit, match="nothing to lint"):
            main(["lint"])

    def test_unparseable_design_exits(self):
        with pytest.raises(SystemExit, match="cannot parse"):
            main(["lint", "garbage spec"])

    def test_full_adaptive_claim_arms_ebda009(self, capsys):
        assert main(["lint", "X+ X- Y- -> Y+", "--full-adaptive"]) == 1
        assert "EBDA009" in capsys.readouterr().out


class TestChaosCli:
    ARGS = ["chaos", "--trials", "6", "--cycles", "150", "--mesh", "3x3"]

    def test_runs_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "chaos survival report" in out
        assert "P[delivered]" in out

    def test_out_writes_loadable_jsonl(self, capsys, tmp_path):
        from repro.chaos import load_survival

        path = tmp_path / "campaign.jsonl"
        assert main(self.ARGS + ["--out", str(path)]) == 0
        records = load_survival(path)
        assert records[0]["record"] == "campaign-meta"
        assert sum(1 for r in records if r["record"] == "trial") == 6

    def test_out_is_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(self.ARGS + ["--out", str(a)]) == 0
        assert main(self.ARGS + ["--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_load_renders_existing_report(self, capsys, tmp_path):
        path = tmp_path / "campaign.jsonl"
        main(self.ARGS + ["--out", str(path)])
        capsys.readouterr()
        assert main(["chaos", "--load", str(path)]) == 0
        assert "chaos survival report" in capsys.readouterr().out

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["chaos", "--load", str(bad)])

    def test_checkpoint_resume(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        args = ["chaos", "--trials", "12", "--cycles", "150", "--mesh", "3x3",
                "--checkpoint-dir", str(ckpt)]
        assert main(args + ["--budget-s", "0"]) == 1  # interrupted -> nonzero
        out = capsys.readouterr().out
        assert "interrupted" in out
        assert main(args) == 0  # resume completes
        assert "12/12" in capsys.readouterr().out

    def test_bad_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--trials", "2", "--workloads", "nope"])

    def test_bad_mesh_rejected(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--trials", "2", "--mesh", "huge"])


class TestCertify:
    def test_default_certifies_every_family(self, capsys):
        assert main(["certify"]) == 0
        out = capsys.readouterr().out
        assert "dim-order-mesh" in out
        assert "proven clean" in out
        assert "independently re-validated" in out

    def test_broken_family_reports_its_region(self, capsys):
        assert main(["certify", "mesh-backward-turn"]) == 0
        out = capsys.readouterr().out
        assert "EBDA003 fires on every (n, k)" in out

    def test_gate_runs_the_differential(self, capsys):
        assert main(["certify", "dim-order-mesh", "--gate", "10"]) == 0
        out = capsys.readouterr().out
        assert "10 symbolic-vs-concrete checks" in out
        assert "zero disagreements" in out

    def test_json_format_round_trips(self, capsys):
        import json

        assert main(["certify", "alg1-mesh", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["families"][0]["family"] == "alg1-mesh"

    def test_cert_dir_writes_checkable_files(self, capsys, tmp_path):
        import json

        from repro.analyze import check_certificate

        assert main(
            ["certify", "dateline-torus", "--cert-dir", str(tmp_path)]
        ) == 0
        path = tmp_path / "dateline-torus.json"
        certs = json.loads(path.read_text())
        assert certs and all(check_certificate(c).ok for c in certs)

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            main(["certify", "no-such-family"])


class TestExists:
    def graph(self, tmp_path, payload):
        import json

        path = tmp_path / "graph.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_cyclic_graph_exits_one_with_witness(self, capsys, tmp_path):
        path = self.graph(
            tmp_path, {"edges": [[0, 1], [1, 2], [2, 0]]}
        )
        assert main(["exists", path]) == 1
        out = capsys.readouterr().out
        assert "no deadlock-free guarantee" in out

    def test_acyclic_graph_exits_zero(self, capsys, tmp_path):
        path = self.graph(tmp_path, {"edges": [[0, 1], [1, 2], [0, 2]]})
        assert main(["exists", path]) == 0
        assert "deadlock-free routing exists" in capsys.readouterr().out

    def test_json_format(self, capsys, tmp_path):
        import json

        path = self.graph(tmp_path, {"edges": [["a", "b"], ["b", "a"]]})
        assert main(["exists", path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["safe"] is False
        assert payload["cycle"]

    def test_design_flag_overrides_file(self, capsys, tmp_path):
        path = self.graph(
            tmp_path,
            {"edges": [[0, 1], [1, 2]], "design": "X+"},
        )
        assert main(["exists", path, "--design", "X+ -> Y+"]) == 0
        assert "X+ -> Y+" in capsys.readouterr().out

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["exists", str(tmp_path / "nope.json")])

    def test_malformed_payload_rejected(self, tmp_path):
        path = self.graph(tmp_path, {"nodes": [1, 2]})
        with pytest.raises(SystemExit):
            main(["exists", path])


class TestFuzzInstantiations:
    def test_instantiation_oracle_via_fuzz(self, capsys):
        assert main(
            ["fuzz", "--runs", "0", "--instantiations", "30", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "instantiation oracle: 30 points" in out
        assert "all symbolic verdicts confirmed" in out
