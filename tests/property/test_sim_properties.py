"""Property tests for the simulator: conservation and deadlock freedom."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import MinimalFullyAdaptive, TurnTableRouting, xy_routing
from repro.core import catalog
from repro.sim import (
    NetworkSimulator,
    ScriptedTraffic,
    TrafficConfig,
    TrafficGenerator,
)
from repro.topology import Mesh

MESH = Mesh(4, 4)


@given(
    rate=st.floats(min_value=0.01, max_value=0.25),
    length=st.integers(min_value=1, max_value=8),
    depth=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    atomic=st.booleans(),
)
@settings(max_examples=12, deadline=None)
def test_conservation_under_random_configs(rate, length, depth, seed, atomic):
    """Injected == delivered, no deadlock, for any safe configuration."""
    sim = NetworkSimulator(
        MESH,
        MinimalFullyAdaptive(MESH),
        buffer_depth=depth,
        atomic_buffers=atomic,
        watchdog=1000,
        seed=seed,
    )
    traffic = TrafficGenerator(
        MESH,
        TrafficConfig(injection_rate=rate, packet_length=length, seed=seed),
    )
    stats = sim.run(300, traffic, drain=True)
    assert not stats.deadlocked
    assert stats.packets_delivered == stats.packets_injected
    assert stats.flits_delivered == stats.packets_injected * length
    assert sim.is_idle()


@given(
    pairs=st.lists(
        st.tuples(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            st.integers(min_value=1, max_value=6),
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=20, deadline=None)
def test_scripted_packets_all_arrive(pairs):
    """Arbitrary packet scripts complete under XY routing."""
    script = {0: [(src, dst, length) for src, dst, length in pairs if src != dst]}
    if not script[0]:
        return
    sim = NetworkSimulator(MESH, xy_routing(MESH), buffer_depth=2, watchdog=1000)
    traffic = ScriptedTraffic(script)
    for cycle in range(2000):
        sim.step(traffic.packets_for_cycle(cycle))
        if sim.is_idle():
            break
    assert sim.is_idle()
    assert sim.stats.packets_delivered == len(script[0])


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    design_name=st.sampled_from(["north-last", "negative-first", "dyxy", "fig7c"]),
)
@settings(max_examples=10, deadline=None)
def test_latency_lower_bound(seed, design_name):
    """No packet arrives faster than hops + flits - 1 cycles."""
    routing = TurnTableRouting(MESH, catalog.design(design_name))
    sim = NetworkSimulator(MESH, routing, buffer_depth=4, seed=seed)
    traffic = TrafficGenerator(
        MESH, TrafficConfig(injection_rate=0.05, packet_length=4, seed=seed)
    )
    packets = []
    for cycle in range(300):
        new = traffic.packets_for_cycle(cycle)
        packets.extend(new)
        sim.step(new)
    while not sim.is_idle():
        sim.step()
    for p in packets:
        assert p.delivered is not None
        assert p.network_latency >= MESH.distance(p.src, p.dst) + p.length - 1
