"""Property tests: chaos workload round-trips and campaign resume equivalence.

Two invariants the chaos subsystem stakes its checkpointing on:

* a :class:`~repro.chaos.WorkloadTrace` survives the JSONL round trip
  exactly (``load(save(t)) == t``) for *any* valid knob combination;
* a campaign interrupted at an arbitrary checkpoint prefix and resumed
  produces trial records identical to an uninterrupted run — resume is
  equivalence, not approximation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import CampaignConfig, ChaosCampaign, WorkloadTrace
from repro.chaos.campaign import run_trial, trial_record_bytes
from repro.chaos.checkpoint import CampaignCheckpoint
from repro.chaos.workloads import load_workload

KINDS = st.sampled_from(("all-reduce", "shuffle", "incast", "bursty"))

generator_traces = st.builds(
    WorkloadTrace,
    kind=KINDS,
    seed=st.integers(min_value=0, max_value=2**31),
    packet_length=st.integers(min_value=1, max_value=8),
    start=st.integers(min_value=0, max_value=50),
    rounds=st.integers(min_value=1, max_value=6),
    interval=st.integers(min_value=1, max_value=20),
    rate=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    burst_len=st.integers(min_value=1, max_value=40),
    off_len=st.integers(min_value=1, max_value=80),
    fraction=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
)

coords = st.tuples(
    st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
)
events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        coords,
        coords,
        st.integers(min_value=1, max_value=8),
    ).filter(lambda e: e[1] != e[2]),
    min_size=1,
    max_size=20,
).map(tuple)

replay_traces = st.builds(
    WorkloadTrace, kind=st.just("replay"), events=events
)


@given(trace=st.one_of(generator_traces, replay_traces))
@settings(max_examples=60, deadline=None)
def test_workload_jsonl_round_trip(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "trace.jsonl"
    trace.save_jsonl(path)
    loaded = load_workload(path)
    assert loaded == trace
    assert loaded.token() == trace.token()


@given(trace=generator_traces)
@settings(max_examples=40, deadline=None)
def test_workload_dict_round_trip(trace):
    assert WorkloadTrace.from_dict(trace.to_dict()) == trace


@given(seed=st.integers(min_value=0, max_value=2**16), cut=st.integers(min_value=0, max_value=6))
@settings(max_examples=5, deadline=None)
def test_campaign_resume_equivalence(seed, cut, tmp_path_factory):
    """Resuming from any checkpoint prefix reproduces the full run exactly."""
    config = CampaignConfig(trials=6, seed=seed, mesh=(3, 3), cycles=150)
    full = [trial_record_bytes(run_trial(config, i)) for i in range(config.trials)]

    ckpt_dir = tmp_path_factory.mktemp("ckpt")
    ckpt = CampaignCheckpoint(ckpt_dir, config.token())
    for i in range(cut):  # as if a prior run was killed after `cut` trials
        ckpt.store(i, full[i])

    resumed = ChaosCampaign(config, checkpoint_dir=ckpt_dir).run()
    assert not resumed.interrupted
    assert list(resumed.trial_bytes) == full
