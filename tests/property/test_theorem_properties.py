"""Property tests for the core theory (hypothesis).

These are the library's strongest guarantees: for *arbitrary* inputs in
the supported domain, Algorithm 1 produces theorem-compliant designs and
the numbering identities hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NEG,
    POS,
    Channel,
    Partition,
    PartitionSequence,
    check_sequence,
    check_theorem1,
    minimal_fully_adaptive,
    covers_all_regions,
    partition_vc_budget,
    min_channels,
)
from repro.core.numbering import census_for_ordering, identity_holds

# -- strategies ---------------------------------------------------------------

vc_budgets = st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)


@st.composite
def orderings(draw):
    """A shuffled ordering of one dimension's channels (1-3 VCs)."""
    vcs = draw(st.integers(min_value=1, max_value=3))
    chans = [Channel(0, s, v) for v in range(1, vcs + 1) for s in (POS, NEG)]
    return draw(st.permutations(chans))


@st.composite
def one_pair_partitions(draw):
    """A random partition with at most one complete pair (Theorem 1 domain)."""
    n_dims = draw(st.integers(min_value=1, max_value=4))
    pair_dim = draw(st.integers(min_value=0, max_value=n_dims - 1))
    chans: list[Channel] = []
    for dim in range(n_dims):
        if dim == pair_dim:
            vcs = draw(st.integers(min_value=1, max_value=2))
            for v in range(1, vcs + 1):
                chans.append(Channel(dim, POS, v))
                chans.append(Channel(dim, NEG, v))
        elif draw(st.booleans()):
            sign = draw(st.sampled_from((POS, NEG)))
            chans.append(Channel(dim, sign))
    return Partition(tuple(draw(st.permutations(chans))))


# -- properties ----------------------------------------------------------------

@given(vc_budgets)
@settings(max_examples=60, deadline=None)
def test_algorithm1_always_theorem_compliant(budget):
    seq = partition_vc_budget(budget)
    assert check_sequence(seq).ok
    # channel conservation: every budgeted channel appears exactly once
    expected = {
        Channel(d, s, v)
        for d, count in enumerate(budget)
        for v in range(1, count + 1)
        for s in (POS, NEG)
    }
    assert set(seq.all_channels) == expected
    assert seq.channel_count == len(expected)


@given(vc_budgets)
@settings(max_examples=40, deadline=None)
def test_algorithm1_partitions_have_at_most_one_pair(budget):
    for part in partition_vc_budget(budget):
        assert part.pair_count <= 1


@given(one_pair_partitions())
@settings(max_examples=80, deadline=None)
def test_theorem1_accepts_its_domain(partition):
    assert check_theorem1(partition).ok


@given(one_pair_partitions())
@settings(max_examples=80, deadline=None)
def test_subpartition_corollary(partition):
    # Any sub-partition of a cycle-free partition is cycle-free.
    for k in range(1, len(partition) + 1):
        sub = partition.sub_partition(partition.channels[:k])
        assert check_theorem1(sub).ok


@given(orderings())
@settings(max_examples=80, deadline=None)
def test_numbering_counts_match_closed_form(ordering):
    census = census_for_ordering(list(ordering))
    assert census.matches_formula()
    assert census.total == census.expected_total


@given(st.integers(min_value=0, max_value=12), st.integers(min_value=0, max_value=12))
def test_identity_holds_for_all_ab(a, b):
    assert identity_holds(a, b)


@given(st.integers(min_value=1, max_value=7))
def test_minimal_construction_matches_formula_and_covers_regions(n):
    seq = minimal_fully_adaptive(n)
    assert seq.channel_count == min_channels(n)
    assert check_sequence(seq).ok
    if n <= 5:  # region enumeration is 2^n
        assert covers_all_regions(seq, n)


@given(vc_budgets, st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_trace_order_permutations_stay_valid(budget, rng):
    seq = partition_vc_budget(budget)
    parts = list(seq.partitions)
    rng.shuffle(parts)
    assert check_sequence(PartitionSequence(tuple(parts))).ok
