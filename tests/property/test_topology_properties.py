"""Property tests for topology oracles."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import Mesh, Torus

mesh_shapes = st.lists(st.integers(min_value=2, max_value=5), min_size=1, max_size=3)
torus_shapes = st.lists(st.integers(min_value=3, max_value=5), min_size=1, max_size=2)


@st.composite
def mesh_and_pair(draw):
    shape = draw(mesh_shapes)
    mesh = Mesh(*shape)
    src = tuple(draw(st.integers(0, k - 1)) for k in shape)
    dst = tuple(draw(st.integers(0, k - 1)) for k in shape)
    return mesh, src, dst


@st.composite
def torus_and_pair(draw):
    shape = draw(torus_shapes)
    torus = Torus(*shape)
    src = tuple(draw(st.integers(0, k - 1)) for k in shape)
    dst = tuple(draw(st.integers(0, k - 1)) for k in shape)
    return torus, src, dst


@given(mesh_and_pair())
@settings(max_examples=80, deadline=None)
def test_mesh_minimal_moves_reduce_distance(case):
    mesh, src, dst = case
    for dim, sign in mesh.minimal_directions(src, dst):
        nxt = mesh._step(src, dim, sign)
        assert nxt is not None
        assert mesh.distance(nxt, dst) == mesh.distance(src, dst) - 1


@given(mesh_and_pair())
@settings(max_examples=80, deadline=None)
def test_mesh_distance_symmetric_and_zero_iff_equal(case):
    mesh, src, dst = case
    assert mesh.distance(src, dst) == mesh.distance(dst, src)
    assert (mesh.distance(src, dst) == 0) == (src == dst)


@given(mesh_and_pair())
@settings(max_examples=50, deadline=None)
def test_mesh_greedy_walk_terminates_in_distance_steps(case):
    mesh, src, dst = case
    cur = src
    steps = 0
    while cur != dst:
        dim, sign = mesh.minimal_directions(cur, dst)[0]
        cur = mesh._step(cur, dim, sign)
        steps += 1
    assert steps == mesh.distance(src, dst)


@given(torus_and_pair())
@settings(max_examples=80, deadline=None)
def test_torus_minimal_moves_reduce_distance(case):
    torus, src, dst = case
    for dim, sign in torus.minimal_directions(src, dst):
        nxt = torus._step(src, dim, sign)
        assert nxt is not None
        assert torus.distance(nxt, dst) == torus.distance(src, dst) - 1


@given(torus_and_pair())
@settings(max_examples=80, deadline=None)
def test_torus_distance_bounded_by_half_rings(case):
    torus, src, dst = case
    bound = sum(k // 2 for k in torus.shape)
    assert torus.distance(src, dst) <= bound


@given(mesh_and_pair())
@settings(max_examples=50, deadline=None)
def test_mesh_links_consistent(case):
    mesh, src, _dst = case
    for link in mesh.out_links(src):
        assert link.src == src
        delta = [b - a for a, b in zip(link.src, link.dst)]
        assert delta[link.dim] == link.sign
        assert all(d == 0 for i, d in enumerate(delta) if i != link.dim)
