"""Property tests for the §4 capacity claims.

"The maximum number of channels that can be grouped inside a partition is
n+1 ... Adding more channels into the partition either violates Theorem 1
or does not increase the adaptiveness."
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NEG,
    POS,
    Channel,
    Partition,
    check_theorem1,
    regions_covered,
)


@st.composite
def full_partitions(draw):
    """A maximal (n+1)-channel partition: one pair + one channel per other dim."""
    n = draw(st.integers(min_value=2, max_value=4))
    pair_dim = draw(st.integers(min_value=0, max_value=n - 1))
    chans = [Channel(pair_dim, POS), Channel(pair_dim, NEG)]
    for dim in range(n):
        if dim != pair_dim:
            chans.append(Channel(dim, draw(st.sampled_from((POS, NEG)))))
    return n, Partition(tuple(draw(st.permutations(chans))))


@given(full_partitions())
@settings(max_examples=60, deadline=None)
def test_full_partition_has_n_plus_one_channels(case):
    n, partition = case
    assert len(partition) == n + 1
    assert check_theorem1(partition).ok


@given(full_partitions(), st.data())
@settings(max_examples=60, deadline=None)
def test_extra_channel_violates_t1_or_adds_no_coverage(case, data):
    n, partition = case
    existing = set(partition.channel_set)
    pool = [
        Channel(d, s, v)
        for d in range(n)
        for s in (POS, NEG)
        for v in (1, 2)
        if Channel(d, s, v) not in existing
    ]
    extra = data.draw(st.sampled_from(pool))
    bigger = Partition(partition.channels + (extra,))
    if check_theorem1(bigger).ok:
        # No Theorem-1 violation -> the addition was a VC/class duplicate of
        # an existing direction: region coverage cannot grow.
        assert set(regions_covered(bigger, n)) == set(regions_covered(partition, n))
    else:
        # The addition completed a second pair.
        assert bigger.pair_count > 1
