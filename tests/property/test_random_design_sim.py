"""Property tests: random Algorithm-1 designs survive simulation.

The strongest end-to-end property: take an arbitrary VC budget, let
Algorithm 1 design the routing, and run wormhole traffic over it — no
deadlock, full delivery, every time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import partition_vc_budget
from repro.routing import TurnTableRouting
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator
from repro.topology import Mesh

MESH_2D = Mesh(4, 4)
MESH_3D = Mesh(3, 3, 3)


@given(
    budget=st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=2),
    rate=st.floats(min_value=0.02, max_value=0.20),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=10, deadline=None)
def test_random_2d_designs_simulate_clean(budget, rate, seed):
    design = partition_vc_budget(budget)
    routing = TurnTableRouting(MESH_2D, design)
    sim = NetworkSimulator(MESH_2D, routing, buffer_depth=3, watchdog=1500, seed=seed)
    traffic = TrafficGenerator(
        MESH_2D, TrafficConfig(injection_rate=rate, packet_length=4, seed=seed)
    )
    stats = sim.run(250, traffic, drain=True)
    assert not stats.deadlocked
    assert stats.delivery_ratio == 1.0


@given(
    budget=st.lists(st.integers(min_value=1, max_value=2), min_size=3, max_size=3),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=5, deadline=None)
def test_random_3d_designs_simulate_clean(budget, seed):
    design = partition_vc_budget(budget)
    routing = TurnTableRouting(MESH_3D, design)
    sim = NetworkSimulator(MESH_3D, routing, buffer_depth=3, watchdog=1500, seed=seed)
    traffic = TrafficGenerator(
        MESH_3D, TrafficConfig(injection_rate=0.05, packet_length=4, seed=seed)
    )
    stats = sim.run(200, traffic, drain=True)
    assert not stats.deadlocked
    assert stats.delivery_ratio == 1.0


@given(
    budget=st.lists(st.integers(min_value=1, max_value=2), min_size=2, max_size=2),
    pipeline=st.integers(min_value=0, max_value=3),
    switching=st.sampled_from(["wormhole", "vct", "saf"]),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=8, deadline=None)
def test_random_configs_across_switching_modes(budget, pipeline, switching, seed):
    design = partition_vc_budget(budget)
    routing = TurnTableRouting(MESH_2D, design)
    sim = NetworkSimulator(
        MESH_2D,
        routing,
        buffer_depth=4,  # >= packet length for vct/saf
        pipeline_delay=pipeline,
        switching=switching,
        watchdog=2500,
        seed=seed,
    )
    traffic = TrafficGenerator(
        MESH_2D, TrafficConfig(injection_rate=0.05, packet_length=4, seed=seed)
    )
    stats = sim.run(200, traffic, drain=True)
    assert not stats.deadlocked
    assert stats.delivery_ratio == 1.0
