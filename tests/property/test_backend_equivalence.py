"""Property tests: vector backend == reference on random safe designs.

Hypothesis draws random Algorithm-1 VC budgets (meshes), dateline
tori, minimally-routed dragonflies and up*/down* fat-trees, runs the
identical traffic through both engines and requires bit-identical
``SimStats.to_dict()``.  A crafted 2x2 ring then checks that a
*deadlock* — declaration cycle included — also reproduces exactly,
using the same `CycleRouting` worm-parking construction the
differential fuzz oracle uses.  Where the vector backend does not
support a configuration (fault injection), the ``ConfigError`` is
asserted explicitly rather than silently skipped.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import partition_vc_budget
from repro.core.torus_designs import dateline_design
from repro.errors import ConfigError
from repro.routing import DragonflyRouting, TurnTableRouting, UpDownRouting
from repro.sim import (
    NetworkSimulator,
    ScriptedTraffic,
    TrafficConfig,
    TrafficGenerator,
    VectorSimulator,
)
from repro.topology import Dragonfly, FatTree, Mesh, Torus
from repro.topology.classes import NAMED_RULES, no_classes

MESH = Mesh(4, 4)
TORUS = Torus(4, 4)
DATELINE = NAMED_RULES["dateline"]


def _stats_pair(topology, routing, rule, *, cycles, rate, seed, depth, atomic=False):
    out = []
    for cls in (NetworkSimulator, VectorSimulator):
        sim = cls(
            topology, routing, rule,
            buffer_depth=depth, atomic_buffers=atomic, watchdog=1500, seed=seed,
        )
        traffic = TrafficGenerator(
            topology,
            TrafficConfig(injection_rate=rate, packet_length=4, seed=seed),
        )
        out.append(sim.run(cycles, traffic, drain=True).to_dict())
    return out


@given(
    budget=st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=2),
    rate=st.floats(min_value=0.02, max_value=0.18),
    depth=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=9999),
    atomic=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_random_algorithm1_mesh_designs_match(budget, rate, depth, seed, atomic):
    design = partition_vc_budget(budget)
    routing = TurnTableRouting(MESH, design)
    ref, vec = _stats_pair(
        MESH, routing, no_classes,
        cycles=250, rate=rate, seed=seed, depth=depth, atomic=atomic,
    )
    assert ref == vec
    assert not ref["deadlocked"]


@given(
    rate=st.floats(min_value=0.02, max_value=0.12),
    seed=st.integers(min_value=0, max_value=9999),
    depth=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=6, deadline=None)
def test_dateline_torus_matches(rate, seed, depth):
    routing = TurnTableRouting(TORUS, dateline_design(2), DATELINE)
    ref, vec = _stats_pair(
        TORUS, routing, DATELINE, cycles=250, rate=rate, seed=seed, depth=depth
    )
    assert ref == vec
    assert not ref["deadlocked"]


@given(
    groups=st.integers(min_value=3, max_value=4),
    rate=st.floats(min_value=0.02, max_value=0.15),
    depth=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=6, deadline=None)
def test_dragonfly_minimal_matches(groups, rate, depth, seed):
    topology = Dragonfly(groups)
    routing = DragonflyRouting(topology)
    ref, vec = _stats_pair(
        topology, routing, routing.rule,
        cycles=250, rate=rate, seed=seed, depth=depth,
    )
    assert ref == vec
    assert not ref["deadlocked"]


@given(
    leaves=st.integers(min_value=2, max_value=3),
    spines=st.integers(min_value=1, max_value=2),
    rate=st.floats(min_value=0.02, max_value=0.15),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=6, deadline=None)
def test_fattree_updown_matches(leaves, spines, rate, seed):
    topology = FatTree(leaves, spines, 1)
    routing = UpDownRouting(
        topology, levels={n: 2 - n[0] for n in topology.nodes}
    )
    ref, vec = _stats_pair(
        topology, routing, routing.rule,
        cycles=250, rate=rate, seed=seed, depth=3,
    )
    assert ref == vec
    assert not ref["deadlocked"]


def test_vector_backend_rejects_fault_injection():
    """Fault sweeps on a degraded dragonfly need the reference backend."""
    from repro.sim.faults import FaultSchedule

    topology = Dragonfly(3)
    routing = DragonflyRouting(topology)
    with pytest.raises(ConfigError):
        VectorSimulator(
            topology, routing, routing.rule,
            faults=FaultSchedule(()),
        )


def _ring_routing(topology):
    """A 4-wire cycle around the 2x2 mesh, via the oracle's CycleRouting."""
    from repro.core.channel import Channel
    from repro.fuzz.oracle import CycleRouting
    from repro.topology.base import Link
    from repro.topology.wires import Wire

    x, y = Channel(0, +1), Channel(1, +1)
    xn, yn = Channel(0, -1), Channel(1, -1)
    ring = (
        Wire(Link((0, 0), (1, 0), 0, +1), x),
        Wire(Link((1, 0), (1, 1), 1, +1), y),
        Wire(Link((1, 1), (0, 1), 0, -1), xn),
        Wire(Link((0, 1), (0, 0), 1, -1), yn),
    )
    return CycleRouting(topology, ring, (x, y, xn, yn), no_classes)


@given(depth=st.integers(min_value=1, max_value=3))
@settings(max_examples=3, deadline=None)
def test_crafted_2x2_ring_deadlock_parity(depth):
    """Worms parked along a real ring deadlock at the same declared cycle."""
    topology = Mesh(2, 2)
    length = depth + 2
    # Each worm targets two hops around the ring, as the oracle does.
    script = [
        ((0, 0), (1, 1), length),
        ((1, 0), (0, 1), length),
        ((1, 1), (0, 0), length),
        ((0, 1), (1, 0), length),
    ]
    dicts = []
    for cls in (NetworkSimulator, VectorSimulator):
        sim = cls(
            topology, _ring_routing(topology), no_classes,
            buffer_depth=depth, watchdog=50, seed=0,
        )
        dicts.append(sim.run(250, ScriptedTraffic({0: script})).to_dict())
    ref, vec = dicts
    assert ref == vec
    assert ref["deadlocked"]
    assert ref["deadlock_declared_at"] is not None
