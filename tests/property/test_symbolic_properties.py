"""Property tests: symbolic verdicts agree with the concrete analyzer.

Per-family, at hypothesis-drawn random ``(n, k)`` instantiation points,
the rules the symbolic prover marks applicable must produce exactly the
same error set as running the concrete :class:`Analyzer` on the
instantiated design — the same contract the fuzzer's instantiation
oracle and ``tools/ci_certify_check.py`` enforce at scale.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze.certcheck import check_certificate
from repro.analyze.symbolic import (
    SYMBOLIC_FAMILIES,
    certify,
    symbolic_family,
)
from repro.analyze.symbolic.instantiate import _K_MAX, _N_MAX, concrete_errors

#: Pre-certified reports, shared across examples (certify is pure).
_REPORTS = {}


def report_for(name):
    if name not in _REPORTS:
        _REPORTS[name] = certify(name)
    return _REPORTS[name]


#: Parametric (free-n) families exercise the interesting closed forms;
#: fixed-n catalog families only vary k.
PARAMETRIC = tuple(
    name for name in sorted(SYMBOLIC_FAMILIES)
    if symbolic_family(name).n_fixed is None
)


@pytest.mark.parametrize("name", PARAMETRIC)
@given(data=st.data())
@settings(max_examples=12, deadline=None)
def test_symbolic_matches_concrete_at_random_points(name, data):
    design = symbolic_family(name)
    n = data.draw(
        st.integers(design.n_min, max(design.n_min, _N_MAX[design.kind])),
        label="n",
    )
    k = data.draw(
        st.integers(design.k_min, max(design.k_min, _K_MAX[design.kind])),
        label="k",
    )
    report = report_for(name)
    assert concrete_errors(design, n, k, report.applicable_rules) == report.errors_at(n, k)


@pytest.mark.parametrize(
    "name", sorted(set(SYMBOLIC_FAMILIES) - set(PARAMETRIC))
)
@given(data=st.data())
@settings(max_examples=6, deadline=None)
def test_fixed_n_families_match_concrete_over_k(name, data):
    design = symbolic_family(name)
    k = data.draw(
        st.integers(design.k_min, max(design.k_min, _K_MAX[design.kind])),
        label="k",
    )
    report = report_for(name)
    n = design.n_fixed
    assert concrete_errors(design, n, k, report.applicable_rules) == report.errors_at(n, k)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_any_mutated_byte_is_rejected_by_certcheck(data):
    name = data.draw(st.sampled_from(sorted(SYMBOLIC_FAMILIES)), label="family")
    report = report_for(name)
    cert = data.draw(st.sampled_from(report.certificates), label="certificate")
    text = cert.to_json()
    pos = data.draw(st.integers(0, len(text) - 1), label="offset")
    delta = data.draw(st.integers(1, 94), label="delta")
    new = chr((ord(text[pos]) - 32 + delta) % 95 + 32)
    tampered = text[:pos] + new + text[pos:][1:]
    try:
        parsed = json.loads(tampered)
    except ValueError:
        return  # mutation broke the JSON: rejected before any checking
    if parsed == json.loads(text):
        return  # value-preserving mutation (cannot occur in canonical JSON)
    assert not check_certificate(parsed).ok
