"""Property tests for the arbitrary-network existence condition.

The fifth fuzzing oracle (:mod:`repro.core.arbitrary`) decides
deadlock-free-routing existence by sink-peeling the wire dependency
relation to a fixpoint.  On any concrete dependency relation that is
exactly the edge set of a channel dependency graph, the verdict must
coincide with CDG acyclicity — here cross-checked against networkx on
random small irregular digraphs with random turn sets — and must be
invariant under relabeling the network's nodes (the condition is about
the dependency structure, not the coordinate names).
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdg.graph import build_routing_cdg, build_turn_cdg
from repro.core import turnset_from_strings
from repro.core.arbitrary import (
    dependency_relation_from_routing,
    dependency_relation_from_turns,
    existence_verdict,
    verdict_from_turns,
)
from repro.core.channel import Channel
from repro.routing import DragonflyRouting
from repro.topology import Dragonfly, GraphTopology
from repro.topology.classes import no_classes

#: Channel inventory for random designs on a GraphTopology: every link is
#: (dim 0, sign +1), so distinct VCs are the only routing freedom.
CHANNELS = (Channel(0, +1, 1), Channel(0, +1, 2), Channel(0, +1, 3))
#: All possible inter-VC transitions a random turn set may grant.
POSSIBLE_TURNS = tuple(
    f"{a}->{b}" for a in CHANNELS for b in CHANNELS if a != b
)


@st.composite
def graphs(draw):
    """A random small digraph as an edge list over up to 6 nodes."""
    n = draw(st.integers(min_value=2, max_value=6))
    nodes = [(i,) for i in range(n)]
    pairs = [(u, v) for u in nodes for v in nodes if u != v]
    edges = draw(
        st.lists(st.sampled_from(pairs), min_size=1, max_size=12, unique=True)
    )
    return edges


@st.composite
def turnsets(draw):
    grants = draw(
        st.lists(
            st.sampled_from(POSSIBLE_TURNS), min_size=0, max_size=6, unique=True
        )
    )
    return turnset_from_strings(grants)


@given(edges=graphs(), turnset=turnsets())
@settings(max_examples=60, deadline=None)
def test_existence_verdict_matches_cdg_acyclicity(edges, turnset):
    topology = GraphTopology(edges)
    verdict = verdict_from_turns(topology, turnset, CHANNELS)
    graph = build_turn_cdg(topology, turnset, CHANNELS)
    assert verdict.safe == nx.is_directed_acyclic_graph(graph)
    if not verdict.safe:
        # The peeled core is the set of wires from which a cycle stays
        # reachable; it contains every wire on a cyclic SCC.
        cyclic = set()
        for scc in nx.strongly_connected_components(graph):
            members = list(scc)
            if len(members) > 1 or graph.has_edge(members[0], members[0]):
                cyclic.update(members)
        assert verdict.core >= len(cyclic) >= 1


@given(
    edges=graphs(),
    turnset=turnsets(),
    offset=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=40, deadline=None)
def test_verdict_invariant_under_node_relabeling(edges, turnset, offset):
    """Renaming every node preserves safety and the core size."""
    original = verdict_from_turns(GraphTopology(edges), turnset, CHANNELS)
    relabeled_edges = [
        ((u[0] * 7 + offset,), (v[0] * 7 + offset,)) for u, v in edges
    ]
    relabeled = verdict_from_turns(
        GraphTopology(relabeled_edges), turnset, CHANNELS
    )
    assert original.safe == relabeled.safe
    assert original.core == relabeled.core
    assert original.wires == relabeled.wires
    assert original.dependencies == relabeled.dependencies


@given(edges=graphs(), turnset=turnsets())
@settings(max_examples=30, deadline=None)
def test_witness_cycle_is_a_real_dependency_cycle(edges, turnset):
    topology = GraphTopology(edges)
    relation = dependency_relation_from_turns(topology, turnset, CHANNELS)
    verdict = existence_verdict(relation)
    if verdict.safe:
        assert verdict.cycle == ()
        return
    cycle = verdict.cycle
    assert len(cycle) >= 1
    wires = set(relation) | {s for succs in relation.values() for s in succs}
    by_name = {str(w): w for w in wires}
    for i, name in enumerate(cycle):
        cur = by_name[name]
        nxt = by_name[cycle[(i + 1) % len(cycle)]]
        assert nxt in relation.get(cur, ()), f"{name} does not depend on {nxt}"


def test_routed_relation_mirrors_routed_cdg_on_dragonfly():
    """The routing-restricted relation has exactly the routed CDG's edges."""
    topology = Dragonfly(3)
    routing = DragonflyRouting(topology)
    relation = dependency_relation_from_routing(topology, routing, routing.rule)
    graph = build_routing_cdg(topology, routing, routing.rule)
    relation_edges = {
        (str(a), str(b)) for a, succs in relation.items() for b in succs
    }
    graph_edges = {(str(a), str(b)) for a, b in graph.edges}
    assert relation_edges == graph_edges
    assert existence_verdict(relation).safe == nx.is_directed_acyclic_graph(
        graph
    )


def test_single_vc_ring_is_unsafe_and_second_vc_heals_it():
    """The textbook case: a 3-ring on one VC deadlocks; a dateline VC fixes it."""
    ring = GraphTopology([((0,), (1,)), ((1,), (2,)), ((2,), (0,))])
    one_vc = verdict_from_turns(
        ring, turnset_from_strings([]), (Channel(0, +1, 1),)
    )
    assert not one_vc.safe
    assert one_vc.core == 3

    def dateline(link):
        return "w" if link.src == (2,) else "r"

    classes = (Channel(0, +1, 1, "r"), Channel(0, +1, 1, "w"))
    healed = verdict_from_turns(
        ring, turnset_from_strings(["X+@r->X+@w"]), classes, rule=dateline
    )
    assert healed.safe
