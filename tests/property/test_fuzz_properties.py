"""Property tests: the differential oracles agree on generated designs.

The fuzzer's own invariant, stated as a property: for any generator seed
and trial index, running the design through all three oracles never
produces a hard disagreement — on generator-certified valid designs the
verdict chain (theorem-safe ⟹ CDG-acyclic ⟹ no simulated deadlock) holds
end to end, and on deliberate mutants the theorems always fire first.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import DesignGenerator, DifferentialOracle, fast_profile

ORACLE = DifferentialOracle(fast_profile())


@given(
    seed=st.integers(min_value=0, max_value=999),
    trial=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=50, deadline=None)
def test_oracles_agree_on_generated_designs(seed, trial):
    design = DesignGenerator(seed).design_for(trial)
    result = ORACLE.run(design)
    assert result.disagreement is None, (
        f"seed={seed} trial={trial}: {result.classification}"
        f" on {design.describe()} ({result.error})"
    )
    if design.labeled_valid:
        # The full soundness chain on certified designs.
        assert result.theorem_safe
        assert result.cdg_acyclic
        assert not result.sim_deadlock
        assert not result.sim_unroutable
    elif design.mutations and design.mutations[0].kind != "drop-channel":
        # duplicate-pair / backward-transition / add-turn mutants are
        # theorem violations by construction, so the theorems fire first.
        # (drop-channel is a probe: removing a channel can leave a smaller
        # but still perfectly valid design, which is agreement, not a bug.)
        assert not result.theorem_safe
        assert result.theorem_violations


@given(
    seed=st.integers(min_value=0, max_value=999),
    trial=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=25, deadline=None)
def test_cdg_never_acyclic_when_sim_deadlocks(seed, trial):
    """The conservative oracle dominates the dynamic one, always."""
    design = DesignGenerator(seed).design_for(trial)
    result = ORACLE.run(design)
    if result.sim_deadlock:
        assert not result.cdg_acyclic
        assert result.forensics is not None
