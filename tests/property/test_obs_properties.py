"""Property tests for observability schemas: arbitrary JSON-safe data
must round-trip losslessly through span JSONL, ledger records, and
heartbeat files, and traces must stay balanced under any nesting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    HeartbeatWriter,
    RunLedger,
    RunRecord,
    Tracer,
    check_balance,
    load_heartbeat,
    load_trace,
    outcome_digest,
)

# Strict-JSON-safe attribute values (no NaN/Inf — the writers reject them).
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
attr_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
).filter(lambda s: not s.startswith("__"))
attrs = st.dictionaries(attr_names, json_scalars, max_size=4)
payloads = st.recursive(
    json_scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4),
    ),
    max_leaves=12,
)


@given(shape=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=24),
       span_attrs=attrs)
@settings(max_examples=40, deadline=None)
def test_random_nesting_round_trips_balanced(tmp_path_factory, shape, span_attrs):
    """Any open/close/leaf sequence yields a balanced, lossless trace."""
    tmp_path = tmp_path_factory.mktemp("trace")
    tracer = Tracer()
    stack = []
    for op in shape:
        if op == 0:
            stack.append(tracer.span(f"s{len(stack)}", **span_attrs).__enter__())
        elif op == 1 and stack:
            stack.pop().__exit__(None, None, None)
        else:
            with tracer.span("leaf"):
                pass
    while stack:
        stack.pop().__exit__(None, None, None)
    path = tmp_path / "spans.jsonl"
    tracer.to_jsonl(path)
    events = load_trace(path)
    assert events == tracer.events
    check_balance(events)


@given(
    kind=st.sampled_from(("run_point", "sweep", "fuzz", "chaos", "lint")),
    spec=st.text(min_size=1, max_size=30),
    backend=st.sampled_from(("reference", "vector", "-")),
    seed=st.integers(min_value=0, max_value=2**31),
    outcome=st.sampled_from(("ok", "deadlock", "disagreement", "error")),
    payload=payloads,
    wall_s=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_run_record_round_trips_through_ledger(
    tmp_path_factory, kind, spec, backend, seed, outcome, payload, wall_s
):
    tmp_path = tmp_path_factory.mktemp("ledger")
    record = RunRecord(
        kind=kind, spec=spec, backend=backend, seed=seed, outcome=outcome,
        digest=outcome_digest(payload), wall_s=wall_s, created_at=1.0,
    )
    ledger = RunLedger(tmp_path)
    ledger.append(record)
    loaded = ledger.records()[-1]
    assert loaded == record
    assert loaded.run_id == record.run_id
    assert loaded.identity == record.identity


@given(
    done=st.integers(min_value=0, max_value=10**6),
    total=st.integers(min_value=1, max_value=10**6),
    extra=st.dictionaries(attr_names, json_scalars, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_heartbeat_round_trips(tmp_path_factory, done, total, extra):
    tmp_path = tmp_path_factory.mktemp("hb")
    reserved = (
        "schema", "record", "id", "kind", "state", "pid", "done", "total",
        "batch", "elapsed_s", "eta_s", "started_at", "updated_at",
    )
    extra = {k: v for k, v in extra.items() if k not in reserved}
    writer = HeartbeatWriter("prop", "fuzz", total, tmp_path)
    record = writer.beat(done, **extra)
    loaded = load_heartbeat(writer.path)
    assert loaded == record
    assert loaded["done"] == done
    assert loaded["total"] == total
    for key, value in extra.items():
        assert loaded[key] == value
