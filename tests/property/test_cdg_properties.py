"""Property tests: the soundness theorem, checked on concrete networks.

For arbitrary VC budgets and derivations, every design the library
produces must have an acyclic concrete channel dependency graph; any
partition holding two complete pairs must be cyclic.  This is the
paper's central claim run against thousands of generated instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdg import build_turn_cdg, verdict_for, verify_design
from repro.core import (
    NEG,
    POS,
    Channel,
    Partition,
    PartitionSequence,
    partition_vc_budget,
    two_partition_options,
)
from repro.core.extraction import extract_turns, theorem1_turns
from repro.core.turns import TurnSet
from repro.topology import Mesh

MESHES = {2: Mesh(4, 4), 3: Mesh(3, 3, 3)}

vc_budgets_2d = st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=2)
vc_budgets_3d = st.lists(st.integers(min_value=1, max_value=2), min_size=3, max_size=3)


@given(vc_budgets_2d)
@settings(max_examples=40, deadline=None)
def test_2d_designs_always_acyclic(budget):
    seq = partition_vc_budget(budget)
    assert verify_design(seq, MESHES[2]).acyclic


@given(vc_budgets_3d)
@settings(max_examples=15, deadline=None)
def test_3d_designs_always_acyclic(budget):
    seq = partition_vc_budget(budget)
    assert verify_design(seq, MESHES[3]).acyclic


@given(st.integers(min_value=2, max_value=3), st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_traced_in_any_order_stays_acyclic(n, rng):
    base = partition_vc_budget([1] * n)
    parts = list(base.partitions)
    rng.shuffle(parts)
    seq = PartitionSequence(tuple(parts))
    assert verify_design(seq, MESHES[n]).acyclic


@given(
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=1, max_value=2),
)
@settings(max_examples=16, deadline=None)
def test_two_complete_pairs_always_cyclic(va, vb, vc, vd):
    # A partition with complete pairs in both dimensions (any VC mix)
    # allows a concrete square: must be cyclic on any 2D mesh.
    part = Partition(
        (
            Channel(0, POS, va),
            Channel(0, NEG, vb),
            Channel(1, POS, vc),
            Channel(1, NEG, vd),
        )
    )
    ts = TurnSet({"bad": theorem1_turns(part)})
    verdict = verdict_for(build_turn_cdg(MESHES[2], ts, part.channels))
    assert not verdict.acyclic


@given(st.integers(min_value=2, max_value=3))
@settings(max_examples=4, deadline=None)
def test_exceptional_case_options_acyclic(n):
    for seq in two_partition_options(n, include_reversed=True):
        assert verify_design(seq, MESHES[n]).acyclic


@given(vc_budgets_2d)
@settings(max_examples=20, deadline=None)
def test_consecutive_transitions_subset_still_acyclic(budget):
    seq = partition_vc_budget(budget)
    assert verify_design(seq, MESHES[2], transitions="consecutive").acyclic
