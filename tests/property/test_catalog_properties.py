"""Property tests: catalog designs hold on arbitrary mesh shapes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdg import verify_design
from repro.core import catalog
from repro.routing import TurnTableRouting
from repro.topology import Mesh, column_parity, no_classes, row_parity
from repro.topology.classes import rule_for_design

#: 2D catalog designs and the class rules they expect.
DESIGNS_2D = [
    "xy", "north-last", "west-first", "negative-first", "partially-adaptive",
    "west-first-vcs", "dyxy", "fig7c", "odd-even", "hamiltonian",
]


@given(
    name=st.sampled_from(DESIGNS_2D),
    kx=st.integers(min_value=2, max_value=6),
    ky=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_2d_designs_acyclic_on_any_mesh(name, kx, ky):
    mesh = Mesh(kx, ky)
    assert verify_design(catalog.design(name), mesh, rule_for_design(name)).acyclic


@given(
    name=st.sampled_from(DESIGNS_2D),
    kx=st.integers(min_value=3, max_value=5),
    ky=st.integers(min_value=3, max_value=5),
)
@settings(max_examples=15, deadline=None)
def test_2d_designs_connected_on_any_mesh(name, kx, ky):
    mesh = Mesh(kx, ky)
    routing = TurnTableRouting(mesh, catalog.design(name), rule_for_design(name))
    assert routing.is_connected()


@given(
    name=st.sampled_from(["fig9b", "fig9c"]),
    shape=st.tuples(
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=2, max_value=3),
        st.integers(min_value=2, max_value=3),
    ),
)
@settings(max_examples=10, deadline=None)
def test_3d_designs_acyclic_on_any_mesh(name, shape):
    mesh = Mesh(*shape)
    assert verify_design(catalog.design(name), mesh).acyclic


@given(
    n=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=6, deadline=None)
def test_negative_first_generalises(n):
    from repro.core import negative_first

    size = 4 if n == 2 else (3 if n == 3 else 2)
    mesh = Mesh(*([size] * n))
    design = negative_first(n)
    assert verify_design(design, mesh).acyclic
    assert TurnTableRouting(mesh, design).is_connected()
