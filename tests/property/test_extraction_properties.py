"""Property tests for turn extraction invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdg import cross_partition_edges_ascend
from repro.core import TurnKind, extract_turns, partition_vc_budget
from repro.core.theorems import ascending_rank

vc_budgets = st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=3)


@given(vc_budgets)
@settings(max_examples=40, deadline=None)
def test_cross_partition_turns_always_ascend(budget):
    seq = partition_vc_budget(budget)
    assert cross_partition_edges_ascend(seq, extract_turns(seq))


@given(vc_budgets)
@settings(max_examples=40, deadline=None)
def test_intra_partition_ui_turns_respect_numbering(budget):
    seq = partition_vc_budget(budget)
    ts = extract_turns(seq)
    index = {ch: i for i, part in enumerate(seq) for ch in part}
    for t in ts.turns:
        if t.kind == TurnKind.DEGREE90:
            continue
        src_p, dst_p = index[t.src], index[t.dst]
        if src_p == dst_p:
            part = seq[src_p]
            if t.src.dim in part.complete_pair_dims:
                assert ascending_rank(part, t.src) < ascending_rank(part, t.dst)
        else:
            assert src_p < dst_p


@given(vc_budgets)
@settings(max_examples=40, deadline=None)
def test_turn_endpoints_are_design_channels(budget):
    seq = partition_vc_budget(budget)
    ts = extract_turns(seq)
    inventory = set(seq.all_channels)
    for t in ts.turns:
        assert t.src in inventory and t.dst in inventory
        assert t.src != t.dst


@given(vc_budgets)
@settings(max_examples=40, deadline=None)
def test_no_turn_duplicated_and_none_reversed_across_partitions(budget):
    seq = partition_vc_budget(budget)
    ts = extract_turns(seq)
    index = {ch: i for i, part in enumerate(seq) for ch in part}
    pairs = {(t.src, t.dst) for t in ts.turns}
    for src, dst in pairs:
        if index[src] != index[dst]:
            # the reverse of a cross-partition turn is never allowed
            assert (dst, src) not in pairs


@given(vc_budgets)
@settings(max_examples=30, deadline=None)
def test_consecutive_mode_is_subset(budget):
    seq = partition_vc_budget(budget)
    assert extract_turns(seq, transitions="consecutive").turns <= extract_turns(seq).turns
