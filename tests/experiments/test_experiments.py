"""Every reproduced table/figure passes its paper-vs-measured checks.

These are the repository's acceptance tests: each experiment module's
``run()`` re-derives a paper artifact and asserts the claims.  Simulation-
heavy experiments run with reduced cycle counts to stay unit-test fast;
the benchmarks run them at full scale.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    algorithm1_demo,
    cdg_validation,
    complexity,
    deadlock_demo,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hamiltonian,
    minimal_channels,
    partial3d_sim,
    perf_sweep,
    table1,
    table2,
    table3,
    table4,
    table5,
    turnmodel_search,
)

FAST_EXPERIMENTS = [
    ("Fig1-2", lambda: __import__("repro.experiments.fig1_fig2", fromlist=["run"]).run()),
    ("Table1", lambda: table1.run()),
    ("Table2", lambda: table2.run()),
    ("Table3", lambda: table3.run()),
    ("Table4", lambda: table4.run()),
    ("Table5", lambda: table5.run()),
    ("Fig3", lambda: fig3.run()),
    ("Fig4", lambda: fig4.run()),
    ("Fig5", lambda: fig5.run()),
    ("Fig6", lambda: fig6.run()),
    ("Fig7", lambda: fig7.run()),
    ("Fig9", lambda: fig9.run()),
    ("Fig10", lambda: fig10.run()),
    ("S2", lambda: complexity.run()),
    ("S4", lambda: minimal_channels.run(max_n=4)),
    ("S5", lambda: algorithm1_demo.run()),
    ("S6.1", lambda: turnmodel_search.run()),
    ("S6.2", lambda: hamiltonian.run()),
]


@pytest.mark.parametrize("name, run", FAST_EXPERIMENTS, ids=[n for n, _ in FAST_EXPERIMENTS])
def test_fast_experiment_passes(name, run):
    result = run()
    result.require()
    assert result.text
    assert result.report()


def test_fig8_without_maximality_probe():
    result = fig8.run(maximality_probe=False)
    result.require()
    assert result.data["total_turns"] == 140


def test_cdg_validation_reduced():
    cdg_validation.run(derivation_limit=4).require()


def test_deadlock_demo_reduced():
    deadlock_demo.run(cycles=2000).require()


def test_perf_sweep_reduced():
    perf_sweep.run(mesh_size=4, cycles=600, rates=(0.02, 0.06)).require()


def test_partial3d_sim_reduced():
    partial3d_sim.run(cycles=600, rates=(0.02,)).require()


def test_fault_tolerance():
    from repro.experiments import fault_tolerance

    fault_tolerance.run().require()


def test_fault_sweep_reduced():
    from repro.experiments import fault_sweep

    fault_sweep.run(cycles=200).require()


def test_ablation_transitions():
    from repro.experiments import ablation_transitions

    ablation_transitions.run().require()


def test_ablation_selection_reduced():
    from repro.experiments import ablation_selection

    ablation_selection.run(mesh_size=4, cycles=600, rate=0.06).require()


def test_ablation_buffers_reduced():
    from repro.experiments import ablation_buffers

    ablation_buffers.run(mesh_size=4, cycles=800, rates=(0.04, 0.08)).require()


def test_switching_modes_reduced():
    from repro.experiments import switching_modes

    switching_modes.run(mesh_size=4, cycles=800, rate=0.04).require()


def test_torus_case_reduced():
    from repro.experiments import torus_case

    torus_case.run(cycles=600, rate=0.03).require()


def test_fattree_case():
    from repro.experiments import fattree_case

    fattree_case.run(cycles=600, rate=0.06).require()


def test_multicast_case_reduced():
    from repro.experiments import multicast_case

    multicast_case.run(mesh_size=4, groups=3, group_size=4).require()


def test_dragonfly_case_reduced():
    from repro.experiments import dragonfly_case

    dragonfly_case.run(groups=4, cycles=500, rate=0.05).require()


def test_scaling_reduced():
    from repro.experiments import scaling

    scaling.run(radixes=(4, 6, 8)).require()


def test_ablation_depth_reduced():
    from repro.experiments import ablation_depth

    ablation_depth.run(mesh_size=4, cycles=600, depths=(1, 4)).require()


def test_planar_case_reduced():
    from repro.experiments import planar_case

    planar_case.run(cycles=400, rate=0.04).require()


def test_design_space():
    from repro.experiments import design_space

    design_space.run(order_limit=12).require()


def test_telemetry_demo_reduced():
    from repro.experiments import telemetry_demo

    telemetry_demo.run(mesh_size=4, cycles=800).require()


def test_registry_covers_everything():
    assert len(ALL_EXPERIMENTS) == 39
    assert all(callable(f) for f in ALL_EXPERIMENTS.values())


def test_experiment_result_report_shape():
    result = fig4.run()
    report = result.report()
    assert result.exp_id in report
    assert "[PASS]" in report
