"""Unit tests for link-utilization accounting and heatmaps."""

import pytest

from repro.analysis import link_utilization, mesh_heatmap, utilization_stats
from repro.errors import SimulationError
from repro.routing import MinimalFullyAdaptive, congestion_aware, xy_routing
from repro.sim import NetworkSimulator, Packet, TrafficConfig, TrafficGenerator, transpose
from repro.topology import Mesh


class TestCounters:
    def test_single_packet_loads_its_route_only(self, mesh4):
        sim = NetworkSimulator(mesh4, xy_routing(mesh4))
        sim.offer_packet(Packet(pid=0, src=(0, 0), dst=(2, 0), length=4, created=0))
        for _ in range(50):
            sim.step()
        util = link_utilization(sim)
        loaded = {link for link, v in util.items() if v > 0}
        assert loaded == {
            mesh4.link((0, 0), (1, 0)),
            mesh4.link((1, 0), (2, 0)),
        }

    def test_empty_network_zero(self, mesh4):
        sim = NetworkSimulator(mesh4, xy_routing(mesh4))
        mean, peak, imbalance = utilization_stats(sim)
        assert mean == peak == 0.0
        assert imbalance == 1.0

    def test_utilization_bounded_by_bandwidth(self, mesh4):
        sim = NetworkSimulator(mesh4, MinimalFullyAdaptive(mesh4))
        traffic = TrafficGenerator(
            mesh4, TrafficConfig(injection_rate=0.3, packet_length=4, seed=2)
        )
        sim.run(400, traffic, drain=True)
        assert all(v <= 1.0 + 1e-9 for v in link_utilization(sim).values())


class TestBalanceComparison:
    def test_adaptive_spreads_load_better_than_xy(self):
        mesh = Mesh(6, 6)

        def imbalance(routing, **kwargs):
            sim = NetworkSimulator(mesh, routing, buffer_depth=4, **kwargs)
            traffic = TrafficGenerator(
                mesh,
                TrafficConfig(
                    injection_rate=0.05, packet_length=4, pattern=transpose, seed=3
                ),
            )
            sim.run(800, traffic, drain=True)
            return utilization_stats(sim)[2]

        xy = imbalance(xy_routing(mesh))
        adaptive = imbalance(
            MinimalFullyAdaptive(mesh), selection=congestion_aware
        )
        assert adaptive < xy


class TestHeatmap:
    def test_renders_grid(self, mesh4):
        sim = NetworkSimulator(mesh4, xy_routing(mesh4))
        sim.offer_packet(Packet(pid=0, src=(0, 0), dst=(3, 3), length=2, created=0))
        for _ in range(40):
            sim.step()
        art = mesh_heatmap(sim)
        grid = art.split("peak")[0]
        assert grid.count("o") == 16
        assert "peak link load" in art

    def test_rejects_non_2d(self, mesh3d):
        from repro.routing import DimensionOrderRouting

        sim = NetworkSimulator(mesh3d, DimensionOrderRouting(mesh3d))
        with pytest.raises(SimulationError):
            mesh_heatmap(sim)
