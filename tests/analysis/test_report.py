"""Unit tests for report formatting."""

from repro.analysis import banner, bullet_list, text_table


class TestTextTable:
    def test_alignment(self):
        out = text_table(["name", "n"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("----")
        assert len(lines) == 4

    def test_wide_cells_extend_columns(self):
        out = text_table(["x"], [["very-long-value"]])
        assert "very-long-value" in out

    def test_empty_rows(self):
        out = text_table(["a", "b"], [])
        assert len(out.splitlines()) == 2


class TestHelpers:
    def test_bullets(self):
        assert bullet_list(["x", "y"]) == "  - x\n  - y"

    def test_banner(self):
        out = banner("Title", width=10)
        assert out.splitlines()[0] == "=" * 10
        assert "Title" in out
