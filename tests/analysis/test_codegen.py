"""Unit tests for the §5.4 routing-logic generator."""

import pytest

from repro.analysis.codegen import decision_table, full_logic_listing, routing_logic
from repro.core import Channel, catalog
from repro.errors import RoutingError
from repro.routing import MinimalFullyAdaptive, OddEven, TurnTableRouting, xy_routing
from repro.topology import Mesh


@pytest.fixture
def mesh() -> Mesh:
    return Mesh(4, 4)


class TestXYLogic:
    def test_matches_paper_snippet(self, mesh):
        # §5.4: "if Xoffset > 0 and Yoffset > 0 then ... Channel <- E"
        logic = routing_logic(xy_routing(mesh))
        assert "if X_offset > 0 and Y_offset > 0 then Channel <- E;" in logic
        assert "X_offset = 0 and Y_offset > 0 then Channel <- N;" in logic
        assert logic.strip().endswith("end if;")

    def test_single_choice_everywhere(self, mesh):
        for decision in decision_table(xy_routing(mesh)):
            assert decision.uniform
            assert len(decision.outputs[0]) == 1


class TestAdaptiveLogic:
    def test_ne_region_offers_both(self, mesh):
        # §5.4: "Channel <- E or N" for the fully adaptive NE region.
        logic = routing_logic(MinimalFullyAdaptive(mesh))
        assert "X_offset > 0 and Y_offset > 0 then Channel <- E or N;" in logic

    def test_identical_turns_deduplicated(self, mesh):
        logic = routing_logic(MinimalFullyAdaptive(mesh))
        assert "N or N" not in logic


class TestPositionDependence:
    def test_odd_even_flagged(self, mesh):
        table = decision_table(OddEven(mesh))
        ne = next(d for d in table if d.region == (+1, +1))
        assert not ne.uniform
        assert "position-dependent" in ne.render()

    def test_incoming_channel_state(self, mesh):
        # north-last arriving northbound: only N remains
        routing = TurnTableRouting(mesh, catalog.north_last())
        table = decision_table(routing, in_channel=Channel.parse("Y+"))
        for decision in table:
            for options in decision.outputs:
                assert all(c.dim == 1 and c.sign == +1 for c in options)


class TestFullListing:
    def test_covers_injection_and_all_classes(self, mesh):
        routing = xy_routing(mesh)
        listing = full_logic_listing(routing)
        assert "injection" in listing
        assert listing.count("arriving on") == len(routing.channel_classes)

    def test_rejects_non_2d(self, mesh3d):
        from repro.routing import DimensionOrderRouting

        with pytest.raises(RoutingError):
            routing_logic(DimensionOrderRouting(mesh3d))
