"""Unit tests for adaptivity metrics."""

import pytest

from repro.analysis import (
    adaptivity_report,
    minimal_paths,
    path_is_routable,
    region_pairs,
)
from repro.routing import MinimalFullyAdaptive, WestFirst, xy_routing
from repro.topology import Mesh


class TestMinimalPaths:
    def test_counts_match_binomial(self, mesh4):
        paths = list(minimal_paths(mesh4, (0, 0), (2, 2)))
        assert len(paths) == 6
        assert all(len(p) == 5 for p in paths)
        assert all(p[0] == (0, 0) and p[-1] == (2, 2) for p in paths)

    def test_straight_line_single_path(self, mesh4):
        assert len(list(minimal_paths(mesh4, (0, 0), (3, 0)))) == 1

    def test_src_equals_dst(self, mesh4):
        assert list(minimal_paths(mesh4, (1, 1), (1, 1))) == [((1, 1),)]


class TestPathRoutable:
    def test_xy_accepts_only_xy_shape(self, mesh4):
        r = xy_routing(mesh4)
        xy_path = ((0, 0), (1, 0), (2, 0), (2, 1), (2, 2))
        yx_path = ((0, 0), (0, 1), (0, 2), (1, 2), (2, 2))
        assert path_is_routable(r, xy_path)
        assert not path_is_routable(r, yx_path)

    def test_fully_adaptive_accepts_everything(self, mesh4):
        r = MinimalFullyAdaptive(mesh4)
        for path in minimal_paths(mesh4, (0, 3), (3, 0)):
            assert path_is_routable(r, path)

    def test_trivial_paths(self, mesh4):
        r = xy_routing(mesh4)
        assert path_is_routable(r, ((0, 0),))


class TestAdaptivityReport:
    def test_xy_scores_one_path_per_pair(self, mesh4):
        rep = adaptivity_report(mesh4, xy_routing(mesh4))
        pairs = 16 * 15
        assert rep.routable_paths == pairs
        assert rep.pairs == pairs
        assert not rep.is_fully_adaptive

    def test_fully_adaptive_scores_one(self, mesh4):
        rep = adaptivity_report(mesh4, MinimalFullyAdaptive(mesh4))
        assert rep.adaptivity == 1.0
        assert rep.is_fully_adaptive

    def test_explicit_pairs_subset(self, mesh4):
        rep = adaptivity_report(mesh4, WestFirst(mesh4), [((0, 0), (2, 2))])
        assert rep.pairs == 1
        assert rep.is_fully_adaptive  # eastbound is fully adaptive

    def test_path_explosion_guard(self):
        big = Mesh(8, 8)
        with pytest.raises(ValueError):
            adaptivity_report(
                big, xy_routing(big), [((0, 0), (7, 7))], max_paths_per_pair=10
            )

    def test_report_renders(self, mesh4):
        rep = adaptivity_report(mesh4, xy_routing(mesh4), [((0, 0), (1, 1))])
        assert "adaptivity" in str(rep)


class TestRegionPairs:
    def test_ne_pairs_have_ne_destinations(self, mesh4):
        for src, dst in region_pairs(mesh4, (+1, +1)):
            assert dst[0] >= src[0] and dst[1] >= src[1]

    def test_regions_cover_all_pairs(self, mesh4):
        total = sum(
            len(region_pairs(mesh4, signs))
            for signs in [(+1, +1), (-1, +1), (+1, -1), (-1, -1)]
        )
        # ties count as positive, so regions partition the pair set
        assert total == 16 * 15
