"""Unit tests for turn accounting in paper notation."""

import pytest

from repro.analysis import (
    census,
    compass_channel,
    compass_turn,
    degree90_compass_set,
    format_turn_table,
    turn_table,
)
from repro.core import Channel, catalog, extract_turns, turn


class TestCompassNotation:
    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("X+", "E1"),
            ("X-", "W1"),
            ("Y+", "N1"),
            ("Y2-", "S2"),
            ("Z4+", "U4"),
            ("Z-", "D1"),
        ],
    )
    def test_channels_with_vc(self, spec, expected):
        assert compass_channel(Channel.parse(spec)) == expected

    def test_channel_without_vc(self):
        assert compass_channel(Channel.parse("X+"), with_vc=False) == "E"

    def test_class_suffix(self):
        assert compass_channel(Channel.parse("Y+@e"), with_vc=False) == "Ne"

    def test_4th_dimension_falls_back(self):
        assert compass_channel(Channel.parse("T+"), with_vc=False) == "T+"

    def test_turn_label(self):
        assert compass_turn(turn("X-", "Z4+")) == "W1U4"
        assert compass_turn(turn("X+", "Y-"), with_vc=False) == "ES"


class TestCensus:
    def test_north_last(self):
        c = census(catalog.north_last(), name="north-last")
        assert c.degree90 == 6
        assert c.u_turns == 2
        assert c.i_turns == 0
        assert c.total == 8
        assert "north-last" in str(c)

    def test_partial3d_counts(self):
        c = census(catalog.partial3d_partitions())
        assert c.degree90 == 30
        assert c.u_turns == 6
        assert c.i_turns == 2

    def test_identical_groups_fewer_than_turns_with_vcs(self):
        c = census(catalog.p5_west_first_vcs())
        assert c.identical_groups < c.degree90


class TestTurnTable:
    def test_groups_by_rule_and_kind(self):
        ts = extract_turns(catalog.north_last())
        table = turn_table(ts, with_vc=False)
        assert "Theorem1 in PA" in table
        assert set(table["Theorem1 in PA"]) == {"Turns"}
        assert "U-Turns" in table["Theorem2 in PA"]

    def test_format_renders(self):
        ts = extract_turns(catalog.north_last())
        text = format_turn_table(ts, with_vc=False)
        assert "Theorem3 PA->PB" in text

    def test_degree90_compass_set(self):
        labels = degree90_compass_set(catalog.north_last(), with_vc=False)
        assert labels == {"WS", "SE", "ES", "SW", "EN", "WN"}
