"""Unit tests for CDG construction."""

import networkx as nx
import pytest

from repro.cdg import build_design_cdg, build_routing_cdg, build_turn_cdg
from repro.core import PartitionSequence, channels, extract_turns, turnset_from_strings
from repro.routing import UnrestrictedAdaptive, xy_routing
from repro.topology import Mesh


class TestTurnCDG:
    def test_nodes_are_wires(self, mesh4):
        ts = turnset_from_strings(["X+->Y+"])
        graph = build_turn_cdg(mesh4, ts, channels("X+ Y+"))
        x_links = sum(1 for l in mesh4.links if l.dim == 0 and l.sign == +1)
        y_links = sum(1 for l in mesh4.links if l.dim == 1 and l.sign == +1)
        assert graph.number_of_nodes() == x_links + y_links

    def test_continuation_edges_always_present(self, mesh4):
        # Straight-through on the same class is a dependency even with an
        # empty turn set — this is what exposes ring cycles on tori.
        ts = turnset_from_strings([])
        graph = build_turn_cdg(mesh4, ts, channels("X+"))
        assert graph.number_of_edges() > 0
        for a, b in graph.edges:
            assert a.channel == b.channel
            assert a.dst == b.src

    def test_turn_edges_added(self, mesh4):
        ts = turnset_from_strings(["X+->Y+"])
        graph = build_turn_cdg(mesh4, ts, channels("X+ Y+"))
        cross = [
            (a, b) for a, b in graph.edges if a.channel != b.channel
        ]
        assert cross
        assert all(a.channel.dim == 0 and b.channel.dim == 1 for a, b in cross)

    def test_classes_default_to_turnset_channels(self, mesh4):
        ts = turnset_from_strings(["X+->Y+"])
        assert build_turn_cdg(mesh4, ts).number_of_nodes() > 0


class TestDesignCDG:
    def test_acyclic_for_north_last(self, mesh4, north_last_design):
        graph = build_design_cdg(mesh4, north_last_design)
        assert nx.is_directed_acyclic_graph(graph)

    def test_cyclic_for_theorem1_violation(self, mesh4):
        bad = PartitionSequence.parse("X+ X- Y+ Y-")
        ts = extract_turns(bad, validate=False)
        graph = build_turn_cdg(mesh4, ts, bad.all_channels)
        assert not nx.is_directed_acyclic_graph(graph)


class TestRoutingCDG:
    def test_xy_routing_cdg_acyclic(self, mesh4):
        graph = build_routing_cdg(mesh4, xy_routing(mesh4))
        assert nx.is_directed_acyclic_graph(graph)
        # XY: only X->X, X->Y and Y->Y dependencies
        for a, b in graph.edges:
            assert not (a.channel.dim == 1 and b.channel.dim == 0)

    def test_unrestricted_cdg_cyclic(self, mesh4):
        graph = build_routing_cdg(mesh4, UnrestrictedAdaptive(mesh4))
        assert not nx.is_directed_acyclic_graph(graph)

    def test_only_feasible_dependencies(self, mesh4):
        # A westbound arrival is never paired with an eastbound departure
        # under minimal XY routing.
        graph = build_routing_cdg(mesh4, xy_routing(mesh4))
        for a, b in graph.edges:
            assert not (a.channel.dim == b.channel.dim and a.channel.sign != b.channel.sign)
