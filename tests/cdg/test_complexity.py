"""Unit tests for the Section-2 complexity accounting."""

import pytest

from repro.cdg import abstract_cycles, ebda_design_cost, section2_table, turn_combinations


class TestAbstractCycles:
    def test_paper_values(self):
        assert abstract_cycles(2, 1) == 2
        assert abstract_cycles(2, 2) == 8
        assert abstract_cycles(3, 1) == 6
        assert abstract_cycles(3, 2) == 24

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            abstract_cycles(1, 1)

    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            abstract_cycles(2, 0)


class TestCombinations:
    def test_paper_values(self):
        assert turn_combinations(2, 1) == 16
        assert turn_combinations(2, 2) == 65_536

    def test_3d_grows_past_8_billion_with_vcs(self):
        assert turn_combinations(3, 2) > 8_000_000_000


class TestSection2Table:
    def test_four_rows(self):
        table = section2_table()
        assert len(table) == 4
        assert table[0].combinations == 16

    def test_rows_render(self):
        for row in section2_table():
            assert "4^" in str(row)


class TestEbdaCost:
    def test_polynomial_vs_exponential(self):
        for n in (2, 3, 4):
            for v in (1, 2):
                assert ebda_design_cost(n, v) < turn_combinations(n, v)

    def test_values(self):
        assert ebda_design_cost(2, 1) == 2
        assert ebda_design_cost(3, 1) == 4

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            ebda_design_cost(0, 1)
