"""Unit tests for the Glass-Ni turn-model enumeration."""

import pytest

from repro.cdg import (
    ALL_TURNS_2D,
    CLOCKWISE,
    COUNTERCLOCKWISE,
    all_candidates,
    classify_orbit,
    deadlock_free_candidates,
    is_deadlock_free,
    symmetry_orbit,
    turn_label,
    unique_turn_models,
)
from repro.cdg.turnmodel import TurnModelCandidate
from repro.core import TurnKind


class TestAbstractCycles:
    def test_eight_turns_total(self):
        assert len(ALL_TURNS_2D) == 8
        assert len(set(ALL_TURNS_2D)) == 8

    def test_all_are_90_degree(self):
        assert all(t.kind == TurnKind.DEGREE90 for t in ALL_TURNS_2D)

    def test_cycles_close(self):
        # consecutive turns share the middle channel, and the cycle wraps
        for cyc in (CLOCKWISE, COUNTERCLOCKWISE):
            for a, b in zip(cyc, cyc[1:] + cyc[:1]):
                assert a.dst == b.src

    def test_labels(self):
        assert turn_label(CLOCKWISE[0]) == "ES"
        assert turn_label(COUNTERCLOCKWISE[0]) == "EN"


class TestCandidates:
    def test_sixteen(self):
        assert len(all_candidates()) == 16

    def test_each_allows_six_turns(self):
        for cand in all_candidates():
            assert len(cand.allowed_turns) == 6

    def test_paper_counts(self):
        free = deadlock_free_candidates()
        assert len(free) == 12

    def test_west_first_combination_is_free(self):
        # prohibit SW (cw) and NW (ccw)
        cand = next(
            c for c in all_candidates()
            if {turn_label(c.prohibited_cw), turn_label(c.prohibited_ccw)} == {"SW", "NW"}
        )
        assert is_deadlock_free(cand).acyclic

    def test_a_cyclic_combination_exists(self):
        free = set(deadlock_free_candidates())
        bad = [c for c in all_candidates() if c not in free]
        assert len(bad) == 4
        for cand in bad:
            assert not is_deadlock_free(cand).acyclic


class TestSymmetry:
    def test_orbits_partition_the_free_set(self):
        orbits = unique_turn_models()
        assert len(orbits) == 3
        union = set().union(*orbits)
        assert len(union) == 12

    def test_orbit_names(self):
        names = sorted(classify_orbit(o) for o in unique_turn_models())
        assert names == ["negative-first", "north-last", "west-first"]

    def test_orbit_closure(self):
        cand = all_candidates()[0]
        orbit = symmetry_orbit(cand)
        # applying the generators stays inside the orbit
        from repro.cdg.turnmodel import _apply, _mirror, _rot90

        for member in orbit:
            assert _apply(_rot90, member) in orbit
            assert _apply(_mirror, member) in orbit
