"""Unit tests for the verification verdicts."""

import pytest

from repro.cdg import all_cycles, build_design_cdg, verify_design, verify_routing, verify_turnset
from repro.core import PartitionSequence, catalog, extract_turns
from repro.core.turns import TurnSet
from repro.core.extraction import theorem1_turns
from repro.core.partition import Partition
from repro.routing import UnrestrictedAdaptive
from repro.topology import Mesh, Torus, column_parity, row_parity
from repro.topology.classes import dateline


class TestVerifyDesign:
    def test_all_catalog_2d_designs_acyclic(self, mesh4):
        for name in ["xy", "west-first", "negative-first", "north-last",
                     "dyxy", "fig7c", "partially-adaptive", "west-first-vcs"]:
            assert verify_design(catalog.design(name), mesh4).acyclic, name

    def test_odd_even_with_rule(self, mesh4):
        assert verify_design(catalog.design("odd-even"), mesh4, column_parity).acyclic

    def test_hamiltonian_with_rule(self, mesh4):
        assert verify_design(catalog.design("hamiltonian"), mesh4, row_parity).acyclic

    def test_3d_designs(self, mesh3d):
        assert verify_design(catalog.fig9b_partitions(), mesh3d).acyclic
        assert verify_design(catalog.fig9c_partitions(), mesh3d).acyclic

    def test_verdict_reports_counts(self, mesh4, north_last_design):
        v = verify_design(north_last_design, mesh4)
        assert v.wires == 48
        assert v.dependencies > 0
        assert bool(v)
        assert "ACYCLIC" in str(v)


class TestNegativeControls:
    def test_two_pairs_cyclic_with_witness(self, mesh4):
        bad = Partition.of("X+ X- Y+ Y-")
        ts = TurnSet({"bad": theorem1_turns(bad)})
        v = verify_turnset(ts, mesh4)
        assert not v.acyclic
        assert len(v.cycle) >= 4
        # witness is a real cycle: consecutive wires chain through routers
        for a, b in zip(v.cycle, v.cycle[1:]):
            assert a.dst == b.src
        assert "CYCLIC" in str(v)

    def test_unrestricted_routing_cyclic(self, mesh4):
        assert not verify_routing(UnrestrictedAdaptive(mesh4), mesh4).acyclic

    def test_plain_design_cyclic_on_torus(self):
        # Theorem 1 presumes mesh geometry; a torus ring closes on a single
        # class, so the same design must be flagged cyclic there...
        torus = Torus(4, 4)
        v = verify_design(catalog.north_last(), torus)
        assert not v.acyclic

    def test_dateline_design_acyclic_on_torus(self):
        # ...until the dateline partitioning handles the wrap links.
        from repro.core.torus_designs import dateline_design

        torus = Torus(4, 4)
        assert verify_design(dateline_design(2), torus, dateline).acyclic


class TestAllCycles:
    def test_enumerates_witnesses(self, mesh4):
        from repro.cdg import build_turn_cdg

        from repro.cdg import CycleEnumerationTruncated

        bad = PartitionSequence.parse("X+ X- Y+ Y-")
        ts = extract_turns(bad, validate=False)
        graph = build_turn_cdg(mesh4, ts, bad.all_channels)
        with pytest.warns(CycleEnumerationTruncated):
            cycles = all_cycles(graph, limit=5)
        assert len(cycles) == 5

    def test_empty_graph_has_no_cycles(self):
        import networkx as nx

        assert all_cycles(nx.DiGraph()) == []

    def test_self_loop_wire_is_a_cycle(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("w", "w")
        assert all_cycles(g) == [("w",)]

    def test_truncation_is_signalled_not_silent(self, mesh4):
        import warnings

        from repro.cdg import CycleEnumerationTruncated, build_turn_cdg

        bad = PartitionSequence.parse("X+ X- Y+ Y-")
        ts = extract_turns(bad, validate=False)
        graph = build_turn_cdg(mesh4, ts, bad.all_channels)
        with pytest.warns(CycleEnumerationTruncated, match="limit=3"):
            cycles = all_cycles(graph, limit=3)
        assert len(cycles) == 3

    def test_no_warning_when_under_limit(self):
        import networkx as nx
        import warnings

        g = nx.DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning -> test failure
            cycles = all_cycles(g, limit=50)
        assert len(cycles) == 1

    def test_exactly_limit_cycles_no_warning(self):
        # The warning fires only when a (limit+1)-th cycle exists, not
        # when the census happens to land exactly on the limit.
        import networkx as nx
        import warnings

        g = nx.DiGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cycles = all_cycles(g, limit=1)
        assert len(cycles) == 1


class TestCyclicCore:
    def test_empty_graph(self):
        import networkx as nx

        from repro.cdg import cyclic_core

        assert cyclic_core(nx.DiGraph()) == frozenset()

    def test_self_loop_included(self):
        import networkx as nx

        from repro.cdg import cyclic_core

        g = nx.DiGraph()
        g.add_edge("w", "w")
        g.add_edge("w", "x")  # acyclic appendage stays out
        assert cyclic_core(g) == frozenset({"w"})

    def test_acyclic_graph_empty_core(self, mesh4, north_last_design):
        from repro.cdg import cyclic_core

        graph = build_design_cdg(mesh4, north_last_design)
        assert cyclic_core(graph) == frozenset()

    def test_core_contains_every_witness_wire(self, mesh4):
        from repro.cdg import build_turn_cdg, cyclic_core

        bad = PartitionSequence.parse("X+ X- Y+ Y-")
        ts = extract_turns(bad, validate=False)
        graph = build_turn_cdg(mesh4, ts, bad.all_channels)
        core = cyclic_core(graph)
        assert core
        from repro.cdg import CycleEnumerationTruncated

        with pytest.warns(CycleEnumerationTruncated):
            cycles = all_cycles(graph, limit=5)
        for cycle in cycles:
            assert set(cycle) <= core
