"""Unit tests for the verification verdicts."""

import pytest

from repro.cdg import all_cycles, build_design_cdg, verify_design, verify_routing, verify_turnset
from repro.core import PartitionSequence, catalog, extract_turns
from repro.core.turns import TurnSet
from repro.core.extraction import theorem1_turns
from repro.core.partition import Partition
from repro.routing import UnrestrictedAdaptive
from repro.topology import Mesh, Torus, column_parity, row_parity
from repro.topology.classes import dateline


class TestVerifyDesign:
    def test_all_catalog_2d_designs_acyclic(self, mesh4):
        for name in ["xy", "west-first", "negative-first", "north-last",
                     "dyxy", "fig7c", "partially-adaptive", "west-first-vcs"]:
            assert verify_design(catalog.design(name), mesh4).acyclic, name

    def test_odd_even_with_rule(self, mesh4):
        assert verify_design(catalog.design("odd-even"), mesh4, column_parity).acyclic

    def test_hamiltonian_with_rule(self, mesh4):
        assert verify_design(catalog.design("hamiltonian"), mesh4, row_parity).acyclic

    def test_3d_designs(self, mesh3d):
        assert verify_design(catalog.fig9b_partitions(), mesh3d).acyclic
        assert verify_design(catalog.fig9c_partitions(), mesh3d).acyclic

    def test_verdict_reports_counts(self, mesh4, north_last_design):
        v = verify_design(north_last_design, mesh4)
        assert v.wires == 48
        assert v.dependencies > 0
        assert bool(v)
        assert "ACYCLIC" in str(v)


class TestNegativeControls:
    def test_two_pairs_cyclic_with_witness(self, mesh4):
        bad = Partition.of("X+ X- Y+ Y-")
        ts = TurnSet({"bad": theorem1_turns(bad)})
        v = verify_turnset(ts, mesh4)
        assert not v.acyclic
        assert len(v.cycle) >= 4
        # witness is a real cycle: consecutive wires chain through routers
        for a, b in zip(v.cycle, v.cycle[1:]):
            assert a.dst == b.src
        assert "CYCLIC" in str(v)

    def test_unrestricted_routing_cyclic(self, mesh4):
        assert not verify_routing(UnrestrictedAdaptive(mesh4), mesh4).acyclic

    def test_plain_design_cyclic_on_torus(self):
        # Theorem 1 presumes mesh geometry; a torus ring closes on a single
        # class, so the same design must be flagged cyclic there...
        torus = Torus(4, 4)
        v = verify_design(catalog.north_last(), torus)
        assert not v.acyclic

    def test_dateline_design_acyclic_on_torus(self):
        # ...until the dateline partitioning handles the wrap links.
        from repro.core.torus_designs import dateline_design

        torus = Torus(4, 4)
        assert verify_design(dateline_design(2), torus, dateline).acyclic


class TestAllCycles:
    def test_enumerates_witnesses(self, mesh4):
        from repro.cdg import build_turn_cdg

        bad = PartitionSequence.parse("X+ X- Y+ Y-")
        ts = extract_turns(bad, validate=False)
        graph = build_turn_cdg(mesh4, ts, bad.all_channels)
        cycles = all_cycles(graph, limit=5)
        assert 1 <= len(cycles) <= 5
