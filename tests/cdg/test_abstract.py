"""Unit tests for abstract (class-level) dependency graphs."""

import networkx as nx

from repro.cdg import (
    abstract_graph,
    cross_partition_edges_ascend,
    partition_order_graph,
    recover_partitions,
)
from repro.core import PartitionSequence, extract_turns, turnset_from_strings


class TestAbstractGraph:
    def test_intra_partition_cycles_expected(self):
        # The abstract graph of {X+, X-, Y-} legitimately cycles
        # (X+ -> Y- -> X+); Theorem 1 is about the *concrete* graph.
        seq = PartitionSequence.parse("X+ X- Y-")
        graph = abstract_graph(extract_turns(seq))
        assert not nx.is_directed_acyclic_graph(graph)

    def test_nodes_are_channel_classes(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        graph = abstract_graph(extract_turns(seq))
        assert graph.number_of_nodes() == 2


class TestPartitionOrderGraph:
    def test_edges_follow_sequence(self):
        seq = PartitionSequence.parse("X+ X- Y- -> Y+")
        ts = extract_turns(seq)
        pog = partition_order_graph(seq, ts)
        assert list(pog.edges) == [("PA", "PB")]

    def test_dag_for_many_partitions(self):
        seq = PartitionSequence.parse("X+ -> Y+ -> X- -> Y-")
        pog = partition_order_graph(seq, extract_turns(seq))
        assert nx.is_directed_acyclic_graph(pog)
        assert pog.number_of_edges() == 6  # all ascending pairs


class TestAscendCheck:
    def test_extracted_turnsets_always_ascend(self):
        seq = PartitionSequence.parse("X- -> X+ Y+ Y-")
        assert cross_partition_edges_ascend(seq, extract_turns(seq))

    def test_descending_turn_detected(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        bad = turnset_from_strings(["Y+->X+"])
        assert not cross_partition_edges_ascend(seq, bad)

    def test_foreign_channel_detected(self):
        seq = PartitionSequence.parse("X+ -> Y+")
        foreign = turnset_from_strings(["X+->Z+"])
        assert not cross_partition_edges_ascend(seq, foreign)


class TestRecoverPartitions:
    def test_archaeology_on_glass_ni_candidates(self):
        # Feeding a raw turn-model turn set to the condensation recovers
        # the EbDa partition sequence that generates it.
        from repro.cdg import deadlock_free_candidates, turn_label
        from repro.core import channels

        expected = {
            frozenset({"SW", "NW"}): [  # west-first
                frozenset(channels("X-")),
                frozenset(channels("X+ Y+ Y-")),
            ],
            frozenset({"NE", "NW"}): [  # north-last
                frozenset(channels("X+ X- Y-")),
                frozenset(channels("Y+")),
            ],
            frozenset({"ES", "NW"}): [  # negative-first
                frozenset(channels("X- Y-")),
                frozenset(channels("X+ Y+")),
            ],
        }
        found = 0
        for cand in deadlock_free_candidates():
            key = frozenset(
                {turn_label(cand.prohibited_cw), turn_label(cand.prohibited_ccw)}
            )
            if key in expected:
                assert recover_partitions(cand.turnset()) == expected[key]
                found += 1
        assert found == 3

    def test_recovers_intra_partition_components(self):
        seq = PartitionSequence.parse("X+ X- Y- -> Y+")
        groups = recover_partitions(extract_turns(seq))
        from repro.core import channels

        assert frozenset(channels("X+ X- Y-")) in groups
        assert frozenset(channels("Y+")) in groups
        # topological order respects the transition direction
        assert groups.index(frozenset(channels("X+ X- Y-"))) < groups.index(
            frozenset(channels("Y+"))
        )


class TestPartitionOrderGraphNameCollisions:
    def _pog(self, seq):
        return partition_order_graph(seq, extract_turns(seq))

    def test_user_name_colliding_with_fallback_stays_distinct(self):
        # A partition literally named "P1" next to the *unnamed* partition
        # at index 1 (whose fallback name is also "P1") must not merge
        # into a single node.
        from repro.core import channels
        from repro.core.partition import Partition

        seq = PartitionSequence(
            (
                Partition(tuple(channels("X-")), name="P1"),
                Partition(tuple(channels("X+ Y+ Y-"))),  # fallback name: P1
            )
        )
        pog = self._pog(seq)
        assert pog.number_of_nodes() == 2
        assert set(pog.nodes) == {"P1#0", "P1#1"}
        assert list(pog.edges) == [("P1#0", "P1#1")]

    def test_duplicate_user_names_stay_distinct(self):
        from repro.core import channels
        from repro.core.partition import Partition

        seq = PartitionSequence(
            (
                Partition(tuple(channels("X-")), name="ESC"),
                Partition(tuple(channels("Y-")), name="ESC"),
                Partition(tuple(channels("X+ Y+")), name="ADAPT"),
            )
        )
        pog = self._pog(seq)
        assert set(pog.nodes) == {"ESC#0", "ESC#1", "ADAPT"}
        assert ("ESC#0", "ESC#1") in pog.edges
        assert ("ESC#1", "ADAPT") in pog.edges

    def test_unique_names_are_untouched(self):
        seq = PartitionSequence.parse("X+ X- Y- -> Y+")
        pog = self._pog(seq)
        assert set(pog.nodes) == {"PA", "PB"}

    def test_disambiguation_is_deterministic(self):
        from repro.core import channels
        from repro.core.partition import Partition

        seq = PartitionSequence(
            (
                Partition(tuple(channels("X-")), name="P1"),
                Partition(tuple(channels("X+ Y+ Y-"))),
            )
        )
        first = self._pog(seq)
        second = self._pog(seq)
        assert list(first.nodes) == list(second.nodes)
        assert list(first.edges) == list(second.edges)
