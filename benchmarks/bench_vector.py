"""Benchmark: vector backend speedup over the reference simulator.

Measures the 16x16 uniform-random rate sweep both ways (identical
traffic, shared routing instance so the vector engine's shared routing
memos amortise the way a real sweep does), asserts bit-identical stats
at every rate, and reports the aggregate speedup — the PR gate requires
>= 20x.  A single 64x64 point then shows the large-mesh ratio.

Not collected by pytest (``testpaths = tests``); run directly:

    PYTHONPATH=src python benchmarks/bench_vector.py [--quick]

``--quick`` shrinks cycles/mesh for smoke runs (no speedup assertion).
Measured results are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

from repro.routing import xy_routing
from repro.sim import (
    NetworkSimulator,
    TrafficConfig,
    TrafficGenerator,
    VectorSimulator,
)
from repro.topology import Mesh

SWEEP_RATES = (0.04, 0.06, 0.08, 0.10, 0.12, 0.14)
SWEEP_CYCLES = 2000
SWEEP_MESH = (16, 16)
BIG_MESH = (64, 64)
BIG_RATE = 0.05
BIG_CYCLES = 200
SEED = 1
REQUIRED_SPEEDUP = 20.0


def _run(cls, topology, routing, *, rate, cycles, seed):
    sim = cls(topology, routing, buffer_depth=4, watchdog=500, seed=seed)
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(injection_rate=rate, packet_length=4, seed=seed),
    )
    started = time.perf_counter()
    stats = sim.run(cycles, traffic, drain=True)
    return stats, time.perf_counter() - started


def sweep_speedup(mesh_shape, rates, cycles) -> tuple[float, float, float]:
    """(total reference s, total vector s, speedup) over the rate sweep."""
    topology = Mesh(*mesh_shape)
    # One routing instance per engine family, as SweepEngine points share
    # specs: the vector backend's cross-instance routing memos warm once.
    routing = xy_routing(topology)
    total_ref = total_vec = 0.0
    dims = "x".join(str(k) for k in mesh_shape)
    for rate in rates:
        ref_stats, ref_s = _run(
            NetworkSimulator, topology, routing, rate=rate, cycles=cycles, seed=SEED
        )
        vec_stats, vec_s = _run(
            VectorSimulator, topology, routing, rate=rate, cycles=cycles, seed=SEED
        )
        assert ref_stats.to_dict() == vec_stats.to_dict(), (
            f"stats diverged at {dims} rate={rate}"
        )
        total_ref += ref_s
        total_vec += vec_s
        print(
            f"{dims} rate={rate:.2f}: reference {ref_s:6.2f}s"
            f"  vector {vec_s:5.2f}s  ({ref_s / vec_s:5.1f}x)"
            f"  delivered={ref_stats.packets_delivered}"
        )
    return total_ref, total_vec, total_ref / total_vec


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    rates = SWEEP_RATES[:2] if quick else SWEEP_RATES
    cycles = 300 if quick else SWEEP_CYCLES
    mesh = (8, 8) if quick else SWEEP_MESH

    print(f"== uniform-random sweep, {mesh[0]}x{mesh[1]}, {cycles} cycles ==")
    ref_s, vec_s, speedup = sweep_speedup(mesh, rates, cycles)
    print(
        f"sweep total: reference {ref_s:.1f}s, vector {vec_s:.1f}s"
        f" -> {speedup:.1f}x"
    )

    big = None
    if not quick:
        print(f"\n== single point, {BIG_MESH[0]}x{BIG_MESH[1]},"
              f" rate={BIG_RATE}, {BIG_CYCLES} cycles ==")
        _, _, big = sweep_speedup(BIG_MESH, (BIG_RATE,), BIG_CYCLES)
        print(f"64x64 point: {big:.1f}x")

    try:
        from benchmarks.benchlib import write_bench_json
    except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
        from benchlib import write_bench_json

    path = write_bench_json(
        "vector",
        params={
            "mesh": list(mesh),
            "rates": list(rates),
            "cycles": cycles,
            "quick": quick,
        },
        wall_s=ref_s + vec_s,
        throughput=speedup,
        extra={
            "reference_s": ref_s,
            "vector_s": vec_s,
            "big_mesh_speedup": big,
            "required_speedup": REQUIRED_SPEEDUP,
        },
    )
    print(f"benchmark record written to {path}")

    if not quick:
        if speedup < REQUIRED_SPEEDUP:
            print(f"FAIL: sweep speedup {speedup:.1f}x < {REQUIRED_SPEEDUP}x")
            return 1
        print(f"\nspeedup gate: {speedup:.1f}x >= {REQUIRED_SPEEDUP}x  [ok]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
