"""Benchmarks for the ablation and fault-tolerance experiments (V5, A1-A3)."""

from benchmarks.conftest import report
from repro.experiments import (
    ablation_buffers,
    ablation_selection,
    ablation_transitions,
    fault_tolerance,
)


def test_v5_fault_rerouting(once):
    """V5: richer turn sets recover more (src, dst) pairs under faults."""
    report(once(fault_tolerance.run))


def test_a1_buffer_discipline(once):
    """A1: EbDa-relaxed buffers beat Duato-atomic under load."""
    report(once(ablation_buffers.run))


def test_a2_transition_scope(once):
    """A2: all-ascending vs consecutive-only transitions."""
    report(once(ablation_transitions.run))


def test_a3_selection_policy(once):
    """A3: selection policies on the adaptive design (safety unaffected)."""
    report(once(ablation_selection.run))


def test_e1_switching_modes(once):
    """E1: WH / VCT / SAF deadlock-free under the same design (Assumption 1)."""
    from repro.experiments import switching_modes

    report(once(switching_modes.run))


def test_e2_torus_dateline(once):
    """E2: the dateline partitioning on a k-ary n-cube."""
    from repro.experiments import torus_case

    report(once(torus_case.run))


def test_e3_fattree(once):
    """E3: up*/down* on a fat-tree (the paper's declared future work)."""
    from repro.experiments import fattree_case

    report(once(fattree_case.run))


def test_e4_multicast(once):
    """E4: dual-path Hamiltonian multicast over the §6.2 partitioning."""
    from repro.experiments import multicast_case

    report(once(multicast_case.run))


def test_e5_dragonfly(once):
    """E5: dragonfly minimal routing as class-ordered partitions."""
    from repro.experiments import dragonfly_case

    report(once(dragonfly_case.run))


def test_v6_scaling(once):
    """V6: verification cost scales with the machine, not the design space."""
    from repro.experiments import scaling

    report(once(scaling.run))


def test_a4_buffer_depth(once):
    """A4: buffer depth vs latency; deadlock freedom is depth-invariant."""
    from repro.experiments import ablation_depth

    report(once(ablation_depth.run))


def test_e6_planar_adaptive(once):
    """E6: planar-adaptive routing — the 4n-4 channel design point."""
    from repro.experiments import planar_case

    report(once(planar_case.run))
