"""Benchmarks regenerating Tables 1-5 of the paper (§6)."""

from benchmarks.conftest import report
from repro.experiments import table1, table2, table3, table4, table5


def test_table1_max_adaptiveness(benchmark):
    """Table 1: 12 partitioning options with maximum adaptiveness."""
    result = benchmark(table1.run)
    report(result)


def test_table2_intermediate_adaptiveness(benchmark):
    """Table 2: three-partition options."""
    result = benchmark(table2.run)
    report(result)


def test_table3_deterministic(benchmark):
    """Table 3: deterministic partitioning options (XY/YX...)."""
    result = benchmark(table3.run)
    report(result)


def test_table4_odd_even(benchmark):
    """Table 4: Odd-Even turns recovered by partitioning."""
    result = benchmark(table4.run)
    report(result)


def test_table5_partial3d(benchmark):
    """Table 5: the partial-3D design's 30 turns vs Elevator-First's 16."""
    result = benchmark(table5.run)
    report(result)
