"""Microbenchmarks: throughput of the library's hot paths.

These measure the *tooling* cost (how fast a designer can iterate), in
contrast to the macro experiment benchmarks that regenerate paper
artifacts.
"""

import pytest

from repro.cdg import build_design_cdg, verify_design
from repro.core import catalog, extract_turns, minimal_fully_adaptive, partition_vc_budget
from repro.routing import MinimalFullyAdaptive, TurnTableRouting, xy_routing
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator
from repro.topology import Mesh


def test_algorithm1_3d(benchmark):
    """Partition a (3,2,3)-VC 3D budget with Algorithm 1."""
    seq = benchmark(partition_vc_budget, [3, 2, 3])
    assert seq.channel_count == 16


def test_turn_extraction_fig9b(benchmark):
    """Extract the 140 turns of the 3D minimal design."""
    design = catalog.fig9b_partitions()
    ts = benchmark(extract_turns, design)
    assert len(ts) == 140


def test_cdg_verification_8x8(benchmark):
    """Verify the DyXY design on an 8x8 mesh (768 wires)."""
    mesh = Mesh(8, 8)
    design = catalog.dyxy_partitions()
    verdict = benchmark(verify_design, design, mesh)
    assert verdict.acyclic


def test_cdg_verification_3d(benchmark):
    """Verify the 16-channel design on a 4x4x4 mesh."""
    mesh = Mesh(4, 4, 4)
    design = catalog.fig9b_partitions()
    verdict = benchmark(verify_design, design, mesh)
    assert verdict.acyclic


def test_minimal_construction_6d(benchmark):
    """Build the (n+1)*2^(n-1) construction for n=6 (224 channels)."""
    seq = benchmark(minimal_fully_adaptive, 6)
    assert seq.channel_count == 224


def test_routing_table_build_8x8(benchmark):
    """Construct + connect-check turn-table routing on an 8x8 mesh."""

    def build():
        mesh = Mesh(8, 8)
        r = TurnTableRouting(mesh, catalog.dyxy_partitions())
        r.candidates((0, 0), (7, 7), None)
        return r

    assert benchmark(build) is not None


def test_simulation_throughput_xy(once):
    """Simulate 2000 cycles of an 8x8 mesh under XY at moderate load."""
    mesh = Mesh(8, 8)

    def run():
        sim = NetworkSimulator(mesh, xy_routing(mesh), buffer_depth=4)
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=1)
        )
        return sim.run(2000, traffic, drain=True)

    stats = once(run)
    assert not stats.deadlocked
    assert stats.packets_delivered == stats.packets_injected


def test_simulation_throughput_adaptive(once):
    """Simulate 2000 cycles of an 8x8 mesh under the EbDa adaptive design."""
    mesh = Mesh(8, 8)

    def run():
        sim = NetworkSimulator(mesh, MinimalFullyAdaptive(mesh), buffer_depth=4)
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=1)
        )
        return sim.run(2000, traffic, drain=True)

    stats = once(run)
    assert not stats.deadlocked
    assert stats.packets_delivered == stats.packets_injected


def test_simulation_throughput_metered(once):
    """The XY baseline with a live MetricsCollector attached.

    Compare against ``test_simulation_throughput_xy``: the gap is the
    telemetry overhead (hooks + sampling every 100 cycles).  The
    ``metrics=None`` default path must stay within noise of the plain
    run — the hooks are two attribute checks per cycle.
    """
    from repro.sim import MetricsCollector

    mesh = Mesh(8, 8)

    def run():
        collector = MetricsCollector(sample_every=100)
        sim = NetworkSimulator(
            mesh, xy_routing(mesh), buffer_depth=4, metrics=collector
        )
        traffic = TrafficGenerator(
            mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=1)
        )
        stats = sim.run(2000, traffic, drain=True)
        collector.finalize()
        return stats, collector

    stats, collector = once(run)
    assert not stats.deadlocked
    assert collector.samples_taken >= 20
