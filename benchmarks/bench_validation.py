"""Benchmarks for the verification experiments V1-V4 (see DESIGN.md).

The simulation-heavy experiments (V2/V3/V7) run through the
:class:`~repro.sim.parallel.SweepEngine`; each benchmark records the
engine's :class:`~repro.sim.parallel.SweepReport` in ``extra_info`` so
``BENCH_*.json`` captures per-point wall times and cache effectiveness
alongside the timing.
"""

from benchmarks.conftest import report
from repro.experiments import (
    cdg_validation,
    deadlock_demo,
    fault_sweep,
    partial3d_sim,
    perf_sweep,
)
from repro.sim import ResultCache, SweepEngine


def _record_sweep(benchmark, result) -> None:
    """Attach the experiment's SweepReport to the benchmark record."""
    sweep = result.data.get("sweep")
    if sweep is not None:
        benchmark.extra_info["sweep"] = sweep


def test_v1_every_design_acyclic(once):
    """V1: every Algorithm-1/2 design has an acyclic concrete CDG."""
    report(once(cdg_validation.run))


def test_v2_deadlock_stress(once, benchmark):
    """V2: the unrestricted baseline deadlocks; EbDa designs never do."""
    result = once(deadlock_demo.run)
    _record_sweep(benchmark, result)
    report(result)


def test_v3_latency_throughput(once, benchmark):
    """V3: latency vs injection rate for the derived algorithms."""
    result = once(perf_sweep.run)
    _record_sweep(benchmark, result)
    report(result)


def test_v4_partial3d_comparison(once):
    """V4: §6.3 design vs Elevator-First on a partial 3D NoC."""
    report(once(partial3d_sim.run))


def test_v7_fault_sweep(once, benchmark):
    """V7: runtime faults, rerouting and regressive deadlock recovery."""
    result = once(fault_sweep.run)
    _record_sweep(benchmark, result)
    report(result)


def test_v2_warm_cache(once, benchmark, tmp_path):
    """V2 rerun against a warm cache: zero simulation cycles executed."""
    cache = ResultCache(tmp_path / "cache")
    deadlock_demo.run(engine=SweepEngine(cache=cache))  # cold run primes it
    result = once(deadlock_demo.run, engine=SweepEngine(cache=cache))
    sweep = result.data["sweep"]
    assert sweep["cache_misses"] == 0, sweep
    assert sweep["cycles_executed"] == 0, sweep
    _record_sweep(benchmark, result)
    report(result)
