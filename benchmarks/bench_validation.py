"""Benchmarks for the verification experiments V1-V4 (see DESIGN.md)."""

from benchmarks.conftest import report
from repro.experiments import (
    cdg_validation,
    deadlock_demo,
    fault_sweep,
    partial3d_sim,
    perf_sweep,
)


def test_v1_every_design_acyclic(once):
    """V1: every Algorithm-1/2 design has an acyclic concrete CDG."""
    report(once(cdg_validation.run))


def test_v2_deadlock_stress(once):
    """V2: the unrestricted baseline deadlocks; EbDa designs never do."""
    report(once(deadlock_demo.run))


def test_v3_latency_throughput(once):
    """V3: latency vs injection rate for the derived algorithms."""
    report(once(perf_sweep.run))


def test_v4_partial3d_comparison(once):
    """V4: §6.3 design vs Elevator-First on a partial 3D NoC."""
    report(once(partial3d_sim.run))


def test_v7_fault_sweep(once):
    """V7: runtime faults, rerouting and regressive deadlock recovery."""
    report(once(fault_sweep.run))
