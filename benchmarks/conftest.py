"""Benchmark-suite helpers.

Every paper artifact has one benchmark that times its regeneration and
prints the regenerated table/figure content (run pytest with ``-s`` to see
it).  Simulation-heavy experiments run one round (they are macro
experiments, not microbenchmarks).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a macro experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def report(result) -> None:
    """Print an experiment report and assert its paper checks."""
    print()
    print(result.report())
    result.require()


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write one ``BENCH_<module>.json`` per benchmarked module.

    Groups the session's pytest-benchmark results by source module
    (``bench_micro.py`` -> ``BENCH_micro.json``) and records each test's
    timing stats plus its ``extra_info`` through
    :func:`benchmarks.benchlib.write_bench_json` — the same artifact
    shape the script-style benchmarks write directly.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    from pathlib import Path

    from benchmarks.benchlib import write_bench_json

    by_module: dict = {}
    for bench in bench_session.benchmarks:
        module = bench.fullname.split("::")[0]
        name = Path(module).stem.removeprefix("bench_")
        by_module.setdefault(name, []).append(bench)
    for name, benches in sorted(by_module.items()):
        entries = []
        total_s = 0.0
        rounds = 0
        for bench in benches:
            stats = bench.stats
            total_s += stats.total
            rounds += stats.rounds
            entries.append(
                {
                    "test": bench.name,
                    "mean_s": stats.mean,
                    "min_s": stats.min,
                    "rounds": stats.rounds,
                    "extra": dict(bench.extra_info or {}),
                }
            )
        path = write_bench_json(
            name,
            params={"tests": [e["test"] for e in entries]},
            wall_s=total_s,
            throughput=(rounds / total_s) if total_s else None,
            extra={"benchmarks": entries},
        )
        print(f"\nbenchmark record written to {path}")
