"""Benchmark-suite helpers.

Every paper artifact has one benchmark that times its regeneration and
prints the regenerated table/figure content (run pytest with ``-s`` to see
it).  Simulation-heavy experiments run one round (they are macro
experiments, not microbenchmarks).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a macro experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def report(result) -> None:
    """Print an experiment report and assert its paper checks."""
    print()
    print(result.report())
    result.require()
