"""Benchmark: observability overhead — the disabled-tracing <2% gate.

Instrumentation is only free if *disabled* tracing costs nothing anyone
can measure.  This benchmark quantifies that three ways on the 16x16
uniform-random sweep the acceptance gate names:

1. **per-span cost, disabled** — a microbenchmark of the exact hot-path
   sequence the instrumented subsystems run (``current_tracer()`` +
   ``span()`` enter/exit against the shared :data:`~repro.obs.NULL_TRACER`);
2. **span volume** — how many spans one traced sweep actually opens
   (counted by running the same sweep under a live
   :class:`~repro.obs.Tracer`);
3. **the gate** — worst-case disabled overhead = per-span cost x span
   volume / untraced sweep wall time, which must stay under 2%.  This
   bound is *deliberately pessimistic*: it charges every span at full
   microbenchmark price against the measured wall time, yet the product
   is orders of magnitude below the budget because spans sit at
   orchestration granularity (stages and batches, never cycles).

An enabled-vs-disabled A/B wall-time comparison is also recorded (for
the record, not the gate — single-run wall-clock deltas at this scale
are noise-dominated).

Not collected by pytest (``testpaths = tests``); run directly:

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]

Writes ``BENCH_obs.json``; exits 1 if the overhead gate fails.
Measured results are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

from repro.obs import NULL_TRACER, Tracer, current_tracer, set_tracer, tracing
from repro.sim import RunConfig, SweepEngine
from repro.topology import Mesh

SWEEP_MESH = (16, 16)
SWEEP_RATES = (0.04, 0.08, 0.12)
SWEEP_CYCLES = 400
SEED = 1
MICROBENCH_SPANS = 200_000
MAX_OVERHEAD = 0.02


def null_span_cost(iterations: int = MICROBENCH_SPANS) -> float:
    """Seconds per disabled span (lookup + enter + exit, amortised)."""
    previous = set_tracer(NULL_TRACER)
    try:
        started = time.perf_counter()
        for _ in range(iterations):
            with current_tracer().span("bench.noop", i=0):
                pass
        return (time.perf_counter() - started) / iterations
    finally:
        set_tracer(previous)


def run_sweep(mesh, rates, cycles) -> float:
    """One uncached uniform sweep; returns its wall seconds."""
    engine = SweepEngine(jobs=1, cache=None)
    config = RunConfig(cycles=cycles, seed=SEED, watchdog=2 * cycles)
    started = time.perf_counter()
    engine.sweep(Mesh(*mesh), "xy", list(rates), config)
    return time.perf_counter() - started


def traced_sweep(mesh, rates, cycles) -> tuple[float, int]:
    """The same sweep under a live tracer; (wall seconds, span count)."""
    tracer = Tracer()
    with tracing(tracer):
        wall = run_sweep(mesh, rates, cycles)
    spans = sum(1 for e in tracer.events if e["event"] == "span-start")
    return wall, spans


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    mesh = (8, 8) if quick else SWEEP_MESH
    rates = SWEEP_RATES[:1] if quick else SWEEP_RATES
    cycles = 100 if quick else SWEEP_CYCLES

    per_span = null_span_cost(10_000 if quick else MICROBENCH_SPANS)
    print(f"disabled span cost: {per_span * 1e9:.0f} ns/span")

    dims = "x".join(str(k) for k in mesh)
    untraced = run_sweep(mesh, rates, cycles)
    traced, spans = traced_sweep(mesh, rates, cycles)
    print(f"{dims} sweep ({len(rates)} rates, {cycles} cycles):"
          f" untraced {untraced:.3f}s, traced {traced:.3f}s, {spans} spans")

    overhead = (per_span * spans) / untraced
    enabled_delta = (traced - untraced) / untraced
    print(f"disabled overhead bound: {spans} spans x {per_span * 1e9:.0f} ns"
          f" / {untraced:.3f}s = {overhead * 100:.4f}%")
    print(f"enabled A/B delta: {enabled_delta * 100:+.1f}% (informational)")

    try:
        from benchmarks.benchlib import write_bench_json
    except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
        from benchlib import write_bench_json

    path = write_bench_json(
        "obs",
        params={
            "mesh": list(mesh),
            "rates": list(rates),
            "cycles": cycles,
            "microbench_spans": MICROBENCH_SPANS,
            "quick": quick,
        },
        wall_s=untraced + traced,
        throughput=(1.0 / per_span) if per_span else None,
        extra={
            "null_span_cost_s": per_span,
            "sweep_untraced_s": untraced,
            "sweep_traced_s": traced,
            "span_count": spans,
            "disabled_overhead_fraction": overhead,
            "enabled_delta_fraction": enabled_delta,
            "max_overhead_fraction": MAX_OVERHEAD,
        },
    )
    print(f"benchmark record written to {path}")

    if overhead >= MAX_OVERHEAD:
        print(f"FAIL: disabled tracing overhead {overhead * 100:.2f}%"
              f" >= {MAX_OVERHEAD * 100:.0f}%")
        return 1
    print(f"overhead gate: {overhead * 100:.4f}% < {MAX_OVERHEAD * 100:.0f}%  [ok]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
