"""Chaos campaign throughput: trials/second, serial vs parallel.

A chaos campaign is embarrassingly parallel — every trial is derived
independently from the master seed — so `SweepEngine.map_tasks` should
buy near-linear speedup while staying byte-identical to the serial run.
These benchmarks put numbers on both halves of that claim on the
acceptance-criteria configuration (4x4 mesh, negative-first).

Run with ``pytest benchmarks/bench_chaos.py --benchmark-only -s``.
"""

import pytest

from benchmarks.conftest import report
from repro.chaos import CampaignConfig, ChaosCampaign
from repro.experiments import chaos_campaign
from repro.sim.parallel import SweepEngine

#: The acceptance-criteria campaign: 4x4 mesh, all workloads, all policies.
CONFIG = CampaignConfig(trials=24, seed=0, mesh=(4, 4), cycles=300)


def _trials_per_second(benchmark, engine):
    result = benchmark.pedantic(
        lambda: ChaosCampaign(CONFIG, engine=engine).run(),
        rounds=1,
        iterations=1,
    )
    assert result.trials_completed == CONFIG.trials
    assert not result.interrupted
    elapsed = benchmark.stats.stats.mean
    print(f"\n  {CONFIG.trials} trials in {elapsed:.2f}s "
          f"-> {CONFIG.trials / elapsed:.1f} trials/s")
    return result


def test_campaign_serial(benchmark):
    """Baseline: the deterministic in-process path (--jobs 1)."""
    _trials_per_second(benchmark, SweepEngine(jobs=1))


def test_campaign_parallel(benchmark):
    """Worker-pool path (--jobs 4); must stay byte-identical to serial."""
    serial = ChaosCampaign(CONFIG).run()
    parallel = _trials_per_second(benchmark, SweepEngine(jobs=4))
    assert parallel.trial_bytes == serial.trial_bytes


@pytest.mark.benchmark(group="experiments")
def test_v9_chaos(once):
    """The V9 experiment end to end (determinism + resume checks)."""
    report(once(chaos_campaign.run))
