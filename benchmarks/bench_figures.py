"""Benchmarks regenerating Figures 3-10 of the paper."""

from benchmarks.conftest import report
from repro.experiments import fig3, fig4, fig5, fig6, fig7, fig8, fig9, fig10


def test_fig3_missing_direction(benchmark):
    """Figure 3: {X+, X-, Y-} -> turns WS, SE, ES, SW; acyclic."""
    report(benchmark(fig3.run))


def test_fig4_ui_turn_numbering(benchmark):
    """Figure 4: 9 U + 6 I turns for 3 VCs; n(n-1)/2 identity."""
    report(benchmark(fig4.run))


def test_fig5_theorem3_north_last(benchmark):
    """Figure 5: PA{X+ X- Y-} -> PB{Y+} regenerates north-last."""
    report(benchmark(fig5.run))


def test_fig6_partitioning_strategies(benchmark):
    """Figure 6: P1..P5 -> XY / partial / west-first / negative-first."""
    report(benchmark(fig6.run))


def test_fig7_2d_minimum(benchmark):
    """Figure 7: 6 channels suffice in 2D; 5 provably do not."""
    report(benchmark(fig7.run))


def test_fig8_3d_turn_extraction(once):
    """Figure 8: the 140-turn extraction for the (2,2,4)-VC 3D design."""
    report(once(fig8.run))


def test_fig9_3d_constructions(once):
    """Figure 9: 24-channel vs 16-channel 3D fully adaptive designs."""
    report(once(fig9.run))


def test_fig10_odd_even_rules(benchmark):
    """Figure 10: Odd-Even rules verified over all routing states."""
    report(benchmark(fig10.run))


def test_fig1_fig2_definitions(benchmark):
    """Figures 1-2: the definitional objects, instantiated and checked."""
    from repro.experiments import fig1_fig2

    report(benchmark(fig1_fig2.run))
