"""Lint-vs-verify benchmark: the static analyzer's whole selling point.

``repro lint`` exists because a designer should not need a concrete CDG
build (O(topology size) wires + a networkx cycle check) just to learn a
partition sequence breaks Theorem 1.  These benchmarks put a number on
that gap: linting the full catalog is topology-size independent, while
`verify_design` grows with the mesh.

Run with ``pytest benchmarks/bench_lint.py --benchmark-only -s``.
"""

import pytest

from repro.analyze import Analyzer, DesignUnit
from repro.cdg import verify_design
from repro.core import catalog
from repro.topology import Mesh
from repro.topology.classes import rule_for_design


def _catalog_units() -> list[DesignUnit]:
    units = []
    for name in sorted(catalog.NAMED_DESIGNS):
        design = catalog.design(name)
        n_dims = len({ch.dim for ch in design.all_channels})
        units.append(
            DesignUnit.from_sequence(
                design,
                name=name,
                topology=Mesh(*((4,) * n_dims)),
                rule=rule_for_design(name),
            )
        )
    return units


def test_lint_full_catalog(benchmark):
    """Statically lint every catalog design (all default rules)."""
    units = _catalog_units()
    analyzer = Analyzer()

    def run():
        return [analyzer.run(u) for u in units]

    reports = benchmark(run)
    assert len(reports) == len(units)
    assert all(r.ok for r in reports)


def test_verify_full_catalog_concrete_cdg(benchmark):
    """The comparison point: concrete-CDG verification of the same catalog."""
    pairs = []
    for name in sorted(catalog.NAMED_DESIGNS):
        design = catalog.design(name)
        n_dims = len({ch.dim for ch in design.all_channels})
        pairs.append((design, Mesh(*((4,) * n_dims)), rule_for_design(name)))

    def run():
        return [verify_design(d, topo, rule=rule) for d, topo, rule in pairs]

    verdicts = benchmark(run)
    assert all(v.acyclic for v in verdicts)


@pytest.mark.parametrize("radix", [4, 8, 16])
def test_lint_is_topology_size_independent(benchmark, radix):
    """Lint cost on RxR meshes barely moves with R (wrap analysis only).

    `verify_design` on the same meshes walks every wire; the lint pass
    touches the topology only through its wrap-link ring structure, so
    the three radixes should land within noise of each other.
    """
    design = catalog.design("west-first")
    unit = DesignUnit.from_sequence(
        design, name="west-first", topology=Mesh(radix, radix)
    )
    analyzer = Analyzer()
    report = benchmark(analyzer.run, unit)
    assert report.ok


@pytest.mark.parametrize("radix", [4, 8, 16])
def test_verify_scales_with_topology(benchmark, radix):
    """The contrast: concrete-CDG verification cost grows with the mesh."""
    design = catalog.design("west-first")
    verdict = benchmark(verify_design, design, Mesh(radix, radix))
    assert verdict.acyclic


def test_certify_full_registry_symbolic(benchmark):
    """The third column: one symbolic proof covers EVERY radix at once.

    Where ``test_lint_full_catalog`` lints each design at one concrete
    (n, k) and ``verify_design`` rebuilds a CDG per topology, ``certify``
    proves the rules over the whole parametric domain — so its wall time
    is the cost of verifying infinitely many instantiations.  The record
    lands in ``BENCH_certify.json`` next to the lint numbers.
    """
    import time

    from repro.analyze import certify_all, check_certificates
    from repro.analyze.symbolic import SYMBOLIC_FAMILIES

    reports = benchmark(certify_all)
    assert len(reports) == len(SYMBOLIC_FAMILIES)
    certs = [c.to_dict() for rep in reports for c in rep.certificates]

    check_start = time.perf_counter()
    results = check_certificates(certs)
    check_s = time.perf_counter() - check_start
    assert all(r.ok for r in results)

    try:
        from benchmarks.benchlib import write_bench_json
    except ImportError:  # run as a script: benchmarks/ itself is sys.path[0]
        from benchlib import write_bench_json

    wall_s = benchmark.stats.stats.mean
    path = write_bench_json(
        "certify",
        params={
            "families": len(reports),
            "certificates": len(certs),
        },
        wall_s=wall_s,
        throughput=len(certs) / wall_s if wall_s else None,
        extra={
            "certify_s": wall_s,
            "certcheck_s": check_s,
            "violations": sum(
                1 for rep in reports for c in rep.certificates
                if c.status == "violation"
            ),
        },
    )
    print(f"\nbenchmark record written to {path}")
