"""Shared writer for the standard benchmark artifact, ``BENCH_<name>.json``.

Every benchmark module lands one JSON file with the same shape — name,
parameters, wall seconds, a headline throughput number, and the library +
Python versions that produced it — so regressions are diffable across
commits without re-parsing free-form stdout:

* pytest-benchmark modules get theirs automatically from the
  ``pytest_sessionfinish`` hook in ``benchmarks/conftest.py`` (one file
  per ``bench_*.py`` module, each test's stats under ``"benchmarks"``);
* script-style benchmarks (``bench_vector.py``, ``bench_obs.py``) call
  :func:`write_bench_json` directly from ``main``.

Files land in the repository root (git-ignored); baseline numbers worth
keeping are copied into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path

#: Bump when the BENCH record schema changes shape.
BENCH_SCHEMA = 1


def bench_versions() -> dict:
    """The version stamp every BENCH record carries."""
    import repro

    return {"repro": repro.__version__, "python": platform.python_version()}


def write_bench_json(
    name: str,
    *,
    params: dict,
    wall_s: float,
    throughput: "float | None" = None,
    extra: "dict | None" = None,
    directory: "str | Path | None" = None,
) -> Path:
    """Write ``BENCH_<name>.json`` (strict JSON); returns the path.

    ``throughput`` is the module's headline rate — trials/s, ops/s, or a
    speedup ratio — whatever the module's docstring says it reports.
    ``extra`` fields (per-test stats, gate outcomes) merge into the
    record top-level and must be strict-JSON-safe.
    """
    record = {
        "schema": BENCH_SCHEMA,
        "record": "bench",
        "name": name,
        "params": params,
        "wall_s": wall_s,
        "throughput": throughput,
        "versions": bench_versions(),
    }
    if extra:
        record.update(extra)
    root = Path(directory) if directory else Path(__file__).resolve().parent.parent
    path = root / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True, allow_nan=False) + "\n"
    )
    return path
