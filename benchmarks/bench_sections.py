"""Benchmarks for the in-text results: §2, §4, §5 and §6.1/§6.2."""

from benchmarks.conftest import report
from repro.experiments import (
    algorithm1_demo,
    complexity,
    hamiltonian,
    minimal_channels,
    turnmodel_search,
)


def test_s2_complexity_accounting(benchmark):
    """§2: turn-model verification cost (16, 65,536, ...) vs EbDa."""
    report(benchmark(complexity.run))


def test_s4_minimum_channels(once):
    """§4: N = (n+1) * 2^(n-1); constructions verified for n = 2..5."""
    report(once(minimal_channels.run))


def test_s5_algorithm1_worked_example(once):
    """§5: Algorithm 1 on (3,2,3) VCs reproduces Figure 9(c)."""
    report(once(algorithm1_demo.run))


def test_s61_glass_ni_search(benchmark):
    """§6.1: 16 combinations -> 12 deadlock-free -> 3 unique models."""
    report(benchmark(turnmodel_search.run))


def test_s62_hamiltonian_path(benchmark):
    """§6.2: the Hamiltonian-path strategy's 8 turns among the 12 allowed."""
    report(benchmark(hamiltonian.run))


def test_s5b_design_space(once):
    """S5b: enumerate + verify the entire derivable design space."""
    from repro.experiments import design_space

    report(once(design_space.run))
