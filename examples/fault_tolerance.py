"""Fault tolerance: surviving link failures and deadlocks at runtime.

Two demonstrations of the fault-injection and recovery subsystem:

1. A 5x5 mesh under the negative-first EbDa design loses two links
   mid-run.  The simulator degrades the topology, rebuilds the routing
   function (progressive directions + escape fallback — Theorem 2's
   U-turns at work), re-verifies the degraded design's channel
   dependency graph, aborts the disturbed packets and retransmits them.
   Every packet still arrives.

2. The deadlock-PRONE unrestricted-adaptive baseline under heavy load:
   the watchdog confirms a genuine cyclic wait, and regressive recovery
   aborts one victim packet (releasing the wires the cycle needs) and
   retransmits it after exponential backoff.  The run completes instead
   of halting.

Run:  python examples/fault_tolerance.py
"""

from repro.core import catalog
from repro.routing import TurnTableRouting
from repro.routing.fullyadaptive import UnrestrictedAdaptive
from repro.sim import (
    FaultEvent,
    FaultSchedule,
    NetworkSimulator,
    RecoveryPolicy,
    Trace,
    TrafficConfig,
    TrafficGenerator,
)
from repro.topology import Mesh


def link_failures() -> None:
    print("=== 1. link failures under an EbDa design ===")
    mesh = Mesh(5, 5)
    design = catalog.design("negative-first")

    def factory(topo):
        # Rebuilt after every permanent fault; "escape" admits the
        # design's U-turns so packets can reroute around the hole.
        return TurnTableRouting(topo, design, directions="progressive",
                                fallback="escape")

    faults = FaultSchedule([
        FaultEvent(60, "link", link=((2, 2), (3, 2))),
        FaultEvent(120, "link", link=((1, 3), (1, 4))),
    ])
    tracer = Trace()
    sim = NetworkSimulator(
        mesh, factory(mesh),
        faults=faults, recovery=RecoveryPolicy(),
        routing_factory=factory, tracer=tracer,
    )
    traffic = TrafficGenerator(
        mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=11)
    )
    stats = sim.run(300, traffic, drain=True)

    for event in tracer.of_kind("fault") + tracer.of_kind("rerouted"):
        print(f"  {event}")
    print(f"  degraded-design verdict: {sim.last_reroute_verdict}")
    print(f"  {stats.summary(len(mesh.nodes))}")
    assert stats.delivery_ratio == 1.0, "every packet must still arrive"
    assert sim.last_reroute_verdict.acyclic


def deadlock_recovery() -> None:
    print("\n=== 2. regressive deadlock recovery ===")
    mesh = Mesh(4, 4)
    tracer = Trace()
    sim = NetworkSimulator(
        mesh, UnrestrictedAdaptive(mesh),  # deadlock-prone on purpose
        watchdog=80, seed=3,
        recovery=RecoveryPolicy(max_retries=20),
        tracer=tracer,
    )
    traffic = TrafficGenerator(
        mesh, TrafficConfig(injection_rate=0.35, packet_length=6, seed=3)
    )
    stats = sim.run(400, traffic, drain=True)

    for event in tracer.of_kind("recovered")[:3]:
        print(f"  {event}")
    print(f"  {stats.summary(len(mesh.nodes))}")
    print(f"  recovered deadlocks: {stats.recovered_deadlocks},"
          f" avg recovery latency: {stats.avg_recovery_latency:.0f} cycles")
    assert stats.recovered_deadlocks >= 1
    assert stats.delivery_ratio == 1.0


def main() -> None:
    link_failures()
    deadlock_recovery()
    print("\nfaults absorbed, deadlocks recovered, all packets delivered.")


if __name__ == "__main__":
    main()
