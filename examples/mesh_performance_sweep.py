"""Latency/throughput sweep: deterministic vs adaptive routing.

Compares XY, west-first, Odd-Even and the EbDa minimal fully adaptive
design on an 8x8 mesh under uniform and transpose traffic — the evaluation
an ISCA reader would expect next to the paper's structural results.

Run:  python examples/mesh_performance_sweep.py          (~1-2 minutes)
"""

from repro.routing import MinimalFullyAdaptive, OddEven, WestFirst, congestion_aware, xy_routing
from repro.sim import RunConfig, compare_table, saturation_rate, sweep_rates, transpose, uniform
from repro.topology import Mesh


def main() -> None:
    mesh = Mesh(8, 8)
    rates = [0.01, 0.03, 0.05, 0.08, 0.11]
    algorithms = {
        "xy": lambda t: xy_routing(t),
        "west-first": lambda t: WestFirst(t),
        "odd-even": lambda t: OddEven(t),
        "ebda-adaptive": lambda t: MinimalFullyAdaptive(t),
    }

    for pattern_name, pattern in (("uniform", uniform), ("transpose", transpose)):
        config = RunConfig(
            cycles=1200,
            packet_length=4,
            buffer_depth=4,
            selection=congestion_aware,
            pattern=pattern,
            watchdog=3000,
            seed=17,
        )
        print(f"\n=== {pattern_name} traffic, 8x8 mesh, 4-flit packets ===")
        results = {
            name: sweep_rates(mesh, factory, rates, config)
            for name, factory in algorithms.items()
        }
        print(compare_table(results))
        for name, series in results.items():
            sat = saturation_rate(series)
            print(f"saturation ({name}): {sat if sat is not None else '> max rate'}")


if __name__ == "__main__":
    main()
