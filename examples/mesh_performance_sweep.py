"""Latency/throughput sweep: deterministic vs adaptive routing.

Compares XY, west-first, Odd-Even and the EbDa minimal fully adaptive
design on an 8x8 mesh under uniform and transpose traffic — the evaluation
an ISCA reader would expect next to the paper's structural results.

Uses the ``repro.sweep`` facade with named routing/pattern specs, so the
grid fans out over worker processes and repeated runs hit the on-disk
result cache (delete ``~/.cache/repro-ebda`` to force a re-simulation).

Run:  python examples/mesh_performance_sweep.py          (~1-2 minutes,
      seconds when the cache is warm)
"""

import os

import repro
from repro.sim import RunConfig, compare_table, saturation_rate
from repro.topology import Mesh

ALGORITHMS = ("xy", "west-first", "odd-even", "ebda-fully-adaptive")


def main() -> None:
    mesh = Mesh(8, 8)
    rates = [0.01, 0.03, 0.05, 0.08, 0.11]
    jobs = min(4, os.cpu_count() or 1)

    for pattern_name in ("uniform", "transpose"):
        config = RunConfig(
            cycles=1200,
            packet_length=4,
            buffer_depth=4,
            selection="congestion",
            pattern=pattern_name,
            watchdog=3000,
            seed=17,
        )
        print(f"\n=== {pattern_name} traffic, 8x8 mesh, 4-flit packets ===")
        reports = {
            name: repro.sweep(mesh, name, rates, config, jobs=jobs, cache=True)
            for name in ALGORITHMS
        }
        print(compare_table({name: r.results for name, r in reports.items()}))
        for name, sweep_report in reports.items():
            sat = saturation_rate(sweep_report.results)
            print(
                f"saturation ({name}): {sat if sat is not None else '> max rate'}"
                f"   [{sweep_report.summary()}]"
            )


if __name__ == "__main__":
    main()
