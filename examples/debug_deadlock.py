"""Dissecting a wormhole deadlock with the library's forensics tooling.

Runs the deadlock-prone unrestricted-adaptive baseline into the ground,
then answers the three questions a NoC architect asks:

1. *that* it deadlocked  — the progress watchdog;
2. *who* is stuck        — the packet wait-for graph's cyclic witness;
3. *why* it was possible — the cyclic channel dependency graph, plus the
   EbDa fix (the same traffic on a partitioned design completes).

Run:  python examples/debug_deadlock.py
"""

from repro.analysis import mesh_heatmap
from repro.cdg import verify_routing
from repro.routing import MinimalFullyAdaptive, UnrestrictedAdaptive
from repro.sim import (
    NetworkSimulator,
    Trace,
    TrafficConfig,
    TrafficGenerator,
    build_waitfor_graph,
    held_wires,
    waitfor_cycle,
)
from repro.topology import Mesh


def main() -> None:
    mesh = Mesh(4, 4)
    stress = TrafficConfig(injection_rate=0.35, packet_length=8, seed=3)

    # --- 0. the verdict was available before running anything ---------------
    verdict = verify_routing(UnrestrictedAdaptive(mesh), mesh)
    print(f"static verification: {verdict}\n")

    # --- 1. run it anyway and watch the watchdog fire ------------------------
    trace = Trace()
    sim = NetworkSimulator(
        mesh, UnrestrictedAdaptive(mesh), buffer_depth=2, watchdog=200, tracer=trace
    )
    sim.run(2500, TrafficGenerator(mesh, stress))
    print(f"simulation: {sim.stats.summary(len(mesh.nodes))}")
    assert sim.stats.deadlocked

    # --- 2. who is stuck: the cyclic wait ------------------------------------
    cycle = waitfor_cycle(sim)
    print(f"\ncyclic wait among packets: {cycle}")
    for pid in cycle[:4]:
        wires = held_wires(sim, pid)
        print(f"  #{pid} holds {len(wires)} wires, e.g. {wires[0]}")
    graph = build_waitfor_graph(sim)
    print(f"wait-for graph: {graph.number_of_nodes()} packets,"
          f" {graph.number_of_edges()} wait edges")

    # --- 3. one victim's story, from the trace -------------------------------
    victim = cycle[0]
    events = trace.for_packet(victim)
    print(f"\nlast steps of packet #{victim}:")
    for event in events[-6:]:
        print(f"  {event}")

    print("\nlink load at the moment of death:")
    print(mesh_heatmap(sim))

    # --- 4. the fix: same traffic, EbDa-partitioned design -------------------
    fixed = NetworkSimulator(mesh, MinimalFullyAdaptive(mesh), buffer_depth=2, watchdog=200)
    stats = fixed.run(2500, TrafficGenerator(mesh, stress), drain=True)
    print(f"\nsame stress on the EbDa design: {stats.summary(len(mesh.nodes))}")
    assert not stats.deadlocked and stats.delivery_ratio == 1.0


if __name__ == "__main__":
    main()
