"""Quickstart: design, verify and simulate a deadlock-free routing algorithm.

The whole EbDa workflow in ~40 lines:

1. write channels into ordered disjoint partitions (here: north-last);
2. extract the allowed turns (Theorems 1-3);
3. verify deadlock freedom on a concrete mesh (Dally's criterion);
4. run wormhole traffic over it and watch everything arrive.

Run:  python examples/quickstart.py
"""

from repro import PartitionSequence, extract_turns
from repro.cdg import verify_design
from repro.routing import TurnTableRouting
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator
from repro.topology import Mesh


def main() -> None:
    # 1. An EbDa design is just partitions traced in order.  {X+, X-, Y-}
    #    then {Y+} is the paper's Theorem-3 example — the north-last model.
    design = PartitionSequence.parse("X+ X- Y- -> Y+").validate()
    print(f"design: {design}")

    # 2. The turns fall out of the theorems mechanically.
    turns = extract_turns(design)
    print(f"allowed turns ({len(turns)}):")
    print(turns.describe())

    # 3. Dally verification on a concrete 8x8 mesh.
    mesh = Mesh(8, 8)
    verdict = verify_design(design, mesh)
    print(f"\nCDG verdict: {verdict}")
    assert verdict.acyclic

    # 4. Simulate: uniform random wormhole traffic, then drain.
    routing = TurnTableRouting(mesh, design, label="north-last")
    sim = NetworkSimulator(mesh, routing, buffer_depth=4)
    traffic = TrafficGenerator(
        mesh, TrafficConfig(injection_rate=0.05, packet_length=4, seed=1)
    )
    stats = sim.run(2000, traffic, drain=True)
    print(f"\nsimulation: {stats.summary(len(mesh.nodes))}")
    assert not stats.deadlocked
    assert stats.packets_delivered == stats.packets_injected
    print("all packets delivered - the design is deadlock-free in practice too.")


if __name__ == "__main__":
    main()
