"""Dual-path multicast over the Hamiltonian partitioning (§6.2).

Builds a multicast group on a 6x6 mesh, splits it into the high/low worms
of the Lin-Ni dual-path strategy, simulates both worms dropping copies at
their waypoints, and compares the hop cost against separate unicasts.

Run:  python examples/multicast_hamiltonian.py
"""

import random

from repro.cdg import verify_routing
from repro.routing import (
    HamiltonianPathRouting,
    MulticastHamiltonianRouting,
    dual_path_cost,
    hamiltonian_label,
    plan_dual_path,
    unicast_cost,
)
from repro.sim import NetworkSimulator, Packet
from repro.topology import Mesh, row_parity


def main() -> None:
    mesh = Mesh(6, 6)
    rng = random.Random(3)
    src = (2, 3)
    group = rng.sample([n for n in mesh.nodes if n != src], 9)
    print(f"multicast from {src} to {len(group)} destinations: {sorted(group)}")

    # The two monotone sub-networks are §6.2's partitions PA and PB.
    for direction in ("up", "down"):
        verdict = verify_routing(HamiltonianPathRouting(mesh, direction), mesh, row_parity)
        print(f"{direction:4s} network: {verdict}")

    high, low = plan_dual_path(mesh, src, group)
    for name, worm in (("high", high), ("low", low)):
        if worm:
            labels = [hamiltonian_label(d, 6) for d in worm.destinations]
            print(f"{name} worm visits {worm.destinations} (labels {labels})")

    print(f"\ndual-path hops: {dual_path_cost(mesh, src, group)}"
          f"  vs separate unicasts: {unicast_cost(mesh, src, group)}")

    pid = 0
    for tmpl, direction in ((high, "up"), (low, "down")):
        if tmpl is None:
            continue
        routing = MulticastHamiltonianRouting(mesh, direction)
        sim = NetworkSimulator(mesh, routing, row_parity, buffer_depth=4)
        worm = Packet(pid=pid, src=tmpl.src, dst=tmpl.dst, length=4, created=0,
                      waypoints=tmpl.waypoints)
        pid += 1
        sim.offer_packet(worm)
        while not sim.is_idle():
            sim.step()
        print(f"{direction} worm: delivered in {worm.total_latency} cycles,"
              f" copies at {sorted(worm.copies)}")


if __name__ == "__main__":
    main()
