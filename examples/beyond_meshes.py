"""Beyond meshes: torus, fat-tree and dragonfly under one discipline.

The paper's Assumption 3 covers meshes and k-ary n-cubes and names
fat-trees and dragonflies as future work.  The unifying idea survives the
topology change: order the channel classes, let packets cross classes in
one direction only, and verify the concrete CDG.  This example runs the
full design/verify/simulate loop on all three.

Run:  python examples/beyond_meshes.py
"""

from repro.cdg import verify_design, verify_routing
from repro.core import catalog
from repro.core.torus_designs import dateline_design
from repro.routing import (
    DragonflyRouting,
    DragonflySingleVC,
    TurnTableRouting,
    UpDownRouting,
    dragonfly_rule,
)
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator, tornado
from repro.topology import Dragonfly, FatTree, Torus
from repro.topology.classes import dateline


def simulate(topo, routing, rule, *, rate=0.06, cycles=1200, pattern=None):
    sim = NetworkSimulator(topo, routing, rule, buffer_depth=4, watchdog=3000)
    cfg = TrafficConfig(injection_rate=rate, packet_length=4, seed=19)
    if pattern is not None:
        cfg = TrafficConfig(
            injection_rate=rate, packet_length=4, pattern=pattern, seed=19
        )
    stats = sim.run(cycles, TrafficGenerator(topo, cfg), drain=True)
    return stats.summary(len(topo.endpoints))


def main() -> None:
    # --- Torus: dateline partitions handle the wrap links -------------------
    torus = Torus(5, 5)
    design = dateline_design(2)
    print(f"== {torus!r} ==")
    print(f"mesh design (north-last): {verify_design(catalog.north_last(), torus)}")
    print(f"dateline design:          {verify_design(design, torus, dateline)}")
    routing = TurnTableRouting(torus, design, dateline, label="dateline")
    print("tornado traffic:", simulate(torus, routing, dateline, pattern=tornado))

    # --- Fat-tree: up*/down* with topology levels ---------------------------
    ft = FatTree(leaves=4, spines=2, hosts_per_leaf=2)
    levels = {node: 2 - node[0] for node in ft.nodes}
    updown = UpDownRouting(ft, levels=levels)
    print(f"\n== {ft!r} ==")
    print(f"up*/down*: {verify_routing(updown, ft, updown.class_rule)}")
    print("uniform traffic:", simulate(ft, updown, updown.class_rule, rate=0.10))

    # --- Dragonfly: the L1 -> G -> L2 class order ----------------------------
    df = Dragonfly(groups=5)
    print(f"\n== {df!r} ==")
    print(f"L1->G->L2: {verify_routing(DragonflyRouting(df), df, dragonfly_rule)}")
    single = verify_routing(DragonflySingleVC(df), df, dragonfly_rule)
    print(f"single VC: {single}")
    print("uniform traffic:", simulate(df, DragonflyRouting(df), dragonfly_rule))


if __name__ == "__main__":
    main()
