"""Verify the classic routing algorithms with one tool.

EbDa's second use case (the paper's title says "design AND verification"):
given any routing function, build its channel dependency graph on a
concrete network and check Dally's criterion.  This script verifies every
baseline in the library — and shows the negative control failing.

Run:  python examples/verify_classic_algorithms.py
"""

from repro.cdg import verify_routing
from repro.core import catalog
from repro.routing import (
    DyXY,
    NegativeFirst,
    NorthLast,
    OddEven,
    TurnTableRouting,
    UnrestrictedAdaptive,
    UpDownRouting,
    WestFirst,
    xy_routing,
    yx_routing,
)
from repro.topology import FaultyMesh, Mesh, Torus, column_parity
from repro.core.torus_designs import dateline_design
from repro.topology.classes import dateline, no_classes


def main() -> None:
    mesh = Mesh(6, 6)
    cases = [
        ("XY", xy_routing(mesh), no_classes),
        ("YX", yx_routing(mesh), no_classes),
        ("west-first", WestFirst(mesh), no_classes),
        ("north-last", NorthLast(mesh), no_classes),
        ("negative-first", NegativeFirst(mesh), no_classes),
        ("odd-even", OddEven(mesh), no_classes),
        ("DyXY", DyXY(mesh), no_classes),
        ("odd-even (EbDa design)",
         TurnTableRouting(mesh, catalog.design("odd-even"), column_parity),
         column_parity),
        ("unrestricted adaptive (control)", UnrestrictedAdaptive(mesh), no_classes),
    ]
    print(f"== {mesh!r} ==")
    for name, routing, rule in cases:
        verdict = verify_routing(routing, mesh, rule)
        print(f"{name:35s} {verdict}")

    # Irregular network: Up*/Down* over a mesh with two dead links.
    faulty = FaultyMesh(Mesh(5, 5), failed=[((1, 1), (2, 1)), ((3, 3), (3, 4))])
    updown = UpDownRouting(faulty)
    print(f"\n== {faulty!r} ==")
    print(f"{'up*/down*':35s} {verify_routing(updown, faulty, updown.class_rule)}")

    # Torus: the plain mesh design fails (ring cycles); the EbDa dateline
    # partitioning fixes it.
    torus = Torus(5, 5)
    print(f"\n== {torus!r} ==")
    plain = TurnTableRouting(torus, catalog.design("north-last"))
    print(f"{'north-last (no dateline!)':35s} {verify_routing(plain, torus)}")
    dl = TurnTableRouting(torus, dateline_design(2), dateline)
    print(f"{'dateline partitioning':35s} {verify_routing(dl, torus, dateline)}")


if __name__ == "__main__":
    main()
