"""Design a maximally adaptive 3D routing algorithm from a VC budget.

Reproduces the Section 4/5 designer workflow:

* compute the minimum channel budget for full adaptivity in 3D (16);
* run Algorithm 1 on a (3, 2, 3)-VC budget, reproducing the paper's
  worked example (Figure 9c);
* print the Figure-8 style turn listing in the paper's compass notation;
* verify the result and measure its adaptivity on a 3D mesh;
* derive less-adaptive variants down to deterministic routing (§5.3).

Run:  python examples/design_3d_fully_adaptive.py
"""

from itertools import islice

from repro.analysis import adaptivity_report, format_turn_table
from repro.cdg import verify_design
from repro.core import (
    arrangement1,
    extract_turns,
    fully_deterministic,
    min_channels,
    minimal_fully_adaptive,
    partition_sets,
    sets_from_vc_counts,
    split_partitions,
    vc_requirements,
)
from repro.routing import TurnTableRouting
from repro.topology import Mesh


def main() -> None:
    print(f"minimum channels for full adaptivity in 3D: {min_channels(3)}")
    print(f"minimal construction VCs: {vc_requirements(minimal_fully_adaptive(3))}\n")

    # Algorithm 1 on the paper's worked budget: 3, 2, 3 VCs along X, Y, Z.
    sets = sorted(
        arrangement1(sets_from_vc_counts([3, 2, 3])),
        key=lambda s: (-s.pair_count, -s.dim),  # put Z first, as the paper does
    )
    design = partition_sets(sets)
    print("Algorithm 1 output (the paper's Figure 9c):")
    for part in design:
        print(f"  {part}")

    turns = extract_turns(design)
    print(f"\nextracted turns ({len(turns)} total), Figure-8 layout:")
    print(format_turn_table(turns))

    mesh = Mesh(4, 4, 4)
    verdict = verify_design(design, mesh)
    print(f"\nCDG verdict on {mesh!r}: {verdict}")

    small = Mesh(3, 3, 3)
    routing = TurnTableRouting(small, design, label="fig9c")
    report = adaptivity_report(small, routing)
    print(f"adaptivity on {small!r}: {report}")

    # Derivations: splitting partitions trades adaptivity for simplicity.
    print("\nderived variants (split one partition):")
    for variant in islice(split_partitions(design), 3):
        v_routing = TurnTableRouting(small, variant)
        v_report = adaptivity_report(small, v_routing)
        print(f"  {variant.arrow_notation():70s} adaptivity={v_report.adaptivity:.3f}")

    det = fully_deterministic(design)
    det_report = adaptivity_report(small, TurnTableRouting(small, det))
    print(f"\nfully deterministic end point: adaptivity={det_report.adaptivity:.3f}")
    assert verify_design(det, small).acyclic


if __name__ == "__main__":
    main()
