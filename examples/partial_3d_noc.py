"""Case study §6.3: routing a vertically partially connected 3D NoC.

TSV-limited 3D chips provide vertical links only at a few "elevator"
columns.  This example builds such a network, deploys both the published
Elevator-First baseline and the paper's two-partition EbDa design, and
compares VC cost, adaptivity and traffic behaviour.

Run:  python examples/partial_3d_noc.py
"""

from repro.analysis import census
from repro.cdg import verify_design, verify_routing
from repro.core import catalog
from repro.routing import ElevatorFirst, TurnTableRouting, elevator_first_turnset
from repro.sim import NetworkSimulator, TrafficConfig, TrafficGenerator
from repro.topology import PartiallyConnected3D


def main() -> None:
    # Two layers of 4x4, vertical links at two columns.  Note: the EbDa
    # design needs an elevator in the easternmost column (after Z- no X+
    # is possible) - a placement constraint the companion paper [39]
    # handles with per-region elevator assignment.
    topo = PartiallyConnected3D(4, 4, 2, elevators=[(1, 1), (3, 2)])
    print(f"topology: {topo!r}")

    design = catalog.partial3d_partitions()
    print(f"\nEbDa design: {design}")
    print(f"turn census: {census(design, name='EbDa partial-3D')}")
    print(f"Elevator-First turn count: {len(elevator_first_turnset())}")

    print(f"\nEbDa CDG:           {verify_design(design, topo)}")
    elevator = ElevatorFirst(topo)
    print(f"Elevator-First CDG: {verify_routing(elevator, topo)}")

    ebda = TurnTableRouting(topo, design, label="ebda-partial3d")

    # Degree of adaptiveness: how many outputs does each router offer?
    def mean_branching(routing) -> float:
        counts = [
            len(routing.candidates(s, d, None))
            for s in topo.nodes
            for d in topo.nodes
            if s != d
        ]
        return sum(counts) / len(counts)

    print(f"\nmean routing choices:  ebda={mean_branching(ebda):.2f}"
          f"  elevator-first={mean_branching(elevator):.2f} (deterministic)")

    for name, routing in (("ebda", ebda), ("elevator-first", elevator)):
        sim = NetworkSimulator(topo, routing, buffer_depth=4)
        traffic = TrafficGenerator(
            topo, TrafficConfig(injection_rate=0.03, packet_length=4, seed=7)
        )
        stats = sim.run(1500, traffic, drain=True)
        print(f"{name:15s} {stats.summary(len(topo.nodes))}")


if __name__ == "__main__":
    main()
