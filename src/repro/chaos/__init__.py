"""Chaos engineering: trace-driven workloads, Monte-Carlo fault campaigns,
survival analytics.

EbDa's verification story answers *can this network deadlock*; this
package answers the capacity-planning question that follows it into
production: *how does a design behave under realistic traffic while
faults land on a schedule nobody chose*.  Three pillars:

* :mod:`repro.chaos.workloads` — :class:`WorkloadTrace`, a plain-data,
  picklable, cacheable record describing a deterministic injection
  schedule (all-reduce, shuffle, incast, bursty ON/OFF, or a replayed
  JSONL trace), fed into the simulator's cycle loop as a *traced* traffic
  mode alongside :class:`~repro.sim.traffic.TrafficGenerator`;
* :mod:`repro.chaos.campaign` — :class:`ChaosCampaign`, a Monte-Carlo
  driver sweeping seeded random fault schedules x recovery policies x
  workloads over :meth:`~repro.sim.parallel.SweepEngine.map_tasks`, with
  content-addressed checkpoints (:mod:`repro.chaos.checkpoint`) so an
  interrupted campaign resumes byte-identically;
* :mod:`repro.chaos.survival` — per-policy survival curves
  (P[delivered | k faults], time-to-deadlock distributions, recovery-cost
  percentiles) aggregated from :class:`~repro.sim.stats.SimStats` and
  :class:`~repro.sim.metrics.DeadlockForensics` outcomes, exported as
  strict JSONL and rendered by :func:`render_survival`.

The ``repro chaos`` CLI subcommand drives all three.
"""

from repro.chaos.campaign import (
    NAMED_RECOVERY_POLICIES,
    CampaignConfig,
    CampaignReport,
    ChaosCampaign,
    TrialSpec,
    derive_trial,
    trial_record_bytes,
)
from repro.chaos.checkpoint import CampaignCheckpoint
from repro.chaos.survival import (
    CHAOS_SCHEMA,
    load_survival,
    render_survival,
    survival_curves,
)
from repro.chaos.workloads import (
    NAMED_WORKLOADS,
    TracedWorkload,
    WorkloadTrace,
    load_workload,
    resolve_workload,
)

__all__ = [
    "CHAOS_SCHEMA",
    "CampaignCheckpoint",
    "CampaignConfig",
    "CampaignReport",
    "ChaosCampaign",
    "NAMED_RECOVERY_POLICIES",
    "NAMED_WORKLOADS",
    "TracedWorkload",
    "TrialSpec",
    "WorkloadTrace",
    "derive_trial",
    "load_survival",
    "load_workload",
    "render_survival",
    "resolve_workload",
    "survival_curves",
    "trial_record_bytes",
]
