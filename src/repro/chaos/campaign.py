"""Monte-Carlo chaos campaigns: seeded fault x policy x workload sweeps.

A :class:`ChaosCampaign` asks the empirical version of EbDa's question:
instead of *can this design deadlock*, it measures *how often does it
deadlock, and at what recovery cost, when faults land on schedules nobody
chose*.  Each trial is derived purely from ``(config, index)`` — which
workload runs, which recovery policy is armed, how many link failures
strike and under which seeds — so the campaign is deterministic
end-to-end: the same config produces byte-identical trial records whether
it runs serially, fanned out over
:meth:`~repro.sim.parallel.SweepEngine.map_tasks` workers, in one sitting
or resumed from a :class:`~repro.chaos.checkpoint.CampaignCheckpoint`
after a kill.

Trial records carry **no wall-clock timing** — that is what makes the
determinism testable (the CI gate diffs two runs byte for byte) and the
checkpoint format content-addressable.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field, fields
from functools import cached_property
from pathlib import Path

from repro.errors import EbdaError, SimulationError, UnroutableError
from repro.obs.ledger import record_run
from repro.obs.metrics import REGISTRY
from repro.obs.trace import current_tracer
from repro.sim.faults import FaultSchedule, RecoveryPolicy
from repro.sim.runner import RunConfig, run_point
from repro.sim.specs import EbdaDesignFactory, resolve_routing_factory
from repro.topology.mesh import Mesh

from repro.chaos.checkpoint import CampaignCheckpoint
from repro.chaos.survival import CHAOS_SCHEMA, render_survival, survival_curves
from repro.chaos.workloads import NAMED_WORKLOADS, resolve_workload

__all__ = [
    "NAMED_RECOVERY_POLICIES",
    "CampaignConfig",
    "CampaignReport",
    "ChaosCampaign",
    "TrialSpec",
    "derive_trial",
    "run_trial",
    "trial_record_bytes",
]

#: Named recovery policies a campaign sweeps over (``None`` = no recovery:
#: the watchdog declares deadlock instead of aborting a victim).
NAMED_RECOVERY_POLICIES: dict[str, RecoveryPolicy | None] = {
    "none": None,
    "retry-2": RecoveryPolicy(max_retries=2),
    "retry-8": RecoveryPolicy(max_retries=8),
}


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that determines a campaign — its identity IS its token.

    All fields are plain data; :meth:`token` hashes them together with the
    chaos schema and the library version, so any change (including a
    library upgrade) keys a fresh checkpoint directory instead of resuming
    stale trials.
    """

    trials: int = 50
    seed: int = 0
    mesh: tuple[int, ...] = (4, 4)
    routing: str = "negative-first"
    workloads: tuple[str, ...] = ("all-reduce", "shuffle", "incast", "bursty")
    policies: tuple[str, ...] = ("none", "retry-2", "retry-8")
    #: Per-trial link-failure count is drawn uniformly from 0..max_faults.
    max_faults: int = 2
    cycles: int = 300
    buffer_depth: int = 4
    watchdog: int = 200

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SimulationError("a campaign needs at least one trial")
        if self.max_faults < 0:
            raise SimulationError("max_faults cannot be negative")
        object.__setattr__(self, "mesh", tuple(int(k) for k in self.mesh))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "policies", tuple(self.policies))
        if not self.workloads:
            raise SimulationError("a campaign needs at least one workload")
        if not self.policies:
            raise SimulationError("a campaign needs at least one policy")
        for name in self.workloads:
            resolve_workload(name)  # fail fast on typos
        for name in self.policies:
            if name not in NAMED_RECOVERY_POLICIES:
                known = ", ".join(sorted(NAMED_RECOVERY_POLICIES))
                raise SimulationError(
                    f"unknown recovery policy {name!r}; known policies: {known}"
                )
        resolve_routing_factory(self.routing)

    def to_dict(self) -> dict:
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown campaign fields: {', '.join(sorted(unknown))}"
            )
        payload = dict(data)
        for name in ("mesh", "workloads", "policies"):
            if name in payload:
                payload[name] = tuple(payload[name])
        return cls(**payload)

    def token(self) -> str:
        """The campaign's 16-hex identity (checkpoint directory name)."""
        import repro

        material = json.dumps(
            {
                "schema": CHAOS_SCHEMA,
                "version": repro.__version__,
                "config": self.to_dict(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TrialSpec:
    """One trial's derived parameters — a pure function of (config, index)."""

    index: int
    workload: str
    policy: str
    n_faults: int
    workload_seed: int
    fault_seed: int
    sim_seed: int


def derive_trial(config: CampaignConfig, index: int) -> TrialSpec:
    """The Monte-Carlo draw for trial ``index`` (deterministic, order-free).

    Each trial owns a fresh ``Random(f"{seed}:{index}")``, so trials can
    be derived in any order — the property checkpoint resume relies on.
    """
    if not 0 <= index < config.trials:
        raise SimulationError(
            f"trial index {index} outside campaign range 0..{config.trials - 1}"
        )
    rng = random.Random(f"chaos:{config.seed}:{index}")
    return TrialSpec(
        index=index,
        workload=config.workloads[rng.randrange(len(config.workloads))],
        policy=config.policies[rng.randrange(len(config.policies))],
        n_faults=rng.randint(0, config.max_faults),
        workload_seed=rng.randrange(2**31),
        fault_seed=rng.randrange(2**31),
        sim_seed=rng.randrange(2**31),
    )


def _campaign_routing_factory(routing: str):
    """The fault-tolerant factory variant of a routing spec.

    Catalog designs get ``directions="progressive", fallback="escape"``
    (the V7 fault-sweep configuration — without an escape fallback a
    degraded mesh strands packets the turn model cannot serve); native
    named factories resolve as-is.
    """
    from repro.core import catalog

    name = routing.removeprefix("ebda:")
    if name in catalog.NAMED_DESIGNS:
        return EbdaDesignFactory(name, directions="progressive", fallback="escape")
    return resolve_routing_factory(routing)


def run_trial(config: CampaignConfig, index: int) -> dict:
    """Execute one trial; returns its strict-JSON record (no wall time)."""
    spec = derive_trial(config, index)
    record: dict = {
        "record": "trial",
        "index": spec.index,
        "workload": spec.workload,
        "policy": spec.policy,
        "n_faults": spec.n_faults,
        "workload_seed": spec.workload_seed,
        "fault_seed": spec.fault_seed,
        "sim_seed": spec.sim_seed,
    }
    topology = Mesh(*config.mesh)
    factory = _campaign_routing_factory(config.routing)
    trace = resolve_workload(spec.workload).with_seed(spec.workload_seed)

    fault_window = (10, max(11, config.cycles // 2))
    try:
        faults = (
            FaultSchedule.random(
                topology,
                seed=spec.fault_seed,
                n_link_failures=spec.n_faults,
                window=fault_window,
                routing_factory=factory,
            )
            if spec.n_faults
            else None
        )
        run_config = RunConfig(
            cycles=config.cycles,
            packet_length=trace.packet_length,
            buffer_depth=config.buffer_depth,
            watchdog=config.watchdog,
            drain=True,
            seed=spec.sim_seed,
            faults=faults,
            recovery=NAMED_RECOVERY_POLICIES[spec.policy],
            routing_factory=factory if faults is not None else None,
            metrics=True,
            workload=trace,
        )
        result = run_point(topology, factory, run_config)
    except UnroutableError as exc:
        record.update(outcome="unroutable", error=str(exc))
        return record
    except (SimulationError, EbdaError) as exc:
        record.update(outcome="error", error=str(exc))
        return record

    stats = result.stats
    if stats.deadlocked:
        outcome = "deadlock"
    elif stats.packets_injected and stats.delivery_ratio >= 1.0:
        outcome = "delivered"
    else:
        outcome = "degraded"

    first_fault = min((e.cycle for e in faults), default=None) if faults else None
    time_to_deadlock = None
    if stats.deadlock_declared_at is not None and first_fault is not None:
        time_to_deadlock = stats.deadlock_declared_at - first_fault

    collector = result.metrics
    forensics = getattr(collector, "forensics", None)
    recovery_mean = (
        sum(stats.recovery_latencies) / len(stats.recovery_latencies)
        if stats.recovery_latencies
        else None
    )
    record.update(
        outcome=outcome,
        cycles=stats.cycles,
        packets_injected=stats.packets_injected,
        packets_delivered=stats.packets_delivered,
        delivery_ratio=stats.delivery_ratio,
        faults_injected=stats.faults_injected,
        packets_aborted=stats.packets_aborted,
        retransmissions=stats.retransmissions,
        recovered_deadlocks=stats.recovered_deadlocks,
        packets_lost=stats.packets_lost,
        deadlock_declared_at=stats.deadlock_declared_at,
        first_fault_cycle=first_fault,
        time_to_deadlock=time_to_deadlock,
        latency_p50=_finite(stats.latency_percentile(50)),
        latency_p95=_finite(stats.latency_percentile(95)),
        latency_p99=_finite(stats.latency_percentile(99)),
        recovery_latency_mean=recovery_mean,
        wait_cycle_len=(
            len(forensics.wait_cycle) if forensics is not None else None
        ),
    )
    return record


def _finite(value: float) -> float | None:
    return None if value != value else value


def _run_trial(payload: "tuple[CampaignConfig, int]") -> dict:
    """Worker entry for :meth:`SweepEngine.map_tasks` (module-level: picklable)."""
    config, index = payload
    return run_trial(config, index)


def trial_record_bytes(record: dict) -> bytes:
    """The canonical bytes of one trial record (checkpointed verbatim)."""
    return json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode()


@dataclass
class CampaignReport:
    """A campaign's outcome: ordered canonical trial bytes plus aggregates."""

    config: CampaignConfig
    #: Canonical record bytes, ordered by trial index (possibly a prefix
    #: subset when the budget interrupted the campaign).
    trial_bytes: list[bytes] = field(default_factory=list)
    interrupted: bool = False

    @cached_property
    def records(self) -> list[dict]:
        """The parsed trial records, in index order."""
        return [json.loads(data) for data in self.trial_bytes]

    @property
    def trials_completed(self) -> int:
        return len(self.trial_bytes)

    @property
    def ok(self) -> bool:
        """True when every trial completed and none errored."""
        return not self.interrupted and all(
            r["outcome"] != "error" for r in self.records
        )

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r["outcome"]] = counts.get(r["outcome"], 0) + 1
        return counts

    def survival(self) -> list[dict]:
        """The per-policy survival records (see :mod:`repro.chaos.survival`)."""
        return survival_curves(self.records)

    def meta(self) -> dict:
        """The leading ``campaign-meta`` record (no timing: deterministic)."""
        return {
            "record": "campaign-meta",
            "schema": CHAOS_SCHEMA,
            "generator": "repro.chaos",
            "token": self.config.token(),
            "trials_completed": self.trials_completed,
            "interrupted": self.interrupted,
            **self.config.to_dict(),
        }

    def all_records(self) -> list[dict]:
        """Meta + trials + survival, in JSONL order."""
        return [self.meta(), *self.records, *self.survival()]

    def to_jsonl(self, path: "str | Path") -> int:
        """Write the full report as strict JSON Lines; returns the line count.

        Trial lines are the checkpointed bytes verbatim; meta and survival
        are pure functions of the config and those bytes — so the whole
        file is byte-identical across reruns and resumes.
        """
        path = Path(path)
        lines = [
            json.dumps(
                self.meta(), sort_keys=True, separators=(",", ":"), allow_nan=False
            ).encode()
        ]
        lines.extend(self.trial_bytes)
        lines.extend(
            json.dumps(s, sort_keys=True, separators=(",", ":"), allow_nan=False).encode()
            for s in self.survival()
        )
        path.write_bytes(b"\n".join(lines) + b"\n")
        return len(lines)

    def render(self) -> str:
        """The ``repro chaos`` text report."""
        return render_survival(self.all_records())

    def summary(self) -> str:
        """One-line human-readable account of the campaign."""
        counts = self.outcome_counts()
        status = "interrupted" if self.interrupted else "complete"
        outcomes = " ".join(f"{o}={n}" for o, n in sorted(counts.items()))
        return (
            f"chaos campaign {self.config.token()}:"
            f" {self.trials_completed}/{self.config.trials} trials"
            f" [{status}] {outcomes or '(none)'}"
        )


class ChaosCampaign:
    """Drives a :class:`CampaignConfig` to a :class:`CampaignReport`.

    Parameters
    ----------
    config:
        The campaign description (its token keys the checkpoint).
    engine:
        A :class:`~repro.sim.parallel.SweepEngine` for trial fan-out;
        default is the serial in-process engine.  Results are identical
        either way — trials carry their own seeds.
    checkpoint_dir:
        Root directory for resumable state; ``None`` disables
        checkpointing (the campaign still honours ``budget_s`` but an
        interrupted run starts over).
    """

    def __init__(
        self,
        config: CampaignConfig,
        *,
        engine=None,
        checkpoint_dir: "str | Path | None" = None,
    ) -> None:
        from repro.sim.parallel import SweepEngine

        self.config = config
        self.engine = engine if engine is not None else SweepEngine()
        self.checkpoint = (
            CampaignCheckpoint(checkpoint_dir, config.token())
            if checkpoint_dir is not None
            else None
        )

    def run(
        self,
        *,
        budget_s: "float | None" = None,
        progress=None,
        heartbeat=None,
    ) -> CampaignReport:
        """Run (or resume) the campaign.

        ``budget_s`` bounds wall-clock time, checked *after* each batch —
        at least one batch of pending trials always completes, so even
        ``budget_s=0`` makes forward progress and a repeatedly-killed
        campaign still terminates.  ``progress`` (``str -> None``) receives
        one line per batch; ``heartbeat`` (a
        :class:`~repro.obs.heartbeat.HeartbeatWriter`) is beaten per batch
        for the ``repro top`` live view.  Both are observational only and
        never reach the deterministic trial records.
        """
        started = time.monotonic()
        tracer = current_tracer()
        trials_metric = REGISTRY.counter(
            "repro_chaos_trials_total", help="Chaos campaign trials completed."
        )
        stored: dict[int, bytes] = {}
        if self.checkpoint is not None:
            stored = {
                i: data
                for i, data in self.checkpoint.completed().items()
                if i < self.config.trials
            }
        pending = [i for i in range(self.config.trials) if i not in stored]
        resumed = len(stored)
        if resumed and progress is not None:
            progress(f"resumed {resumed} trial(s) from {self.checkpoint.directory}")
        counts: dict[str, int] = {}
        for data in stored.values():
            outcome = json.loads(data)["outcome"]
            counts[outcome] = counts.get(outcome, 0) + 1

        batch_size = max(8, self.engine.jobs * 4)
        interrupted = False
        with tracer.span(
            "chaos.campaign",
            token=self.config.token(),
            trials=self.config.trials,
            resumed=resumed,
        ) as root:
            batch_no = 0
            while pending:
                batch, pending = pending[:batch_size], pending[batch_size:]
                with tracer.span(
                    "chaos.batch", batch=batch_no, trials=len(batch)
                ):
                    results = self.engine.map_tasks(
                        _run_trial, [(self.config, i) for i in batch]
                    )
                    for index, record in zip(batch, results):
                        data = trial_record_bytes(record)
                        if self.checkpoint is not None:
                            self.checkpoint.store(index, data)
                        stored[index] = data
                        counts[record["outcome"]] = (
                            counts.get(record["outcome"], 0) + 1
                        )
                trials_metric.inc(len(batch))
                for outcome, n in counts.items():
                    REGISTRY.gauge(
                        "repro_chaos_outcomes",
                        labels={"outcome": outcome},
                        help="Chaos trial outcomes so far, by classification.",
                    ).set(n)
                batch_no += 1
                if heartbeat is not None:
                    heartbeat.beat(
                        len(stored),
                        batch=batch_no,
                        **{f"n_{o}": n for o, n in sorted(counts.items())},
                    )
                if progress is not None:
                    outcomes = " ".join(
                        f"{o}={n}" for o, n in sorted(counts.items())
                    )
                    progress(
                        f"{len(stored)}/{self.config.trials} trials"
                        f" ({time.monotonic() - started:.1f}s)"
                        + (f" {outcomes}" if outcomes else "")
                    )
                if (
                    pending
                    and budget_s is not None
                    and time.monotonic() - started >= budget_s
                ):
                    interrupted = True
                    break
            root.set(completed=len(stored), interrupted=interrupted)

        report = CampaignReport(
            config=self.config,
            trial_bytes=[stored[i] for i in sorted(stored)],
            interrupted=interrupted,
        )
        if heartbeat is not None:
            heartbeat.beat(
                len(stored),
                state="interrupted" if interrupted else "done",
                **{f"n_{o}": n for o, n in sorted(counts.items())},
            )
        record_run(
            "chaos",
            spec=self.config.token(),
            seed=self.config.seed,
            outcome=(
                "interrupted"
                if interrupted
                else ("ok" if report.ok else "error")
            ),
            payload={
                "trials_completed": report.trials_completed,
                "counts": report.outcome_counts(),
                "digest": hashlib.sha256(
                    b"\n".join(report.trial_bytes)
                ).hexdigest()[:16],
            },
            wall_s=time.monotonic() - started,
        )
        return report
