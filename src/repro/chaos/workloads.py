"""Trace-driven workloads: plain-data injection schedules for the simulator.

A :class:`WorkloadTrace` is a frozen, picklable *recipe* for a
deterministic injection schedule — the workload analogue of
:class:`~repro.sim.specs.EbdaDesignFactory`.  It stays topology-agnostic
(so one trace sweeps across meshes of any size and travels to worker
processes unchanged) and materialises per topology into a
:class:`TracedWorkload`, which speaks the same ``packets_for_cycle``
protocol as :class:`~repro.sim.traffic.TrafficGenerator` and
:class:`~repro.sim.traffic.ScriptedTraffic` and therefore plugs straight
into :meth:`repro.sim.network.NetworkSimulator.run`.

Built-in generator kinds (all seed-deterministic):

``all-reduce``
    Ring all-reduce: ``2 * (N - 1)`` phases per round (reduce-scatter then
    all-gather); in each phase every endpoint sends one packet to its ring
    successor.  Phases are ``interval`` cycles apart.
``shuffle``
    Map-reduce shuffle: in round ``r`` every endpoint sends to the node
    ``stride_r`` positions ahead in flattened order, with the strides a
    seeded permutation of ``1..N-1`` — ``rounds = N - 1`` covers the full
    all-to-all exchange.
``incast``
    Many-to-one: each round, a seeded ``fraction`` of endpoints all send
    to a single seeded sink — the classic buffer-crush scenario.
``bursty``
    Per-node ON/OFF process: seeded alternating ON windows (Bernoulli
    injections at ``rate`` to uniform destinations) and silent OFF
    windows, with window lengths jittered around ``burst_len``/``off_len``.
``replay``
    An explicit event list ``(cycle, src, dst, length)``, typically loaded
    from a JSONL trace file (:func:`load_workload` /
    :meth:`WorkloadTrace.save_jsonl`).

Named canonical instances live in :data:`NAMED_WORKLOADS`; a
:class:`~repro.sim.runner.RunConfig` accepts either a name or a trace in
its ``workload`` field, and :func:`repro.sim.specs.spec_token` gives every
trace a stable content-addressed token so traced runs stay cacheable
through :class:`~repro.sim.parallel.ResultCache`.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

from repro.errors import EbdaError, SimulationError
from repro.sim.flit import Packet
from repro.topology.base import Coord, Topology

__all__ = [
    "WORKLOAD_KINDS",
    "NAMED_WORKLOADS",
    "TracedWorkload",
    "WorkloadTrace",
    "load_workload",
    "resolve_workload",
    "workload_token",
]

#: Recognised workload kinds.
WORKLOAD_KINDS = ("all-reduce", "shuffle", "incast", "bursty", "replay")

#: One explicit injection: (cycle, src, dst, length).
TraceEvent = "tuple[int, Coord, Coord, int]"


@dataclass(frozen=True)
class WorkloadTrace:
    """A plain-data, topology-agnostic injection schedule recipe.

    Attributes
    ----------
    kind:
        One of :data:`WORKLOAD_KINDS`.
    seed:
        Seed for every random choice the generator makes; identical
        traces materialise identical schedules, always.
    packet_length:
        Flits per generated packet.
    start:
        First cycle at which the workload injects.
    rounds:
        Rounds for the phased generators (``all-reduce``, ``shuffle``,
        ``incast``); ``shuffle`` additionally caps rounds at ``N - 1``
        distinct strides.
    interval:
        Cycles between consecutive phases of the phased generators.
    rate:
        Injection probability per ON cycle (``bursty`` only).
    burst_len, off_len:
        Mean ON / OFF window lengths in cycles (``bursty`` only).
    fraction:
        Participating-endpoint fraction (``incast`` only).
    events:
        Explicit ``(cycle, src, dst, length)`` injections
        (``replay`` only).
    """

    kind: str
    seed: int = 0
    packet_length: int = 4
    start: int = 0
    rounds: int = 1
    interval: int = 4
    rate: float = 0.2
    burst_len: int = 16
    off_len: int = 48
    fraction: float = 1.0
    events: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise SimulationError(
                f"unknown workload kind {self.kind!r}"
                f" (expected one of {WORKLOAD_KINDS})"
            )
        if self.packet_length < 1:
            raise SimulationError("packet_length must be >= 1")
        if self.start < 0:
            raise SimulationError("start cycle cannot be negative")
        if self.rounds < 1:
            raise SimulationError("rounds must be >= 1")
        if self.interval < 1:
            raise SimulationError("interval must be >= 1")
        if not 0.0 <= self.rate <= 1.0:
            raise SimulationError("rate must be in [0, 1]")
        if self.burst_len < 1 or self.off_len < 1:
            raise SimulationError("burst_len and off_len must be >= 1")
        if not 0.0 < self.fraction <= 1.0:
            raise SimulationError("fraction must be in (0, 1]")
        if self.kind == "replay" and not self.events:
            raise SimulationError("replay workload needs at least one event")
        # Normalise events to hashable nested tuples (frozen dataclass
        # fields must be immutable for the trace to stay picklable+stable).
        normalised = tuple(
            (int(c), tuple(src), tuple(dst), int(length))
            for c, src, dst, length in self.events
        )
        object.__setattr__(self, "events", normalised)
        for cycle, src, dst, length in self.events:
            if cycle < 0:
                raise SimulationError(f"replay event at negative cycle {cycle}")
            if length < 1:
                raise SimulationError(f"replay event with empty packet: {length}")
            if src == dst:
                raise SimulationError(f"replay event is self-addressed: {src}")

    # -- identity --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict` (exact round trip)."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "events":
                if not value:
                    continue  # omit the empty tuple for compactness
                value = [[c, list(src), list(dst), length] for c, src, dst, length in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadTrace":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"unknown workload fields: {', '.join(sorted(unknown))}"
            )
        payload = dict(data)
        payload["events"] = tuple(
            (int(c), tuple(src), tuple(dst), int(length))
            for c, src, dst, length in payload.get("events", ())
        )
        return cls(**payload)

    def token(self) -> str:
        """A stable content-addressed cache token for this trace."""
        material = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return f"trace:{self.kind}:{hashlib.sha256(material.encode()).hexdigest()[:16]}"

    def describe(self) -> str:
        if self.kind == "replay":
            return f"replay({len(self.events)} events)"
        return f"{self.kind}(seed={self.seed}, rounds={self.rounds})"

    def with_seed(self, seed: int) -> "WorkloadTrace":
        """The same recipe under a different seed (campaign re-rolls)."""
        return replace(self, seed=seed)

    # -- JSONL persistence ------------------------------------------------------

    def save_jsonl(self, path: "str | Path") -> int:
        """Write the trace as strict JSON Lines; returns the line count.

        Line 1 is a ``workload-meta`` record with every recipe field;
        ``replay`` traces follow with one ``injection`` record per event,
        so the on-disk format doubles as a language-agnostic trace format.
        """
        path = Path(path)
        meta = {"record": "workload-meta", **self.to_dict()}
        meta.pop("events", None)
        lines = [json.dumps(meta, sort_keys=True, allow_nan=False)]
        for cycle, src, dst, length in self.events:
            lines.append(
                json.dumps(
                    {
                        "record": "injection",
                        "cycle": cycle,
                        "src": list(src),
                        "dst": list(dst),
                        "length": length,
                    },
                    sort_keys=True,
                    allow_nan=False,
                )
            )
        path.write_text("\n".join(lines) + "\n")
        return len(lines)

    # -- materialisation --------------------------------------------------------

    def materialize(self, topology: Topology, cycles: int) -> "TracedWorkload":
        """The concrete per-cycle schedule of this trace on ``topology``.

        ``cycles`` bounds open-ended generators (``bursty``); phased
        generators emit their full schedule even past it, which the run
        loop simply never queries — :meth:`TracedWorkload.last_cycle`
        tells a caller whether the run was long enough to play everything.
        """
        endpoints = list(topology.endpoints)
        if len(endpoints) < 2:
            raise SimulationError("a workload needs at least two endpoints")
        build = {
            "all-reduce": self._build_all_reduce,
            "shuffle": self._build_shuffle,
            "incast": self._build_incast,
            "bursty": self._build_bursty,
            "replay": self._build_replay,
        }[self.kind]
        schedule = build(endpoints, cycles)
        return TracedWorkload(self, topology, schedule)

    def _build_all_reduce(
        self, endpoints: list[Coord], cycles: int
    ) -> dict[int, list[tuple[Coord, Coord, int]]]:
        n = len(endpoints)
        schedule: dict[int, list[tuple[Coord, Coord, int]]] = {}
        phase = 0
        for _round in range(self.rounds):
            for _step in range(2 * (n - 1)):
                cycle = self.start + phase * self.interval
                entries = schedule.setdefault(cycle, [])
                for i, src in enumerate(endpoints):
                    entries.append((src, endpoints[(i + 1) % n], self.packet_length))
                phase += 1
        return schedule

    def _build_shuffle(
        self, endpoints: list[Coord], cycles: int
    ) -> dict[int, list[tuple[Coord, Coord, int]]]:
        n = len(endpoints)
        rng = random.Random(f"shuffle:{self.seed}")
        strides = list(range(1, n))
        rng.shuffle(strides)
        schedule: dict[int, list[tuple[Coord, Coord, int]]] = {}
        for r in range(min(self.rounds, len(strides))):
            stride = strides[r]
            cycle = self.start + r * self.interval
            entries = schedule.setdefault(cycle, [])
            for i, src in enumerate(endpoints):
                entries.append((src, endpoints[(i + stride) % n], self.packet_length))
        return schedule

    def _build_incast(
        self, endpoints: list[Coord], cycles: int
    ) -> dict[int, list[tuple[Coord, Coord, int]]]:
        rng = random.Random(f"incast:{self.seed}")
        sink = endpoints[rng.randrange(len(endpoints))]
        senders = [e for e in endpoints if e != sink]
        k = max(1, round(self.fraction * len(senders)))
        schedule: dict[int, list[tuple[Coord, Coord, int]]] = {}
        for r in range(self.rounds):
            cycle = self.start + r * self.interval
            chosen = senders if k == len(senders) else rng.sample(senders, k)
            schedule.setdefault(cycle, []).extend(
                (src, sink, self.packet_length) for src in chosen
            )
        return schedule

    def _build_bursty(
        self, endpoints: list[Coord], cycles: int
    ) -> dict[int, list[tuple[Coord, Coord, int]]]:
        schedule: dict[int, list[tuple[Coord, Coord, int]]] = {}
        for i, src in enumerate(endpoints):
            rng = random.Random(f"bursty:{self.seed}:{i}")
            cycle = self.start
            on = rng.random() < 0.5  # stagger which phase each node starts in
            while cycle < cycles:
                mean = self.burst_len if on else self.off_len
                span = max(1, rng.randrange(max(1, mean // 2), 2 * mean))
                if on:
                    for c in range(cycle, min(cycle + span, cycles)):
                        if rng.random() >= self.rate:
                            continue
                        dst = endpoints[rng.randrange(len(endpoints))]
                        if dst == src:
                            continue
                        schedule.setdefault(c, []).append(
                            (src, dst, self.packet_length)
                        )
                cycle += span
                on = not on
        # Within a cycle, injections ordered by source for determinism
        # (the per-node loops above interleave arbitrarily otherwise).
        for entries in schedule.values():
            entries.sort()
        return schedule

    def _build_replay(
        self, endpoints: list[Coord], cycles: int
    ) -> dict[int, list[tuple[Coord, Coord, int]]]:
        schedule: dict[int, list[tuple[Coord, Coord, int]]] = {}
        for cycle, src, dst, length in self.events:
            schedule.setdefault(cycle + self.start, []).append((src, dst, length))
        return schedule


class TracedWorkload:
    """A :class:`WorkloadTrace` materialised on a concrete topology.

    Speaks the simulator's traffic protocol (``packets_for_cycle``) with
    sequential pids, validating every destination against the topology.
    """

    def __init__(
        self,
        trace: WorkloadTrace,
        topology: Topology,
        schedule: dict[int, list[tuple[Coord, Coord, int]]],
    ) -> None:
        self.trace = trace
        self.topology = topology
        self.schedule = schedule
        self._next_pid = 0
        node_set = topology.node_set
        for entries in schedule.values():
            for src, dst, _length in entries:
                if src not in node_set or dst not in node_set:
                    raise SimulationError(
                        f"workload {trace.describe()} names a node outside"
                        f" {topology!r}: {src if src not in node_set else dst}"
                    )

    @property
    def total_packets(self) -> int:
        return sum(len(entries) for entries in self.schedule.values())

    @property
    def last_cycle(self) -> int:
        """Cycle of the final scheduled injection (-1 when empty)."""
        return max(self.schedule, default=-1)

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        created: list[Packet] = []
        for src, dst, length in self.schedule.get(cycle, ()):
            created.append(
                Packet(pid=self._next_pid, src=src, dst=dst, length=length, created=cycle)
            )
            self._next_pid += 1
        return created

    def as_replay(self) -> WorkloadTrace:
        """Flatten this concrete schedule into a ``replay`` trace.

        The result is topology-bound (its events name concrete nodes) but
        self-contained: it replays identically with no generator logic.
        """
        events = [
            (cycle, src, dst, length)
            for cycle in sorted(self.schedule)
            for src, dst, length in self.schedule[cycle]
        ]
        return WorkloadTrace(kind="replay", seed=self.trace.seed, events=tuple(events))

    def __repr__(self) -> str:
        return (
            f"TracedWorkload({self.trace.describe()}, {self.total_packets} packets"
            f" over cycles {min(self.schedule, default=0)}..{self.last_cycle})"
        )


def load_workload(path: "str | Path") -> WorkloadTrace:
    """Load a trace saved by :meth:`WorkloadTrace.save_jsonl` (strict JSON).

    The inverse of ``save_jsonl``: ``load_workload(save(t)) == t``.
    """
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise EbdaError(f"cannot read workload file {path}: {exc}") from exc
    meta: dict | None = None
    events: list[tuple] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(
                line, parse_constant=lambda t: (_ for _ in ()).throw(ValueError(t))
            )
        except ValueError as exc:
            raise EbdaError(f"{path}:{lineno}: not strict JSON: {exc}") from exc
        if not isinstance(record, dict) or "record" not in record:
            raise EbdaError(f"{path}:{lineno}: not a workload record")
        kind = record.pop("record")
        if kind == "workload-meta":
            if meta is not None:
                raise EbdaError(f"{path}:{lineno}: duplicate workload-meta record")
            meta = record
        elif kind == "injection":
            events.append(
                (
                    int(record["cycle"]),
                    tuple(record["src"]),
                    tuple(record["dst"]),
                    int(record["length"]),
                )
            )
        else:
            raise EbdaError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if meta is None:
        raise EbdaError(f"{path}: missing workload-meta record")
    if events:
        meta["events"] = [
            [c, list(src), list(dst), length] for c, src, dst, length in events
        ]
    try:
        return WorkloadTrace.from_dict(meta)
    except SimulationError as exc:
        raise EbdaError(f"{path}: invalid workload: {exc}") from exc


#: Canonical named workload instances — the chaos campaign's default mix,
#: and the names ``RunConfig(workload=...)`` resolves.
NAMED_WORKLOADS: dict[str, WorkloadTrace] = {
    "all-reduce": WorkloadTrace(kind="all-reduce", rounds=1, interval=6),
    "shuffle": WorkloadTrace(kind="shuffle", rounds=8, interval=10),
    "incast": WorkloadTrace(kind="incast", rounds=4, interval=24, fraction=0.75),
    "bursty": WorkloadTrace(kind="bursty", rate=0.15, burst_len=16, off_len=48),
}


def resolve_workload(spec: "WorkloadTrace | str") -> WorkloadTrace:
    """A workload name or trace -> the trace."""
    if isinstance(spec, WorkloadTrace):
        return spec
    try:
        return NAMED_WORKLOADS[spec]
    except (KeyError, TypeError):
        known = ", ".join(sorted(NAMED_WORKLOADS))
        raise EbdaError(
            f"unknown workload {spec!r}; known workloads: {known}"
        ) from None


def workload_token(spec: object) -> "str | None":
    """Cache token for a workload spec (see :func:`repro.sim.specs.spec_token`)."""
    if spec is None:
        return "none"
    if isinstance(spec, str):
        return f"name:{spec}"
    if isinstance(spec, WorkloadTrace):
        for name, trace in NAMED_WORKLOADS.items():
            if trace == spec:
                return f"name:{name}"
        return spec.token()
    return None
