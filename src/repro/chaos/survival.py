"""Survival analytics: per-policy curves aggregated from chaos trial records.

A finished campaign is a pile of independent trial records; the question a
capacity planner actually asks is conditional: *given k faults, what is
the probability this recovery policy still delivers everything, and what
does recovery cost when it works?*  :func:`survival_curves` folds the
trial records into one ``survival`` record per recovery policy:

* a **survival curve** — for each observed fault count ``k``,
  ``P[delivered | k faults]``, the mean delivery ratio, and the deadlock /
  unroutable / error counts at that fault level;
* a **time-to-deadlock distribution** — cycles from the first landed
  fault to the watchdog declaring deadlock (p50/p95/max over the trials
  that deadlocked);
* **recovery-cost aggregates** — total aborts, retransmissions and
  recovered deadlocks, plus percentiles of the per-trial mean
  abort-to-delivery latency.

The file format is strict JSON Lines, mirroring
:mod:`repro.sim.metrics`: a leading ``campaign-meta`` record (schema
:data:`CHAOS_SCHEMA`), the ``trial`` records, then the ``survival``
records.  Nothing in the file carries wall-clock timing, so a seeded
campaign's report is byte-identical across runs — the property the CI
gate (``tools/ci_chaos_check.py``) asserts.  :func:`load_survival` reads
a file back strictly; :func:`render_survival` prints the text report the
``repro chaos`` CLI shows.
"""

from __future__ import annotations

import json
from math import floor
from pathlib import Path

from repro.errors import EbdaError

__all__ = [
    "CHAOS_SCHEMA",
    "load_survival",
    "render_survival",
    "survival_curves",
]

#: Bump when the chaos JSONL record layout changes incompatibly.
CHAOS_SCHEMA = 1

#: Every outcome a trial record may carry, in severity order.
OUTCOMES = ("delivered", "degraded", "deadlock", "unroutable", "error")


def _percentile(values: list[float], q: float) -> float | None:
    """Linear interpolation between closest ranks — the
    :meth:`repro.sim.stats.SimStats.latency_percentile` convention."""
    if not values:
        return None
    ordered = sorted(values)
    rank = min(max(q, 0.0), 100.0) / 100 * (len(ordered) - 1)
    lo = floor(rank)
    frac = rank - lo
    if frac == 0.0 or lo + 1 >= len(ordered):
        return float(ordered[lo])
    return ordered[lo] + frac * (ordered[lo + 1] - ordered[lo])


def _trials(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("record") == "trial"]


def survival_curves(records: list[dict]) -> list[dict]:
    """Fold trial records into one ``survival`` record per policy.

    Accepts either bare trial dicts or a full report record list (meta
    and survival records are ignored); returns records in policy-name
    order, each strict-JSON-safe and deterministic given the trials.
    """
    by_policy: dict[str, list[dict]] = {}
    for trial in _trials(records):
        by_policy.setdefault(trial["policy"], []).append(trial)

    out: list[dict] = []
    for policy in sorted(by_policy):
        trials = by_policy[policy]
        by_faults: dict[int, list[dict]] = {}
        for t in trials:
            by_faults.setdefault(int(t["n_faults"]), []).append(t)
        curve = []
        for k in sorted(by_faults):
            bucket = by_faults[k]
            survived = sum(1 for t in bucket if t["outcome"] == "delivered")
            ratios = [t["delivery_ratio"] for t in bucket
                      if t.get("delivery_ratio") is not None]
            curve.append(
                {
                    "faults": k,
                    "trials": len(bucket),
                    "survived": survived,
                    "p_delivered": survived / len(bucket),
                    "mean_delivery_ratio": (
                        sum(ratios) / len(ratios) if ratios else None
                    ),
                    "deadlocks": sum(
                        1 for t in bucket if t["outcome"] == "deadlock"
                    ),
                    "unroutable": sum(
                        1 for t in bucket if t["outcome"] == "unroutable"
                    ),
                    "errors": sum(1 for t in bucket if t["outcome"] == "error"),
                }
            )

        ttd = sorted(
            t["time_to_deadlock"]
            for t in trials
            if t.get("time_to_deadlock") is not None
        )
        recovery_latencies = [
            t["recovery_latency_mean"]
            for t in trials
            if t.get("recovery_latency_mean") is not None
        ]
        out.append(
            {
                "record": "survival",
                "policy": policy,
                "trials": len(trials),
                "curve": curve,
                "time_to_deadlock": (
                    {
                        "n": len(ttd),
                        "p50": _percentile(ttd, 50),
                        "p95": _percentile(ttd, 95),
                        "max": max(ttd),
                    }
                    if ttd
                    else None
                ),
                "recovery": {
                    "aborts": sum(int(t.get("packets_aborted", 0)) for t in trials),
                    "retransmissions": sum(
                        int(t.get("retransmissions", 0)) for t in trials
                    ),
                    "recovered_deadlocks": sum(
                        int(t.get("recovered_deadlocks", 0)) for t in trials
                    ),
                    "latency_p50": _percentile(recovery_latencies, 50),
                    "latency_p95": _percentile(recovery_latencies, 95),
                },
            }
        )
    return out


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-strict JSON constant {token!r} in chaos file")


def load_survival(path) -> list[dict]:
    """Load a chaos campaign JSONL report back into its record dicts.

    Strict, mirroring :func:`repro.sim.metrics.load_metrics`: rejects
    ``NaN``/``Infinity`` tokens, non-object lines, unknown record kinds,
    and files whose leading record is not a compatible ``campaign-meta``.
    """
    records: list[dict] = []
    try:
        fh = open(path)
    except OSError as exc:
        raise EbdaError(f"cannot read chaos file {path}: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line, parse_constant=_reject_constant)
            except ValueError as exc:
                raise EbdaError(f"{path}:{lineno}: not strict JSON: {exc}") from exc
            if not isinstance(record, dict) or "record" not in record:
                raise EbdaError(f"{path}:{lineno}: not a chaos record")
            if record["record"] not in ("campaign-meta", "trial", "survival"):
                raise EbdaError(
                    f"{path}:{lineno}: unknown record kind {record['record']!r}"
                )
            records.append(record)
    if not records or records[0].get("record") != "campaign-meta":
        raise EbdaError(f"{path}: missing leading campaign-meta record")
    if records[0].get("schema") != CHAOS_SCHEMA:
        raise EbdaError(
            f"{path}: schema {records[0].get('schema')!r} unsupported"
            f" (expected {CHAOS_SCHEMA})"
        )
    return records


def render_survival(records: "list[dict] | str | Path") -> str:
    """Text report of a campaign's survival records (``repro chaos`` output).

    Accepts either loaded records or a path to a campaign JSONL file.
    Survival records are recomputed from the trials when the file carries
    none (e.g. an interrupted campaign's partial report).
    """
    if isinstance(records, (str, Path)):
        records = load_survival(records)
    meta = next((r for r in records if r.get("record") == "campaign-meta"), {})
    trials = _trials(records)
    survival = [r for r in records if r.get("record") == "survival"]
    if not survival and trials:
        survival = survival_curves(trials)

    lines = ["chaos survival report"]
    lines.append(
        f"  campaign {meta.get('token', '?')} — mesh"
        f" {'x'.join(str(k) for k in meta.get('mesh', ())) or '?'},"
        f" routing {meta.get('routing', '?')},"
        f" {len(trials)}/{meta.get('trials', '?')} trials"
        f"{' (interrupted)' if meta.get('interrupted') else ''}"
    )
    if trials:
        counts = {o: sum(1 for t in trials if t["outcome"] == o) for o in OUTCOMES}
        lines.append(
            "  outcomes: "
            + "  ".join(f"{o} {n}" for o, n in counts.items() if n)
        )
    if not survival:
        lines.append("  (no trials recorded)")
        return "\n".join(lines)

    for s in survival:
        lines.append(f"  policy {s['policy']} ({s['trials']} trials):")
        for point in s["curve"]:
            ratio = point["mean_delivery_ratio"]
            delivery = f"{ratio:.3f}" if ratio is not None else "n/a"
            lines.append(
                f"    faults={point['faults']}  trials={point['trials']:3d}"
                f"  P[delivered]={point['p_delivered']:.3f}"
                f"  mean delivery {delivery}"
            )
            extras = [
                f"{name} {point[name]}"
                for name in ("deadlocks", "unroutable", "errors")
                if point[name]
            ]
            if extras:
                lines[-1] += "  (" + ", ".join(extras) + ")"
        ttd = s["time_to_deadlock"]
        if ttd:
            lines.append(
                f"    time-to-deadlock: n={ttd['n']} p50={ttd['p50']:.0f}"
                f" p95={ttd['p95']:.0f} max={ttd['max']} cycles"
            )
        rec = s["recovery"]
        if rec["aborts"] or rec["retransmissions"] or rec["recovered_deadlocks"]:
            line = (
                f"    recovery: aborts={rec['aborts']}"
                f" retx={rec['retransmissions']}"
                f" recovered={rec['recovered_deadlocks']}"
            )
            if rec["latency_p50"] is not None:
                line += (
                    f" latency p50={rec['latency_p50']:.0f}"
                    f" p95={rec['latency_p95']:.0f} cycles"
                )
            lines.append(line)
    return "\n".join(lines)
