"""Content-addressed campaign checkpoints: kill a campaign, resume it byte-identically.

A chaos campaign is a long sequence of independent trials; losing an hour
of Monte-Carlo work to a pre-empted CI runner would make large campaigns
impractical.  :class:`CampaignCheckpoint` persists each finished trial as
its canonical JSON bytes under a file name that embeds both the trial
index and a digest of those bytes:

    <base>/<campaign-token>/trial-00042-<digest12>.json

Three properties follow directly from that layout:

* **resume is byte-identical** — a resumed campaign re-emits the stored
  bytes verbatim instead of re-simulating, so the final JSONL report is
  indistinguishable from an uninterrupted run;
* **corruption is self-detecting** — a truncated or edited file no longer
  matches the digest in its own name and is discarded (the trial simply
  re-runs);
* **campaigns cannot collide** — the campaign token hashes the full
  :class:`~repro.chaos.campaign.CampaignConfig` plus the schema and
  library version, so a config tweak resumes nothing stale.

Writes are atomic (tmp + rename), mirroring
:class:`~repro.sim.parallel.ResultCache`, so a kill mid-write leaves at
worst an ignorable tmp file.
"""

from __future__ import annotations

import hashlib
import os
import re
from pathlib import Path

__all__ = ["CampaignCheckpoint", "record_digest"]

_TRIAL_RE = re.compile(r"^trial-(\d{5})-([0-9a-f]{12})\.json$")


def record_digest(data: bytes) -> str:
    """The 12-hex content digest a trial file name embeds."""
    return hashlib.sha256(data).hexdigest()[:12]


class CampaignCheckpoint:
    """On-disk store of finished trial records for one campaign.

    Parameters
    ----------
    base:
        Checkpoint root shared by all campaigns (each campaign owns the
        ``<base>/<token>`` subdirectory).
    token:
        The campaign's identity token
        (:meth:`repro.chaos.campaign.CampaignConfig.token`).
    """

    def __init__(self, base: "Path | str", token: str) -> None:
        self.base = Path(base)
        self.token = token
        self.directory = self.base / token

    def store(self, index: int, data: bytes) -> Path:
        """Persist one trial's canonical record bytes; returns its path.

        Idempotent: storing the same bytes twice is a no-op, storing
        *different* bytes for an index that already holds a record raises
        ``ValueError`` — a determinism violation worth failing loudly on.
        """
        if index < 0 or index > 99999:
            raise ValueError(f"trial index out of range: {index}")
        existing = self._load_index(index)
        if existing is not None:
            if existing != data:
                raise ValueError(
                    f"checkpoint {self.token} already holds a different record"
                    f" for trial {index}: the campaign is not deterministic"
                )
            return self._path(index, record_digest(data))
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(index, record_digest(data))
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        return path

    def completed(self) -> dict[int, bytes]:
        """Every intact stored trial: index -> canonical record bytes.

        Files whose content no longer matches the digest in their name
        (torn writes, manual edits) are silently dropped so the trial
        re-runs instead of poisoning the resumed report.
        """
        out: dict[int, bytes] = {}
        try:
            entries = sorted(p.name for p in self.directory.iterdir())
        except OSError:
            return out
        for name in entries:
            match = _TRIAL_RE.match(name)
            if not match:
                continue
            index, digest = int(match.group(1)), match.group(2)
            try:
                data = (self.directory / name).read_bytes()
            except OSError:
                continue
            if record_digest(data) != digest:
                continue
            out[index] = data
        return out

    def _load_index(self, index: int) -> "bytes | None":
        """The intact stored bytes for one trial index, or None."""
        for path in self.directory.glob(f"trial-{index:05d}-*.json"):
            match = _TRIAL_RE.match(path.name)
            if not match:
                continue
            try:
                data = path.read_bytes()
            except OSError:
                continue
            if record_digest(data) == match.group(2):
                return data
        return None

    def _path(self, index: int, digest: str) -> Path:
        return self.directory / f"trial-{index:05d}-{digest}.json"

    def __len__(self) -> int:
        return len(self.completed())

    def __contains__(self, index: int) -> bool:
        return self._load_index(index) is not None

    def clear(self) -> int:
        """Delete every stored trial; returns the number removed."""
        removed = 0
        try:
            entries = list(self.directory.iterdir())
        except OSError:
            return 0
        for path in entries:
            if _TRIAL_RE.match(path.name) or ".tmp." in path.name:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"CampaignCheckpoint({self.directory}, {len(self)} trials)"
