"""Native implementations of the three classic 2D turn models (Glass & Ni).

These are the baselines the paper's Table 1 recovers.  Each is written the
way an RTL routing unit would implement it (offset tests), independently
of the EbDa machinery — the test suite confirms they allow exactly the
same moves as their EbDa partition-sequence counterparts.
"""

from __future__ import annotations

from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule, no_classes

_2D_CLASSES = (
    Channel.parse("X+"),
    Channel.parse("X-"),
    Channel.parse("Y+"),
    Channel.parse("Y-"),
)


class _TurnModel2D(RoutingFunction):
    """Shared plumbing for the 2D turn models (no VCs)."""

    uses_in_channel = False  # none of the turn models read the arrival channel

    def __init__(self, topology: Topology, rule: ClassRule = no_classes) -> None:
        if topology.n_dims != 2:
            raise RoutingError(f"{type(self).__name__} is a 2D algorithm")
        super().__init__(topology, rule)

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return _2D_CLASSES

    def _moves(self, cur: Coord, dirs: list[tuple[int, int]]) -> list[Candidate]:
        return self._outputs_matching(cur, dirs)

    def route_signature(self, cur: Coord, dst: Coord):
        # Every 2D turn model below reads dst exclusively through the
        # signs of the X/Y offsets.
        dx = dst[0] - cur[0]
        dy = dst[1] - cur[1]
        return (dx > 0) - (dx < 0), (dy > 0) - (dy < 0)


class WestFirst(_TurnModel2D):
    """West-first: route west first; never turn *into* west afterwards.

    Fully adaptive whenever the destination is not to the west.
    """

    @property
    def name(self) -> str:
        return "west-first"

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        dx = dst[0] - cur[0]
        dy = dst[1] - cur[1]
        if dx < 0:
            # Must go west exclusively until the X offset is resolved.
            return self._moves(cur, [(0, -1)])
        dirs: list[tuple[int, int]] = []
        if dx > 0:
            dirs.append((0, +1))
        if dy > 0:
            dirs.append((1, +1))
        elif dy < 0:
            dirs.append((1, -1))
        return self._moves(cur, dirs)


class NorthLast(_TurnModel2D):
    """North-last: go north only when north is the only remaining direction."""

    @property
    def name(self) -> str:
        return "north-last"

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        dx = dst[0] - cur[0]
        dy = dst[1] - cur[1]
        if dx == 0 and dy > 0:
            return self._moves(cur, [(1, +1)])
        dirs: list[tuple[int, int]] = []
        if dx > 0:
            dirs.append((0, +1))
        elif dx < 0:
            dirs.append((0, -1))
        if dy < 0:
            dirs.append((1, -1))
        return self._moves(cur, dirs)


class NegativeFirst(_TurnModel2D):
    """Negative-first: take all negative-direction hops before any positive."""

    @property
    def name(self) -> str:
        return "negative-first"

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        dx = dst[0] - cur[0]
        dy = dst[1] - cur[1]
        negative: list[tuple[int, int]] = []
        positive: list[tuple[int, int]] = []
        if dx > 0:
            positive.append((0, +1))
        elif dx < 0:
            negative.append((0, -1))
        if dy > 0:
            positive.append((1, +1))
        elif dy < 0:
            negative.append((1, -1))
        return self._moves(cur, negative if negative else positive)
