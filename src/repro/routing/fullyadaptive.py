"""Fully adaptive routing functions.

Two very different algorithms share this module:

* :class:`MinimalFullyAdaptive` — the EbDa minimum-channel construction of
  Section 4 (``(n+1) * 2^(n-1)`` channels), deadlock-free by Theorems 1-3.
  It is a thin convenience wrapper over
  :class:`~repro.routing.table.TurnTableRouting`.
* :class:`UnrestrictedAdaptive` — the *negative control*: every minimal
  direction is always allowed with a single channel per link.  Its CDG is
  cyclic and the simulator demonstrates it deadlocking under load; this is
  the configuration every theory in this literature exists to forbid.
"""

from __future__ import annotations

from repro.core.channel import Channel
from repro.core.minimal import minimal_fully_adaptive
from repro.routing.base import Candidate, RoutingFunction
from repro.routing.table import TurnTableRouting
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule, no_classes


class MinimalFullyAdaptive(TurnTableRouting):
    """Section 4's minimum-channel fully adaptive routing.

    For 2D this instantiates the 6-channel Figure 7(b) design (the DyXY
    channel structure); for 3D the 16-channel Figure 9(b) design.
    """

    def __init__(
        self,
        topology: Topology,
        rule: ClassRule = no_classes,
        pair_dim: int | None = None,
    ) -> None:
        design = minimal_fully_adaptive(topology.n_dims, pair_dim=pair_dim)
        super().__init__(topology, design, rule, label=f"fully-adaptive-{topology.n_dims}D")


class UnrestrictedAdaptive(RoutingFunction):
    """All minimal directions always allowed — deadlock-PRONE baseline.

    One channel per link, no turn restriction.  Do not use outside
    negative-control experiments.
    """

    uses_in_channel = False  # candidates() never reads the arrival channel

    def __init__(self, topology: Topology, rule: ClassRule = no_classes) -> None:
        super().__init__(topology, rule)
        self._classes = tuple(
            Channel(dim, sign)
            for dim in range(topology.n_dims)
            for sign in (+1, -1)
        )

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return self._classes

    @property
    def name(self) -> str:
        return "unrestricted-adaptive"

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        return self._outputs_matching(cur, self.topology.minimal_directions(cur, dst))

    def route_signature(self, cur: Coord, dst: Coord):
        # candidates() reads dst exclusively through minimal_directions.
        return self.topology.minimal_directions(cur, dst)
