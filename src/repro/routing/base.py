"""Routing function interface.

A routing function answers one question: *given a packet at router ``cur``
heading for ``dst`` that arrived over channel class ``in_channel`` (None
for freshly injected packets), which (next node, channel class) outputs may
it take?*

The interface is deliberately stateless per query — all history a router
needs is the incoming channel class, which is exactly the property EbDa
guarantees (partition order and Theorem-2 numbering are encoded in the
class-level turn set).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule, no_classes

#: One routing option: the next node and the channel class to ride.
Candidate = tuple[Coord, Channel]


class RoutingFunction(ABC):
    """Base class for all routing algorithms."""

    #: Declares whether :meth:`candidates` ever reads ``in_channel``.
    #: Subclasses whose candidate sets are provably independent of the
    #: arrival channel set this False, which lets the vectorized backend
    #: share one routing memo across every input port of a router.  Like
    #: :meth:`route_signature`, this is a correctness contract: declare
    #: False only when the implementation visibly never touches the
    #: argument.
    uses_in_channel: bool = True

    def __init__(self, topology: Topology, rule: ClassRule = no_classes) -> None:
        self.topology = topology
        self.rule = rule

    @property
    @abstractmethod
    def channel_classes(self) -> tuple[Channel, ...]:
        """Every channel class the algorithm uses (defines link VC sets)."""

    @abstractmethod
    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        """Legal outputs for a packet at ``cur`` bound for ``dst``.

        ``in_channel`` is the class the packet's head arrived on, or None
        at the source router.  An empty list at ``cur == dst`` means
        *eject*; an empty list elsewhere is a routing dead-end and treated
        as a bug by the simulator.
        """

    def target_of(self, packet, cur: Coord) -> Coord:
        """The node the routing function steers ``packet`` toward at ``cur``.

        Unicast algorithms steer toward ``packet.dst``.  Path-based
        multicast algorithms override this to return the next unvisited
        waypoint, which the simulator then passes to :meth:`candidates`.
        """
        return packet.dst

    def route_signature(self, cur: Coord, dst: Coord):
        """Optional coarse memoization key for :meth:`candidates`.

        A hashable value such that ``candidates(cur, dst1, ch)`` equals
        ``candidates(cur, dst2, ch)`` (for any ``ch``) whenever ``dst1``
        and ``dst2`` share the signature at ``cur`` — or None (the
        default) when no such coarsening is known.  The vectorized
        backend uses this to collapse its routing memo from
        per-destination to per-direction-class, which is what makes
        uniform random traffic converge instead of querying the routing
        function for every (router, destination) pair it ever sees.

        Override ONLY where the invariance is provable from the routing
        definition (e.g. dimension-order routing reads the destination
        exclusively through ``topology.minimal_directions``).  A wrong
        signature silently corrupts routing — it is a correctness
        contract, not a heuristic.
        """
        return None

    # -- helpers shared by implementations ------------------------------------

    def _outputs_matching(
        self,
        cur: Coord,
        directions: Sequence[tuple[int, int]],
        classes: Sequence[Channel] | None = None,
    ) -> list[Candidate]:
        """All (next, class) pairs leaving ``cur`` along the given directions.

        Classes are filtered to those instantiable on each link under the
        class rule.
        """
        classes = tuple(classes) if classes is not None else self.channel_classes
        out: list[Candidate] = []
        wanted = set(directions)
        for link in self.topology.out_links(cur):
            if (link.dim, link.sign) not in wanted:
                continue
            tag = self.rule(link)
            for ch in classes:
                if ch.dim == link.dim and ch.sign == link.sign and ch.cls == tag:
                    out.append((link.dst, ch))
        return out

    def require_candidates(
        self, cur: Coord, dst: Coord, in_channel: Channel | None
    ) -> list[Candidate]:
        """Candidates, raising :class:`RoutingError` on a dead-end."""
        if cur == dst:
            return []
        found = self.candidates(cur, dst, in_channel)
        if not found:
            raise RoutingError(
                f"{type(self).__name__}: no legal output at {cur} for dst {dst}"
                f" arriving on {in_channel}"
            )
        return found

    @property
    def name(self) -> str:
        """Display name (class name unless overridden)."""
        return type(self).__name__
