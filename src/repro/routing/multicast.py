"""Path-based dual-path multicast over the Hamiltonian partitioning (§6.2).

§6.2's second case study recovers the Hamiltonian-path strategy (Lin & Ni
[26]) from the partitioning ``PA = {Xe+ Xo- Y+}``, ``PB = {Xe- Xo+ Y-}``.
This module implements the strategy itself:

* a snake Hamiltonian labelling of the 2D mesh
  (:func:`hamiltonian_label`);
* **label-monotone routing**: the *up* network (PA's channels — east on
  even rows, west on odd rows, north) moves only to higher labels, the
  *down* network (PB) only to lower ones.  Deadlock freedom is immediate:
  every hop strictly in/decreases the label, so no cyclic wait can close
  — the partition-order argument of Theorem 3 in its purest form;
* **dual-path multicast**: destinations split into the high group
  (labels above the source, visited ascending on the up network) and the
  low group (descending on the down network); each group is served by one
  worm that drops a copy at every waypoint it passes.

The simulator supports the waypoint-absorbing worms natively
(``Packet.waypoints`` + :meth:`RoutingFunction.target_of`).
"""

from __future__ import annotations

from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.sim.flit import Packet
from repro.topology.base import Coord
from repro.topology.classes import row_parity
from repro.topology.mesh import Mesh

#: Channel classes of the up network (partition PA of §6.2).
UP_CLASSES = (
    Channel.parse("X+@e"),
    Channel.parse("X-@o"),
    Channel.parse("Y+"),
)
#: Channel classes of the down network (partition PB).
DOWN_CLASSES = (
    Channel.parse("X-@e"),
    Channel.parse("X+@o"),
    Channel.parse("Y-"),
)


def hamiltonian_label(node: Coord, width: int) -> int:
    """Snake labelling: row-major, alternating direction per row.

    >>> [hamiltonian_label((x, 1), 4) for x in range(4)]
    [7, 6, 5, 4]
    """
    x, y = node
    return y * width + (x if y % 2 == 0 else width - 1 - x)


class HamiltonianPathRouting(RoutingFunction):
    """Label-monotone routing on one of the two Hamiltonian sub-networks.

    ``direction="up"`` routes only to strictly higher labels (usable when
    ``label(dst) > label(src)``); ``"down"`` mirrors it.  Within the
    monotone constraint the routing is adaptive: any neighbour whose label
    lies in ``(label(cur), label(target)]`` is a legal hop (the vertical
    links provide label shortcuts past whole rows).
    """

    def __init__(self, topology: Mesh, direction: str = "up") -> None:
        if not isinstance(topology, Mesh) or topology.n_dims != 2:
            raise RoutingError("Hamiltonian-path routing needs a 2D mesh")
        if direction not in ("up", "down"):
            raise RoutingError(f"direction must be 'up' or 'down', got {direction!r}")
        super().__init__(topology, row_parity)
        self.direction = direction
        self._width = topology.shape[0]

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return UP_CLASSES if self.direction == "up" else DOWN_CLASSES

    @property
    def name(self) -> str:
        return f"hamiltonian-{self.direction}"

    def label(self, node: Coord) -> int:
        return hamiltonian_label(node, self._width)

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        lc, ld = self.label(cur), self.label(dst)
        # A wrong-direction target is simply unreachable on this
        # sub-network (the other worm serves it): no candidates.
        if self.direction == "up" and ld < lc:
            return []
        if self.direction == "down" and ld > lc:
            return []
        out: list[Candidate] = []
        for link in self.topology.out_links(cur):
            lv = self.label(link.dst)
            monotone = lc < lv <= ld if self.direction == "up" else ld <= lv < lc
            if not monotone:
                continue
            tag = self.rule(link)
            for ch in self.channel_classes:
                if ch.dim == link.dim and ch.sign == link.sign and ch.cls == tag:
                    out.append((link.dst, ch))
        # Prefer the largest label jump (vertical shortcuts) so worms take
        # near-minimal routes; the +1 snake step is always available as a
        # fallback, which guarantees progress.
        out.sort(key=lambda cand: -abs(self.label(cand[0]) - lc))
        return out


class MulticastHamiltonianRouting(HamiltonianPathRouting):
    """Waypoint-aware variant driving a multicast worm through its stops."""

    def target_of(self, packet: Packet, cur: Coord) -> Coord:
        lc = self.label(cur)
        pending = [w for w in packet.waypoints if w not in packet.copies]
        if self.direction == "up":
            ahead = [w for w in pending if self.label(w) > lc]
            if ahead:
                return min(ahead, key=self.label)
        else:
            ahead = [w for w in pending if self.label(w) < lc]
            if ahead:
                return max(ahead, key=self.label)
        return packet.dst


def plan_dual_path(
    topology: Mesh, src: Coord, destinations: list[Coord]
) -> tuple[Packet | None, Packet | None]:
    """Split a multicast into the high and low worms (without pids/times).

    Returns packet *templates* (pid=-1, created=0) for the high worm
    (ascending labels on the up network) and the low worm; either may be
    None when its group is empty.  Callers re-stamp pid/created/length.
    """
    width = topology.shape[0]
    src_label = hamiltonian_label(src, width)
    uniq = sorted(
        {d for d in destinations if d != src},
        key=lambda n: hamiltonian_label(n, width),
    )
    high = [d for d in uniq if hamiltonian_label(d, width) > src_label]
    low = [d for d in uniq if hamiltonian_label(d, width) < src_label]

    high_packet = (
        Packet(pid=-1, src=src, dst=high[-1], length=1, created=0,
               waypoints=tuple(high[:-1]))
        if high
        else None
    )
    low = list(reversed(low))  # descending labels: visit order for the down worm
    low_packet = (
        Packet(pid=-1, src=src, dst=low[-1], length=1, created=0,
               waypoints=tuple(low[:-1]))
        if low
        else None
    )
    return high_packet, low_packet


def monotone_path_length(routing: HamiltonianPathRouting, src: Coord, dst: Coord) -> int:
    """Hops of the greedy label-monotone route from ``src`` to ``dst``."""
    cur = src
    hops = 0
    while cur != dst:
        cands = routing.candidates(cur, dst, None)
        if not cands:
            raise RoutingError(f"no monotone route {src}->{dst} via {cur}")
        cur = cands[0][0]
        hops += 1
        if hops > 10 * len(routing.topology.nodes):
            raise RoutingError("monotone walk failed to converge")
    return hops


def dual_path_cost(topology: Mesh, src: Coord, destinations: list[Coord]) -> int:
    """Total hops both worms travel to cover all destinations."""
    high, low = plan_dual_path(topology, src, destinations)
    total = 0
    for packet, direction in ((high, "up"), (low, "down")):
        if packet is None:
            continue
        routing = HamiltonianPathRouting(topology, direction)
        cur = packet.src
        for stop in packet.destinations:
            total += monotone_path_length(routing, cur, stop)
            cur = stop
    return total


def unicast_cost(topology: Mesh, src: Coord, destinations: list[Coord]) -> int:
    """Total hops of separate minimal unicasts (the naive alternative)."""
    return sum(topology.distance(src, d) for d in set(destinations) if d != src)
