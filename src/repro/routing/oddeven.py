"""The Odd-Even turn model (Chiu 2000), native implementation (§6.2).

Rules (for minimal routing in a 2D mesh, no VCs):

* **Rule 1** — at a node in an *even* column, EN and ES turns are
  prohibited (a packet travelling east may not turn north/south there);
* **Rule 2** — at a node in an *odd* column, NW and SW turns are
  prohibited (a packet may not turn west there).

The classic distributed formulation below additionally prevents a packet
from painting itself into a corner (it must leave the east-going phase in
a column from which the remaining north/south segment is legal).
"""

from __future__ import annotations

from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule, no_classes

_2D_CLASSES = (
    Channel.parse("X+"),
    Channel.parse("X-"),
    Channel.parse("Y+"),
    Channel.parse("Y-"),
)


class OddEven(RoutingFunction):
    """Chiu's Odd-Even adaptive routing for 2D meshes.

    This follows the published minimal ROUTE function: the candidate set
    depends on the current column's parity, the source column (for
    westbound packets) and the destination column.
    """

    def __init__(self, topology: Topology, rule: ClassRule = no_classes) -> None:
        if topology.n_dims != 2:
            raise RoutingError("Odd-Even is a 2D algorithm")
        super().__init__(topology, rule)

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return _2D_CLASSES

    @property
    def name(self) -> str:
        return "odd-even"

    def route_signature(self, cur: Coord, dst: Coord):
        # candidates() reads dst only through the offset signs, the
        # "exactly one east hop left" test and the destination column's
        # parity (Rule 1's last-turn column constraint).
        dx = dst[0] - cur[0]
        dy = dst[1] - cur[1]
        return (dx > 0) - (dx < 0), (dy > 0) - (dy < 0), dx == 1, dst[0] % 2

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        cx, cy = cur
        dx = dst[0] - cx
        dy = dst[1] - cy
        odd_col = cx % 2 == 1
        arrived_east = (
            in_channel is not None and in_channel.dim == 0 and in_channel.sign == +1
        )
        dirs: list[tuple[int, int]] = []

        if dx == 0:
            # Pure vertical segment: always allowed.
            dirs.append((1, +1) if dy > 0 else (1, -1))
        elif dx > 0:  # eastbound
            if dy == 0:
                dirs.append((0, +1))
            else:
                # Rule 1 bans EN/ES at even columns: a vertical move is an
                # E->N/S turn only when the packet arrived eastbound, so it
                # is legal at odd columns or when the packet did not arrive
                # over X+ (Chiu's "current column == source column" case).
                if odd_col or not arrived_east:
                    dirs.append((1, +1) if dy > 0 else (1, -1))
                # Continuing east is legal unless the destination column is
                # even and only one east hop remains — the final vertical
                # segment would then need a banned EN/ES turn at an even
                # column, so the verticals must be finished in this column.
                if dst[0] % 2 == 1 or dx != 1:
                    dirs.append((0, +1))
        else:  # westbound
            # Rule 2 bans NW/SW at odd columns: a westbound packet takes
            # its vertical moves in even columns only (it must eventually
            # turn west in the very column where the vertical ends).
            if dy != 0 and not odd_col:
                dirs.append((1, +1) if dy > 0 else (1, -1))
            dirs.append((0, -1))

        return self._outputs_matching(cur, dirs)
