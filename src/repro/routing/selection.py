"""Output selection policies.

Routing functions return *sets* of legal candidates; a selection policy
picks one.  Selection never affects deadlock freedom (any subset of an
acyclic relation is acyclic) — it only affects performance, which is why
the paper treats DyXY as "the same partitioning, congestion-aware
selection".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import RoutingError
from repro.routing.base import Candidate
from repro.topology.base import Coord


@dataclass
class SelectionContext:
    """Information a policy may use when ranking candidates."""

    cur: Coord
    dst: Coord
    rng: random.Random
    #: Free buffer slots downstream of each candidate, filled by the
    #: simulator: ``credits(candidate) -> int``.
    credits: Callable[[Candidate], int] = field(default=lambda _c: 0)
    cycle: int = 0


#: A policy maps (candidates, context) -> the chosen candidate.
SelectionPolicy = Callable[[Sequence[Candidate], SelectionContext], Candidate]


def first_candidate(candidates: Sequence[Candidate], ctx: SelectionContext) -> Candidate:
    """Deterministic: always the first legal candidate."""
    _require(candidates)
    return candidates[0]


def random_candidate(candidates: Sequence[Candidate], ctx: SelectionContext) -> Candidate:
    """Uniformly random among legal candidates (seeded via the context)."""
    _require(candidates)
    return ctx.rng.choice(list(candidates))


def zigzag(candidates: Sequence[Candidate], ctx: SelectionContext) -> Candidate:
    """Prefer the dimension with the largest remaining offset.

    The classic adaptive tie-breaker: balancing offsets keeps both
    dimensions available longest, preserving adaptivity downstream.
    """
    _require(candidates)

    def remaining(cand: Candidate) -> int:
        nxt, _ch = cand
        dim = _moved_dim(ctx.cur, nxt)
        return -abs(ctx.dst[dim] - ctx.cur[dim])

    return min(candidates, key=remaining)


def congestion_aware(candidates: Sequence[Candidate], ctx: SelectionContext) -> Candidate:
    """Pick the candidate with most free downstream buffer slots (DyXY).

    Ties break toward the largest remaining offset, then first.
    """
    _require(candidates)

    def score(item: tuple[int, Candidate]) -> tuple[int, int, int]:
        idx, cand = item
        nxt, _ch = cand
        dim = _moved_dim(ctx.cur, nxt)
        return (-ctx.credits(cand), -abs(ctx.dst[dim] - ctx.cur[dim]), idx)

    return min(enumerate(candidates), key=score)[1]


NAMED_POLICIES: dict[str, SelectionPolicy] = {
    "first": first_candidate,
    "random": random_candidate,
    "zigzag": zigzag,
    "congestion": congestion_aware,
}


def _require(candidates: Sequence[Candidate]) -> None:
    if not candidates:
        raise RoutingError("selection invoked with no candidates")


def _moved_dim(cur: Coord, nxt: Coord) -> int:
    for dim, (a, b) in enumerate(zip(cur, nxt)):
        if a != b:
            return dim
    raise RoutingError(f"candidate does not move: {cur} -> {nxt}")
