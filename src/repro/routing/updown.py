"""Up*/Down* routing (Schroeder et al., Autonet) for irregular networks.

The classic spanning-tree algorithm cited in the proof of Theorem 2: build
a BFS tree, orient every link *up* (toward the root: lower level, ties by
node order) or *down*, and forbid up-links after down-links.  Legal routes
are therefore "zero or more up hops, then zero or more down hops" —
channels taken in a strictly ascending two-partition order, which is why
the paper can reuse the argument for its U-turn numbering.

Up/down-ness is a property of the concrete link, modelled as a spatial
class (``u``/``d``) via :meth:`UpDownRouting.class_rule`.
"""

from __future__ import annotations

from collections import deque

from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.topology.base import Coord, Link, Topology


class UpDownRouting(RoutingFunction):
    """Up*/Down* over any connected topology.

    Parameters
    ----------
    topology:
        Any topology; typically a :class:`~repro.topology.FaultyMesh`.
    root:
        Root of the BFS spanning tree (defaults to the first node).
    levels:
        Explicit node levels overriding the BFS labelling.  Multi-rooted
        topologies (fat-trees: all spines at level 0) need this — a BFS
        tree from a single spine would turn the other spines into "down"
        nodes and funnel all traffic through the root.
    """

    def __init__(
        self,
        topology: Topology,
        root: Coord | None = None,
        levels: dict[Coord, int] | None = None,
    ) -> None:
        # The class rule is derived from the levels, so it is built here
        # rather than passed in.
        if levels is not None:
            missing = set(topology.nodes) - set(levels)
            if missing:
                raise RoutingError(f"levels missing for nodes: {sorted(missing)[:4]}...")
            self._root = min(levels, key=lambda n: (levels[n], n))
            self._levels = dict(levels)
        else:
            self._root = root if root is not None else topology.nodes[0]
            topology.validate_node(self._root)
            self._levels = self._bfs_levels(topology, self._root)
        super().__init__(topology, self.class_rule)
        self._classes = tuple(
            Channel(dim, sign, cls=tag)
            for dim in range(topology.n_dims)
            for sign in (+1, -1)
            for tag in ("u", "d")
        )
        self._reach_cache: dict[Coord, frozenset[tuple[Coord, Channel]]] = {}

    @staticmethod
    def _bfs_levels(topology: Topology, root: Coord) -> dict[Coord, int]:
        levels = {root: 0}
        queue = deque([root])
        while queue:
            cur = queue.popleft()
            for nxt in topology.neighbors(cur):
                if nxt not in levels:
                    levels[nxt] = levels[cur] + 1
                    queue.append(nxt)
        if len(levels) != len(topology.nodes):
            raise RoutingError("topology is not connected; Up*/Down* needs a spanning tree")
        return levels

    def is_up(self, link: Link) -> bool:
        """Does the link point up (toward the root)?"""
        a, b = self._levels[link.src], self._levels[link.dst]
        if a != b:
            return b < a
        return link.dst < link.src  # deterministic tie-break

    def class_rule(self, link: Link) -> str:
        """The spatial-class rule binding ``u``/``d`` tags to links."""
        return "u" if self.is_up(link) else "d"

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return self._classes

    @property
    def name(self) -> str:
        return "up-down"

    def _legal(self, in_channel: Channel | None, out_channel: Channel) -> bool:
        # Never an up-link after a down-link.
        if in_channel is None:
            return True
        return not (in_channel.cls == "d" and out_channel.cls == "u")

    def _all_moves(self, cur: Coord) -> list[Candidate]:
        out: list[Candidate] = []
        for link in self.topology.out_links(cur):
            tag = self.rule(link)
            for ch in self._classes:
                if ch.dim == link.dim and ch.sign == link.sign and ch.cls == tag:
                    out.append((link.dst, ch))
        return out

    def _reachable(self, dst: Coord) -> frozenset[tuple[Coord, Channel]]:
        cached = self._reach_cache.get(dst)
        if cached is not None:
            return cached
        reachable: set[tuple[Coord, Channel]] = {(dst, c) for c in self._classes}
        changed = True
        moves = {node: self._all_moves(node) for node in self.topology.nodes}
        while changed:
            changed = False
            for node in self.topology.nodes:
                if node == dst:
                    continue
                for c in self._classes:
                    if (node, c) in reachable:
                        continue
                    for nxt, ch in moves[node]:
                        if self._legal(c, ch) and (nxt, ch) in reachable:
                            reachable.add((node, c))
                            changed = True
                            break
        frozen = frozenset(reachable)
        self._reach_cache[dst] = frozen
        return frozen

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        reachable = self._reachable(dst)
        here = self.topology.distance(cur, dst)
        out: list[Candidate] = []
        fallback: list[Candidate] = []
        for nxt, ch in self._all_moves(cur):
            if not self._legal(in_channel, ch):
                continue
            if nxt != dst and (nxt, ch) not in reachable:
                continue
            # Prefer shortest-progress moves; keep legal non-progress moves
            # as a fallback so constrained pairs (up/down detours) still
            # route.
            if self.topology.distance(nxt, dst) < here:
                out.append((nxt, ch))
            else:
                fallback.append((nxt, ch))
        return out or fallback


class GreedyUpDownRouting(UpDownRouting):
    """Up*/Down* with the down-then-up prohibition removed — a negative control.

    Keeps the ``u``/``d`` link tags and the progress-first candidate
    ordering but drops both the legality filter and the restriction to
    productive moves: every out-link is always offered, non-progress moves
    last.  This is the textbook broken design — greedy shortest-path over
    a tree-levelled network with no turn restriction — and on any fat-tree
    with at least two spines and two leaves its dependency graph contains
    leaf -> spine -> leaf up/down cycles, so every static oracle flags it
    and the simulator can be driven into them.  The fuzzer uses it to
    check the five oracles agree on *unsafe* hierarchical designs.
    """

    @property
    def name(self) -> str:
        return "greedy-up-down"

    def _legal(self, in_channel: Channel | None, out_channel: Channel) -> bool:
        return True

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        here = self.topology.distance(cur, dst)
        progress: list[Candidate] = []
        rest: list[Candidate] = []
        for nxt, ch in self._all_moves(cur):
            if self.topology.distance(nxt, dst) < here:
                progress.append((nxt, ch))
            else:
                rest.append((nxt, ch))
        return progress + rest
