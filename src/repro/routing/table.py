"""Turn-table routing: executing an EbDa design.

:class:`TurnTableRouting` turns a partition sequence into a working
routing function: a packet may ride channel class ``b`` after class ``a``
iff ``a == b`` (continuing straight) or ``a -> b`` is an extracted turn.

Turn legality alone is not enough for a *connected* routing function — a
greedy router could take a legal turn into a state from which the
destination is no longer reachable (e.g. going north first under
north-last).  The table therefore precomputes, per destination, the set of
(node, class) states that can still reach it, and only offers moves that
stay inside that set.  This is the standard way turn models are realised
in RTL ("if-else" priority structures, §5.4); reachability filtering
computes those priorities mechanically for any design.
"""

from __future__ import annotations


from repro.core.channel import Channel
from repro.core.extraction import extract_turns
from repro.core.sequence import PartitionSequence
from repro.core.turns import TurnSet
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule, no_classes


class TurnTableRouting(RoutingFunction):
    """Minimal routing constrained to a design's allowed turns.

    Parameters
    ----------
    topology, rule:
        Where and how the design's channel classes are instantiated.
    design:
        The EbDa partition sequence (validated on construction).
    transitions:
        Passed through to :func:`~repro.core.extraction.extract_turns`.
    directions:
        ``"minimal"`` uses the topology's minimal-direction oracle;
        ``"progressive"`` uses ``progressive_directions`` where available
        (irregular topologies whose minimal oracle can dead-end).
    turnset:
        An explicit :class:`TurnSet` to route with instead of extracting
        one from ``design``.  The differential fuzzer uses this to execute
        *mutated* (possibly theorem-violating) turn relations; the design
        still supplies the channel inventory.
    validate:
        ``False`` skips Theorem 1/3 validation of the design — required
        when deliberately routing an invalid design (with ``turnset`` or
        ``transitions`` extraction via ``validate=False`` upstream).
    """

    def __init__(
        self,
        topology: Topology,
        design: PartitionSequence,
        rule: ClassRule = no_classes,
        *,
        transitions: str = "all",
        directions: str = "minimal",
        ui_turns: bool = True,
        fallback: str = "none",
        label: str | None = None,
        turnset: TurnSet | None = None,
        validate: bool = True,
    ) -> None:
        super().__init__(topology, rule)
        self.design = design.validate() if validate else design
        if turnset is not None:
            self.turnset: TurnSet = turnset
        else:
            self.turnset = extract_turns(
                design, transitions=transitions, validate=validate
            )
        if not ui_turns:
            # Ablation/fault-tolerance studies: strip the Theorem-2/3 U- and
            # I-turns, keeping only 90-degree turns.  Still safe (a subset
            # of an acyclic relation), but rerouting around faults loses the
            # reversal capability the paper motivates U-turns with.
            from repro.core.turns import TurnKind

            self.turnset = self.turnset.restrict(
                lambda t: t.kind == TurnKind.DEGREE90
            )
        self._classes = design.all_channels
        if directions not in ("minimal", "progressive"):
            raise RoutingError(f"unknown directions mode {directions!r}")
        if fallback not in ("none", "escape"):
            raise RoutingError(f"unknown fallback mode {fallback!r}")
        self._directions_mode = directions
        # "escape": when no productive turn-legal move exists (e.g. routed
        # into a fault pocket), offer any turn-legal move whose state can
        # still reach the destination.  Safe: the design's concrete CDG is
        # acyclic, so every turn-legal walk visits each wire at most once
        # and must terminate — no livelock is possible.
        self._fallback = fallback
        self._label = label
        self._reach_cache: dict[Coord, frozenset[tuple[Coord, Channel]]] = {}

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return self._classes

    @property
    def name(self) -> str:
        return self._label or f"EbDa[{self.design.arrow_notation()}]"

    # -- direction oracle ------------------------------------------------------

    def _productive(self, cur: Coord, dst: Coord) -> tuple[tuple[int, int], ...]:
        if self._directions_mode == "progressive":
            oracle = getattr(self.topology, "progressive_directions", None)
            if oracle is not None:
                return oracle(cur, dst)
        return self.topology.minimal_directions(cur, dst)

    # -- transition legality ----------------------------------------------------

    def transition_legal(self, in_channel: Channel | None, out_channel: Channel) -> bool:
        """May a packet on ``in_channel`` continue on ``out_channel``?"""
        if in_channel is None or in_channel == out_channel:
            return True
        return self.turnset.allows(in_channel, out_channel)

    # -- reachability ------------------------------------------------------------

    def _reachable_states(self, dst: Coord) -> frozenset[tuple[Coord, Channel]]:
        """(node, class) states from which ``dst`` is reachable.

        Backward fixpoint over the productive-move/legal-transition graph.
        A state (v, c) reaches dst when v == dst, or some productive legal
        move lands in a reachable state.
        """
        cached = self._reach_cache.get(dst)
        if cached is not None:
            return cached

        # Forward adjacency: state -> list of successor states.
        # Build lazily per destination since productivity depends on dst.
        reachable: set[tuple[Coord, Channel]] = {
            (dst, c) for c in self._classes
        }
        # Iterate to fixpoint; state count is small (nodes x classes).
        changed = True
        states = [
            (node, c) for node in self.topology.nodes for c in self._classes
        ]
        succ: dict[tuple[Coord, Channel], list[tuple[Coord, Channel]]] = {}
        for node in self.topology.nodes:
            if node == dst:
                continue
            if self._fallback == "escape":
                moves = self._all_moves(node)
            else:
                moves = self._raw_moves(node, dst)
            for c in self._classes:
                succ[(node, c)] = [
                    (nxt, ch) for nxt, ch in moves if self.transition_legal(c, ch)
                ]
        while changed:
            changed = False
            for state in states:
                if state in reachable:
                    continue
                for nxt_state in succ.get(state, ()):
                    if nxt_state in reachable:
                        reachable.add(state)
                        changed = True
                        break
        frozen = frozenset(reachable)
        self._reach_cache[dst] = frozen
        return frozen

    def _raw_moves(self, cur: Coord, dst: Coord) -> list[Candidate]:
        """Productive (next, class) moves ignoring turn legality."""
        return self._outputs_matching(cur, self._productive(cur, dst))

    def _all_moves(self, cur: Coord) -> list[Candidate]:
        """Every instantiable (next, class) move, productive or not."""
        dirs = {(l.dim, l.sign) for l in self.topology.out_links(cur)}
        return self._outputs_matching(cur, sorted(dirs))

    # -- the routing function -----------------------------------------------------

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        reachable = self._reachable_states(dst)

        def legal_reachable(moves: list[Candidate]) -> list[Candidate]:
            out = []
            for nxt, ch in moves:
                if not self.transition_legal(in_channel, ch):
                    continue
                if nxt != dst and (nxt, ch) not in reachable:
                    continue
                out.append((nxt, ch))
            return out

        out = legal_reachable(self._raw_moves(cur, dst))
        if not out and self._fallback == "escape":
            # No productive legal move (fault pocket): escape via any
            # turn-legal move that keeps the destination reachable — this
            # is where Theorem-2/3 U-turns earn their keep.
            out = legal_reachable(self._all_moves(cur))
        # Offer the most progress-making moves first so that greedy
        # selection policies route quasi-minimally; on plain meshes every
        # candidate ties (all minimal), on elevator topologies this ranks
        # nearer-elevator routes ahead of legal detours.
        out.sort(key=lambda cand: self.topology.distance(cand[0], dst))
        return out

    # -- diagnostics ---------------------------------------------------------------

    def is_connected(self) -> bool:
        """Every (src, dst) pair routable from injection?

        The design is *connected* when a freshly injected packet at any
        source has at least one candidate toward every destination.
        """
        for src in self.topology.nodes:
            for dst in self.topology.nodes:
                if src == dst:
                    continue
                if not self.candidates(src, dst, None):
                    return False
        return True

    def dead_pairs(self) -> list[tuple[Coord, Coord]]:
        """All (src, dst) pairs with no route from injection (diagnostics)."""
        out = []
        for src in self.topology.nodes:
            for dst in self.topology.nodes:
                if src != dst and not self.candidates(src, dst, None):
                    out.append((src, dst))
        return out
