"""Elevator-First routing (Dubois et al. 2013) — the §6.3 baseline.

Deterministic routing for vertically partially connected 3D NoCs with 2,
2 and 1 VCs along X, Y and Z:

1. in the source layer, XY-route (on the VC1 X/Y channels) to the nearest
   elevator;
2. ride the vertical links to the destination layer;
3. XY-route on the VC2 X/Y channels to the destination.

The VC switch between phases is what breaks the inter-layer dependency
cycle.  The paper lists its sixteen turns: E1N1, E1S1, W1N1, W1S1, N1U,
N1D, S1U, S1D, UE2, UW2, DE2, DW2, E2N2, E2S2, W2N2, W2S2.
"""

from __future__ import annotations

from repro.core.channel import Channel
from repro.core.turns import Turn, TurnSet
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.topology.base import Coord
from repro.topology.classes import ClassRule, no_classes
from repro.topology.partial3d import PartiallyConnected3D

_X1P, _X1N = Channel.parse("X+"), Channel.parse("X-")
_Y1P, _Y1N = Channel.parse("Y+"), Channel.parse("Y-")
_X2P, _X2N = Channel.parse("X2+"), Channel.parse("X2-")
_Y2P, _Y2N = Channel.parse("Y2+"), Channel.parse("Y2-")
_ZP, _ZN = Channel.parse("Z+"), Channel.parse("Z-")

#: The sixteen turns of the published algorithm (§6.3 of the EbDa paper).
PAPER_TURN_STRINGS = (
    "X+->Y+", "X+->Y-", "X-->Y+", "X-->Y-",          # E1N1 E1S1 W1N1 W1S1
    "Y+->Z+", "Y+->Z-", "Y-->Z+", "Y-->Z-",          # N1U N1D S1U S1D
    "Z+->X2+", "Z+->X2-", "Z-->X2+", "Z-->X2-",      # UE2 UW2 DE2 DW2
    "X2+->Y2+", "X2+->Y2-", "X2-->Y2+", "X2-->Y2-",  # E2N2 E2S2 W2N2 W2S2
)


def paper_turnset() -> TurnSet:
    """The 16-turn set as listed in the paper, for Table-5 accounting."""
    return TurnSet({"elevator-first": [Turn.parse(s) for s in PAPER_TURN_STRINGS]})


class ElevatorFirst(RoutingFunction):
    """Deterministic Elevator-First routing on a partially connected 3D mesh."""

    def __init__(self, topology: PartiallyConnected3D, rule: ClassRule = no_classes) -> None:
        if not isinstance(topology, PartiallyConnected3D):
            raise RoutingError("ElevatorFirst requires a PartiallyConnected3D topology")
        super().__init__(topology, rule)
        self._classes = (_X1P, _X1N, _Y1P, _Y1N, _ZP, _ZN, _X2P, _X2N, _Y2P, _Y2N)

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return self._classes

    @property
    def name(self) -> str:
        return "elevator-first"

    def _xy_step(self, cur: Coord, target_xy: tuple[int, int], vc: int) -> list[Candidate]:
        """One deterministic XY hop toward ``target_xy`` on the given VC."""
        if target_xy[0] != cur[0]:
            sign = +1 if target_xy[0] > cur[0] else -1
            cls = (_X1P if sign > 0 else _X1N) if vc == 1 else (_X2P if sign > 0 else _X2N)
            return self._outputs_matching(cur, [(0, sign)], (cls,))
        if target_xy[1] != cur[1]:
            sign = +1 if target_xy[1] > cur[1] else -1
            cls = (_Y1P if sign > 0 else _Y1N) if vc == 1 else (_Y2P if sign > 0 else _Y2N)
            return self._outputs_matching(cur, [(1, sign)], (cls,))
        return []

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        topo: PartiallyConnected3D = self.topology  # type: ignore[assignment]
        in_phase2 = in_channel is not None and (in_channel.dim == 2 or in_channel.vc == 2)

        if cur[2] != dst[2]:
            # Phase 1 (or mid-elevator): reach the elevator, then ride Z.
            # The published algorithm stores the chosen elevator in the
            # packet header at injection; this stateless implementation
            # derives it deterministically from the destination instead
            # (the elevator nearest the destination column), so every hop
            # agrees on the target and no Y->X back-turns arise.
            elevator = topo.nearest_elevator((dst[0], dst[1], cur[2]))
            if (cur[0], cur[1]) == elevator:
                sign = +1 if dst[2] > cur[2] else -1
                cls = _ZP if sign > 0 else _ZN
                return self._outputs_matching(cur, [(2, sign)], (cls,))
            return self._xy_step(cur, elevator, vc=1)
        # Destination layer: phase 2 when the packet changed layers,
        # phase 1 VCs when source and destination share the layer.
        vc = 2 if in_phase2 else 1
        return self._xy_step(cur, (dst[0], dst[1]), vc=vc)
