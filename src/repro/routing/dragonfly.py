"""Minimal dragonfly routing with class-ordered VCs — EbDa beyond meshes.

Minimal dragonfly routes have the shape *local, global, local* (any leg
may be absent).  The classic deadlock-avoidance scheme gives the local
hops before and after the global hop different VCs, which in EbDa terms
is three consecutively ordered partitions over channel classes:

    PA = [L1 (local, VC1)]  ->  PB = [G (global)]  ->  PC = [L2 (local, VC2)]

Transitions only flow forward, each class is used for at most one hop per
route, and the concrete CDG is acyclic.  With a *single* local VC the L
class appears both before and after G, the class order collapses, and
l-g-l chains across groups close dependency cycles — the negative control
:class:`DragonflySingleVC` demonstrates it.
"""

from __future__ import annotations

from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.topology.base import Coord, Link
from repro.topology.dragonfly import GLOBAL_DIM, LOCAL_DIM, Dragonfly

L1 = Channel(LOCAL_DIM, +1, 1, "l")
L2 = Channel(LOCAL_DIM, +1, 2, "l")
G = Channel(GLOBAL_DIM, +1, 1, "g")


def dragonfly_rule(link: Link) -> str:
    """Class rule: local links tagged ``l``, global links ``g``."""
    return "l" if link.dim == LOCAL_DIM else "g"


class DragonflyRouting(RoutingFunction):
    """Deterministic minimal routing with the L1 -> G -> L2 class order."""

    def __init__(self, topology: Dragonfly) -> None:
        if not isinstance(topology, Dragonfly):
            raise RoutingError("DragonflyRouting needs a Dragonfly topology")
        super().__init__(topology, dragonfly_rule)

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return (L1, G, L2)

    @property
    def name(self) -> str:
        return "dragonfly-minimal"

    def _local_class(self, in_channel: Channel | None) -> Channel:
        """L1 before the global hop, L2 after it."""
        if in_channel is not None and (in_channel.cls == "g" or in_channel.vc == 2):
            return L2
        return L1

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        topo: Dragonfly = self.topology  # type: ignore[assignment]
        if cur[0] == dst[0]:
            # Local leg (source side uses L1, destination side L2).
            return [(dst, self._local_class(in_channel))]
        gateway = topo.gateway(cur[0], dst[0])
        if cur == gateway:
            return [(topo.global_peer[cur], G)]
        return [(gateway, L1)]


#: Valiant channel classes: the five route legs, strictly ordered.
VL1 = Channel(LOCAL_DIM, +1, 1, "l")
VG1 = Channel(GLOBAL_DIM, +1, 1, "g")
VL2 = Channel(LOCAL_DIM, +1, 2, "l")
VG2 = Channel(GLOBAL_DIM, +1, 2, "g")
VL3 = Channel(LOCAL_DIM, +1, 3, "l")


class DragonflyValiant(RoutingFunction):
    """Valiant (randomised indirect) dragonfly routing, five class legs.

    A packet bounces via a random intermediate group: the route shape is
    *local, global, local, global, local* and each leg gets its own
    channel class — five consecutively ordered partitions
    ``L1 -> G1 -> L2 -> G2 -> L3``, EbDa's ordering discipline at depth
    five.  The intermediate group travels with the packet as a waypoint
    (its gateway router), reusing the simulator's multicast machinery.

    Use :meth:`prepare` to stamp a packet's waypoint before injection.
    """

    def __init__(self, topology: Dragonfly) -> None:
        if not isinstance(topology, Dragonfly):
            raise RoutingError("DragonflyValiant needs a Dragonfly topology")
        super().__init__(topology, dragonfly_rule)

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return (VL1, VG1, VL2, VG2, VL3)

    @property
    def name(self) -> str:
        return "dragonfly-valiant"

    def prepare(self, packet, rng) -> None:
        """Choose a random intermediate group and stamp it as a waypoint.

        Direct same-group traffic keeps no waypoint (pure local route).
        """
        topo: Dragonfly = self.topology  # type: ignore[assignment]
        if packet.src[0] == packet.dst[0]:
            return
        choices = [
            g
            for g in range(topo.groups)
            if g not in (packet.src[0], packet.dst[0])
        ]
        mid = rng.choice(choices)
        # The waypoint is the intermediate group's gateway toward the
        # destination group (the router the second global hop leaves from).
        waypoint = topo.gateway(mid, packet.dst[0])
        if waypoint not in (packet.src, packet.dst):
            packet.waypoints = (waypoint,)

    def target_of(self, packet, cur: Coord) -> Coord:
        pending = [w for w in packet.waypoints if w not in packet.copies and w != cur]
        if pending and cur[0] != packet.dst[0]:
            return pending[0]
        return packet.dst

    def _phase(self, in_channel: Channel | None) -> int:
        """Route leg index implied by the arrival class (0, 1 or 2)."""
        if in_channel is None or in_channel == VL1:
            return 0
        if in_channel in (VG1, VL2):
            return 1
        return 2

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        topo: Dragonfly = self.topology  # type: ignore[assignment]
        phase = self._phase(in_channel)
        local = (VL1, VL2, VL3)[phase]
        if cur[0] == dst[0]:
            return [(dst, local)]
        if phase >= 2:
            raise RoutingError(
                f"valiant route exhausted its global budget at {cur} -> {dst}"
            )
        glob = (VG1, VG2)[phase]
        gateway = topo.gateway(cur[0], dst[0])
        if cur == gateway:
            return [(topo.global_peer[cur], glob)]
        return [(gateway, local)]


class DragonflySingleVC(RoutingFunction):
    """Negative control: one local VC — the class order collapses."""

    def __init__(self, topology: Dragonfly) -> None:
        if not isinstance(topology, Dragonfly):
            raise RoutingError("DragonflySingleVC needs a Dragonfly topology")
        super().__init__(topology, dragonfly_rule)

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return (L1, G)

    @property
    def name(self) -> str:
        return "dragonfly-single-vc"

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        topo: Dragonfly = self.topology  # type: ignore[assignment]
        if cur[0] == dst[0]:
            return [(dst, L1)]
        gateway = topo.gateway(cur[0], dst[0])
        if cur == gateway:
            return [(topo.global_peer[cur], G)]
        return [(gateway, L1)]
