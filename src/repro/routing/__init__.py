"""Routing algorithms: EbDa table-driven plus the paper's baselines."""

from repro.routing.base import Candidate, RoutingFunction
from repro.routing.deterministic import DimensionOrderRouting, xy_routing, yx_routing
from repro.routing.dragonfly import DragonflyRouting, DragonflySingleVC, dragonfly_rule
from repro.routing.dyxy import DyXY
from repro.routing.elevator import ElevatorFirst, paper_turnset as elevator_first_turnset
from repro.routing.fullyadaptive import MinimalFullyAdaptive, UnrestrictedAdaptive
from repro.routing.multicast import (
    HamiltonianPathRouting,
    MulticastHamiltonianRouting,
    dual_path_cost,
    hamiltonian_label,
    plan_dual_path,
    unicast_cost,
)
from repro.routing.oddeven import OddEven
from repro.routing.selection import (
    NAMED_POLICIES,
    SelectionContext,
    SelectionPolicy,
    congestion_aware,
    first_candidate,
    random_candidate,
    zigzag,
)
from repro.routing.table import TurnTableRouting
from repro.routing.turnmodels import NegativeFirst, NorthLast, WestFirst
from repro.routing.updown import GreedyUpDownRouting, UpDownRouting

__all__ = [
    "Candidate",
    "RoutingFunction",
    "DimensionOrderRouting",
    "xy_routing",
    "yx_routing",
    "DragonflyRouting",
    "DragonflySingleVC",
    "dragonfly_rule",
    "DyXY",
    "ElevatorFirst",
    "elevator_first_turnset",
    "MinimalFullyAdaptive",
    "UnrestrictedAdaptive",
    "HamiltonianPathRouting",
    "MulticastHamiltonianRouting",
    "dual_path_cost",
    "hamiltonian_label",
    "plan_dual_path",
    "unicast_cost",
    "OddEven",
    "NAMED_POLICIES",
    "SelectionContext",
    "SelectionPolicy",
    "congestion_aware",
    "first_candidate",
    "random_candidate",
    "zigzag",
    "TurnTableRouting",
    "NegativeFirst",
    "NorthLast",
    "WestFirst",
    "GreedyUpDownRouting",
    "UpDownRouting",
]
