"""Deterministic dimension-order routing (XY, YX and the n-D general case).

Dimension-order routing resolves offsets one dimension at a time in a
fixed order — the end point of the paper's §5.3.2 derivation (all
partitions split to single channels, Table 3).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.channel import Channel
from repro.errors import RoutingError
from repro.routing.base import Candidate, RoutingFunction
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule, no_classes


class DimensionOrderRouting(RoutingFunction):
    """Route offsets in a fixed dimension order (default X, Y, Z, ...).

    >>> from repro.topology import Mesh
    >>> r = DimensionOrderRouting(Mesh(4, 4))
    >>> r.candidates((0, 0), (2, 2), None)
    [((1, 0), Channel(X+))]
    """

    uses_in_channel = False  # candidates() never reads the arrival channel

    def __init__(
        self,
        topology: Topology,
        order: Sequence[int] | None = None,
        rule: ClassRule = no_classes,
    ) -> None:
        super().__init__(topology, rule)
        self._order = tuple(order) if order is not None else tuple(range(topology.n_dims))
        if sorted(self._order) != list(range(topology.n_dims)):
            raise RoutingError(
                f"order {self._order} must be a permutation of all"
                f" {topology.n_dims} dimensions"
            )
        self._classes = tuple(
            Channel(dim, sign) for dim in range(topology.n_dims) for sign in (+1, -1)
        )

    @property
    def channel_classes(self) -> tuple[Channel, ...]:
        return self._classes

    @property
    def name(self) -> str:
        letters = "".join(Channel(d, +1).dim_letter for d in self._order)
        return f"{letters}-order"

    def candidates(self, cur: Coord, dst: Coord, in_channel: Channel | None) -> list[Candidate]:
        if cur == dst:
            return []
        productive = dict(self.topology.minimal_directions(cur, dst))
        for dim in self._order:
            if dim in productive:
                return self._outputs_matching(cur, [(dim, productive[dim])])
        return []

    def route_signature(self, cur: Coord, dst: Coord):
        # candidates() reads dst exclusively through minimal_directions.
        return self.topology.minimal_directions(cur, dst)


def xy_routing(topology: Topology) -> DimensionOrderRouting:
    """XY routing: resolve X first, then Y."""
    return DimensionOrderRouting(topology, order=(0, 1) + tuple(range(2, topology.n_dims)))


def yx_routing(topology: Topology) -> DimensionOrderRouting:
    """YX routing: resolve Y first, then X."""
    rest = tuple(d for d in range(topology.n_dims) if d > 1)
    return DimensionOrderRouting(topology, order=(1, 0) + rest)
