"""DyXY (Li, Zeng & Jone 2006): congestion-aware minimal adaptive routing.

Figure 7(b) of the paper shows DyXY's channel structure is exactly the
EbDa 2D minimum-channel design ``PA[X1+ Y1+ Y1-] -> PB[X1- Y2+ Y2-]``:
one X VC, two Y VCs, six channels total.  DyXY's novelty on top of that
structure is *selection* — it picks among legal outputs by local congestion
— which in this library is a
:func:`~repro.routing.selection.congestion_aware` policy applied to the
table-routed candidates.
"""

from __future__ import annotations

from repro.core.catalog import dyxy_partitions
from repro.routing.table import TurnTableRouting
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes


class DyXY(TurnTableRouting):
    """The DyXY routing function (pair selection left to the policy).

    Use together with ``selection=congestion_aware`` in the simulator to
    reproduce the published behaviour; with any other policy this is
    simply the 2D minimal fully adaptive EbDa design.
    """

    def __init__(self, topology: Topology, rule: ClassRule = no_classes) -> None:
        super().__init__(topology, dyxy_partitions(), rule, label="DyXY")
