"""Wait-for graph analysis: exact deadlock witnesses.

The watchdog in :class:`~repro.sim.network.NetworkSimulator` detects *that*
progress stopped; this module explains *why*: it builds the packet
wait-for graph (who holds which wire, who waits for whom) and extracts a
cyclic wait — the literal "each packet holds a channel needed by another
packet" of the paper's introduction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

from repro.topology.wires import Wire

if TYPE_CHECKING:
    from repro.sim.network import NetworkSimulator


def build_waitfor_graph(sim: "NetworkSimulator") -> "nx.DiGraph":
    """Packet-level wait-for graph of the simulator's current state.

    Edge ``p -> q``: packet *p* cannot progress until *q* releases a
    resource (*q* owns a wire *p* wants, or *q*'s flits occupy buffer
    space *p* needs).
    """
    graph = nx.DiGraph()

    def add_wait(p: int, blocking_wire: Wire) -> None:
        ws = sim.state[blocking_wire]
        holders: set[int] = set()
        if ws.owner is not None and ws.owner != p:
            holders.add(ws.owner)
        for pid in ws.packets_present():
            if pid != p:
                holders.add(pid)
        for q in holders:
            graph.add_edge(p, q)

    # Blocked heads inside the network.
    for wire in sim.wires:
        ws = sim.state[wire]
        flit = ws.front()
        if flit is None:
            continue
        router = wire.dst
        if flit.packet.dst == router:
            continue  # will eject; not blocked
        p = flit.pid
        graph.add_node(p)
        if flit.is_head and (wire, p) not in sim.route_assignment:
            # VC-allocation blocked: waits on every candidate wire's state.
            target = sim.routing.target_of(flit.packet, router)
            for nxt, ch in sim.routing.candidates(router, target, wire.channel):
                cand = sim._wire_lookup.get((router, nxt, ch))
                if cand is not None:
                    add_wait(p, cand)
        else:
            out_wire = sim.route_assignment.get((wire, p))
            if out_wire is not None and sim.state[out_wire].free_slots == 0:
                add_wait(p, out_wire)

    # Blocked injections.
    for node in sim.topology.nodes:
        inj = sim._injecting[node]
        if inj is None or inj.done:
            continue
        p = inj.packet.pid
        graph.add_node(p)
        if inj.out_wire is None:
            target = sim.routing.target_of(inj.packet, node)
            for nxt, ch in sim.routing.candidates(node, target, None):
                cand = sim._wire_lookup.get((node, nxt, ch))
                if cand is not None:
                    add_wait(p, cand)
        elif sim.state[inj.out_wire].free_slots == 0:
            add_wait(p, inj.out_wire)

    return graph


def waitfor_cycle(sim: "NetworkSimulator") -> list[int] | None:
    """A cyclic wait among packet ids, or None when no cycle exists."""
    graph = build_waitfor_graph(sim)
    try:
        edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return None
    return [e[0] for e in edges]


def cycle_witness(
    sim: "NetworkSimulator",
) -> tuple[list[int], list[tuple[Wire, ...]]] | None:
    """The cyclic wait plus the channels each participant holds.

    Returns ``(pids, held)`` where ``held[i]`` is the tuple of wires
    packet ``pids[i]`` owns or occupies while waiting — the literal
    "each packet holds a channel needed by another packet" witness of
    the paper's deadlock definition.  None when no cyclic wait exists.
    """
    pids = waitfor_cycle(sim)
    if pids is None:
        return None
    return pids, [tuple(held_wires(sim, pid)) for pid in pids]


def held_wires(sim: "NetworkSimulator", pid: int) -> list[Wire]:
    """All wires a packet currently owns or occupies (diagnostics)."""
    out: list[Wire] = []
    for wire in sim.wires:
        ws = sim.state[wire]
        if ws.owner == pid or pid in ws.packets_present():
            out.append(wire)
    return out
