"""Parallel sweep engine with content-addressed result caching.

The evaluation surface (V2/V3 rate sweeps, the V7 chaos sweep, turn-model
searches) is embarrassingly parallel: every simulation point is fully
described by ``(topology, routing spec, RunConfig, class rule)`` and runs
independently.  :class:`SweepEngine` fans those points out over a
:class:`~concurrent.futures.ProcessPoolExecutor` — with a deterministic
in-process fallback for ``jobs=1`` and for unpicklable work — and
memoises finished points in an on-disk :class:`ResultCache` so repeated
sweeps and CI benchmark runs skip already-computed simulations.

Determinism contract: every point carries its own seeds, so ``jobs=4``
produces **bit-identical** :class:`~repro.sim.stats.SimStats` to
``jobs=1`` for the same configs, and a cache-loaded point compares equal
to a freshly simulated one.

Cache-key contract (what invalidates a cached point):

* the topology (``repr`` + node count + a digest of the full link list);
* the routing spec token (name, registered factory, or design notation);
* the class-rule token;
* every :class:`~repro.sim.runner.RunConfig` field (callable fields via
  their spec tokens; fault schedules event by event) — except
  ``backend``, which is deliberately excluded: every registered backend
  is cycle-exact (:mod:`repro.sim.backend`), so a point simulated by one
  backend is a valid hit for the other;
* the library version (:data:`repro.__version__`) and the cache schema.

A point whose spec has no stable token (a lambda pattern, a closure
factory) is simply *uncacheable*: it always simulates, it is never
written, and it can never produce a stale hit.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.metrics import REGISTRY
from repro.obs.trace import current_tracer
from repro.routing.base import RoutingFunction
from repro.sim.runner import RunConfig, RunResult, run_point
from repro.sim.specs import resolve_routing_factory, spec_token
from repro.sim.stats import SimStats
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes

__all__ = [
    "CACHE_SCHEMA",
    "PointOutcome",
    "ResultCache",
    "SweepEngine",
    "SweepReport",
    "cache_key",
    "default_cache_dir",
    "point_token",
    "sweep_token",
    "topology_token",
]

#: Bump to invalidate every existing cache entry after a format change.
CACHE_SCHEMA = 1


def default_cache_dir() -> Path:
    """``$REPRO_EBDA_CACHE_DIR``, else ``~/.cache/repro-ebda``."""
    env = os.environ.get("REPRO_EBDA_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-ebda"


def topology_token(topology: Topology) -> str:
    """A content-addressed token for a concrete topology.

    ``repr`` alone distinguishes the stock shapes (``Mesh(4, 4)``); the
    link digest additionally catches degraded/irregular instances whose
    repr under-describes the wiring.
    """
    links = "\n".join(
        f"{l.src}>{l.dst}:{l.dim}{l.sign:+d}" for l in sorted(topology.links)
    )
    digest = hashlib.sha256(links.encode()).hexdigest()[:16]
    return f"{topology!r}|n={len(topology.nodes)}|links={digest}"


def _routing_token(routing: object) -> str | None:
    """Token for the sweep's routing argument (spec, factory or instance)."""
    token = spec_token("routing", routing)
    if token is not None:
        return token
    if isinstance(routing, RoutingFunction):
        cls = type(routing)
        parts = [f"obj:{cls.__module__}.{cls.__qualname__}", f"name={routing.name}"]
        design = getattr(routing, "design", None)
        if design is not None:
            parts.append(f"design={design.arrow_notation()}")
        return "|".join(parts)
    return None


def _config_token(config: RunConfig) -> str | None:
    """Canonical string of every RunConfig field, or None when uncacheable."""
    parts: list[str] = []
    for f in fields(config):
        if f.name == "backend":
            # Backends are cycle-exact (repro.sim.backend): identical
            # stats either way, so keys stay backend-agnostic and the
            # engines share cache entries.
            continue
        value = getattr(config, f.name)
        if f.name in ("pattern", "selection", "metrics", "workload"):
            token = spec_token(f.name, value)
        elif f.name == "routing_factory":
            token = spec_token("routing", value)
        elif f.name == "faults":
            token = (
                "none"
                if value is None
                else f"seed={value.seed};" + ";".join(repr(e) for e in value.events)
            )
        else:
            token = repr(value)
        if token is None:
            return None
        parts.append(f"{f.name}={token}")
    return "|".join(parts)


def point_token(
    topology: Topology,
    routing: object,
    config: RunConfig,
    rule: ClassRule = no_classes,
) -> str | None:
    """A *version-free* 16-hex identity for one point, or None when the
    point has no stable spec.

    This is the run ledger's spec token (:mod:`repro.obs.ledger`): two
    library versions running the same point share it, which is exactly
    what lets ``repro runs diff`` detect cross-version result drift.
    The result cache builds :func:`cache_key` on top by adding the cache
    schema and library version.
    """
    routing_token = _routing_token(routing)
    config_token = _config_token(config)
    rule_token = spec_token("rule", rule)
    if routing_token is None or config_token is None or rule_token is None:
        return None
    material = "\n".join(
        [
            f"topology={topology_token(topology)}",
            f"routing={routing_token}",
            f"rule={rule_token}",
            f"config={config_token}",
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def sweep_token(
    topology: Topology,
    routing: object,
    rates: Sequence[float],
    config: RunConfig,
    rule: ClassRule = no_classes,
) -> str | None:
    """A version-free 16-hex identity for a whole rate sweep, or None."""
    base = point_token(topology, routing, config, rule)
    if base is None:
        return None
    material = f"point={base}\nrates={','.join(repr(float(r)) for r in rates)}"
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def cache_key(
    topology: Topology,
    routing: object,
    config: RunConfig,
    rule: ClassRule = no_classes,
) -> str | None:
    """The content-addressed key for one point, or None when uncacheable."""
    import repro

    token = point_token(topology, routing, config, rule)
    if token is None:
        return None
    material = "\n".join(
        [
            f"schema={CACHE_SCHEMA}",
            f"version={repro.__version__}",
            f"point={token}",
        ]
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultCache:
    """On-disk store of finished simulation points, one JSON file per key.

    Writes are atomic (tmp file + rename), so concurrent sweeps sharing a
    directory can only ever observe complete entries.
    """

    def __init__(self, directory: "Path | str | None" = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str, config: RunConfig) -> RunResult | None:
        """The cached result for ``key`` (rebuilt around ``config``), or None."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("schema") != CACHE_SCHEMA:
            return None
        return RunResult(
            routing_name=payload["routing_name"],
            config=config,
            stats=SimStats.from_dict(payload["stats"]),
            n_nodes=payload["n_nodes"],
        )

    def put(self, key: str, result: RunResult, wall_time: float) -> None:
        """Store a finished point under ``key``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "routing_name": result.routing_name,
            "n_nodes": result.n_nodes,
            "stats": result.stats.to_dict(),
            "wall_time": wall_time,
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.json"))
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


@dataclass
class PointOutcome:
    """One sweep point's result plus its execution provenance."""

    result: RunResult
    #: Seconds this point took (simulation time for misses, load time for hits).
    wall_time: float
    #: True when served from the cache without simulating.
    cached: bool
    #: The cache key, or None when the point was uncacheable.
    key: str | None = None


@dataclass
class SweepReport:
    """A finished sweep: results plus the measurements that justify it.

    ``repro.sweep``/:meth:`SweepEngine.sweep` return this instead of a
    bare result list so speedups and cache effectiveness are measurable
    (``BENCH_*.json`` records them via :meth:`to_dict`).
    """

    points: list[PointOutcome]
    jobs: int
    wall_time: float
    #: Wall seconds per engine stage: ``cache_read`` (probing existing
    #: entries), ``spawn`` (process-pool construction), ``simulate``
    #: (executing the misses), ``cache_write`` (persisting new entries).
    #: Simulation time is additionally attributed per engine under
    #: ``simulate:<backend>`` keys (``simulate:reference``,
    #: ``simulate:vector``) summing each miss's own wall time, so a
    #: mixed-backend batch shows where the cycles actually ran.
    stage_times: dict[str, float] = field(default_factory=dict)

    @property
    def results(self) -> list[RunResult]:
        return [p.result for p in self.points]

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.points if p.cached)

    @property
    def cache_misses(self) -> int:
        return sum(1 for p in self.points if not p.cached)

    @property
    def cycles_executed(self) -> int:
        """Simulation cycles actually executed (cache hits contribute 0)."""
        return sum(p.result.stats.cycles for p in self.points if not p.cached)

    @property
    def point_wall_times(self) -> list[float]:
        return [p.wall_time for p in self.points]

    def summary(self) -> str:
        """One-line human-readable account of the sweep."""
        return (
            f"{len(self.points)} points in {self.wall_time:.2f}s"
            f" (jobs={self.jobs}, cache {self.cache_hits} hit"
            f"/{self.cache_misses} miss, {self.cycles_executed} sim cycles)"
        )

    def stage_summary(self) -> str:
        """One line of engine stage times (``repro sweep`` prints this).

        Fixed stages first, then the per-backend ``simulate:<engine>``
        attributions, each as ``name=seconds``.
        """
        order = ["cache_read", "spawn", "simulate", "cache_write"]
        keys = [k for k in order if k in self.stage_times]
        keys += sorted(k for k in self.stage_times if k not in order)
        return "stages: " + " ".join(
            f"{k}={self.stage_times[k]:.3f}s" for k in keys
        )

    def to_dict(self) -> dict:
        """Strict-JSON-safe report (per-point timings and telemetry included).

        ``avg_latency`` is ``None`` (not the invalid-JSON ``NaN``) for
        points that delivered no packets; metered points carry their
        collector's compact summary under ``"metrics"``.
        """
        def point_dict(p: PointOutcome) -> dict:
            lat = p.result.avg_latency
            entry = {
                "routing": p.result.routing_name,
                "injection_rate": p.result.config.injection_rate,
                "seed": p.result.config.seed,
                "avg_latency": None if lat != lat else lat,
                "throughput": p.result.throughput,
                "deadlocked": p.result.deadlocked,
                "wall_time": p.wall_time,
                "cached": p.cached,
            }
            collector = getattr(p.result, "metrics", None)
            if collector is not None:
                entry["metrics"] = collector.summary_dict()
            return entry

        return {
            "jobs": self.jobs,
            "wall_time": self.wall_time,
            "stage_times": dict(self.stage_times),
            "n_points": len(self.points),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cycles_executed": self.cycles_executed,
            "points": [point_dict(p) for p in self.points],
        }


#: Metric names the engine reports (see :mod:`repro.obs.metrics`).
_HITS = "repro_cache_hits_total"
_HITS_HELP = "Result-cache hits served without simulating"
_MISSES = "repro_cache_misses_total"
_MISSES_HELP = "Result-cache misses (points actually simulated)"
_SIM_SECONDS = "repro_simulate_seconds"
_SIM_HELP = "Wall seconds per simulated point, by backend"


def _execute_point(payload: tuple) -> tuple[RunResult, float]:
    """Worker entry: simulate one point, timing it (module-level: picklable)."""
    topology, routing, config, rule = payload
    start = time.perf_counter()
    result = run_point(topology, routing, config, rule)
    return result, time.perf_counter() - start


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:  # pickle raises a zoo: PicklingError, TypeError, ...
        return False


class SweepEngine:
    """Executes simulation points in parallel, consulting a result cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs everything in-process
        — the deterministic fallback path; results are bit-identical
        either way.
    cache:
        ``False`` (default) disables caching; ``True`` uses
        :func:`default_cache_dir`; a path or :class:`ResultCache` selects
        an explicit store.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: "bool | str | Path | ResultCache" = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        if isinstance(cache, ResultCache):
            self.cache: ResultCache | None = cache
        elif cache is True:
            self.cache = ResultCache()
        elif cache:
            self.cache = ResultCache(cache)
        else:
            self.cache = None

    # -- single points ---------------------------------------------------------

    def run_point(
        self,
        topology: Topology,
        routing: "RoutingFunction | str | object",
        config: RunConfig,
        rule: ClassRule = no_classes,
    ) -> PointOutcome:
        """One point, in-process, cache-aware."""
        tracer = current_tracer()
        with tracer.span("sweep.point", backend=config.backend) as span:
            key = (
                cache_key(topology, routing, config, rule)
                if self.cache is not None
                else None
            )
            if key is not None and self.cache is not None:
                cached = self._load(key, config)
                if cached is not None:
                    REGISTRY.counter(_HITS, help=_HITS_HELP).inc()
                    span.set(cached=True)
                    return cached
            result, elapsed = _execute_point((topology, routing, config, rule))
            if self.cache is not None:
                REGISTRY.counter(_MISSES, help=_MISSES_HELP).inc()
            REGISTRY.histogram(
                _SIM_SECONDS, labels={"backend": config.backend}, help=_SIM_HELP
            ).observe(elapsed)
            if key is not None and self.cache is not None:
                self.cache.put(key, result, elapsed)
            span.set(cached=False)
            return PointOutcome(result, elapsed, cached=False, key=key)

    def _load(self, key: str, config: RunConfig) -> PointOutcome | None:
        start = time.perf_counter()
        result = self.cache.get(key, config)  # type: ignore[union-attr]
        if result is None:
            return None
        return PointOutcome(result, time.perf_counter() - start, cached=True, key=key)

    # -- fan-out ---------------------------------------------------------------

    def map_tasks(self, fn, payloads: Iterable) -> list:
        """Fan arbitrary independent tasks out over the worker pool.

        ``fn`` must be a module-level callable and each payload picklable
        for the parallel path; otherwise the whole batch degrades to the
        deterministic in-process fallback (same results, serially).
        Results preserve payload order.  Unlike :meth:`run_many` this does
        not consult the result cache — callers own their own memoisation.
        The fuzzing harness (:mod:`repro.fuzz.runner`) uses this to spread
        differential trials across workers.
        """
        items = list(payloads)
        parallel = (
            self.jobs > 1
            and len(items) > 1
            and _picklable(fn)
            and all(_picklable(item) for item in items)
        )
        if not parallel:
            return [fn(item) for item in items]
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            return list(pool.map(fn, items))
        finally:
            pool.shutdown()

    def run_many(
        self,
        points: Iterable[tuple[Topology, object, RunConfig]],
        rule: ClassRule = no_classes,
    ) -> SweepReport:
        """Run ``(topology, routing-spec, config)`` points, preserving order.

        Cache hits load immediately; misses fan out over the process pool
        when ``jobs > 1`` and every miss payload is picklable, otherwise
        they run in-process (same results, serially).
        """
        started = time.perf_counter()
        stage_times = {
            "cache_read": 0.0, "spawn": 0.0, "simulate": 0.0, "cache_write": 0.0,
        }
        work = [(t, r, c, rule) for (t, r, c) in points]
        outcomes: list[PointOutcome | None] = [None] * len(work)
        tracer = current_tracer()
        with tracer.span(
            "sweep.run_many", points=len(work), jobs=self.jobs
        ) as root:
            return self._run_many_traced(
                tracer, root, work, outcomes, stage_times, started
            )

    def _run_many_traced(
        self, tracer, root, work, outcomes, stage_times, started
    ) -> SweepReport:
        with tracer.span("sweep.cache_read"):
            mark = time.perf_counter()
            pending: list[tuple[int, tuple]] = []
            for i, payload in enumerate(work):
                key = cache_key(*payload) if self.cache is not None else None
                if key is not None and self.cache is not None:
                    cached = self._load(key, payload[2])
                    if cached is not None:
                        outcomes[i] = cached
                        continue
                pending.append((i, payload))
            stage_times["cache_read"] = time.perf_counter() - mark

        parallel = (
            self.jobs > 1
            and len(pending) > 1
            and all(_picklable(payload) for _i, payload in pending)
        )
        if parallel:
            with tracer.span("sweep.spawn"):
                mark = time.perf_counter()
                pool = ProcessPoolExecutor(max_workers=self.jobs)
                stage_times["spawn"] = time.perf_counter() - mark
            with tracer.span("sweep.simulate", parallel=True, misses=len(pending)):
                mark = time.perf_counter()
                try:
                    executed = list(
                        pool.map(_execute_point, [payload for _i, payload in pending])
                    )
                finally:
                    pool.shutdown()
                stage_times["simulate"] = time.perf_counter() - mark
        else:
            with tracer.span("sweep.simulate", parallel=False, misses=len(pending)):
                mark = time.perf_counter()
                executed = [_execute_point(payload) for _i, payload in pending]
                stage_times["simulate"] = time.perf_counter() - mark

        with tracer.span("sweep.cache_write"):
            mark = time.perf_counter()
            for (i, payload), (result, elapsed) in zip(pending, executed):
                key = cache_key(*payload) if self.cache is not None else None
                if key is not None and self.cache is not None:
                    self.cache.put(key, result, elapsed)
                backend_stage = f"simulate:{payload[2].backend}"
                stage_times[backend_stage] = stage_times.get(backend_stage, 0.0) + elapsed
                REGISTRY.histogram(
                    _SIM_SECONDS,
                    labels={"backend": payload[2].backend},
                    help=_SIM_HELP,
                ).observe(elapsed)
                outcomes[i] = PointOutcome(result, elapsed, cached=False, key=key)
            stage_times["cache_write"] = time.perf_counter() - mark

        hits = sum(1 for o in outcomes if o is not None and o.cached)
        if self.cache is not None:
            REGISTRY.counter(_HITS, help=_HITS_HELP).inc(hits)
            REGISTRY.counter(_MISSES, help=_MISSES_HELP).inc(len(pending))
        root.set(cache_hits=hits, cache_misses=len(pending))

        return SweepReport(
            points=[o for o in outcomes if o is not None],
            jobs=self.jobs if parallel else 1,
            wall_time=time.perf_counter() - started,
            stage_times=stage_times,
        )

    def sweep(
        self,
        topology: Topology,
        routing_factory: "object | str",
        rates: Sequence[float],
        config: RunConfig,
        rule: ClassRule = no_classes,
    ) -> SweepReport:
        """Latency/throughput curve over injection rates, one point per rate.

        The parallel analogue of :func:`repro.sim.runner.sweep_rates`;
        named specs keep the fan-out picklable, raw factories degrade to
        the in-process path automatically.
        """
        if not isinstance(routing_factory, str):
            # Fail fast on typos; string specs resolve in the workers.
            resolve_routing_factory(routing_factory)
        points = [(topology, routing_factory, config.with_rate(r)) for r in rates]
        report = self.run_many(points, rule)
        self._ledger_sweep(topology, routing_factory, rates, config, rule, report)
        return report

    def _ledger_sweep(
        self, topology, routing_factory, rates, config, rule, report
    ) -> None:
        """Append a ``sweep`` ledger record when a ledger is configured.

        Identity is the version-free :func:`sweep_token`; the outcome
        digest covers every point's deterministic stats dict, in rate
        order, so any drifting point flips the sweep's digest.
        """
        from repro.obs.ledger import current_ledger, record_run

        if current_ledger() is None:
            return
        spec = sweep_token(topology, routing_factory, rates, config, rule)
        if spec is None:
            spec = f"unhashable:{getattr(routing_factory, '__name__', routing_factory)}"
        deadlocked = any(r.deadlocked for r in report.results)
        record_run(
            "sweep",
            spec=spec,
            backend=config.backend,
            seed=config.seed,
            outcome="deadlock" if deadlocked else "ok",
            payload=[r.stats.to_dict() for r in report.results],
            wall_s=report.wall_time,
        )
