"""Simulation statistics: latency, throughput, progress accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from math import floor
from statistics import mean


def _jsonable(value: float) -> float | None:
    """NaN (the no-data sentinel of the latency averages) -> None.

    Strict JSON has no NaN token; every exported derived metric uses
    ``null`` for "no packets delivered" instead.
    """
    return None if value != value else value


#: Derived (read-only) keys emitted by :meth:`SimStats.to_dict` for
#: consumers; :meth:`SimStats.from_dict` drops them so the round trip
#: reconstructs exactly the stored counters.
_DERIVED_KEYS = (
    "avg_total_latency",
    "avg_network_latency",
    "p50_latency",
    "p95_latency",
    "p99_latency",
    "avg_recovery_latency",
    "delivery_ratio",
)


@dataclass
class SimStats:
    """Counters accumulated over a simulation run."""

    cycles: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    flit_moves: int = 0
    #: (total latency, network latency) per delivered packet.
    latencies: list[tuple[int, int]] = field(default_factory=list)
    #: Multicast copies absorbed at waypoints (path-based multicast).
    multicast_copies: int = 0
    deadlocked: bool = False
    #: Simulation cycle number at which the watchdog *declared* deadlock
    #: (None while none declared).  Not to be confused with the cyclic
    #: wait itself — the *cycle of packets* a witness names lives in
    #: :attr:`repro.errors.DeadlockDetected.cycle`.
    deadlock_declared_at: int | None = None
    #: Faults actually applied from a :class:`~repro.sim.faults.FaultSchedule`.
    faults_injected: int = 0
    #: Packets aborted by recovery/fault handling (flits flushed mid-flight).
    packets_aborted: int = 0
    #: Aborted packets re-queued at their source after backoff.
    retransmissions: int = 0
    #: Cyclic waits broken by regressive recovery (victim abort).
    recovered_deadlocks: int = 0
    #: Packets irrecoverably lost (e.g. source or destination router died).
    packets_lost: int = 0
    #: Per-recovered-packet cycles from (first) abort to final delivery.
    recovery_latencies: list[int] = field(default_factory=list)

    @property
    def deadlock_cycle(self) -> int | None:
        """Removed alias of :attr:`deadlock_declared_at`.

        .. versionchanged:: 1.6
            Accessing it now raises; the old name ambiguously suggested
            the "cycle of packets" of a deadlock witness.  Deprecated
            since 1.2.
        """
        raise AttributeError(
            "SimStats.deadlock_cycle was removed in 1.6 (deprecated in 1.2):"
            " use SimStats.deadlock_declared_at"
        )

    def record_delivery(self, total: int, network: int, flits: int) -> None:
        self.packets_delivered += 1
        self.flits_delivered += flits
        self.latencies.append((total, network))

    @property
    def avg_total_latency(self) -> float:
        """Mean creation-to-delivery latency (cycles)."""
        if not self.latencies:
            return float("nan")
        return mean(t for t, _n in self.latencies)

    @property
    def avg_network_latency(self) -> float:
        """Mean injection-to-delivery latency (cycles)."""
        if not self.latencies:
            return float("nan")
        return mean(n for _t, n in self.latencies)

    @property
    def max_total_latency(self) -> int:
        return max((t for t, _n in self.latencies), default=0)

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of total latency.

        Linear interpolation between closest ranks (numpy's default,
        "inclusive" convention): rank ``q/100 * (n-1)`` over the sorted
        values, fractional ranks interpolating linearly between the two
        neighbours.  With values ``1..100``, p50 = 50.5 and p99 = 99.01.
        This is the convention behind the ``p50/p95/p99`` fields of
        :meth:`to_dict` and the metrics summaries.  NaN when no packet
        was delivered.
        """
        if not self.latencies:
            return float("nan")
        values = sorted(t for t, _n in self.latencies)
        rank = min(max(q, 0.0), 100.0) / 100 * (len(values) - 1)
        lo = floor(rank)
        frac = rank - lo
        if frac == 0.0 or lo + 1 >= len(values):
            return float(values[lo])
        return values[lo] + frac * (values[lo + 1] - values[lo])

    def throughput(self, n_nodes: int) -> float:
        """Delivered flits per node per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.flits_delivered / (self.cycles * n_nodes)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / injected packets (1.0 once drained).

        Retransmissions do not re-count as injections, so a run that
        recovers every fault still reaches exactly 1.0; permanently lost
        packets (dead source/destination routers) keep it below 1.0.
        """
        if self.packets_injected == 0:
            return 1.0
        return self.packets_delivered / self.packets_injected

    @property
    def avg_recovery_latency(self) -> float:
        """Mean cycles from a packet's first abort to its final delivery."""
        if not self.recovery_latencies:
            return float("nan")
        return mean(self.recovery_latencies)

    def to_dict(self) -> dict:
        """JSON-safe dict with every counter (the result-cache format).

        Inverse of :meth:`from_dict`; the round trip is exact, so a
        cache-loaded run compares bit-identical to a fresh one.  Derived
        metrics (:data:`_DERIVED_KEYS`) ride along for consumers that
        read exports without this class; empty-latency runs serialize
        them as ``null``, never the invalid-JSON ``NaN``.
        """
        return {
            "avg_total_latency": _jsonable(self.avg_total_latency),
            "avg_network_latency": _jsonable(self.avg_network_latency),
            "p50_latency": _jsonable(self.latency_percentile(50)),
            "p95_latency": _jsonable(self.latency_percentile(95)),
            "p99_latency": _jsonable(self.latency_percentile(99)),
            "avg_recovery_latency": _jsonable(self.avg_recovery_latency),
            "delivery_ratio": _jsonable(self.delivery_ratio),
            "cycles": self.cycles,
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "flits_delivered": self.flits_delivered,
            "flit_moves": self.flit_moves,
            "latencies": [list(pair) for pair in self.latencies],
            "multicast_copies": self.multicast_copies,
            "deadlocked": self.deadlocked,
            "deadlock_declared_at": self.deadlock_declared_at,
            "faults_injected": self.faults_injected,
            "packets_aborted": self.packets_aborted,
            "retransmissions": self.retransmissions,
            "recovered_deadlocks": self.recovered_deadlocks,
            "packets_lost": self.packets_lost,
            "recovery_latencies": list(self.recovery_latencies),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Rebuild stats from :meth:`to_dict` output (JSON round-trip safe).

        Derived keys are recomputable views, not state — they are dropped
        so ``SimStats.from_dict(s.to_dict()) == s`` holds exactly.
        """
        fields = dict(data)
        for key in _DERIVED_KEYS:
            fields.pop(key, None)
        fields["latencies"] = [
            (int(t), int(n)) for t, n in fields.get("latencies", [])
        ]
        fields["recovery_latencies"] = [
            int(v) for v in fields.get("recovery_latencies", [])
        ]
        return cls(**fields)

    def summary(self, n_nodes: int) -> str:
        """One-line human-readable summary."""
        status = "DEADLOCK" if self.deadlocked else "ok"
        line = (
            f"[{status}] cycles={self.cycles} injected={self.packets_injected}"
            f" delivered={self.packets_delivered}"
            f" avg_lat={self.avg_total_latency:.1f}"
            f" thr={self.throughput(n_nodes):.4f} flits/node/cycle"
        )
        if self.faults_injected or self.packets_aborted or self.recovered_deadlocks:
            line += (
                f" faults={self.faults_injected} aborted={self.packets_aborted}"
                f" retx={self.retransmissions}"
                f" recovered={self.recovered_deadlocks} lost={self.packets_lost}"
            )
        return line
