"""Simulation statistics: latency, throughput, progress accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean


@dataclass
class SimStats:
    """Counters accumulated over a simulation run."""

    cycles: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    flit_moves: int = 0
    #: (total latency, network latency) per delivered packet.
    latencies: list[tuple[int, int]] = field(default_factory=list)
    #: Multicast copies absorbed at waypoints (path-based multicast).
    multicast_copies: int = 0
    deadlocked: bool = False
    deadlock_cycle: int | None = None

    def record_delivery(self, total: int, network: int, flits: int) -> None:
        self.packets_delivered += 1
        self.flits_delivered += flits
        self.latencies.append((total, network))

    @property
    def avg_total_latency(self) -> float:
        """Mean creation-to-delivery latency (cycles)."""
        if not self.latencies:
            return float("nan")
        return mean(t for t, _n in self.latencies)

    @property
    def avg_network_latency(self) -> float:
        """Mean injection-to-delivery latency (cycles)."""
        if not self.latencies:
            return float("nan")
        return mean(n for _t, n in self.latencies)

    @property
    def max_total_latency(self) -> int:
        return max((t for t, _n in self.latencies), default=0)

    def latency_percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of total latency."""
        if not self.latencies:
            return float("nan")
        values = sorted(t for t, _n in self.latencies)
        idx = min(len(values) - 1, max(0, round(q / 100 * (len(values) - 1))))
        return float(values[idx])

    def throughput(self, n_nodes: int) -> float:
        """Delivered flits per node per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.flits_delivered / (self.cycles * n_nodes)

    @property
    def delivery_ratio(self) -> float:
        """Delivered / injected packets (1.0 once drained)."""
        if self.packets_injected == 0:
            return 1.0
        return self.packets_delivered / self.packets_injected

    def summary(self, n_nodes: int) -> str:
        """One-line human-readable summary."""
        status = "DEADLOCK" if self.deadlocked else "ok"
        return (
            f"[{status}] cycles={self.cycles} injected={self.packets_injected}"
            f" delivered={self.packets_delivered}"
            f" avg_lat={self.avg_total_latency:.1f}"
            f" thr={self.throughput(n_nodes):.4f} flits/node/cycle"
        )
