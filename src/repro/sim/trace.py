"""Simulation tracing: per-event observability for debugging and teaching.

Attach a :class:`Trace` to a :class:`~repro.sim.network.NetworkSimulator`
and every interesting event — injection, VC allocation, flit movement,
ejection, multicast copies, deadlock declaration — is recorded with its
cycle.  :meth:`Trace.timeline` renders one packet's journey:

    #3 (0,0)->(2,1) len=4
      cycle   2: offered at (0, 0)
      cycle   3: VA -> X+@(0, 0)->(1, 0)
      cycle   3: head moves (0, 0) -> (1, 0) [X+]
      ...
      cycle  12: tail ejected at (2, 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.sim.flit import Flit, Packet
from repro.topology.base import Coord
from repro.topology.wires import Wire


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulator event."""

    cycle: int
    #: offered | allocated | moved | ejected | copy | deadlock
    #: | fault | abort | retransmit | recovered | rerouted
    kind: str
    pid: int | None
    detail: str
    #: The node the event lands at (movement target, ejection point...).
    node: Coord | None = None
    #: "head" / "body" / "tail" for flit events.
    role: str = ""

    def __str__(self) -> str:
        who = f"#{self.pid} " if self.pid is not None else ""
        return f"cycle {self.cycle:4d}: {who}{self.detail}"


class Trace:
    """Event recorder; pass as ``tracer=`` to :class:`NetworkSimulator`.

    ``capacity`` bounds memory: past it the oldest ~10% of events are
    evicted in one batch and counted in :attr:`dropped_events`, so
    queries over long runs can tell a complete history from a truncated
    one (:attr:`truncated`, and the warning line :meth:`timeline`
    prepends).
    """

    def __init__(self, capacity: int = 100_000) -> None:
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        #: Events evicted to honour ``capacity`` (0 = complete history).
        self.dropped_events = 0

    @property
    def truncated(self) -> bool:
        """Has any event been evicted?  Timelines may be incomplete."""
        return self.dropped_events > 0

    # -- hooks the simulator calls ---------------------------------------------

    def packet_offered(self, cycle: int, packet: Packet) -> None:
        self._add(
            cycle, "offered", packet.pid,
            f"offered at {packet.src} -> {packet.dst}", node=packet.src,
        )

    def allocated(self, cycle: int, router: Coord, pid: int, wire: Wire) -> None:
        self._add(cycle, "allocated", pid, f"VA at {router} -> {wire}", node=router)

    def flit_moved(self, cycle: int, flit: Flit, source, wire: Wire) -> None:
        role = "head" if flit.is_head else ("tail" if flit.is_tail else "body")
        origin = source.dst if isinstance(source, Wire) else source
        self._add(
            cycle, "moved", flit.pid,
            f"{role} moves {origin} -> {wire.dst} [{wire.channel}]",
            node=wire.dst, role=role,
        )

    def ejected(self, cycle: int, flit: Flit, node: Coord) -> None:
        role = "head" if flit.is_head else ("tail" if flit.is_tail else "body")
        self._add(cycle, "ejected", flit.pid, f"{role} ejected at {node}",
                  node=node, role=role)

    def copy_absorbed(self, cycle: int, pid: int, node: Coord) -> None:
        self._add(cycle, "copy", pid, f"multicast copy absorbed at {node}", node=node)

    def deadlock_declared(self, cycle: int) -> None:
        self._add(cycle, "deadlock", None, "watchdog declared deadlock")

    def fault_injected(self, cycle: int, description: str) -> None:
        self._add(cycle, "fault", None, f"fault injected: {description}")

    def packet_aborted(self, cycle: int, pid: int, reason: str) -> None:
        self._add(cycle, "abort", pid, f"aborted ({reason})")

    def packet_retransmitted(self, cycle: int, pid: int, src: Coord) -> None:
        self._add(cycle, "retransmit", pid, f"retransmitted from {src}", node=src)

    def deadlock_recovered(self, cycle: int, victim: int, wait_cycle: list[int]) -> None:
        self._add(
            cycle, "recovered", victim,
            f"cyclic wait {wait_cycle} broken: victim #{victim} aborted",
        )

    def rerouted(self, cycle: int, description: str) -> None:
        self._add(cycle, "rerouted", None, f"rerouted: {description}")

    def _add(
        self,
        cycle: int,
        kind: str,
        pid: int | None,
        detail: str,
        node: Coord | None = None,
        role: str = "",
    ) -> None:
        if len(self.events) >= self.capacity:
            # max(1, ...): tiny capacities must still evict — dropping
            # `capacity // 10 == 0` events would grow the list unboundedly.
            drop = max(1, self.capacity // 10)
            del self.events[:drop]
            self.dropped_events += drop
        self.events.append(TraceEvent(cycle, kind, pid, detail, node, role))

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """All events of one kind."""
        return [e for e in self.events if e.kind == kind]

    def for_packet(self, pid: int) -> list[TraceEvent]:
        """All events concerning one packet, in order."""
        return [e for e in self.events if e.pid == pid]

    def timeline(self, pid: int) -> str:
        """Human-readable journey of one packet.

        Warns when eviction may have cut the beginning of the journey.
        """
        events = self.for_packet(pid)
        if not events:
            return f"#{pid}: no events recorded"
        lines = [f"packet #{pid}:"]
        if self.truncated:
            lines.append(
                f"  (history truncated: {self.dropped_events} oldest events"
                " evicted; early hops may be missing)"
            )
        lines.extend(f"  {e}" for e in events)
        return "\n".join(lines)

    def hops_of(self, pid: int) -> list[Coord]:
        """The node sequence a packet's head visited."""
        return [
            e.node
            for e in self.for_packet(pid)
            if e.kind == "moved" and e.role == "head" and e.node is not None
        ]

    def render(self, *, kinds: Iterable[str] | None = None, limit: int = 200) -> str:
        """Flat listing of (optionally filtered) events."""
        wanted = set(kinds) if kinds else None
        shown = [
            str(e)
            for e in self.events
            if wanted is None or e.kind in wanted
        ]
        clipped = shown[:limit]
        if len(shown) > limit:
            clipped.append(f"... ({len(shown) - limit} more)")
        return "\n".join(clipped)

    def to_jsonl(self, path) -> int:
        """Export the trace as JSON Lines; returns the line count.

        One ``trace-meta`` record (capacity / retained / dropped
        accounting), then one ``trace`` record per retained event.
        Strict JSON throughout, loadable next to a metrics export.
        """
        import json

        meta = {
            "record": "trace-meta",
            "capacity": self.capacity,
            "events": len(self.events),
            "dropped_events": self.dropped_events,
        }
        with open(path, "w") as fh:
            fh.write(json.dumps(meta, allow_nan=False) + "\n")
            for e in self.events:
                record = {
                    "record": "trace",
                    "cycle": e.cycle,
                    "kind": e.kind,
                    "pid": e.pid,
                    "detail": e.detail,
                    "node": list(e.node) if e.node is not None else None,
                    "role": e.role,
                }
                fh.write(json.dumps(record, allow_nan=False) + "\n")
        return len(self.events) + 1
