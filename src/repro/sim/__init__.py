"""Cycle-based flit-level wormhole network simulator."""

from repro.sim.backend import (
    BackendInfo,
    backends,
    check_run_config,
    resolve_backend,
    simulator_class,
)
from repro.sim.buffers import WireState
from repro.sim.deadlock import (
    build_waitfor_graph,
    cycle_witness,
    held_wires,
    waitfor_cycle,
)
from repro.sim.faults import FaultEvent, FaultSchedule, RecoveryPolicy
from repro.sim.flit import Flit, Packet
from repro.sim.metrics import (
    DeadlockForensics,
    MetricsCollector,
    TimeSeries,
    load_metrics,
    render_forensics,
    render_heatmap,
    render_summary,
)
from repro.sim.network import NetworkSimulator
from repro.sim.patterns import (
    NAMED_PATTERNS,
    TrafficPattern,
    bit_complement,
    bit_reverse,
    hotspot,
    neighbor,
    rotate90,
    shuffle,
    tornado,
    transpose,
    uniform,
)
from repro.sim.parallel import (
    PointOutcome,
    ResultCache,
    SweepEngine,
    SweepReport,
    cache_key,
    default_cache_dir,
)
from repro.sim.runner import (
    RunConfig,
    RunResult,
    compare_table,
    run_point,
    saturation_rate,
    sweep_rates,
)
from repro.sim.specs import (
    NAMED_ROUTING_FACTORIES,
    EbdaDesignFactory,
    RoutingFactory,
    register_routing_factory,
    resolve_pattern,
    resolve_routing_factory,
    resolve_selection,
)
from repro.sim.stats import SimStats
from repro.sim.trace import Trace, TraceEvent
from repro.sim.traffic import ScriptedTraffic, TrafficConfig, TrafficGenerator
from repro.sim.vector import VectorSimulator

__all__ = [
    "BackendInfo",
    "backends",
    "check_run_config",
    "resolve_backend",
    "simulator_class",
    "WireState",
    "build_waitfor_graph",
    "cycle_witness",
    "held_wires",
    "waitfor_cycle",
    "FaultEvent",
    "FaultSchedule",
    "RecoveryPolicy",
    "Flit",
    "Packet",
    "DeadlockForensics",
    "MetricsCollector",
    "TimeSeries",
    "load_metrics",
    "render_forensics",
    "render_heatmap",
    "render_summary",
    "NetworkSimulator",
    "NAMED_PATTERNS",
    "TrafficPattern",
    "bit_complement",
    "bit_reverse",
    "hotspot",
    "neighbor",
    "rotate90",
    "shuffle",
    "tornado",
    "transpose",
    "uniform",
    "PointOutcome",
    "ResultCache",
    "SweepEngine",
    "SweepReport",
    "cache_key",
    "default_cache_dir",
    "RunConfig",
    "RunResult",
    "compare_table",
    "run_point",
    "saturation_rate",
    "sweep_rates",
    "NAMED_ROUTING_FACTORIES",
    "EbdaDesignFactory",
    "RoutingFactory",
    "register_routing_factory",
    "resolve_pattern",
    "resolve_routing_factory",
    "resolve_selection",
    "SimStats",
    "Trace",
    "TraceEvent",
    "ScriptedTraffic",
    "TrafficConfig",
    "TrafficGenerator",
    "VectorSimulator",
]
