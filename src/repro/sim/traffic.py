"""Traffic generation: Bernoulli injection processes over a pattern."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError
from repro.sim.flit import Packet
from repro.sim.patterns import TrafficPattern, uniform
from repro.topology.base import Coord, Topology


@dataclass
class TrafficConfig:
    """Injection process parameters.

    Attributes
    ----------
    injection_rate:
        Probability a node creates a packet each cycle (flit-normalised
        rates are ``injection_rate * packet_length`` flits/node/cycle).
    packet_length:
        Flits per packet.
    pattern:
        Destination pattern (default uniform random).
    seed:
        RNG seed; every simulation is reproducible given the seed.
    """

    injection_rate: float = 0.05
    packet_length: int = 4
    pattern: TrafficPattern = uniform
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.injection_rate <= 1.0:
            raise SimulationError("injection_rate must be in [0, 1]")
        if self.packet_length < 1:
            raise SimulationError("packet_length must be >= 1")


class TrafficGenerator:
    """Creates packets cycle by cycle according to a :class:`TrafficConfig`."""

    def __init__(self, topology: Topology, config: TrafficConfig) -> None:
        self.topology = topology
        self.config = config
        self.rng = random.Random(config.seed)
        self._next_pid = 0

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        """Packets created in this cycle (possibly none).

        Self-addressed destinations are re-rolled for random patterns and
        skipped for deterministic ones (a node that maps to itself simply
        stays silent, as is conventional for permutation patterns).
        """
        created: list[Packet] = []
        endpoints = self.topology.endpoints
        # Locals hoisted out of the per-endpoint loop: this runs every
        # cycle for every node and is shared overhead for both backends.
        roll = self.rng.random
        rate = self.config.injection_rate
        pattern = self.config.pattern
        rng = self.rng
        node_set = self.topology.node_set
        length = self.config.packet_length
        pid = self._next_pid
        for node in endpoints:
            if roll() >= rate:
                continue
            dst = pattern(node, endpoints, rng)
            if dst == node:
                continue
            if dst not in node_set:
                raise SimulationError(f"pattern produced unknown node {dst}")
            created.append(
                Packet(pid=pid, src=node, dst=dst, length=length, created=cycle)
            )
            pid += 1
        self._next_pid = pid
        return created


class ScriptedTraffic:
    """Deterministic packet script for unit tests and deadlock setups.

    ``script`` maps a cycle to the (src, dst, length) packets created then.
    The script round-trips through :meth:`to_dict`/:meth:`from_dict`
    (mirroring :class:`~repro.sim.stats.SimStats`), so a scripted scenario
    can be stored as plain JSON and replayed exactly — pids included,
    since they are assigned in script order.
    """

    def __init__(self, script: dict[int, Sequence[tuple[Coord, Coord, int]]]) -> None:
        self.script = {
            int(cycle): [
                (tuple(src), tuple(dst), int(length)) for src, dst, length in entries
            ]
            for cycle, entries in script.items()
        }
        self._next_pid = 0

    def packets_for_cycle(self, cycle: int) -> list[Packet]:
        created: list[Packet] = []
        for src, dst, length in self.script.get(cycle, ()):
            created.append(
                Packet(pid=self._next_pid, src=src, dst=dst, length=length, created=cycle)
            )
            self._next_pid += 1
        return created

    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict` (exact round trip).

        Cycles serialize as string keys (JSON objects have no int keys),
        in sorted order so equal scripts always produce equal dicts.
        """
        return {
            "script": {
                str(cycle): [
                    [list(src), list(dst), length]
                    for src, dst, length in self.script[cycle]
                ]
                for cycle in sorted(self.script)
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScriptedTraffic":
        """Rebuild a script from :meth:`to_dict` output (JSON round-trip safe)."""
        try:
            script = data["script"]
        except (KeyError, TypeError):
            raise SimulationError(
                "scripted-traffic dict needs a 'script' mapping"
            ) from None
        return cls(
            {
                int(cycle): [
                    (tuple(src), tuple(dst), int(length))
                    for src, dst, length in entries
                ]
                for cycle, entries in script.items()
            }
        )
