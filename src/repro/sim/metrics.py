"""Network telemetry: sampled metrics, structured export, deadlock forensics.

The simulator's aggregate :class:`~repro.sim.stats.SimStats` says *how* a
run went; this module shows *where* and *when*.  A :class:`MetricsCollector`
attached to a :class:`~repro.sim.network.NetworkSimulator` (``metrics=``)
is fed by three cheap cycle-loop hooks — all of them no-ops when no
collector is attached — and samples, every ``sample_every`` cycles:

* per-channel (wire) link utilization, as windowed :class:`TimeSeries`
  ring buffers plus cumulative flit/occupancy counters;
* per-router buffer occupancy and VC-allocation stall counts;
* global throughput, buffered flits, injection-queue depth and
  packets in flight.

Channels roll up by **EbDa partition** (:meth:`MetricsCollector.heatmap`),
so congestion can be read against the theory's partition structure: a
saturated ``PB`` with an idle ``PA`` is visible at a glance.

When the watchdog declares deadlock the collector freezes a
:class:`DeadlockForensics` report: the cyclic-wait witness (packet ids
and the channels each participant holds), every blocked packet's
description and trace tail, and the buffer occupancy at declaration time.

Everything exports as JSON Lines (:meth:`MetricsCollector.to_jsonl`; the
schema is documented in ``docs/OBSERVABILITY.md``) or CSV, and the
``repro inspect`` CLI renders summaries, heatmaps and forensics back out
of an exported file via :func:`load_metrics` / :func:`render_summary` /
:func:`render_heatmap` / :func:`render_forensics`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import EbdaError, SimulationError
from repro.topology.wires import Wire

if TYPE_CHECKING:
    from repro.sim.network import NetworkSimulator
    from repro.sim.stats import SimStats
    from repro.topology.base import Coord

__all__ = [
    "METRICS_SCHEMA",
    "DeadlockForensics",
    "MetricsCollector",
    "TimeSeries",
    "load_metrics",
    "render_forensics",
    "render_heatmap",
    "render_summary",
]

#: Bump when the JSONL record layout changes incompatibly.
METRICS_SCHEMA = 1

#: Utilization shade ramp for text heatmaps (cold -> hot).
_SHADES = " .:-=+*#%@"


def _finite(value: float) -> float | None:
    """NaN/inf -> None so every exported record is strict JSON."""
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value


class TimeSeries:
    """A fixed-capacity ring buffer of ``(cycle, value)`` samples.

    Appends past ``capacity`` evict the oldest sample and count it in
    :attr:`dropped`, so consumers can tell a short history from a
    truncated one.
    """

    __slots__ = ("name", "capacity", "_cycles", "_values", "dropped")

    def __init__(self, name: str, capacity: int = 512) -> None:
        if capacity < 1:
            raise SimulationError("TimeSeries capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._cycles: deque[int] = deque(maxlen=capacity)
        self._values: deque[float] = deque(maxlen=capacity)
        #: Samples evicted to honour ``capacity``.
        self.dropped = 0

    def append(self, cycle: int, value: float) -> None:
        if len(self._cycles) == self.capacity:
            self.dropped += 1
        self._cycles.append(cycle)
        self._values.append(value)

    @property
    def cycles(self) -> list[int]:
        return list(self._cycles)

    @property
    def values(self) -> list[float]:
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[tuple[int, float]]:
        return iter(zip(self._cycles, self._values))

    def last(self) -> float | None:
        return self._values[-1] if self._values else None

    def mean(self) -> float | None:
        if not self._values:
            return None
        return sum(self._values) / len(self._values)

    def max(self) -> float | None:
        return max(self._values) if self._values else None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cycles": self.cycles,
            "values": [(_finite(v) if isinstance(v, float) else v) for v in self._values],
            "dropped": self.dropped,
        }

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}, {len(self)} samples)"


@dataclass
class _ChannelCounters:
    """Cumulative per-wire accounting (updated at each sample)."""

    flits: int = 0
    occupancy_sum: int = 0
    occupancy_peak: int = 0
    samples: int = 0

    @property
    def avg_occupancy(self) -> float:
        return self.occupancy_sum / self.samples if self.samples else 0.0


@dataclass
class _RouterCounters:
    """Cumulative per-router accounting (updated at each sample)."""

    buffered_sum: int = 0
    buffered_peak: int = 0
    samples: int = 0
    vc_stalls: int = 0

    @property
    def avg_buffered(self) -> float:
        return self.buffered_sum / self.samples if self.samples else 0.0


@dataclass
class BlockedPacket:
    """One participant of a deadlock's cyclic wait, at declaration time."""

    pid: int
    src: "Coord"
    dst: "Coord"
    length: int
    age: int
    #: Wires the packet owns or occupies (the resources the cycle needs).
    holds: list[str]
    #: The next participant in the cyclic wait this packet is blocked on.
    waits_on: int
    #: Last trace events for this packet (empty without a tracer).
    trace_tail: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "src": list(self.src),
            "dst": list(self.dst),
            "length": self.length,
            "age": self.age,
            "holds": self.holds,
            "waits_on": self.waits_on,
            "trace_tail": self.trace_tail,
        }


@dataclass
class DeadlockForensics:
    """Snapshot of a watchdog-declared deadlock, for post-mortem analysis."""

    declared_at: int
    #: Packet ids forming the cyclic wait (witness order).
    wait_cycle: list[int]
    #: ``witness_channels[i]`` = wires ``wait_cycle[i]`` holds.
    witness_channels: list[list[str]]
    blocked: list[BlockedPacket]
    #: wire -> buffered flits at declaration (non-empty buffers only).
    buffer_occupancy: dict[str, int]

    def to_dict(self) -> dict:
        return {
            "record": "forensics",
            "declared_at": self.declared_at,
            "wait_cycle": self.wait_cycle,
            "witness_channels": self.witness_channels,
            "blocked": [b.to_dict() for b in self.blocked],
            "buffer_occupancy": self.buffer_occupancy,
        }

    def render(self) -> str:
        return render_forensics([self.to_dict()])


class MetricsCollector:
    """Samples a live simulator into time-series and cumulative counters.

    Pass as ``metrics=`` to :class:`~repro.sim.network.NetworkSimulator`
    (or set ``RunConfig(metrics=True)``).  One collector observes exactly
    one simulator; binding it twice raises.

    Parameters
    ----------
    sample_every:
        Sampling interval in cycles.
    series_capacity:
        Ring-buffer length of every :class:`TimeSeries` (oldest samples
        are evicted past it, counted in ``TimeSeries.dropped``).
    trace_tail:
        Trace events kept per blocked packet in a forensics report
        (requires a ``tracer`` on the simulator to be non-empty).
    """

    def __init__(
        self,
        sample_every: int = 100,
        *,
        series_capacity: int = 512,
        trace_tail: int = 10,
    ) -> None:
        if sample_every < 1:
            raise SimulationError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = sample_every
        self.series_capacity = series_capacity
        self.trace_tail = trace_tail

        self._sim: "NetworkSimulator | None" = None
        self.cycles_observed = 0
        self.samples_taken = 0
        self._last_sample_cycle = 0
        self._last_flits_delivered = 0
        self._last_flit_moves = 0
        self._window_stalls = 0
        self.total_vc_stalls = 0

        #: Global sampled series, appended in lockstep every sample.
        self.series: dict[str, TimeSeries] = {
            name: TimeSeries(name, series_capacity)
            for name in (
                "throughput",
                "flit_moves",
                "buffered_flits",
                "injection_depth",
                "packets_in_flight",
                "vc_stalls",
                "mean_link_utilization",
                "max_link_utilization",
            )
        }
        #: Per-wire windowed-utilization series (created lazily per wire).
        self.channel_series: dict[Wire, TimeSeries] = {}
        self._channels: dict[Wire, _ChannelCounters] = {}
        self._last_carried: dict[Wire, int] = {}
        self._routers: dict["Coord", _RouterCounters] = {}
        #: channel-class string -> partition name (EbDa designs only).
        self.partition_of: dict[str, str] = {}
        self.forensics: DeadlockForensics | None = None
        self._meta: dict = {}

    # -- simulator hooks (cheap; the simulator guards on `metrics is not None`) --

    def bind(self, sim: "NetworkSimulator") -> None:
        """Attach to a simulator (called from ``NetworkSimulator.__init__``)."""
        if self._sim is not None or self._meta:
            raise SimulationError(
                "a MetricsCollector observes exactly one simulator;"
                " create a fresh collector per run"
            )
        self._sim = sim
        design = getattr(sim.routing, "design", None)
        if design is not None:
            for i, part in enumerate(design.partitions):
                name = part.name or f"P{i}"
                for ch in part:
                    self.partition_of[str(ch)] = name
        self._meta = {
            "record": "meta",
            "schema": METRICS_SCHEMA,
            "generator": "repro.sim.metrics",
            "topology": repr(sim.topology),
            "shape": list(getattr(sim.topology, "shape", ())) or None,
            "n_nodes": len(sim.topology.nodes),
            "routing": sim.routing.name,
            "sample_every": self.sample_every,
            "series_capacity": self.series_capacity,
        }
        for node in sim.topology.nodes:
            self._routers[node] = _RouterCounters()
        for wire in sim.wires:
            self._channels[wire] = _ChannelCounters()
            self._last_carried[wire] = 0

    def on_cycle(self, sim: "NetworkSimulator", moves: int) -> None:
        """End-of-cycle hook; samples when the interval elapses."""
        self.cycles_observed += 1
        if sim.cycle % self.sample_every:
            return
        self._sample(sim)

    def note_vc_stall(self, router: "Coord") -> None:
        """A head (or injection) found no free output wire this cycle."""
        self._window_stalls += 1
        self.total_vc_stalls += 1
        counters = self._routers.get(router)
        if counters is None:
            counters = self._routers[router] = _RouterCounters()
        counters.vc_stalls += 1

    def on_deadlock(self, sim: "NetworkSimulator") -> None:
        """Watchdog hook: freeze the forensics snapshot."""
        if self.forensics is not None:
            return
        from repro.sim.deadlock import cycle_witness, held_wires

        witness = cycle_witness(sim)
        pids: list[int] = []
        held: list[list[str]] = []
        if witness is not None:
            pids = list(witness[0])
            held = [[str(w) for w in wires] for wires in witness[1]]
        blocked: list[BlockedPacket] = []
        for i, pid in enumerate(pids):
            packet = sim._find_packet(pid)
            if packet is None:  # pragma: no cover - witness pids are in flight
                continue
            tail: list[str] = []
            if sim.tracer is not None:
                tail = [str(e) for e in sim.tracer.for_packet(pid)[-self.trace_tail:]]
            blocked.append(
                BlockedPacket(
                    pid=pid,
                    src=packet.src,
                    dst=packet.dst,
                    length=packet.length,
                    age=sim.cycle - packet.created,
                    holds=[str(w) for w in held_wires(sim, pid)],
                    waits_on=pids[(i + 1) % len(pids)],
                    trace_tail=tail,
                )
            )
        occupancy = {
            str(wire): ws.occupancy
            for wire, ws in sim.state.items()
            if ws.occupancy
        }
        self.forensics = DeadlockForensics(
            declared_at=sim.cycle,
            wait_cycle=pids,
            witness_channels=held,
            blocked=blocked,
            buffer_occupancy=occupancy,
        )

    # -- sampling ---------------------------------------------------------------

    def _sample(self, sim: "NetworkSimulator") -> None:
        cycle = sim.cycle
        window = cycle - self._last_sample_cycle
        if window <= 0:
            return
        stats = sim.stats
        delivered_delta = stats.flits_delivered - self._last_flits_delivered
        moves_delta = stats.flit_moves - self._last_flit_moves
        n_nodes = self._meta.get("n_nodes") or len(sim.topology.nodes)

        utils: list[float] = []
        buffered = 0
        router_occ: dict["Coord", int] = {}
        for wire, ws in sim.state.items():
            counters = self._channels.get(wire)
            if counters is None:  # wire added by a fault-triggered reroute
                counters = self._channels[wire] = _ChannelCounters()
                self._last_carried[wire] = 0
            carried_delta = ws.flits_carried - self._last_carried[wire]
            self._last_carried[wire] = ws.flits_carried
            counters.flits += carried_delta
            occ = ws.occupancy
            counters.occupancy_sum += occ
            if occ > counters.occupancy_peak:
                counters.occupancy_peak = occ
            counters.samples += 1
            util = carried_delta / window
            utils.append(util)
            series = self.channel_series.get(wire)
            if series is None:
                series = self.channel_series[wire] = TimeSeries(
                    str(wire), self.series_capacity
                )
            series.append(cycle, util)
            buffered += occ
            router_occ[wire.dst] = router_occ.get(wire.dst, 0) + occ

        for node, occ in router_occ.items():
            counters = self._routers.get(node)
            if counters is None:
                counters = self._routers[node] = _RouterCounters()
            counters.buffered_sum += occ
            if occ > counters.buffered_peak:
                counters.buffered_peak = occ
        for counters in self._routers.values():
            counters.samples += 1

        injection_depth = sum(len(q) for q in sim.source_queues.values())
        injection_depth += sum(
            1 for inj in sim._injecting.values() if inj is not None
        )

        append = lambda name, value: self.series[name].append(cycle, value)  # noqa: E731
        append("throughput", delivered_delta / (window * n_nodes))
        append("flit_moves", moves_delta)
        append("buffered_flits", buffered)
        append("injection_depth", injection_depth)
        append("packets_in_flight", sim.packets_in_flight())
        append("vc_stalls", self._window_stalls)
        append("mean_link_utilization", sum(utils) / len(utils) if utils else 0.0)
        append("max_link_utilization", max(utils, default=0.0))

        self._window_stalls = 0
        self._last_sample_cycle = cycle
        self._last_flits_delivered = stats.flits_delivered
        self._last_flit_moves = stats.flit_moves
        self.samples_taken += 1

    def finalize(self) -> None:
        """Take a final partial-window sample and detach from the simulator.

        Called automatically by :func:`repro.sim.runner.run_point` (and by
        :meth:`records`); makes the collector a plain picklable value that
        no longer references live simulator state.
        """
        sim = self._sim
        if sim is None:
            return
        if sim.cycle > self._last_sample_cycle:
            self._sample(sim)
        self._meta["cycles"] = self.cycles_observed
        self._sim = None

    # -- derived views ----------------------------------------------------------

    def partition_name(self, wire: Wire) -> str:
        """The EbDa partition of a wire's channel (the channel itself when
        the routing function carries no partition sequence)."""
        return self.partition_of.get(str(wire.channel), str(wire.channel))

    def utilization_of(self, wire: Wire) -> float:
        """Cumulative utilization: flits carried per observed cycle."""
        if not self.cycles_observed:
            return 0.0
        counters = self._channels.get(wire)
        return counters.flits / self.cycles_observed if counters else 0.0

    def hottest_channels(self, n: int = 5) -> list[tuple[Wire, float]]:
        """The ``n`` busiest wires by cumulative utilization, descending."""
        ranked = sorted(
            ((w, self.utilization_of(w)) for w in self._channels),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:n]

    def heatmap(self) -> dict[str, dict]:
        """Per-EbDa-partition congestion rollup.

        Maps partition name to its member channel classes, wire count,
        mean/max utilization and the hottest member wires — congestion
        read against the theory's partition structure.
        """
        groups: dict[str, list[tuple[Wire, float]]] = {}
        for wire in self._channels:
            groups.setdefault(self.partition_name(wire), []).append(
                (wire, self.utilization_of(wire))
            )
        out: dict[str, dict] = {}
        for name in sorted(groups):
            members = groups[name]
            utils = [u for _w, u in members]
            hottest = sorted(members, key=lambda item: (-item[1], item[0]))[:5]
            out[name] = {
                "channels": sorted({str(w.channel) for w, _u in members}),
                "wires": len(members),
                "mean_utilization": sum(utils) / len(utils),
                "max_utilization": max(utils),
                "hottest": [(str(w), u) for w, u in hottest],
            }
        return out

    def summary_dict(self) -> dict:
        """Compact JSON-safe summary (attached per point to SweepReports)."""
        hottest = self.hottest_channels(1)
        return {
            "cycles": self.cycles_observed,
            "samples": self.samples_taken,
            "sample_every": self.sample_every,
            "vc_stalls": self.total_vc_stalls,
            "mean_link_utilization": _finite(
                self.series["mean_link_utilization"].mean() or 0.0
            ),
            "max_link_utilization": _finite(
                self.series["max_link_utilization"].max() or 0.0
            ),
            "hottest_channel": str(hottest[0][0]) if hottest else None,
            "deadlock": self.forensics is not None,
        }

    # -- export -----------------------------------------------------------------

    def records(self, stats: "SimStats | None" = None) -> list[dict]:
        """Every telemetry record, in JSONL order (meta first).

        Finalizes the collector (final partial sample, detach) first, so
        cumulative counters are exact as of the last simulated cycle.
        """
        self.finalize()
        meta = dict(self._meta) or {"record": "meta", "schema": METRICS_SCHEMA}
        meta["cycles"] = self.cycles_observed
        meta["samples"] = self.samples_taken
        meta["n_channels"] = len(self._channels)
        meta["n_routers"] = len(self._routers)
        partitions: dict[str, list[str]] = {}
        for wire in self._channels:
            partitions.setdefault(self.partition_name(wire), [])
        for ch, part in self.partition_of.items():
            partitions.setdefault(part, []).append(ch)
        meta["partitions"] = {
            name: sorted(set(chs)) for name, chs in sorted(partitions.items())
        }
        out: list[dict] = [meta]

        names = list(self.series)
        lockstep = list(zip(*(self.series[n] for n in names)))
        for row in lockstep:
            cycle = row[0][0]
            record = {"record": "sample", "cycle": cycle}
            for name, (_c, value) in zip(names, row):
                record[name] = _finite(value) if isinstance(value, float) else value
            out.append(record)

        for wire in sorted(self._channels):
            counters = self._channels[wire]
            series = self.channel_series.get(wire)
            out.append(
                {
                    "record": "channel",
                    "wire": str(wire),
                    "channel": str(wire.channel),
                    "partition": self.partition_name(wire),
                    "src": list(wire.src),
                    "dst": list(wire.dst),
                    "flits": counters.flits,
                    "utilization": _finite(self.utilization_of(wire)),
                    "avg_occupancy": _finite(counters.avg_occupancy),
                    "peak_occupancy": counters.occupancy_peak,
                    "series": {
                        "cycles": series.cycles if series else [],
                        "values": [_finite(v) for v in series.values]
                        if series
                        else [],
                        "dropped": series.dropped if series else 0,
                    },
                }
            )

        for node in sorted(self._routers):
            counters = self._routers[node]
            out.append(
                {
                    "record": "router",
                    "node": list(node),
                    "avg_buffered": _finite(counters.avg_buffered),
                    "peak_buffered": counters.buffered_peak,
                    "vc_stalls": counters.vc_stalls,
                }
            )

        if stats is not None:
            out.append({"record": "stats", **stats.to_dict()})
        if self.forensics is not None:
            out.append(self.forensics.to_dict())
        return out

    def to_jsonl(self, path, stats: "SimStats | None" = None) -> int:
        """Write every record as strict JSON Lines; returns the line count."""
        records = self.records(stats)
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record, allow_nan=False) + "\n")
        return len(records)

    def to_csv(self, path) -> int:
        """Write the global sampled series as CSV; returns the row count."""
        import csv

        names = list(self.series)
        rows = list(zip(*(self.series[n] for n in names)))
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["cycle"] + names)
            for row in rows:
                writer.writerow([row[0][0]] + [value for _c, value in row])
        return len(rows)

    # -- rendering --------------------------------------------------------------

    def summary(self, stats: "SimStats | None" = None) -> str:
        """Human-readable telemetry report."""
        return render_summary(self.records(stats))

    def render_heatmap(self) -> str:
        """Per-partition channel-utilization heatmap (text)."""
        return render_heatmap(self.records())


# -- reading and rendering exported telemetry ------------------------------------


def _reject_constant(token: str) -> float:
    raise ValueError(f"non-strict JSON constant {token!r} in metrics file")


def load_metrics(path) -> list[dict]:
    """Load a JSONL telemetry export back into its record dicts.

    Strict: rejects ``NaN``/``Infinity`` tokens, non-object lines, and
    files whose leading record is not a compatible ``meta`` record.
    """
    records: list[dict] = []
    try:
        fh = open(path)
    except OSError as exc:
        raise EbdaError(f"cannot read metrics file {path}: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line, parse_constant=_reject_constant)
            except ValueError as exc:
                raise EbdaError(f"{path}:{lineno}: not strict JSON: {exc}") from exc
            if not isinstance(record, dict) or "record" not in record:
                raise EbdaError(f"{path}:{lineno}: not a telemetry record")
            records.append(record)
    if not records or records[0].get("record") != "meta":
        raise EbdaError(f"{path}: missing leading meta record")
    if records[0].get("schema") != METRICS_SCHEMA:
        raise EbdaError(
            f"{path}: schema {records[0].get('schema')!r} unsupported"
            f" (expected {METRICS_SCHEMA})"
        )
    return records


def _of_kind(records: list[dict], kind: str) -> list[dict]:
    return [r for r in records if r.get("record") == kind]


def _meta(records: list[dict]) -> dict:
    found = _of_kind(records, "meta")
    return found[0] if found else {}


def render_summary(records: list[dict]) -> str:
    """Text summary of a telemetry export (or a live collector's records)."""
    meta = _meta(records)
    samples = _of_kind(records, "sample")
    channels = _of_kind(records, "channel")
    stats = _of_kind(records, "stats")
    forensics = _of_kind(records, "forensics")

    lines = ["telemetry summary"]
    lines.append(
        f"  topology {meta.get('topology', '?')}"
        f" ({meta.get('n_nodes', '?')} nodes), routing {meta.get('routing', '?')}"
    )
    lines.append(
        f"  {meta.get('cycles', 0)} cycles, {len(samples)} samples every"
        f" {meta.get('sample_every', '?')} cycles,"
        f" {len(channels)} channels / {meta.get('n_routers', '?')} routers"
    )

    def col(name: str) -> list[float]:
        return [s[name] for s in samples if s.get(name) is not None]

    if samples:
        thr = col("throughput")
        lines.append(
            f"  throughput: mean {sum(thr) / len(thr):.4f}"
            f" max {max(thr):.4f} flits/node/cycle"
        )
        buf = col("buffered_flits")
        lines.append(
            f"  buffered flits: mean {sum(buf) / len(buf):.1f} peak {max(buf)}"
        )
        inj = col("injection_depth")
        lines.append(
            f"  injection depth: mean {sum(inj) / len(inj):.1f} peak {max(inj)}"
        )
        lines.append(f"  VC-allocation stalls: {sum(col('vc_stalls'))}")
        mean_u = col("mean_link_utilization")
        max_u = col("max_link_utilization")
        lines.append(
            f"  link utilization: mean {sum(mean_u) / len(mean_u):.3f}"
            f" max {max(max_u):.3f}"
        )
    else:
        lines.append("  (no samples taken)")

    if channels:
        hottest = sorted(
            channels, key=lambda c: -(c.get("utilization") or 0.0)
        )[:5]
        lines.append("  hottest channels:")
        for c in hottest:
            lines.append(
                f"    {c['wire']:28s} [{c['partition']}]"
                f" util {c.get('utilization') or 0.0:.3f} flits {c['flits']}"
            )
    if stats:
        s = stats[0]
        lines.append(
            f"  run: injected {s.get('packets_injected')}"
            f" delivered {s.get('packets_delivered')}"
            f" deadlocked {s.get('deadlocked')}"
        )
    if forensics:
        f = forensics[0]
        lines.append(
            f"  DEADLOCK declared at cycle {f['declared_at']}"
            f" — {len(f['wait_cycle'])} packets in the cyclic wait"
            " (see forensics)"
        )
    return "\n".join(lines)


def _shade(value: float, top: float) -> str:
    if top <= 0:
        return _SHADES[0]
    idx = int(round(value / top * (len(_SHADES) - 1)))
    return _SHADES[max(0, min(len(_SHADES) - 1, idx))]


def render_heatmap(records: list[dict]) -> str:
    """Per-partition utilization heatmap of an exported telemetry file.

    On 2D topologies each channel class renders as a grid over source
    coordinates (shade ramp ``{ramp}``, scaled to the hottest wire);
    other topologies list each partition's hottest wires.
    """
    meta = _meta(records)
    channels = _of_kind(records, "channel")
    if not channels:
        return "(no channel records)"
    top = max((c.get("utilization") or 0.0) for c in channels)
    by_partition: dict[str, list[dict]] = {}
    for c in channels:
        by_partition.setdefault(c["partition"], []).append(c)

    shape = meta.get("shape")
    lines = [
        "channel utilization heatmap"
        f" (flits/cycle per wire; '{_SHADES[-1]}' = {top:.3f})"
    ]
    for name in sorted(by_partition):
        members = by_partition[name]
        utils = [c.get("utilization") or 0.0 for c in members]
        classes = sorted({c["channel"] for c in members})
        lines.append(
            f"partition {name} ({' '.join(classes)}): {len(members)} wires,"
            f" mean {sum(utils) / len(utils):.3f} max {max(utils):.3f}"
        )
        if shape and len(shape) == 2:
            for cls in classes:
                grid = {
                    tuple(c["src"]): (c.get("utilization") or 0.0)
                    for c in members
                    if c["channel"] == cls
                }
                lines.append(f"  {cls} (rows y={shape[1] - 1}..0, cols x=0..{shape[0] - 1}):")
                for y in range(shape[1] - 1, -1, -1):
                    row = "".join(
                        _shade(grid[(x, y)], top) if (x, y) in grid else "_"
                        for x in range(shape[0])
                    )
                    lines.append(f"    |{row}|")
        else:
            hottest = sorted(
                members, key=lambda c: -(c.get("utilization") or 0.0)
            )[:5]
            for c in hottest:
                lines.append(
                    f"  {c['wire']:28s} util {c.get('utilization') or 0.0:.3f}"
                )
    return "\n".join(lines)


render_heatmap.__doc__ = render_heatmap.__doc__.format(ramp=_SHADES)


def render_forensics(records: list[dict]) -> str:
    """Text report of the deadlock forensics record, if any."""
    forensics = _of_kind(records, "forensics")
    if not forensics:
        return "(no deadlock forensics recorded)"
    f = forensics[0]
    lines = [f"deadlock forensics — declared at cycle {f['declared_at']}"]
    pids = f["wait_cycle"]
    if pids:
        chain = " -> ".join(f"#{p}" for p in pids) + f" -> #{pids[0]}"
        lines.append(f"cyclic wait: {chain}")
    else:
        lines.append("cyclic wait: (no witness extracted)")
    for b in f["blocked"]:
        lines.append(
            f"  #{b['pid']} {tuple(b['src'])}->{tuple(b['dst'])}"
            f" len={b['length']} age={b['age']} waits on #{b['waits_on']}"
        )
        if b["holds"]:
            lines.append(f"    holds: {', '.join(b['holds'])}")
        for event in b.get("trace_tail", []):
            lines.append(f"    {event}")
    if f["buffer_occupancy"]:
        lines.append("blocked buffers at declaration:")
        for wire, occ in sorted(f["buffer_occupancy"].items()):
            lines.append(f"  {wire}: {occ} flit(s)")
    return "\n".join(lines)
