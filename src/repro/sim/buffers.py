"""Per-wire buffer and ownership state.

Each :class:`~repro.topology.wires.Wire` (one VC on one link) owns one
FIFO input buffer at its downstream router plus a wormhole ownership slot.
Ownership marks the packet that won virtual-channel allocation for the
wire; its release point distinguishes the two buffer disciplines:

* **relaxed** (EbDa, default) — released when the tail flit *enters* the
  buffer: several packets may queue in one buffer back to back;
* **atomic** (Duato's Assumption 3) — released when the tail flit *leaves*
  the buffer: a buffer holds flits of at most one packet.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.flit import Flit
from repro.topology.wires import Wire


@dataclass
class WireState:
    """Runtime state of one wire."""

    wire: Wire
    capacity: int
    buffer: deque[Flit] = field(default_factory=deque)
    #: Arrival cycle of each buffered flit (parallel to ``buffer``), used
    #: to model the router pipeline depth.
    arrivals: deque[int] = field(default_factory=deque)
    #: Packet currently holding VC allocation on this wire (None = free).
    owner: int | None = None
    #: Total flits that ever entered this wire (utilization accounting).
    flits_carried: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError("buffers need capacity >= 1")

    @property
    def free_slots(self) -> int:
        """Space available for arriving flits."""
        return self.capacity - len(self.buffer)

    @property
    def occupancy(self) -> int:
        return len(self.buffer)

    def front(self) -> Flit | None:
        """The flit at the head of the FIFO, if any."""
        return self.buffer[0] if self.buffer else None

    def push(self, flit: Flit, cycle: int = 0) -> None:
        """Accept an arriving flit (caller checked space)."""
        if self.free_slots <= 0:
            raise SimulationError(f"buffer overflow on {self.wire}")
        self.buffer.append(flit)
        self.arrivals.append(cycle)
        self.flits_carried += 1

    def pop(self) -> Flit:
        """Remove and return the front flit."""
        if not self.buffer:
            raise SimulationError(f"pop from empty buffer on {self.wire}")
        self.arrivals.popleft()
        return self.buffer.popleft()

    def front_ready(self, cycle: int, pipeline_delay: int) -> bool:
        """Has the front flit finished the router pipeline?

        A flit arriving in cycle ``t`` may depart in cycle
        ``t + 1 + pipeline_delay`` at the earliest (one cycle of link
        traversal plus the configured pipeline depth).
        """
        if not self.buffer:
            return False
        return cycle >= self.arrivals[0] + 1 + pipeline_delay

    def packets_present(self) -> tuple[int, ...]:
        """Distinct packet ids currently buffered, front to back."""
        seen: list[int] = []
        for flit in self.buffer:
            if flit.pid not in seen:
                seen.append(flit.pid)
        return tuple(seen)
