"""Packets and flits (wormhole switching, Assumptions 1-2).

Wormhole switching splits a packet into flow-control units (*flits*): one
head flit carrying the route, body flits, and a tail flit that releases
resources.  Packets can have arbitrary length (Assumption 2) and, in the
library's default (EbDa-relaxed) mode, multiple packets may occupy one
buffer — the assumption that distinguishes EbDa from Duato's theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.topology.base import Coord


@dataclass
class Packet:
    """One message injected into the network.

    Attributes
    ----------
    pid:
        Unique packet id (monotone per simulation).
    src, dst:
        Source and destination routers.
    length:
        Number of flits (>= 1; a single-flit packet is its own head and tail).
    created:
        Cycle the packet entered the source queue.
    entered:
        Cycle the head flit left the source queue (None until then).
    delivered:
        Cycle the tail flit was consumed at the destination (None until then).
    waypoints:
        For path-based multicast: intermediate destinations, in visit
        order; each absorbs a copy of the packet as the worm passes
        through (``dst`` stays the final stop).  Empty for unicast.
    copies:
        Waypoints whose copy has been fully delivered (tail passed).
    """

    pid: int
    src: Coord
    dst: Coord
    length: int
    created: int
    entered: int | None = None
    delivered: int | None = None
    waypoints: tuple[Coord, ...] = ()
    copies: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("packets need at least one flit")
        if self.dst in self.waypoints or self.src in self.waypoints:
            raise ValueError("waypoints must exclude the source and final destination")

    @property
    def destinations(self) -> tuple[Coord, ...]:
        """All delivery points: waypoints then the final destination."""
        return self.waypoints + (self.dst,)

    def flits(self) -> Iterator["Flit"]:
        """Generate the packet's flits in order."""
        for seq in range(self.length):
            yield Flit(
                packet=self,
                seq=seq,
                is_head=seq == 0,
                is_tail=seq == self.length - 1,
            )

    @property
    def total_latency(self) -> int | None:
        """Creation-to-delivery latency, once delivered."""
        if self.delivered is None:
            return None
        return self.delivered - self.created

    @property
    def network_latency(self) -> int | None:
        """Injection-to-delivery latency (excludes source queueing)."""
        if self.delivered is None or self.entered is None:
            return None
        return self.delivered - self.entered

    def __repr__(self) -> str:
        return f"Packet(#{self.pid} {self.src}->{self.dst} len={self.length})"


@dataclass(frozen=True)
class Flit:
    """One flow-control unit of a packet."""

    packet: Packet
    seq: int
    is_head: bool
    is_tail: bool

    @property
    def pid(self) -> int:
        return self.packet.pid

    @property
    def dst(self) -> Coord:
        return self.packet.dst

    def __repr__(self) -> str:
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({kind}#{self.pid}.{self.seq})"
