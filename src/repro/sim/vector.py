"""Vectorized struct-of-arrays wormhole simulator (``backend="vector"``).

:class:`VectorSimulator` re-implements the exact cycle semantics of
:class:`~repro.sim.network.NetworkSimulator` over numpy state so that the
per-cycle cost is a bounded number of array operations — instead of
Python object/dict traffic over every wire and node each cycle.  It is
**cycle-exact**: given the same topology, routing, rule and traffic it
produces bit-identical :class:`~repro.sim.stats.SimStats` (including
``deadlock_declared_at`` and the per-packet latency list, in the same
order).  The differential fuzz oracle (:mod:`repro.fuzz.oracle`) holds it
to that contract on every trial.

Layout
------
The kernel indexes *sites* ``0..W+N-1``: wires ``0..W-1`` in sorted
(= reference iteration) order, then one injection row per node in
topology order.  A site's "front" is the flit currently able to act —
the head of the wire FIFO, or the next flit of the packet streaming out
of a source queue — mirrored in flat arrays so every phase mask is a
handful of vector ops over all sites at once:

* ``_buf_pid/_buf_seq/_buf_arr[W, B]`` + ``_head/_blen[W]`` — per-wire
  ring-buffer FIFOs (pid, flit sequence number, arrival cycle);
* ``_fpid/_fseq/_farr/_fdst[W+N]`` — the front mirror (valid where the
  wire is non-empty / the node is streaming), updated incrementally on
  every pop and push; injection rows always pass the pipeline-ready test
  (their ``_farr`` is a large negative constant);
* ``_route_pid/_route_out[W+N]`` — the route assignment of the front
  packet (wormhole FIFOs hold contiguous packet segments, so the
  reference's per-(wire, pid) assignment dict collapses to two arrays);
  an injection row is "streaming" exactly when its assignment matches;
* ``_owner`` — wormhole ownership per output wire;
* ``_pref_out`` — the sole routing candidate of each site's current
  front where known, which lets the allocation phase batch-resolve
  single-candidate cycles without a per-site Python loop.

Routing memoization is two-level: per input site, candidates are cached
by destination node, and — where the routing function publishes a
provable :meth:`~repro.routing.base.RoutingFunction.route_signature` —
the expensive ``candidates()`` call itself is shared across all
destinations with the same direction class.  Without the signature level
uniform random traffic never stops discovering new (site, destination)
pairs.

Phase semantics (mirrored decision for decision)
------------------------------------------------
1. **ejection** — one vectorized mask; ``np.nonzero`` yields wires
   ascending, the order the reference appends delivery latencies in.
2. **allocation** — a mask finds heads needing a route; a Python loop
   walks them in reference order (wires ascending, then source nodes in
   topology order), because allocation is order-dependent: an earlier
   site claiming an output changes what later sites see.  Futile retries
   are suppressed: a blocked head's outcome can only change when one of
   its candidate outputs is released (releases happen only in the eject/
   traversal phases, claims only earlier in the same loop), so blocked
   sites sleep until a release of one of their candidates wakes them.
   Failed attempts are side-effect-free in the reference (the ``first``
   selection consumes no RNG), so skipping them is exact.
3. **traversal** — fully batched.  Per-link round-robin arbitration
   looks sequential in the reference, but the link groups are
   independent (an output wire belongs to exactly one link, each link
   admits one winner), so every link's winner — ``requests[cycle %
   len(requests)]`` against the phase-start space snapshot — is computed
   at once with a stable sort + group boundaries, and the moves execute
   as array scatters.  Sources and outputs are each unique within a
   cycle and a same-wire pop+push commutes to the same ring state, so
   batch order cannot diverge from the reference's sequential one.

Scope (v1)
----------
Wormhole switching with the ``first`` (deterministic, RNG-free)
selection policy, both buffer disciplines, pipeline delay, Bernoulli or
traced traffic.  Telemetry (metrics/tracer), fault injection, recovery
and multicast waypoints are not implemented — requesting them raises
:class:`~repro.errors.ConfigError` up front (see
:func:`repro.sim.backend.backends` for the capability table).
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Sequence

import numpy as np

from repro.errors import ConfigError, RoutingError, SimulationError
from repro.routing.base import RoutingFunction
from repro.routing.selection import SelectionPolicy, first_candidate
from repro.sim.flit import Packet
from repro.sim.stats import SimStats
from repro.topology.base import Coord, Topology
from repro.topology.classes import ClassRule, no_classes
from repro.topology.wires import Wire, wires_for

__all__ = ["VectorSimulator"]

#: Sentinel arrival cycle for injection rows: always pipeline-ready.
_ALWAYS_READY = -(1 << 40)

#: Routing memos shared across simulator instances built on the same
#: (routing, rule, topology) triple, so a sweep pays the first-touch
#: routing queries only on its first point.  Keyed weakly by the routing
#: object; entries hold strong references to the rule and topology they
#: were built against (identity-checked on reuse — an ``id()`` alone
#: could be recycled after garbage collection).
_SHARED_MEMOS: "weakref.WeakKeyDictionary[RoutingFunction, dict]" = (
    weakref.WeakKeyDictionary()
)


def _unsupported(feature: str) -> ConfigError:
    return ConfigError(
        f"backend 'vector' does not support {feature};"
        " use RunConfig(backend='reference') for this configuration"
        " (see repro.sim.backends() for the capability table)"
    )


class VectorSimulator:
    """Struct-of-arrays twin of :class:`~repro.sim.network.NetworkSimulator`.

    Accepts the same constructor signature (unsupported features raise
    :class:`~repro.errors.ConfigError`) and exposes the same driving
    surface: :meth:`offer_packet`, :meth:`step`, :meth:`run`,
    :meth:`is_idle`, ``.cycle`` and ``.stats``.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        rule: ClassRule = no_classes,
        *,
        buffer_depth: int = 4,
        pipeline_delay: int = 0,
        selection: SelectionPolicy = first_candidate,
        atomic_buffers: bool = False,
        switching: str = "wormhole",
        watchdog: int = 500,
        seed: int = 0,
        tracer=None,
        metrics=None,
        faults=None,
        recovery=None,
        routing_factory=None,
        require_acyclic_reroute: bool = True,
    ) -> None:
        if metrics is not None:
            raise _unsupported("metrics= telemetry")
        if tracer is not None:
            raise _unsupported("event tracing")
        if faults is not None:
            raise _unsupported("fault injection (faults=)")
        if recovery is not None:
            raise _unsupported("deadlock/fault recovery (recovery=)")
        if switching != "wormhole":
            raise _unsupported(f"switching={switching!r} (wormhole only)")
        if selection is not first_candidate:
            raise _unsupported(
                "selection policies other than 'first' (they consume RNG"
                " in a per-flit order the batched kernel cannot reproduce)"
            )
        if pipeline_delay < 0:
            raise SimulationError("pipeline_delay cannot be negative")
        if buffer_depth < 1:
            raise SimulationError("buffers need capacity >= 1")

        self.topology = topology
        self.routing = routing
        self.rule = rule
        self.selection = selection
        self.atomic_buffers = atomic_buffers
        self.switching = switching
        self.pipeline_delay = pipeline_delay
        self.watchdog = watchdog
        self.buffer_depth = buffer_depth
        self.seed = seed

        wires = sorted(wires_for(topology, routing.channel_classes, rule))
        if not wires:
            raise SimulationError("routing channel classes instantiate no wires")
        self.wires: tuple[Wire, ...] = tuple(wires)
        W = len(wires)
        self._W = W
        self._wire_lookup: dict[tuple[Coord, Coord, object], int] = {
            (w.src, w.dst, w.channel): i for i, w in enumerate(wires)
        }
        self._nodes: tuple[Coord, ...] = tuple(topology.nodes)
        self._nindex: dict[Coord, int] = {n: i for i, n in enumerate(self._nodes)}
        N = len(self._nodes)
        X = W + N

        #: Destination router of each site (-1 for injection rows, which
        #: never eject and always count as "not yet home").
        self._wdst = np.full(X, -1, dtype=np.int64)
        self._wdst[:W] = np.fromiter(
            (self._nindex[w.dst] for w in wires), dtype=np.int64, count=W
        )
        links = sorted({w.link for w in wires})
        lindex = {link: i for i, link in enumerate(links)}
        self._wlink = np.fromiter(
            (lindex[w.link] for w in wires), dtype=np.int64, count=W
        )

        B = buffer_depth
        self._buf_pid = np.full((W, B), -1, dtype=np.int64)
        self._buf_seq = np.zeros((W, B), dtype=np.int64)
        self._buf_arr = np.zeros((W, B), dtype=np.int64)
        self._head = np.zeros(W, dtype=np.int64)
        self._blen = np.zeros(W, dtype=np.int64)

        #: Front mirrors over all sites (wire rows valid where _blen > 0,
        #: injection rows valid where _fpid >= 0).
        self._fpid = np.full(X, -1, dtype=np.int64)
        self._fseq = np.zeros(X, dtype=np.int64)
        self._farr = np.zeros(X, dtype=np.int64)
        self._farr[W:] = _ALWAYS_READY
        self._fdst = np.full(X, -1, dtype=np.int64)
        self._route_pid = np.full(X, -1, dtype=np.int64)
        self._route_out = np.full(X, -1, dtype=np.int64)

        #: Wormhole ownership per output wire; a plain list because every
        #: access in the (serial) allocation loop is scalar, where list
        #: indexing beats numpy scalar indexing severalfold.
        self._owner = np.full(W, -1, dtype=np.int64)
        #: Cached first (sole) routing candidate of each site's current
        #: front, or -2 when unknown / not a singleton.  Lets the
        #: allocation phase batch-resolve when every pending site has a
        #: known single candidate; invalidated on every front change.
        self._pref_out = np.full(X, -2, dtype=np.int64)
        #: Allocation-retry suppression: sites asleep until a candidate
        #: output is released, and the reverse map release -> sleepers.
        self._blocked = np.zeros(X, dtype=bool)
        self._consumers: list[set[int]] = [set() for _ in range(W)]

        #: node index -> deque of packet indices; only non-empty queues.
        self._queues: dict[int, deque[int]] = {}

        #: Packet table (struct of arrays, grown by doubling), plus a
        #: plain-list mirror of the destination index for the scalar
        #: lookups in the allocation loop.
        self._p_cap = 1024
        self._p_dst = np.zeros(self._p_cap, dtype=np.int64)
        self._p_len = np.ones(self._p_cap, dtype=np.int64)
        self._pl_dst: list[int] = []
        self._n_packets = 0
        self._ipackets: list[Packet] = []

        #: Two-level routing memo per memo group: by destination node
        #: index (fast hits), and by ``route_signature`` where published
        #: (so ``candidates()`` runs once per direction class, not once
        #: per destination).  Values: tuple of candidate output wire
        #: indices in candidate order, or None for a raw dead-end.
        #: Routings declaring ``uses_in_channel = False`` share one group
        #: across every input port of a router; otherwise each site gets
        #: its own.  Memos are further shared across simulator instances
        #: on the same (routing, rule, topology) via ``_SHARED_MEMOS``.
        if routing.uses_in_channel:
            self._memo_of: list[int] = list(range(X))
            groups = X
        else:
            self._memo_of = [self._nindex[w.dst] for w in wires] + list(range(N))
            groups = N
        shared = _SHARED_MEMOS.setdefault(routing, {})
        entry = shared.get((id(rule), id(topology)))
        if entry is not None and entry[0] is rule and entry[1] is topology:
            _, _, self._cand_by_in, self._sig_by_in = entry
        else:
            self._cand_by_in: list[dict] = [{} for _ in range(groups)]
            self._sig_by_in: list[dict] = [{} for _ in range(groups)]
            shared[(id(rule), id(topology))] = (
                rule,
                topology,
                self._cand_by_in,
                self._sig_by_in,
            )
        #: Per-site view of the destination-level memo (one indirection
        #: fewer in the allocation hot loop; the dicts are shared, so a
        #: write through one alias is visible through all).
        self._cand_of_site: list[dict] = [
            self._cand_by_in[g] for g in self._memo_of
        ]
        self._fast_target = type(routing).target_of is RoutingFunction.target_of

        #: Source nodes with a non-empty queue AND an idle injection row —
        #: exactly the sites the allocation phase must consider for a new
        #: packet (scanning every queue against numpy scalar reads each
        #: cycle is slower than maintaining the set at the three places
        #: row-idleness changes).
        self._ready_inj: set[int] = set()

        self.cycle = 0
        self.stats = SimStats()
        self._stall_cycles = 0

    # -- state queries ----------------------------------------------------------

    def flits_in_network(self) -> int:
        """Flits currently buffered in wires."""
        return int(self._blen.sum())

    def packets_in_flight(self) -> int:
        """Packets injected but not fully delivered."""
        return self.stats.packets_injected - self.stats.packets_delivered

    def is_idle(self) -> bool:
        """No flits buffered, nothing queued and nothing streaming."""
        return not self._network_active()

    def _network_active(self) -> bool:
        return (
            bool(self._queues)
            or bool((self._fpid[self._W:] >= 0).any())
            or bool(self._blen.any())
        )

    # -- traffic entry ------------------------------------------------------------

    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet at its source node (reference semantics)."""
        dead = getattr(self.topology, "failed_nodes", ())
        if packet.src in dead or packet.dst in dead:
            self.stats.packets_injected += 1
            self.stats.packets_lost += 1
            return
        if packet.waypoints:
            raise _unsupported("multicast waypoints")
        self.topology.validate_node(packet.src)
        self.topology.validate_node(packet.dst)
        ip = self._add_packet(packet)
        src = self._nindex[packet.src]
        queue = self._queues.get(src)
        if queue is None:
            queue = self._queues[src] = deque()
            if self._fpid[self._W + src] < 0:
                self._ready_inj.add(src)
        queue.append(ip)
        self.stats.packets_injected += 1

    def _add_packet(self, packet: Packet) -> int:
        ip = self._n_packets
        if ip >= self._p_cap:
            self._p_cap *= 2
            for name in ("_p_dst", "_p_len"):
                old = getattr(self, name)
                grown = np.zeros(self._p_cap, dtype=np.int64)
                grown[:ip] = old
                setattr(self, name, grown)
        dst = self._nindex[packet.dst]
        self._p_dst[ip] = dst
        self._p_len[ip] = packet.length
        self._pl_dst.append(dst)
        self._n_packets = ip + 1
        self._ipackets.append(packet)
        return ip

    # -- one cycle ------------------------------------------------------------------

    def step(self, new_packets: Sequence[Packet] = ()) -> int:
        """Advance one cycle; returns the number of flit movements."""
        for packet in new_packets:
            self.offer_packet(packet)

        moves = self._eject_phase()
        self._allocation_phase()
        moves += self._traversal_phase()

        self.cycle += 1
        self.stats.cycles = self.cycle
        self.stats.flit_moves += moves

        if moves == 0 and self._network_active():
            self._stall_cycles += 1
            if self._stall_cycles >= self.watchdog and not self.stats.deadlocked:
                self.stats.deadlocked = True
                self.stats.deadlock_declared_at = self.cycle
        else:
            self._stall_cycles = 0
        return moves

    def _refresh_fronts(self, idxs: np.ndarray) -> None:
        """Re-mirror the front flit of the given wires from the ring state."""
        pos = self._head[idxs]
        pids = self._buf_pid[idxs, pos]
        self._fpid[idxs] = pids
        seqs = self._buf_seq[idxs, pos]
        self._fseq[idxs] = seqs
        self._farr[idxs] = self._buf_arr[idxs, pos]
        dsts = self._p_dst[pids]
        self._fdst[idxs] = dsts
        pref = self._pref_out
        pref[idxs] = -2
        if self._fast_target:
            # Eagerly cache the sole candidate of newly exposed heads so
            # the allocation phase can batch-resolve them.
            heads = (seqs == 0) & (self._blen[idxs] > 0) & (dsts != self._wdst[idxs])
            if heads.any():
                cand_of_site = self._cand_of_site
                for w, dst in zip(idxs[heads].tolist(), dsts[heads].tolist()):
                    outs = cand_of_site[w].get(dst)
                    if outs is not None and len(outs) == 1:
                        pref[w] = outs[0]

    def _release(self, sites) -> None:
        """Release wormhole ownership of output wires; wake their sleepers."""
        owner = self._owner
        blocked = self._blocked
        consumers = self._consumers
        for o in sites:
            owner[o] = -1
            sleepers = consumers[o]
            if sleepers:
                for k in sleepers:
                    blocked[k] = False
                sleepers.clear()

    # -- phase 1: ejection ---------------------------------------------------------

    def _eject_phase(self) -> int:
        W = self._W
        fdst = self._fdst[:W]
        eject = (self._blen > 0) & (fdst == self._wdst[:W])
        if self.pipeline_delay:
            # With no pipeline delay the readiness test is a tautology —
            # every buffered front arrived in an earlier cycle.
            eject &= self._farr[:W] <= self.cycle - 1 - self.pipeline_delay
        idxs = np.nonzero(eject)[0]
        if idxs.size == 0:
            return 0
        pids = self._fpid[idxs]
        tails = self._fseq[idxs] == self._p_len[pids] - 1
        self._head[idxs] = (self._head[idxs] + 1) % self.buffer_depth
        self._blen[idxs] -= 1
        self._refresh_fronts(idxs)
        if tails.any():
            stats = self.stats
            cyc = self.cycle
            released = idxs[tails].tolist()
            # np.nonzero order is ascending wire order — the reference's
            # latency-append order.
            for ip in pids[tails].tolist():
                packet = self._ipackets[ip]
                packet.delivered = cyc
                assert packet.entered is not None
                stats.record_delivery(
                    cyc - packet.created, cyc - packet.entered, packet.length
                )
            if self.atomic_buffers:
                self._release(released)
        return int(idxs.size)

    # -- phase 2: routing and VC allocation ------------------------------------------

    def _allocation_phase(self) -> None:
        # Allocation is order-dependent (an earlier site claiming an
        # output changes what later ones see), and the reference order is
        # wires ascending, then source nodes in topology order — which is
        # exactly ascending site index.  Collect every site needing a
        # route this cycle into one ascending array, then resolve.
        W = self._W
        fpid = self._fpid
        route_pid = self._route_pid
        blocked = self._blocked
        pref = self._pref_out

        need = (
            (self._blen > 0)
            & (self._fseq[:W] == 0)
            & (self._fdst[:W] != self._wdst[:W])
            & (route_pid[:W] != fpid[:W])
            & ~blocked[:W]
        )
        wire_pending = np.nonzero(need)[0]

        # Injection rows: parked-then-woken heads, plus new heads popped
        # from their source queues (popping has no allocation side
        # effects, so doing it before the resolve preserves order).
        stuck = np.nonzero((fpid[W:] >= 0) & (route_pid[W:] < 0) & ~blocked[W:])[0]
        ready = self._ready_inj
        if ready:
            queues = self._queues
            pl_dst = self._pl_dst
            fseq = self._fseq
            fdst = self._fdst
            cand_of_site = self._cand_of_site
            fast = self._fast_target
            popped: list[int] = []
            for n in sorted(ready):
                queue = queues[n]
                ip = queue.popleft()
                if not queue:
                    del queues[n]
                site = W + n
                fpid[site] = ip
                fseq[site] = 0
                route_pid[site] = -1
                popped.append(site)
                dst = pl_dst[ip]
                fdst[site] = dst
                if fast:
                    single = cand_of_site[site].get(dst)
                    pref[site] = (
                        single[0] if single is not None and len(single) == 1 else -2
                    )
                else:
                    pref[site] = -2
            ready.clear()
            inj = np.array(popped, dtype=np.int64)
            if stuck.size:
                inj = np.concatenate((stuck + W, inj))
                inj.sort()
        elif stuck.size:
            inj = stuck + W
        else:
            inj = None

        if inj is None:
            pending = wire_pending
        elif wire_pending.size:
            pending = np.concatenate((wire_pending, inj))
        else:
            pending = inj
        if pending.size == 0:
            return

        prefs = pref[pending]
        cold = np.nonzero(prefs < 0)[0]
        if cold.size:
            # Warm the cold sites' memos first — a pure routing lookup
            # with no allocation side effects, so phase order is
            # preserved.  Under deterministic routing every candidate
            # set is a singleton, and one cold uniform-traffic
            # destination must not force the whole phase onto the
            # serial loop.
            single = True
            sites = pending[cold]
            for site, ip in zip(sites.tolist(), fpid[sites].tolist()):
                if len(self._outs_of(site, ip)) != 1:
                    single = False
            if not single:
                self._resolve_serial(pending)
                return
            prefs = pref[pending]
        self._resolve_single(pending, prefs)

    def _resolve_single(self, pending: np.ndarray, prefs: np.ndarray) -> None:
        """Batched allocation when every pending site has one known candidate.

        Serially, the first site (ascending) wanting a given output wins
        it if it is free; everyone else wanting that output fails.  No
        output is released during the phase, so grouping by output and
        taking the first arrival per group reproduces the serial outcome
        exactly — the common case for dimension-order routing, where the
        Python attempt loop would dominate the whole cycle.
        """
        owner = self._owner
        order = np.argsort(prefs, kind="stable")
        po = prefs[order]
        first = np.empty(po.size, dtype=bool)
        first[0] = True
        np.not_equal(po[1:], po[:-1], out=first[1:])
        win = first & (owner[po] < 0)
        widx = order[win]
        ws = pending[widx]
        wouts = po[win]
        ips = self._fpid[ws]
        owner[wouts] = ips
        self._route_pid[ws] = ips
        self._route_out[ws] = wouts
        if not win.all():
            lose = ~win
            ls = pending[order[lose]]
            self._blocked[ls] = True
            consumers = self._consumers
            for s, o in zip(ls.tolist(), po[lose].tolist()):
                consumers[o].add(s)

    def _resolve_serial(self, pending: np.ndarray) -> None:
        """Reference-order attempt loop (some head has several outputs)."""
        owner = self._owner
        pl_dst = self._pl_dst
        fast = self._fast_target
        cand_of_site = self._cand_of_site
        pref = self._pref_out
        route_pid = self._route_pid
        route_out = self._route_out
        for site, ip in zip(pending.tolist(), self._fpid[pending].tolist()):
            outs = cand_of_site[site].get(pl_dst[ip], False) if fast else False
            if outs is False or outs is None:
                out = self._alloc(site, ip)
            else:
                if len(outs) == 1:
                    pref[site] = outs[0]
                out = -1
                for o in outs:
                    if owner[o] < 0:
                        owner[o] = ip
                        out = o
                        break
                if out < 0:
                    self._sleep(site, outs)
            if out >= 0:
                route_pid[site] = ip
                route_out[site] = out

    def _sleep(self, site: int, outs) -> None:
        """Park a blocked site until one of its candidate outputs frees."""
        self._blocked[site] = True
        consumers = self._consumers
        for o in outs:
            consumers[o].add(site)

    def _in_site(self, in_key: int) -> tuple[Coord, object]:
        """(router, in_channel) of an input site (wire index, or W+node)."""
        if in_key < self._W:
            wire = self.wires[in_key]
            return wire.dst, wire.channel
        return self._nodes[in_key - self._W], None

    def _build_outs(self, router, target, in_channel):
        """Instantiated output wire indices, or None on a raw dead-end."""
        candidates = self.routing.candidates(router, target, in_channel)
        if not candidates:
            return None
        lookup = self._wire_lookup
        return tuple(
            idx
            for nxt, ch in candidates
            if (idx := lookup.get((router, nxt, ch))) is not None
        )

    def _outs_of(self, in_key: int, ip: int):
        """Memoised candidate outputs of a site's head — lookup only.

        Fills the shared routing memos exactly like the reference's
        routing query, records a singleton in ``_pref_out``, and raises
        :class:`RoutingError` on a routing dead-end, exactly like the
        reference (the vector backend has no fault/recovery path to
        absorb it).  No allocation side effects.
        """
        if self._fast_target:
            tkey = self._pl_dst[ip]
        else:
            router, _ = self._in_site(in_key)
            tkey = self.routing.target_of(self._ipackets[ip], router)
        group = self._memo_of[in_key]
        memo = self._cand_by_in[group]
        outs = memo.get(tkey, False)
        if outs is False:
            router, in_channel = self._in_site(in_key)
            target = self._nodes[tkey] if type(tkey) is int else tkey
            sig = self.routing.route_signature(router, target)
            if sig is not None:
                sig_memo = self._sig_by_in[group]
                outs = sig_memo.get(sig, False)
                if outs is False:
                    outs = self._build_outs(router, target, in_channel)
                    sig_memo[sig] = outs
            else:
                outs = self._build_outs(router, target, in_channel)
            memo[tkey] = outs
        if outs is None:
            router, in_channel = self._in_site(in_key)
            raise RoutingError(
                f"{self.routing.name}: dead-end at {router} for"
                f" {self._ipackets[ip]} arriving on {in_channel}"
            )
        if len(outs) == 1:
            self._pref_out[in_key] = outs[0]
        return outs

    def _alloc(self, in_key: int, ip: int) -> int:
        """One reference ``_try_allocate``: the chosen wire index, or -1."""
        outs = self._outs_of(in_key, ip)
        owner = self._owner
        # selection == first_candidate: the first free wire in candidate
        # order is exactly what the reference picks.
        for out in outs:
            if owner[out] < 0:
                owner[out] = ip
                return out
        self._sleep(in_key, outs)
        return -1  # blocked; a candidate release wakes the site

    # -- phase 3: switch allocation and traversal --------------------------------------

    def _traversal_phase(self) -> int:
        # Requests over all sites at once; np.nonzero yields wires
        # ascending then source nodes in topology order — exactly the
        # reference's gather order.
        W = self._W
        fpid = self._fpid
        active = np.empty(fpid.size, dtype=bool)
        np.greater(self._blen, 0, out=active[:W])
        np.greater_equal(fpid[W:], 0, out=active[W:])
        req = active & (self._fdst != self._wdst) & (self._route_pid == fpid)
        if self.pipeline_delay:
            # Tautological at delay 0: buffered fronts arrived in the past.
            req &= self._farr <= self.cycle - 1 - self.pipeline_delay
        srcs = np.nonzero(req)[0]
        if srcs.size == 0:
            return 0
        outs = self._route_out[srcs]

        # Credit gate against the phase-start space snapshot.  Winners
        # only ever consume space on their own link's wires, and each
        # link admits one winner, so the snapshot filter is exactly the
        # reference's sequential space bookkeeping.
        open_slots = self._blen[outs] < self.buffer_depth
        if not open_slots.any():
            return 0
        srcs = srcs[open_slots]
        outs = outs[open_slots]

        # Batched per-link round robin: stable sort groups each link's
        # requests in gather order; winner = requests[cycle % count].
        links = self._wlink[outs]
        order = np.argsort(links, kind="stable")
        sorted_links = links[order]
        boundary = np.empty(sorted_links.size, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_links[1:], sorted_links[:-1], out=boundary[1:])
        starts = np.nonzero(boundary)[0]
        counts = np.empty_like(starts)
        np.subtract(starts[1:], starts[:-1], out=counts[:-1])
        counts[-1] = sorted_links.size - starts[-1]
        winners = order[starts + self.cycle % counts]
        # Execution order is irrelevant (sources and outputs are unique,
        # same-wire pop+push commutes); ascending sources let the wire /
        # injection split below be prefix slices instead of mask copies.
        winners.sort()
        self._execute_moves(srcs[winners], outs[winners])
        return int(winners.size)

    def _execute_moves(self, srcs, outs) -> None:
        """Apply all winning moves as array scatters.

        Sources and outputs are each unique within a cycle, and the only
        same-wire interaction (pop + push on one wire) commutes, so the
        pops-then-pushes batch order reproduces the reference's
        link-by-link sequential execution exactly.
        """
        cyc = self.cycle
        B = self.buffer_depth
        W = self._W
        fpid = self._fpid
        fseq = self._fseq

        # Departing flits, gathered before any mutation.  ``srcs`` is
        # ascending, so wires are the prefix and injections the suffix.
        all_ip = fpid[srcs]
        all_seq = fseq[srcs]
        all_tail = all_seq == self._p_len[all_ip] - 1
        k = int(np.searchsorted(srcs, W))

        # Pops from wire buffers.
        wsrc = srcs[:k]
        if k:
            pos = self._head[wsrc]
            self._head[wsrc] = (pos + 1) % B
            self._blen[wsrc] -= 1
            self._refresh_fronts(wsrc)

        # Pops from injecting source nodes.
        isrc = srcs[k:]
        if isrc.size:
            fseq[isrc] += 1
            fresh = all_seq[k:] == 0
            if fresh.any():
                packets = self._ipackets
                for ip in all_ip[k:][fresh].tolist():
                    packets[ip].entered = cyc

        # Tails leaving a site clear its route assignment; a finished
        # injection row also empties (re-arming its source queue), and an
        # atomic source wire releases.
        if all_tail.any():
            tsite = srcs[all_tail]
            self._route_pid[tsite] = -1
            self._route_out[tsite] = -1
            kt = int(np.searchsorted(tsite, W))
            done = tsite[kt:]
            if done.size:
                fpid[done] = -1
                queues = self._queues
                ready = self._ready_inj
                for n in (done - W).tolist():
                    if n in queues:
                        ready.add(n)
            if self.atomic_buffers and kt:
                self._release(tsite[:kt].tolist())

        # Pushes into the output wires (unique: one winner per link).
        slot = (self._head[outs] + self._blen[outs]) % B
        self._buf_pid[outs, slot] = all_ip
        self._buf_seq[outs, slot] = all_seq
        self._buf_arr[outs, slot] = cyc
        was_empty = self._blen[outs] == 0
        self._blen[outs] += 1
        if was_empty.any():
            fresh_out = outs[was_empty]
            f_ip = all_ip[was_empty]
            f_seq = all_seq[was_empty]
            fpid[fresh_out] = f_ip
            fseq[fresh_out] = f_seq
            self._farr[fresh_out] = cyc
            f_dst = self._p_dst[f_ip]
            self._fdst[fresh_out] = f_dst
            pref = self._pref_out
            pref[fresh_out] = -2
            if self._fast_target:
                heads = (f_seq == 0) & (f_dst != self._wdst[fresh_out])
                if heads.any():
                    cand_of_site = self._cand_of_site
                    for w, dst in zip(
                        fresh_out[heads].tolist(), f_dst[heads].tolist()
                    ):
                        single = cand_of_site[w].get(dst)
                        if single is not None and len(single) == 1:
                            pref[w] = single[0]
        if not self.atomic_buffers and all_tail.any():
            # EbDa-relaxed: re-allocatable once the tail is buffered.
            self._release(outs[all_tail].tolist())

    # -- driving loop ----------------------------------------------------------------

    def run(
        self,
        cycles: int,
        traffic=None,
        *,
        drain: bool = False,
        drain_limit: int = 100_000,
        raise_on_deadlock: bool = False,
    ) -> SimStats:
        """Run ``cycles`` cycles (plus optional drain) and return the stats.

        Mirrors :meth:`NetworkSimulator.run
        <repro.sim.network.NetworkSimulator.run>` except that
        ``raise_on_deadlock`` (which needs the object-graph wait-for
        witness) is unsupported.
        """
        if raise_on_deadlock:
            raise _unsupported(
                "raise_on_deadlock=True (the wait-for witness needs the"
                " reference object graph)"
            )
        for _ in range(cycles):
            new = traffic.packets_for_cycle(self.cycle) if traffic else ()
            self.step(new)
            if self.stats.deadlocked:
                break
        if drain and not self.stats.deadlocked:
            extra = 0
            while not self.is_idle() and extra < drain_limit:
                self.step()
                extra += 1
                if self.stats.deadlocked:
                    break
        return self.stats
