"""Registry-backed named specs: picklable stand-ins for callables.

:class:`~repro.sim.runner.RunConfig` promises picklability (the parallel
sweep engine ships configs to worker processes), but its callable-valued
fields — ``pattern``, ``selection``, ``routing_factory`` — historically
held lambdas and closures that :mod:`pickle` rejects.  This module closes
the gap with *named specs*: every field accepts either the raw callable
(kept working for in-process runs) or a registry name resolved at use
time:

* ``pattern="uniform"``   -> :data:`repro.sim.patterns.NAMED_PATTERNS`;
* ``selection="first"``   -> :data:`repro.routing.selection.NAMED_POLICIES`;
* ``routing="west-first"`` -> :data:`NAMED_ROUTING_FACTORIES` (native
  implementations), any :data:`repro.core.catalog.NAMED_DESIGNS` name, an
  explicit ``"ebda:<design>"``, or raw arrow notation such as
  ``"X- -> X+ Y+ Y-"`` — the latter three compile through
  :class:`EbdaDesignFactory`, a frozen (hence picklable) factory object.

Named specs are also what makes results *cacheable*: :func:`spec_token`
turns a spec into the stable string the content-addressed cache key is
built from.  A raw callable that is not a registered named function has
no stable token (``spec_token`` returns ``None``) and therefore opts its
run out of caching rather than risking a stale hit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import EbdaError, RoutingError
from repro.routing.selection import NAMED_POLICIES, SelectionPolicy
from repro.sim.patterns import NAMED_PATTERNS, TrafficPattern
from repro.topology.base import Topology
from repro.topology.classes import NAMED_RULES, ClassRule

if TYPE_CHECKING:
    from repro.routing.base import RoutingFunction

#: A factory producing a fresh routing function for a topology.
RoutingFactory = Callable[[Topology], "RoutingFunction"]

#: Spec types accepted by :class:`~repro.sim.runner.RunConfig` fields.
PatternSpec = "TrafficPattern | str"
SelectionSpec = "SelectionPolicy | str"
RoutingSpec = "RoutingFactory | str"


@dataclass(frozen=True)
class EbdaDesignFactory:
    """A picklable routing factory for an EbDa design.

    ``spec`` is a :data:`repro.core.catalog.NAMED_DESIGNS` name or raw
    arrow notation; the partition sequence is compiled lazily per
    topology so the factory itself stays a plain frozen value that
    travels across process boundaries.
    """

    spec: str
    directions: str = "minimal"
    fallback: str = "none"

    def __call__(self, topology: Topology) -> "RoutingFunction":
        from repro.core import PartitionSequence, catalog
        from repro.routing.table import TurnTableRouting
        from repro.topology.classes import no_classes, rule_for_design

        if self.spec in catalog.NAMED_DESIGNS:
            design = catalog.design(self.spec)
            rule = rule_for_design(self.spec)
            label = f"ebda:{self.spec}"
        else:
            design = PartitionSequence.parse(self.spec).validate()
            rule = no_classes
            label = f"EbDa[{design.arrow_notation()}]"
        return TurnTableRouting(
            topology, design, rule,
            directions=self.directions, fallback=self.fallback, label=label,
        )


def _xy(topology: Topology) -> "RoutingFunction":
    from repro.routing.deterministic import xy_routing

    return xy_routing(topology)


def _yx(topology: Topology) -> "RoutingFunction":
    from repro.routing.deterministic import yx_routing

    return yx_routing(topology)


def _west_first(topology: Topology) -> "RoutingFunction":
    from repro.routing.turnmodels import WestFirst

    return WestFirst(topology)


def _north_last(topology: Topology) -> "RoutingFunction":
    from repro.routing.turnmodels import NorthLast

    return NorthLast(topology)


def _negative_first(topology: Topology) -> "RoutingFunction":
    from repro.routing.turnmodels import NegativeFirst

    return NegativeFirst(topology)


def _odd_even(topology: Topology) -> "RoutingFunction":
    from repro.routing.oddeven import OddEven

    return OddEven(topology)


def _dyxy(topology: Topology) -> "RoutingFunction":
    from repro.routing.dyxy import DyXY

    return DyXY(topology)


def _fully_adaptive(topology: Topology) -> "RoutingFunction":
    from repro.routing.fullyadaptive import MinimalFullyAdaptive

    return MinimalFullyAdaptive(topology)


def _unrestricted(topology: Topology) -> "RoutingFunction":
    from repro.routing.fullyadaptive import UnrestrictedAdaptive

    return UnrestrictedAdaptive(topology)


#: Name -> factory for the native routing implementations.  Catalog
#: designs need no entry here: any :data:`~repro.core.catalog.NAMED_DESIGNS`
#: name (or ``"ebda:<name>"``, or arrow notation) resolves through
#: :class:`EbdaDesignFactory` instead.
NAMED_ROUTING_FACTORIES: dict[str, RoutingFactory] = {
    "xy": _xy,
    "yx": _yx,
    "west-first": _west_first,
    "north-last": _north_last,
    "negative-first": _negative_first,
    "odd-even": _odd_even,
    "dyxy": _dyxy,
    "ebda-fully-adaptive": _fully_adaptive,
    "unrestricted-adaptive": _unrestricted,
}


def register_routing_factory(name: str, factory: RoutingFactory) -> None:
    """Register a routing factory under a stable name.

    Registered names resolve in :func:`resolve_routing_factory` and — when
    the factory is a module-level callable — token-ise for the result
    cache.  Re-registering a name overwrites it.
    """
    NAMED_ROUTING_FACTORIES[name] = factory


def resolve_pattern(spec: "TrafficPattern | str") -> TrafficPattern:
    """A pattern name or callable -> the pattern callable."""
    if callable(spec):
        return spec
    try:
        return NAMED_PATTERNS[spec]
    except KeyError:
        known = ", ".join(sorted(NAMED_PATTERNS))
        raise EbdaError(f"unknown pattern {spec!r}; known patterns: {known}") from None


def resolve_selection(spec: "SelectionPolicy | str") -> SelectionPolicy:
    """A selection-policy name or callable -> the policy callable."""
    if callable(spec):
        return spec
    try:
        return NAMED_POLICIES[spec]
    except KeyError:
        known = ", ".join(sorted(NAMED_POLICIES))
        raise EbdaError(f"unknown selection {spec!r}; known policies: {known}") from None


def resolve_routing_factory(spec: "RoutingFactory | str") -> RoutingFactory:
    """A routing spec -> a factory ``topology -> RoutingFunction``.

    Strings resolve, in order, against :data:`NAMED_ROUTING_FACTORIES`,
    ``"ebda:<catalog-name>"``, plain catalog design names, and finally
    arrow notation (``"X- -> X+ Y+ Y-"``).
    """
    if callable(spec):
        return spec
    if not isinstance(spec, str):
        raise RoutingError(
            f"routing spec must be a name or a callable factory, got"
            f" {type(spec).__name__}"
        )
    if spec in NAMED_ROUTING_FACTORIES:
        return NAMED_ROUTING_FACTORIES[spec]
    from repro.core import PartitionSequence, catalog

    name = spec.removeprefix("ebda:")
    if name in catalog.NAMED_DESIGNS:
        return EbdaDesignFactory(name)
    try:
        PartitionSequence.parse(spec)
    except EbdaError:
        known = sorted(set(NAMED_ROUTING_FACTORIES) | set(catalog.NAMED_DESIGNS))
        raise RoutingError(
            f"unknown routing spec {spec!r}; known names: {', '.join(known)}"
            " (arrow notation also accepted)"
        ) from None
    return EbdaDesignFactory(spec)


def resolve_rule(spec: "ClassRule | str") -> ClassRule:
    """A class-rule name or callable -> the rule callable."""
    if callable(spec):
        return spec
    try:
        return NAMED_RULES[spec]
    except KeyError:
        known = ", ".join(sorted(NAMED_RULES))
        raise EbdaError(f"unknown class rule {spec!r}; known rules: {known}") from None


def _reverse(registry: dict[str, object], value: object) -> str | None:
    for name, candidate in registry.items():
        if candidate is value:
            return name
    return None


def spec_token(kind: str, spec: object) -> str | None:
    """A stable cache-key token for a spec, or ``None`` when it has none.

    Named specs token-ise as ``"name:<name>"``; registered or module-level
    functions as ``"func:<module>.<qualname>"``; picklable frozen factories
    (e.g. :class:`EbdaDesignFactory`) via their ``repr``.  Anything else —
    lambdas, closures, bound methods of mutable objects — returns ``None``,
    which marks the run *uncacheable* (never silently mis-keyed).
    """
    if kind == "metrics":
        # A metered run is uncacheable by design: a cache hit replays the
        # stored SimStats but cannot replay the samples the collector
        # would have taken.  The disabled default stays cacheable.
        return "none" if not spec else None
    if kind == "workload":
        # Traces are plain data: named ones token-ise by name, anonymous
        # ones by content digest (lazy import — chaos depends on sim).
        from repro.chaos.workloads import workload_token

        return workload_token(spec)
    if spec is None:
        return "none"
    if isinstance(spec, str):
        return f"name:{spec}"
    if isinstance(spec, EbdaDesignFactory):
        return f"ebda:{spec!r}"
    registry = {
        "pattern": NAMED_PATTERNS,
        "selection": NAMED_POLICIES,
        "routing": NAMED_ROUTING_FACTORIES,
        "rule": NAMED_RULES,
    }.get(kind, {})
    name = _reverse(registry, spec)
    if name is not None:
        return f"name:{name}"
    qualname = getattr(spec, "__qualname__", "")
    module = getattr(spec, "__module__", "")
    if qualname and module and "<" not in qualname and "<" not in module:
        # A plain module-level function: importable by name, so the token
        # is stable across processes and sessions.
        import importlib

        try:
            target: object = importlib.import_module(module)
            for part in qualname.split("."):
                target = getattr(target, part)
        except (ImportError, AttributeError):
            return None
        if target is spec:
            return f"func:{module}.{qualname}"
    return None
