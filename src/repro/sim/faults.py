"""Runtime fault injection: deterministic schedules and recovery policy.

EbDa's theorems are proved for static (possibly irregular) networks; this
module supplies the *dynamic* half: a :class:`FaultSchedule` describes
link failures, router failures and transient flit corruption at given
cycles, and :class:`~repro.sim.network.NetworkSimulator` consumes it in
its cycle loop — degrading the topology, rebuilding the routing function
and re-verifying the channel dependency graph as faults land.

Everything is seed-driven and deterministic: the same schedule against
the same simulator seed reproduces the identical run, fault for fault.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import FaultError, SimulationError, TopologyError
from repro.topology.base import Coord, Topology
from repro.topology.irregular import FaultyMesh

#: Recognised fault kinds.
FAULT_KINDS = ("link", "router", "drop")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    cycle:
        Simulation cycle at which the fault strikes (applied at the start
        of that cycle, before any flit moves).
    kind:
        ``"link"`` — a bidirectional link fails permanently;
        ``"router"`` — a router fails permanently (with all its links);
        ``"drop"`` — one in-flight packet suffers transient flit
        corruption/loss and must be retransmitted end to end.
    link:
        The failed link's endpoints (``kind == "link"``).
    node:
        The failed router (``kind == "router"``).
    pid:
        Optional targeted packet id for ``"drop"``; ``None`` picks a
        seeded-random in-flight victim.
    """

    cycle: int
    kind: str
    link: tuple[Coord, Coord] | None = None
    node: Coord | None = None
    pid: int | None = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise SimulationError("fault cycle cannot be negative")
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})"
            )
        if self.kind == "link" and self.link is None:
            raise SimulationError("link fault needs a link=(u, v)")
        if self.kind == "router" and self.node is None:
            raise SimulationError("router fault needs a node")

    def __str__(self) -> str:
        what = {
            "link": f"link {self.link[0]}-{self.link[1]}" if self.link else "link ?",
            "router": f"router {self.node}",
            "drop": f"drop pid={self.pid if self.pid is not None else '<random>'}",
        }[self.kind]
        return f"cycle {self.cycle}: {what}"


@dataclass(frozen=True)
class RecoveryPolicy:
    """Regressive deadlock/fault recovery knobs.

    When the simulator's watchdog confirms a cyclic wait, one victim
    packet is aborted (its flits flushed, its wires released) and
    retransmitted from the source after an exponential-backoff delay.
    ``max_retries`` bounds the per-packet abort count; exceeding it makes
    the simulator fall back to declaring deadlock.
    """

    max_retries: int = 8
    backoff_base: int = 4
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise SimulationError("max_retries must be >= 1")
        if self.backoff_base < 1:
            raise SimulationError("backoff_base must be >= 1")
        if self.backoff_factor < 1.0:
            raise SimulationError("backoff_factor must be >= 1.0")

    def backoff_delay(self, attempt: int) -> int:
        """Cycles to wait before the ``attempt``-th retransmission (0-based)."""
        return max(1, int(self.backoff_base * self.backoff_factor**attempt))


class FaultSchedule:
    """An ordered, immutable collection of :class:`FaultEvent`.

    >>> sched = FaultSchedule([FaultEvent(10, "link", link=((0, 0), (1, 0)))])
    >>> [str(e) for e in sched.at(10)]
    ['cycle 10: link (0, 0)-(1, 0)']
    >>> sched.at(11)
    ()

    ``max_cycles`` (when given) rejects events the run could never apply:
    a fault at/after the horizon would silently not fire, which has
    historically masked off-by-one mistakes in generated schedules.
    Same-cycle duplicates targeting the same resource — the same
    (unordered) link pair, the same router, or the same targeted drop pid
    — are rejected too: the second application is a no-op, so one of the
    intended faults silently shadows the other.  Untargeted drops
    (``pid=None``) are exempt — each picks its own victim.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent],
        *,
        seed: int = 0,
        max_cycles: int | None = None,
    ) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.cycle, e.kind, str(e.link), str(e.node)))
        )
        #: Seed for the simulator's fault-targeting RNG (random drop victims).
        self.seed = seed
        #: Validation horizon the schedule was checked against (if any).
        self.max_cycles = max_cycles
        seen: set[tuple] = set()
        by_cycle: dict[int, list[FaultEvent]] = {}
        for event in self.events:
            if max_cycles is not None and event.cycle >= max_cycles:
                raise FaultError(
                    f"fault scheduled at/after the run horizon"
                    f" (max_cycles={max_cycles}): {event}"
                )
            key: tuple | None = None
            if event.kind == "link" and event.link is not None:
                key = (event.cycle, "link", tuple(sorted(event.link)))
            elif event.kind == "router":
                key = (event.cycle, "router", event.node)
            elif event.kind == "drop" and event.pid is not None:
                key = (event.cycle, "drop", event.pid)
            if key is not None:
                if key in seen:
                    raise FaultError(f"duplicate fault event: {event}")
                seen.add(key)
            by_cycle.setdefault(event.cycle, []).append(event)
        self._by_cycle = {c: tuple(es) for c, es in by_cycle.items()}

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self.events)} events, seed={self.seed})"

    def at(self, cycle: int) -> tuple[FaultEvent, ...]:
        """All faults scheduled for ``cycle`` (possibly none)."""
        return self._by_cycle.get(cycle, ())

    @property
    def last_cycle(self) -> int:
        """Cycle of the final scheduled fault (-1 when empty)."""
        return self.events[-1].cycle if self.events else -1

    @classmethod
    def random(
        cls,
        topology: Topology,
        *,
        seed: int,
        n_link_failures: int = 0,
        n_drops: int = 0,
        window: tuple[int, int] = (0, 1000),
        routing_factory=None,
    ) -> "FaultSchedule":
        """A seed-driven random schedule that keeps the network connected.

        Link failures are drawn (without replacement) from the topology's
        bidirectional links, rejecting any candidate whose cumulative
        removal would disconnect the network; drop faults strike random
        in-flight packets at random cycles.  Identical arguments always
        produce the identical schedule.

        With ``routing_factory`` (degraded topology -> routing function),
        candidates are additionally rejected unless the rebuilt routing
        still offers a route for *every* endpoint pair — physical
        connectivity does not imply routability under a design's turn
        restrictions.
        """
        rng = random.Random(seed)
        lo, hi = window
        if hi <= lo:
            raise SimulationError(f"empty fault window {window}")
        events: list[FaultEvent] = []

        if n_link_failures:
            pairs = sorted({tuple(sorted((l.src, l.dst))) for l in topology.links})
            rng.shuffle(pairs)
            degraded = topology
            chosen: list[tuple[Coord, Coord]] = []
            for pair in pairs:
                if len(chosen) == n_link_failures:
                    break
                try:
                    if isinstance(degraded, FaultyMesh):
                        trial = degraded.without_link(*pair)
                    else:
                        trial = FaultyMesh(degraded, failed=[pair])
                except TopologyError:
                    continue  # this failure would disconnect; skip it
                if routing_factory is not None and not _fully_routable(
                    routing_factory(trial), trial
                ):
                    continue  # routable under the design's turns, or skip
                degraded = trial
                chosen.append(pair)
            if len(chosen) < n_link_failures:
                raise SimulationError(
                    f"could not place {n_link_failures} link failures without"
                    f" disconnecting {topology!r}"
                )
            for pair in chosen:
                events.append(FaultEvent(rng.randrange(lo, hi), "link", link=pair))

        for _ in range(n_drops):
            events.append(FaultEvent(rng.randrange(lo, hi), "drop"))

        return cls(events, seed=seed)


def _fully_routable(routing, topology: Topology) -> bool:
    """Does the routing offer an injection route for every endpoint pair?"""
    return all(
        routing.candidates(src, dst, None)
        for src in topology.endpoints
        for dst in topology.endpoints
        if src != dst
    )
