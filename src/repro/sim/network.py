"""The cycle-based wormhole network simulator.

One :class:`NetworkSimulator` instance owns the complete runtime state of
a network: per-wire FIFO buffers with wormhole ownership, per-node source
queues, and the routing/selection machinery.  Each :meth:`step` executes
one cycle in three phases:

1. **ejection** — front flits that reached their destination are consumed
   (sinks always accept: deadlocks observed are network deadlocks);
2. **route computation / VC allocation** — head flits at buffer fronts
   (and source-queue heads) acquire a free output wire among the routing
   function's candidates, chosen by the selection policy;
3. **switch allocation / traversal** — every physical link moves at most
   one flit per cycle; winners are rotated round-robin among requesting
   wires, gated by downstream buffer space (credits).

A progress watchdog detects deadlock: if no flit moves for ``watchdog``
consecutive cycles while flits are in flight, the simulation is declared
deadlocked (the wait-for graph in :mod:`repro.sim.deadlock` produces the
cyclic-wait witness).

Runtime faults and recovery
---------------------------
A :class:`~repro.sim.faults.FaultSchedule` injects link failures, router
failures and transient flit corruption mid-simulation.  Permanent faults
degrade the topology (:class:`~repro.topology.irregular.FaultyMesh`),
rebuild the routing function through ``routing_factory`` and re-verify
the new channel dependency graph (:mod:`repro.cdg.verify`); packets
disturbed by the reconfiguration are aborted and retransmitted from their
source.  A :class:`~repro.sim.faults.RecoveryPolicy` additionally arms
*regressive deadlock recovery*: when the watchdog confirms a cyclic wait,
one victim packet is aborted (releasing its wires and buffer slots) and
retransmitted after exponential backoff, instead of halting the run.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Sequence

from repro.errors import (
    DeadlockDetected,
    FaultError,
    RoutingError,
    SimulationError,
    TopologyError,
    UnroutableError,
)
from repro.routing.base import RoutingFunction
from repro.routing.selection import SelectionContext, SelectionPolicy, first_candidate
from repro.sim.buffers import WireState
from repro.sim.faults import FaultEvent, FaultSchedule, RecoveryPolicy
from repro.sim.flit import Flit, Packet
from repro.sim.stats import SimStats
from repro.sim.traffic import TrafficGenerator
from repro.topology.base import Coord, Link, Topology
from repro.topology.classes import ClassRule, no_classes
from repro.topology.irregular import FaultyMesh
from repro.topology.wires import Wire, wires_for


class _InjectionState:
    """Progress of the packet currently streaming out of a source queue."""

    __slots__ = ("packet", "flits", "next_seq", "out_wire")

    def __init__(self, packet: Packet) -> None:
        self.packet = packet
        self.flits = list(packet.flits())
        self.next_seq = 0
        self.out_wire: Wire | None = None

    @property
    def done(self) -> bool:
        return self.next_seq >= len(self.flits)

    def current_flit(self) -> Flit:
        return self.flits[self.next_seq]


class NetworkSimulator:
    """A complete wormhole network bound to one routing function.

    Parameters
    ----------
    topology, routing, rule:
        The network, its routing algorithm and the spatial-class rule the
        algorithm's channel classes expect.
    buffer_depth:
        Flit capacity of each wire's input buffer.
    pipeline_delay:
        Extra per-hop cycles modelling the router pipeline depth (RC/VA/
        SA/ST stages beyond the single link-traversal cycle).  0 keeps the
        idealised one-cycle router.
    selection:
        Output selection policy among legal candidates.
    atomic_buffers:
        ``False`` (default) is the EbDa-relaxed discipline: several packets
        may queue in one buffer.  ``True`` enforces Duato's Assumption 3.
    switching:
        ``"wormhole"`` (default) streams flits as soon as one slot frees;
        ``"vct"`` (virtual cut-through) allocates an output only when the
        downstream buffer can hold the *whole* packet; ``"saf"``
        (store-and-forward) additionally holds the head until the entire
        packet has been stored at the current router.  Per the paper's
        Assumption 1, SAF and VCT are special cases of wormhole, so every
        EbDa design must be deadlock-free in all three modes.
    watchdog:
        Zero-progress cycles before declaring deadlock (or, with a
        recovery policy, before attempting regressive recovery).
    seed:
        Seed for the selection policy's RNG (traffic has its own seed).
    tracer:
        Optional :class:`~repro.sim.trace.Trace` recording every event.
    metrics:
        Optional :class:`~repro.sim.metrics.MetricsCollector` sampling
        per-channel utilization, buffer occupancy, VC stalls and
        throughput at a configurable interval, and freezing a
        :class:`~repro.sim.metrics.DeadlockForensics` snapshot when the
        watchdog declares deadlock.  None (default) keeps every telemetry
        hook a no-op.
    faults:
        Optional :class:`~repro.sim.faults.FaultSchedule` applied at the
        start of each matching cycle.
    recovery:
        Optional :class:`~repro.sim.faults.RecoveryPolicy`.  When set,
        watchdog-confirmed cyclic waits are broken by aborting a victim
        packet and retransmitting it from the source (bounded retries,
        exponential backoff); fault-disturbed packets are likewise
        retransmitted instead of being dropped.
    routing_factory:
        Rebuilds the routing function over a degraded topology after a
        permanent (link/router) fault.  Required when the schedule
        contains permanent faults.  The rebuilt function's CDG is
        re-verified; a cyclic verdict raises :class:`FaultError` unless
        ``require_acyclic_reroute`` is False.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        rule: ClassRule = no_classes,
        *,
        buffer_depth: int = 4,
        pipeline_delay: int = 0,
        selection: SelectionPolicy = first_candidate,
        atomic_buffers: bool = False,
        switching: str = "wormhole",
        watchdog: int = 500,
        seed: int = 0,
        tracer=None,
        metrics=None,
        faults: FaultSchedule | None = None,
        recovery: RecoveryPolicy | None = None,
        routing_factory: Callable[[Topology], RoutingFunction] | None = None,
        require_acyclic_reroute: bool = True,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.rule = rule
        self.selection = selection
        self.atomic_buffers = atomic_buffers
        if switching not in ("wormhole", "vct", "saf"):
            raise SimulationError(f"unknown switching mode {switching!r}")
        self.switching = switching
        if pipeline_delay < 0:
            raise SimulationError("pipeline_delay cannot be negative")
        self.pipeline_delay = pipeline_delay
        self.watchdog = watchdog
        self.tracer = tracer
        self.rng = random.Random(seed)
        self.buffer_depth = buffer_depth
        self.faults = faults
        self.recovery = recovery
        self.routing_factory = routing_factory
        self.require_acyclic_reroute = require_acyclic_reroute
        #: CDG verdict of the most recent fault-triggered re-verification.
        self.last_reroute_verdict = None
        self._fault_rng = random.Random(faults.seed if faults is not None else 0)
        #: pid -> abort count (bounds deadlock-recovery retries).
        self._retries: dict[int, int] = {}
        #: (ready_cycle, packet) retransmissions waiting out their backoff.
        self._pending_retransmits: list[tuple[int, Packet]] = []
        #: pid -> cycle of first abort (recovery-latency accounting).
        self._abort_cycle: dict[int, int] = {}

        wires = sorted(wires_for(topology, routing.channel_classes, rule))
        if not wires:
            raise SimulationError("routing channel classes instantiate no wires")
        self.wires: tuple[Wire, ...] = tuple(wires)
        self.state: dict[Wire, WireState] = {
            w: WireState(w, buffer_depth) for w in self.wires
        }
        self._wire_lookup: dict[tuple[Coord, Coord, object], Wire] = {
            (w.src, w.dst, w.channel): w for w in self.wires
        }
        self.source_queues: dict[Coord, deque[Packet]] = {
            node: deque() for node in topology.nodes
        }
        self._injecting: dict[Coord, _InjectionState | None] = {
            node: None for node in topology.nodes
        }
        #: (wire, pid) -> allocated output wire for that packet at wire.dst.
        self.route_assignment: dict[tuple[Wire, int], Wire] = {}

        self.cycle = 0
        self.stats = SimStats()
        self._stall_cycles = 0
        self.metrics = metrics
        if metrics is not None:
            metrics.bind(self)

    # -- state queries ----------------------------------------------------------

    def flits_in_network(self) -> int:
        """Flits currently buffered in wires."""
        return sum(len(ws.buffer) for ws in self.state.values())

    def packets_in_flight(self) -> int:
        """Packets injected but not fully delivered."""
        return self.stats.packets_injected - self.stats.packets_delivered

    def is_idle(self) -> bool:
        """No flits buffered, nothing queued, streaming or awaiting backoff."""
        return not self._network_active() and not self._pending_retransmits

    def _network_active(self) -> bool:
        """Flits buffered, queued at sources, or streaming from a source."""
        return (
            self.flits_in_network() > 0
            or any(self.source_queues.values())
            or any(s is not None for s in self._injecting.values())
        )

    def credits_of(self, candidate: tuple[Coord, object], cur: Coord) -> int:
        """Free downstream slots for a (next_node, channel) candidate."""
        wire = self._wire_lookup.get((cur, candidate[0], candidate[1]))
        if wire is None:
            return 0
        return self.state[wire].free_slots

    # -- traffic entry ------------------------------------------------------------

    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet at its source node.

        Packets addressed to or from a fault-killed router are counted as
        injected-then-lost rather than rejected: traffic generators built
        over the original topology keep producing them after the failure,
        and flit conservation (``delivered + lost == injected``) must hold.
        """
        dead = getattr(self.topology, "failed_nodes", ())
        if packet.src in dead or packet.dst in dead:
            self.stats.packets_injected += 1
            self._mark_lost(packet)
            return
        self.topology.validate_node(packet.src)
        self.topology.validate_node(packet.dst)
        self.source_queues[packet.src].append(packet)
        self.stats.packets_injected += 1
        if self.tracer is not None:
            self.tracer.packet_offered(self.cycle, packet)

    # -- one cycle ------------------------------------------------------------------

    def step(self, new_packets: Sequence[Packet] = ()) -> int:
        """Advance one cycle; returns the number of flit movements."""
        self._release_retransmits()
        if self.faults is not None:
            for event in self.faults.at(self.cycle):
                self._apply_fault(event)
        for packet in new_packets:
            self.offer_packet(packet)

        moves = 0
        moves += self._eject_phase()
        self._allocation_phase()
        moves += self._traversal_phase()

        self.cycle += 1
        self.stats.cycles = self.cycle
        self.stats.flit_moves += moves

        if moves == 0 and self._network_active():
            self._stall_cycles += 1
            if self._stall_cycles >= self.watchdog and not self.stats.deadlocked:
                if self.recovery is not None and self._recover_deadlock():
                    self._stall_cycles = 0
                else:
                    self.stats.deadlocked = True
                    self.stats.deadlock_declared_at = self.cycle
                    if self.tracer is not None:
                        self.tracer.deadlock_declared(self.cycle)
                    if self.metrics is not None:
                        self.metrics.on_deadlock(self)
        else:
            self._stall_cycles = 0
        if self.metrics is not None:
            self.metrics.on_cycle(self, moves)
        return moves

    # -- phase 1: ejection ---------------------------------------------------------

    def _eject_phase(self) -> int:
        moves = 0
        for wire in self.wires:
            ws = self.state[wire]
            flit = ws.front()
            if flit is None or flit.packet.dst != wire.dst:
                continue
            if not ws.front_ready(self.cycle, self.pipeline_delay):
                continue
            ws.pop()
            moves += 1
            if self.tracer is not None:
                self.tracer.ejected(self.cycle, flit, wire.dst)
            if flit.is_tail:
                packet = flit.packet
                packet.delivered = self.cycle
                assert packet.entered is not None
                self.stats.record_delivery(
                    packet.delivered - packet.created,
                    packet.delivered - packet.entered,
                    packet.length,
                )
                aborted_at = self._abort_cycle.pop(packet.pid, None)
                if aborted_at is not None:
                    self.stats.recovery_latencies.append(self.cycle - aborted_at)
                self._retries.pop(packet.pid, None)
                if self.atomic_buffers:
                    ws.owner = None
        return moves

    # -- phase 2: routing and VC allocation ------------------------------------------

    def _allocation_phase(self) -> None:
        # Heads buffered in the network.
        for wire in self.wires:
            ws = self.state[wire]
            flit = ws.front()
            if flit is None or not flit.is_head:
                continue
            router = wire.dst
            if flit.packet.dst == router:
                continue  # ejected next cycle
            key = (wire, flit.pid)
            if key in self.route_assignment:
                continue
            if self.switching == "saf" and not self._fully_stored(ws, flit.packet):
                continue  # store-and-forward: wait for the whole packet
            try:
                self._try_allocate(router, flit.packet, wire.channel, key)
            except RoutingError as exc:
                self._handle_dead_end(flit.packet, wire.channel, exc)

        # Source-queue heads.
        for node in self.topology.nodes:
            inj = self._injecting[node]
            if inj is None:
                queue = self.source_queues[node]
                if not queue:
                    continue
                inj = _InjectionState(queue.popleft())
                self._injecting[node] = inj
            if inj.out_wire is None:
                try:
                    self._try_allocate(node, inj.packet, None, inj)
                except RoutingError as exc:
                    self._handle_dead_end(inj.packet, None, exc)

    @staticmethod
    def _fully_stored(ws: WireState, packet) -> bool:
        """Are all of the packet's flits buffered in this wire (SAF gate)?"""
        return sum(1 for f in ws.buffer if f.pid == packet.pid) == packet.length

    def _try_allocate(self, router, packet, in_channel, slot) -> None:
        if self.switching in ("vct", "saf"):
            capacity = next(iter(self.state.values())).capacity
            if packet.length > capacity:
                raise SimulationError(
                    f"{self.switching} switching needs buffers that hold a"
                    f" whole packet: length {packet.length} > depth {capacity}"
                )
        target = self.routing.target_of(packet, router)
        candidates = self.routing.candidates(router, target, in_channel)
        if not candidates:
            raise RoutingError(
                f"{self.routing.name}: dead-end at {router} for {packet}"
                f" arriving on {in_channel}"
            )
        available = []
        for nxt, ch in candidates:
            wire = self._wire_lookup.get((router, nxt, ch))
            if wire is None or self.state[wire].owner is not None:
                continue
            if (
                self.switching in ("vct", "saf")
                and self.state[wire].free_slots < packet.length
            ):
                continue  # cut-through: reserve space for the whole packet
            available.append((nxt, ch))
        if not available:
            if self.metrics is not None:
                self.metrics.note_vc_stall(router)
            return  # blocked this cycle; retry next cycle
        ctx = SelectionContext(
            cur=router,
            dst=packet.dst,
            rng=self.rng,
            credits=lambda cand, _r=router: self.credits_of(cand, _r),
            cycle=self.cycle,
        )
        nxt, ch = self.selection(available, ctx)
        out_wire = self._wire_lookup[(router, nxt, ch)]
        self.state[out_wire].owner = packet.pid
        if self.tracer is not None:
            self.tracer.allocated(self.cycle, router, packet.pid, out_wire)
        if isinstance(slot, _InjectionState):
            slot.out_wire = out_wire
        else:
            self.route_assignment[slot] = out_wire

    # -- phase 3: switch allocation and traversal --------------------------------------

    def _traversal_phase(self) -> int:
        # Snapshot buffer space: at most one arrival per wire per cycle
        # (one flit per physical link), so a single free slot suffices.
        space = {wire: self.state[wire].free_slots for wire in self.wires}

        # Gather requests per physical output link.
        by_link: dict[Link, list[tuple[int, object, Wire, Flit]]] = {}
        order = 0
        for wire in self.wires:
            ws = self.state[wire]
            flit = ws.front()
            if flit is None or flit.packet.dst == wire.dst:
                continue
            if not ws.front_ready(self.cycle, self.pipeline_delay):
                continue
            out_wire = self.route_assignment.get((wire, flit.pid))
            if out_wire is None:
                continue
            by_link.setdefault(out_wire.link, []).append((order, wire, out_wire, flit))
            order += 1
        for node in self.topology.nodes:
            inj = self._injecting[node]
            if inj is None or inj.out_wire is None or inj.done:
                continue
            by_link.setdefault(inj.out_wire.link, []).append(
                (order, node, inj.out_wire, inj.current_flit())
            )
            order += 1

        moves = 0
        for link in sorted(by_link):
            requests = [r for r in by_link[link] if space[r[2]] >= 1]
            if not requests:
                continue
            winner = requests[self.cycle % len(requests)]
            _order, source, out_wire, flit = winner
            self._move_flit(source, out_wire, flit)
            space[out_wire] -= 1
            moves += 1
        return moves

    def _move_flit(self, source, out_wire: Wire, flit: Flit) -> None:
        out_state = self.state[out_wire]
        if isinstance(source, Wire):
            ws = self.state[source]
            popped = ws.pop()
            assert popped is flit, "FIFO front changed mid-cycle"
            if flit.is_tail:
                del self.route_assignment[(source, flit.pid)]
                if self.atomic_buffers:
                    ws.owner = None
                # Path-based multicast: a waypoint absorbs its copy once
                # the whole worm (tail included) has passed through it.
                router = source.dst
                packet = flit.packet
                if router in packet.waypoints and router not in packet.copies:
                    packet.copies.add(router)
                    self.stats.multicast_copies += 1
                    if self.tracer is not None:
                        self.tracer.copy_absorbed(self.cycle, packet.pid, router)
        else:  # injection from a source node
            inj = self._injecting[source]
            assert inj is not None and inj.current_flit() is flit
            inj.next_seq += 1
            if flit.is_head:
                inj.packet.entered = self.cycle
            if inj.done:
                self._injecting[source] = None
        out_state.push(flit, self.cycle)
        if self.tracer is not None:
            self.tracer.flit_moved(self.cycle, flit, source, out_wire)
        if flit.is_tail and not self.atomic_buffers:
            # EbDa-relaxed: the wire is re-allocatable as soon as the tail
            # is in the buffer; another packet may queue behind it.
            out_state.owner = None

    # -- fault injection and recovery ---------------------------------------------------

    def _handle_dead_end(self, packet: Packet, in_channel, exc: RoutingError) -> None:
        """A packet with no legal output: fatal normally, recoverable under faults.

        Freshly injected packets (``in_channel is None``) with no route are
        structurally unroutable — retrying from the source cannot help.
        Mid-flight dead-ends (routed into a fault pocket before the
        reconfiguration) abort and retransmit under the recovery policy.
        """
        if self.recovery is None and self.faults is None:
            raise exc
        attempt = self._retries.get(packet.pid, 0)
        if (
            in_channel is None
            or self.recovery is None
            or attempt >= self.recovery.max_retries
        ):
            raise UnroutableError(
                f"{packet} cannot reach its destination on the degraded network: {exc}"
            ) from exc
        self._abort_packet(packet, reason="routing dead-end")
        self._retries[packet.pid] = attempt + 1
        self._pending_retransmits.append(
            (self.cycle + self.recovery.backoff_delay(attempt), packet)
        )

    def _release_retransmits(self) -> None:
        """Re-queue aborted packets whose backoff expired."""
        if not self._pending_retransmits:
            return
        due = [e for e in self._pending_retransmits if e[0] <= self.cycle]
        if not due:
            return
        self._pending_retransmits = [
            e for e in self._pending_retransmits if e[0] > self.cycle
        ]
        for _ready, packet in sorted(due, key=lambda e: (e[0], e[1].pid)):
            if (
                packet.src not in self.topology.node_set
                or packet.dst not in self.topology.node_set
            ):
                self._mark_lost(packet)
                continue
            packet.entered = None
            packet.delivered = None
            packet.copies = set()
            self.source_queues[packet.src].append(packet)
            self.stats.retransmissions += 1
            if self.tracer is not None:
                self.tracer.packet_retransmitted(self.cycle, packet.pid, packet.src)

    def _recover_deadlock(self) -> bool:
        """Break a confirmed cyclic wait by aborting one victim packet.

        Returns False (caller declares deadlock) when the stall has no
        cyclic-wait witness or every participant exhausted its retries.
        """
        from repro.sim.deadlock import waitfor_cycle

        pids = waitfor_cycle(self)
        if not pids:
            return False
        # Victim: the youngest participant with retry budget left — it has
        # the least progress sunk and backoff desynchronises repeat offenders.
        for victim_pid in sorted(pids, reverse=True):
            if self._retries.get(victim_pid, 0) < self.recovery.max_retries:
                break
        else:
            return False
        packet = self._find_packet(victim_pid)
        if packet is None:  # pragma: no cover - witness pids are in flight
            return False
        if self.tracer is not None:
            self.tracer.deadlock_recovered(self.cycle, victim_pid, pids)
        self._abort_packet(packet, reason="deadlock victim")
        attempt = self._retries.get(victim_pid, 0)
        self._retries[victim_pid] = attempt + 1
        self._pending_retransmits.append(
            (self.cycle + self.recovery.backoff_delay(attempt), packet)
        )
        self.stats.recovered_deadlocks += 1
        return True

    def _find_packet(self, pid: int) -> Packet | None:
        """Locate an undelivered packet anywhere in the simulator."""
        for ws in self.state.values():
            for flit in ws.buffer:
                if flit.pid == pid:
                    return flit.packet
        for inj in self._injecting.values():
            if inj is not None and inj.packet.pid == pid:
                return inj.packet
        for queue in self.source_queues.values():
            for packet in queue:
                if packet.pid == pid:
                    return packet
        return None

    def _abort_packet(self, packet: Packet, reason: str) -> None:
        """Flush a packet's flits and release every resource it holds."""
        pid = packet.pid
        for ws in self.state.values():
            if any(f.pid == pid for f in ws.buffer):
                kept = [(f, a) for f, a in zip(ws.buffer, ws.arrivals) if f.pid != pid]
                ws.buffer = deque(f for f, _a in kept)
                ws.arrivals = deque(a for _f, a in kept)
            if ws.owner == pid:
                ws.owner = None
        for key in [k for k in self.route_assignment if k[1] == pid]:
            del self.route_assignment[key]
        for node, inj in self._injecting.items():
            if inj is not None and inj.packet.pid == pid:
                self._injecting[node] = None
        for queue in self.source_queues.values():
            for queued in list(queue):
                if queued.pid == pid:
                    queue.remove(queued)
        self.stats.packets_aborted += 1
        self._abort_cycle.setdefault(pid, self.cycle)
        if self.tracer is not None:
            self.tracer.packet_aborted(self.cycle, pid, reason)

    def _mark_lost(self, packet: Packet) -> None:
        """Give up on a packet permanently (dead endpoint / retries spent)."""
        self.stats.packets_lost += 1
        self._abort_cycle.pop(packet.pid, None)
        if self.tracer is not None:
            self.tracer.packet_aborted(self.cycle, packet.pid, "lost")

    def _recover_or_lose(self, packet: Packet) -> None:
        """Retransmit an aborted packet if policy and endpoints allow."""
        if (
            self.recovery is None
            or packet.src not in self.topology.node_set
            or packet.dst not in self.topology.node_set
        ):
            self._mark_lost(packet)
            return
        attempt = self._retries.get(packet.pid, 0)
        if attempt >= self.recovery.max_retries:
            self._mark_lost(packet)
            return
        self._retries[packet.pid] = attempt + 1
        self._pending_retransmits.append(
            (self.cycle + self.recovery.backoff_delay(attempt), packet)
        )

    def _apply_fault(self, event: FaultEvent) -> None:
        if event.kind == "link":
            u, v = event.link
            if not (self.topology.has_link(u, v) or self.topology.has_link(v, u)):
                # Idempotent only for links that genuinely went away —
                # failed earlier, or attached to a dead router.  A link the
                # topology never had is a schedule typo, not a fault.
                key = tuple(sorted((u, v)))
                failed = {
                    tuple(sorted(l))
                    for l in getattr(self.topology, "failed_links", ())
                }
                dead = getattr(self.topology, "failed_nodes", ())
                if key in failed or u in dead or v in dead:
                    return  # already failed
                raise FaultError(
                    f"link fault names an unknown link {u}-{v}"
                )
            self.stats.faults_injected += 1
            if self.tracer is not None:
                self.tracer.fault_injected(self.cycle, f"link {u}-{v} failed")
            try:
                if isinstance(self.topology, FaultyMesh):
                    degraded = self.topology.without_link(u, v)
                else:
                    degraded = FaultyMesh(self.topology, failed=[(u, v)])
            except TopologyError as exc:
                raise UnroutableError(
                    f"link failure {u}-{v} disconnects the network"
                ) from exc
            self._rebuild_network(degraded, f"link {u}-{v} failed")
        elif event.kind == "router":
            node = event.node
            if node not in self.topology.node_set:
                if node in getattr(self.topology, "failed_nodes", ()):
                    return  # already failed
                raise FaultError(f"router fault names an unknown node {node}")
            self.stats.faults_injected += 1
            if self.tracer is not None:
                self.tracer.fault_injected(self.cycle, f"router {node} failed")
            try:
                if isinstance(self.topology, FaultyMesh):
                    degraded = self.topology.without_router(node)
                else:
                    degraded = FaultyMesh(self.topology, failed=[], failed_nodes=[node])
            except TopologyError as exc:
                raise UnroutableError(
                    f"router failure at {node} disconnects the network"
                ) from exc
            self._rebuild_network(degraded, f"router {node} failed")
        else:  # "drop": transient corruption of one in-flight packet
            pid = event.pid
            if pid is None:
                pool = sorted(
                    {flit.pid for ws in self.state.values() for flit in ws.buffer}
                )
                if not pool:
                    return  # nothing in flight to corrupt
                pid = self._fault_rng.choice(pool)
            packet = self._find_packet(pid)
            if packet is None:
                return
            self.stats.faults_injected += 1
            if self.tracer is not None:
                self.tracer.fault_injected(self.cycle, f"flit of #{pid} corrupted")
            self._abort_packet(packet, reason="flit corrupted")
            self._recover_or_lose(packet)

    def _rebuild_network(self, degraded: Topology, why: str) -> None:
        """Swap in a degraded topology: reroute, re-verify, abort casualties.

        Every packet buffered on (or owning, or routed through, or
        streaming into) a wire that no longer exists is aborted and — when
        its endpoints survive and a recovery policy is armed —
        retransmitted from its source over the rebuilt routing function.
        """
        if self.routing_factory is None:
            raise FaultError(
                f"{why}: a routing_factory is required to reroute around"
                " permanent faults"
            )
        new_routing = self.routing_factory(degraded)
        from repro.cdg.verify import verify_routing

        verdict = verify_routing(new_routing, degraded, self.rule)
        self.last_reroute_verdict = verdict
        if self.require_acyclic_reroute and not verdict.acyclic:
            raise FaultError(
                f"{why}: rerouted design is no longer deadlock-free ({verdict})"
            )
        new_wires = sorted(wires_for(degraded, new_routing.channel_classes, self.rule))
        if not new_wires:
            raise FaultError(f"{why}: degraded routing instantiates no wires")
        new_wire_set = set(new_wires)
        dead_nodes = set(self.topology.nodes) - set(degraded.nodes)

        # Everything currently in flight, and the subset the swap disturbs.
        in_flight: dict[int, Packet] = {}
        for ws in self.state.values():
            for flit in ws.buffer:
                in_flight[flit.pid] = flit.packet
        for inj in self._injecting.values():
            if inj is not None:
                in_flight[inj.packet.pid] = inj.packet
        victims: set[int] = set()
        for wire in self.wires:
            if wire in new_wire_set:
                continue
            ws = self.state[wire]
            victims.update(ws.packets_present())
            if ws.owner is not None:
                victims.add(ws.owner)
        for (wire, pid), out_wire in self.route_assignment.items():
            if wire not in new_wire_set or out_wire not in new_wire_set:
                victims.add(pid)
        for inj in self._injecting.values():
            if inj is not None and inj.out_wire is not None:
                if inj.out_wire not in new_wire_set:
                    victims.add(inj.packet.pid)
            if inj is not None and inj.packet.src in dead_nodes:
                victims.add(inj.packet.pid)

        # Swap in the degraded network.
        self.topology = degraded
        self.routing = new_routing
        self.wires = tuple(new_wires)
        old_state = self.state
        self.state = {}
        for wire in self.wires:
            prior = old_state.get(wire)
            self.state[wire] = (
                prior if prior is not None else WireState(wire, self.buffer_depth)
            )
        self._wire_lookup = {(w.src, w.dst, w.channel): w for w in self.wires}

        # Source-side state: keep surviving queues, drop dead endpoints.
        lost_queued: list[Packet] = []
        new_queues: dict[Coord, deque[Packet]] = {}
        new_injecting: dict[Coord, _InjectionState | None] = {}
        for node in degraded.nodes:
            kept: deque[Packet] = deque()
            for queued in self.source_queues.get(node, ()):
                if queued.dst in dead_nodes:
                    lost_queued.append(queued)
                else:
                    kept.append(queued)
            new_queues[node] = kept
            new_injecting[node] = self._injecting.get(node)
        for node in dead_nodes:
            lost_queued.extend(self.source_queues.get(node, ()))
        self.source_queues = new_queues
        self._injecting = new_injecting

        # Abort every disturbed packet; retransmit the recoverable ones.
        for pid in sorted(victims):
            packet = in_flight.get(pid)
            if packet is None:
                continue
            self._abort_packet(packet, reason=why)
            if packet.dst in dead_nodes or packet.src in dead_nodes:
                self._mark_lost(packet)
            else:
                self._recover_or_lose(packet)
        # In-flight survivors bound for a dead router cannot be delivered.
        for pid, packet in sorted(in_flight.items()):
            if pid in victims:
                continue
            if packet.dst in dead_nodes:
                self._abort_packet(packet, reason=why)
                self._mark_lost(packet)
        for packet in lost_queued:
            self._mark_lost(packet)
        # Defensive: no assignment may reference a removed wire.
        self.route_assignment = {
            key: out
            for key, out in self.route_assignment.items()
            if key[0] in new_wire_set and out in new_wire_set
        }
        if self.tracer is not None:
            self.tracer.rerouted(
                self.cycle,
                f"{why}; {new_routing.name} re-verified"
                f" ({'acyclic' if verdict.acyclic else 'CYCLIC'}),"
                f" {len(victims)} packet(s) disturbed",
            )

    # -- driving loops ----------------------------------------------------------------

    def run(
        self,
        cycles: int,
        traffic: TrafficGenerator | None = None,
        *,
        drain: bool = False,
        drain_limit: int = 100_000,
        raise_on_deadlock: bool = False,
    ) -> SimStats:
        """Run ``cycles`` cycles (plus optional drain) and return the stats.

        ``traffic`` generates packets each cycle; with ``drain=True`` the
        simulation continues without new traffic until the network empties
        (or ``drain_limit`` extra cycles pass).
        """
        for _ in range(cycles):
            new = traffic.packets_for_cycle(self.cycle) if traffic else ()
            self.step(new)
            if self.stats.deadlocked:
                break
        if drain and not self.stats.deadlocked:
            extra = 0
            while not self.is_idle() and extra < drain_limit:
                self.step()
                extra += 1
                if self.stats.deadlocked:
                    break
        if self.stats.deadlocked and raise_on_deadlock:
            from repro.sim.deadlock import cycle_witness

            witness = cycle_witness(self)
            if witness is None:
                raise DeadlockDetected(())
            pids, held = witness
            raise DeadlockDetected(pids, cycle_channels=held)
        return self.stats
