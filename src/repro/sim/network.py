"""The cycle-based wormhole network simulator.

One :class:`NetworkSimulator` instance owns the complete runtime state of
a network: per-wire FIFO buffers with wormhole ownership, per-node source
queues, and the routing/selection machinery.  Each :meth:`step` executes
one cycle in three phases:

1. **ejection** — front flits that reached their destination are consumed
   (sinks always accept: deadlocks observed are network deadlocks);
2. **route computation / VC allocation** — head flits at buffer fronts
   (and source-queue heads) acquire a free output wire among the routing
   function's candidates, chosen by the selection policy;
3. **switch allocation / traversal** — every physical link moves at most
   one flit per cycle; winners are rotated round-robin among requesting
   wires, gated by downstream buffer space (credits).

A progress watchdog detects deadlock: if no flit moves for ``watchdog``
consecutive cycles while flits are in flight, the simulation is declared
deadlocked (the wait-for graph in :mod:`repro.sim.deadlock` produces the
cyclic-wait witness).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

from repro.errors import DeadlockDetected, RoutingError, SimulationError
from repro.routing.base import RoutingFunction
from repro.routing.selection import SelectionContext, SelectionPolicy, first_candidate
from repro.sim.buffers import WireState
from repro.sim.flit import Flit, Packet
from repro.sim.stats import SimStats
from repro.sim.traffic import TrafficGenerator
from repro.topology.base import Coord, Link, Topology
from repro.topology.classes import ClassRule, no_classes
from repro.topology.wires import Wire, wires_for


class _InjectionState:
    """Progress of the packet currently streaming out of a source queue."""

    __slots__ = ("packet", "flits", "next_seq", "out_wire")

    def __init__(self, packet: Packet) -> None:
        self.packet = packet
        self.flits = list(packet.flits())
        self.next_seq = 0
        self.out_wire: Wire | None = None

    @property
    def done(self) -> bool:
        return self.next_seq >= len(self.flits)

    def current_flit(self) -> Flit:
        return self.flits[self.next_seq]


class NetworkSimulator:
    """A complete wormhole network bound to one routing function.

    Parameters
    ----------
    topology, routing, rule:
        The network, its routing algorithm and the spatial-class rule the
        algorithm's channel classes expect.
    buffer_depth:
        Flit capacity of each wire's input buffer.
    pipeline_delay:
        Extra per-hop cycles modelling the router pipeline depth (RC/VA/
        SA/ST stages beyond the single link-traversal cycle).  0 keeps the
        idealised one-cycle router.
    selection:
        Output selection policy among legal candidates.
    atomic_buffers:
        ``False`` (default) is the EbDa-relaxed discipline: several packets
        may queue in one buffer.  ``True`` enforces Duato's Assumption 3.
    switching:
        ``"wormhole"`` (default) streams flits as soon as one slot frees;
        ``"vct"`` (virtual cut-through) allocates an output only when the
        downstream buffer can hold the *whole* packet; ``"saf"``
        (store-and-forward) additionally holds the head until the entire
        packet has been stored at the current router.  Per the paper's
        Assumption 1, SAF and VCT are special cases of wormhole, so every
        EbDa design must be deadlock-free in all three modes.
    watchdog:
        Zero-progress cycles before declaring deadlock.
    seed:
        Seed for the selection policy's RNG (traffic has its own seed).
    tracer:
        Optional :class:`~repro.sim.trace.Trace` recording every event.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RoutingFunction,
        rule: ClassRule = no_classes,
        *,
        buffer_depth: int = 4,
        pipeline_delay: int = 0,
        selection: SelectionPolicy = first_candidate,
        atomic_buffers: bool = False,
        switching: str = "wormhole",
        watchdog: int = 500,
        seed: int = 0,
        tracer=None,
    ) -> None:
        self.topology = topology
        self.routing = routing
        self.rule = rule
        self.selection = selection
        self.atomic_buffers = atomic_buffers
        if switching not in ("wormhole", "vct", "saf"):
            raise SimulationError(f"unknown switching mode {switching!r}")
        self.switching = switching
        if pipeline_delay < 0:
            raise SimulationError("pipeline_delay cannot be negative")
        self.pipeline_delay = pipeline_delay
        self.watchdog = watchdog
        self.tracer = tracer
        self.rng = random.Random(seed)

        wires = sorted(wires_for(topology, routing.channel_classes, rule))
        if not wires:
            raise SimulationError("routing channel classes instantiate no wires")
        self.wires: tuple[Wire, ...] = tuple(wires)
        self.state: dict[Wire, WireState] = {
            w: WireState(w, buffer_depth) for w in self.wires
        }
        self._wire_lookup: dict[tuple[Coord, Coord, object], Wire] = {
            (w.src, w.dst, w.channel): w for w in self.wires
        }
        self.source_queues: dict[Coord, deque[Packet]] = {
            node: deque() for node in topology.nodes
        }
        self._injecting: dict[Coord, _InjectionState | None] = {
            node: None for node in topology.nodes
        }
        #: (wire, pid) -> allocated output wire for that packet at wire.dst.
        self.route_assignment: dict[tuple[Wire, int], Wire] = {}

        self.cycle = 0
        self.stats = SimStats()
        self._stall_cycles = 0

    # -- state queries ----------------------------------------------------------

    def flits_in_network(self) -> int:
        """Flits currently buffered in wires."""
        return sum(len(ws.buffer) for ws in self.state.values())

    def packets_in_flight(self) -> int:
        """Packets injected but not fully delivered."""
        return self.stats.packets_injected - self.stats.packets_delivered

    def is_idle(self) -> bool:
        """No flits buffered, nothing queued at sources, nothing streaming."""
        return (
            self.flits_in_network() == 0
            and all(not q for q in self.source_queues.values())
            and all(s is None for s in self._injecting.values())
        )

    def credits_of(self, candidate: tuple[Coord, object], cur: Coord) -> int:
        """Free downstream slots for a (next_node, channel) candidate."""
        wire = self._wire_lookup.get((cur, candidate[0], candidate[1]))
        if wire is None:
            return 0
        return self.state[wire].free_slots

    # -- traffic entry ------------------------------------------------------------

    def offer_packet(self, packet: Packet) -> None:
        """Queue a packet at its source node."""
        self.topology.validate_node(packet.src)
        self.topology.validate_node(packet.dst)
        self.source_queues[packet.src].append(packet)
        self.stats.packets_injected += 1
        if self.tracer is not None:
            self.tracer.packet_offered(self.cycle, packet)

    # -- one cycle ------------------------------------------------------------------

    def step(self, new_packets: Sequence[Packet] = ()) -> int:
        """Advance one cycle; returns the number of flit movements."""
        for packet in new_packets:
            self.offer_packet(packet)

        moves = 0
        moves += self._eject_phase()
        self._allocation_phase()
        moves += self._traversal_phase()

        self.cycle += 1
        self.stats.cycles = self.cycle
        self.stats.flit_moves += moves

        if moves == 0 and not self.is_idle():
            self._stall_cycles += 1
            if self._stall_cycles >= self.watchdog and not self.stats.deadlocked:
                self.stats.deadlocked = True
                self.stats.deadlock_cycle = self.cycle
                if self.tracer is not None:
                    self.tracer.deadlock_declared(self.cycle)
        else:
            self._stall_cycles = 0
        return moves

    # -- phase 1: ejection ---------------------------------------------------------

    def _eject_phase(self) -> int:
        moves = 0
        for wire in self.wires:
            ws = self.state[wire]
            flit = ws.front()
            if flit is None or flit.packet.dst != wire.dst:
                continue
            if not ws.front_ready(self.cycle, self.pipeline_delay):
                continue
            ws.pop()
            moves += 1
            if self.tracer is not None:
                self.tracer.ejected(self.cycle, flit, wire.dst)
            if flit.is_tail:
                packet = flit.packet
                packet.delivered = self.cycle
                assert packet.entered is not None
                self.stats.record_delivery(
                    packet.delivered - packet.created,
                    packet.delivered - packet.entered,
                    packet.length,
                )
                if self.atomic_buffers:
                    ws.owner = None
        return moves

    # -- phase 2: routing and VC allocation ------------------------------------------

    def _allocation_phase(self) -> None:
        # Heads buffered in the network.
        for wire in self.wires:
            ws = self.state[wire]
            flit = ws.front()
            if flit is None or not flit.is_head:
                continue
            router = wire.dst
            if flit.packet.dst == router:
                continue  # ejected next cycle
            key = (wire, flit.pid)
            if key in self.route_assignment:
                continue
            if self.switching == "saf" and not self._fully_stored(ws, flit.packet):
                continue  # store-and-forward: wait for the whole packet
            self._try_allocate(router, flit.packet, wire.channel, key)

        # Source-queue heads.
        for node in self.topology.nodes:
            inj = self._injecting[node]
            if inj is None:
                queue = self.source_queues[node]
                if not queue:
                    continue
                inj = _InjectionState(queue.popleft())
                self._injecting[node] = inj
            if inj.out_wire is None:
                self._try_allocate(node, inj.packet, None, inj)

    @staticmethod
    def _fully_stored(ws: WireState, packet) -> bool:
        """Are all of the packet's flits buffered in this wire (SAF gate)?"""
        return sum(1 for f in ws.buffer if f.pid == packet.pid) == packet.length

    def _try_allocate(self, router, packet, in_channel, slot) -> None:
        if self.switching in ("vct", "saf"):
            capacity = next(iter(self.state.values())).capacity
            if packet.length > capacity:
                raise SimulationError(
                    f"{self.switching} switching needs buffers that hold a"
                    f" whole packet: length {packet.length} > depth {capacity}"
                )
        target = self.routing.target_of(packet, router)
        candidates = self.routing.candidates(router, target, in_channel)
        if not candidates:
            raise RoutingError(
                f"{self.routing.name}: dead-end at {router} for {packet}"
                f" arriving on {in_channel}"
            )
        available = []
        for nxt, ch in candidates:
            wire = self._wire_lookup.get((router, nxt, ch))
            if wire is None or self.state[wire].owner is not None:
                continue
            if (
                self.switching in ("vct", "saf")
                and self.state[wire].free_slots < packet.length
            ):
                continue  # cut-through: reserve space for the whole packet
            available.append((nxt, ch))
        if not available:
            return  # blocked this cycle; retry next cycle
        ctx = SelectionContext(
            cur=router,
            dst=packet.dst,
            rng=self.rng,
            credits=lambda cand, _r=router: self.credits_of(cand, _r),
            cycle=self.cycle,
        )
        nxt, ch = self.selection(available, ctx)
        out_wire = self._wire_lookup[(router, nxt, ch)]
        self.state[out_wire].owner = packet.pid
        if self.tracer is not None:
            self.tracer.allocated(self.cycle, router, packet.pid, out_wire)
        if isinstance(slot, _InjectionState):
            slot.out_wire = out_wire
        else:
            self.route_assignment[slot] = out_wire

    # -- phase 3: switch allocation and traversal --------------------------------------

    def _traversal_phase(self) -> int:
        # Snapshot buffer space: at most one arrival per wire per cycle
        # (one flit per physical link), so a single free slot suffices.
        space = {wire: self.state[wire].free_slots for wire in self.wires}

        # Gather requests per physical output link.
        by_link: dict[Link, list[tuple[int, object, Wire, Flit]]] = {}
        order = 0
        for wire in self.wires:
            ws = self.state[wire]
            flit = ws.front()
            if flit is None or flit.packet.dst == wire.dst:
                continue
            if not ws.front_ready(self.cycle, self.pipeline_delay):
                continue
            out_wire = self.route_assignment.get((wire, flit.pid))
            if out_wire is None:
                continue
            by_link.setdefault(out_wire.link, []).append((order, wire, out_wire, flit))
            order += 1
        for node in self.topology.nodes:
            inj = self._injecting[node]
            if inj is None or inj.out_wire is None or inj.done:
                continue
            by_link.setdefault(inj.out_wire.link, []).append(
                (order, node, inj.out_wire, inj.current_flit())
            )
            order += 1

        moves = 0
        for link in sorted(by_link):
            requests = [r for r in by_link[link] if space[r[2]] >= 1]
            if not requests:
                continue
            winner = requests[self.cycle % len(requests)]
            _order, source, out_wire, flit = winner
            self._move_flit(source, out_wire, flit)
            space[out_wire] -= 1
            moves += 1
        return moves

    def _move_flit(self, source, out_wire: Wire, flit: Flit) -> None:
        out_state = self.state[out_wire]
        if isinstance(source, Wire):
            ws = self.state[source]
            popped = ws.pop()
            assert popped is flit, "FIFO front changed mid-cycle"
            if flit.is_tail:
                del self.route_assignment[(source, flit.pid)]
                if self.atomic_buffers:
                    ws.owner = None
                # Path-based multicast: a waypoint absorbs its copy once
                # the whole worm (tail included) has passed through it.
                router = source.dst
                packet = flit.packet
                if router in packet.waypoints and router not in packet.copies:
                    packet.copies.add(router)
                    self.stats.multicast_copies += 1
                    if self.tracer is not None:
                        self.tracer.copy_absorbed(self.cycle, packet.pid, router)
        else:  # injection from a source node
            inj = self._injecting[source]
            assert inj is not None and inj.current_flit() is flit
            inj.next_seq += 1
            if flit.is_head:
                inj.packet.entered = self.cycle
            if inj.done:
                self._injecting[source] = None
        out_state.push(flit, self.cycle)
        if self.tracer is not None:
            self.tracer.flit_moved(self.cycle, flit, source, out_wire)
        if flit.is_tail and not self.atomic_buffers:
            # EbDa-relaxed: the wire is re-allocatable as soon as the tail
            # is in the buffer; another packet may queue behind it.
            out_state.owner = None

    # -- driving loops ----------------------------------------------------------------

    def run(
        self,
        cycles: int,
        traffic: TrafficGenerator | None = None,
        *,
        drain: bool = False,
        drain_limit: int = 100_000,
        raise_on_deadlock: bool = False,
    ) -> SimStats:
        """Run ``cycles`` cycles (plus optional drain) and return the stats.

        ``traffic`` generates packets each cycle; with ``drain=True`` the
        simulation continues without new traffic until the network empties
        (or ``drain_limit`` extra cycles pass).
        """
        for _ in range(cycles):
            new = traffic.packets_for_cycle(self.cycle) if traffic else ()
            self.step(new)
            if self.stats.deadlocked:
                break
        if drain and not self.stats.deadlocked:
            extra = 0
            while not self.is_idle() and extra < drain_limit:
                self.step()
                extra += 1
                if self.stats.deadlocked:
                    break
        if self.stats.deadlocked and raise_on_deadlock:
            from repro.sim.deadlock import waitfor_cycle

            cycle_pids = waitfor_cycle(self)
            raise DeadlockDetected(cycle_pids or ())
        return self.stats
