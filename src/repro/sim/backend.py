"""Simulation backend registry and capability introspection.

Two engines can execute a :class:`~repro.sim.runner.RunConfig` point:

* ``"reference"`` — the per-flit object simulator
  (:class:`~repro.sim.network.NetworkSimulator`), the semantic ground
  truth with every feature (telemetry, tracing, faults, recovery);
* ``"vector"`` — the struct-of-arrays numpy kernel
  (:class:`~repro.sim.vector.VectorSimulator`), cycle-exact against the
  reference on the feature subset it implements, and an order of
  magnitude faster on meshes that fit the batched phases.

:func:`backends` lists what each engine supports; :func:`resolve_backend`
maps a name to its :class:`BackendInfo`; :func:`check_run_config` rejects
configs that request features a backend lacks with a
:class:`~repro.errors.ConfigError` *before* any simulation starts.

Because every registered backend is cycle-exact, the result cache keys
points without the backend name (see
:func:`repro.sim.parallel.cache_key`): a point simulated by one backend
is a valid cache hit for the other.  The differential fuzz oracle
(:mod:`repro.fuzz.oracle`) continuously enforces the exactness claim
behind that sharing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import ConfigError
from repro.routing.selection import first_candidate

__all__ = [
    "BackendInfo",
    "backends",
    "check_run_config",
    "resolve_backend",
    "simulator_class",
]


@dataclass(frozen=True)
class BackendInfo:
    """Capability record for one simulation backend."""

    name: str
    description: str
    #: Bit-identical :class:`~repro.sim.stats.SimStats` to the reference
    #: on every supported configuration (deadlock cycle included).
    cycle_exact: bool
    supports_metrics: bool
    supports_tracer: bool
    supports_faults: bool
    supports_recovery: bool
    supports_waypoints: bool
    #: Named selection policies the backend accepts.
    supported_selections: tuple[str, ...]
    #: Switching modes the backend accepts.
    supported_switching: tuple[str, ...]

    def to_dict(self) -> dict:
        return asdict(self)


_BACKENDS: dict[str, BackendInfo] = {
    "reference": BackendInfo(
        name="reference",
        description="per-flit object simulator; full feature set, ground truth",
        cycle_exact=True,
        supports_metrics=True,
        supports_tracer=True,
        supports_faults=True,
        supports_recovery=True,
        supports_waypoints=True,
        supported_selections=("first", "random", "zigzag", "congestion"),
        supported_switching=("wormhole", "vct", "saf"),
    ),
    "vector": BackendInfo(
        name="vector",
        description="struct-of-arrays numpy kernel; cycle-exact, ~21-26x faster",
        cycle_exact=True,
        supports_metrics=False,
        supports_tracer=False,
        supports_faults=False,
        supports_recovery=False,
        supports_waypoints=False,
        supported_selections=("first",),
        supported_switching=("wormhole",),
    ),
}


def backends() -> tuple[BackendInfo, ...]:
    """Every registered simulation backend, reference first."""
    return tuple(_BACKENDS.values())


def resolve_backend(name: str) -> BackendInfo:
    """The :class:`BackendInfo` for ``name``; :class:`ConfigError` if unknown."""
    info = _BACKENDS.get(name)
    if info is None:
        known = ", ".join(sorted(_BACKENDS))
        raise ConfigError(f"unknown backend {name!r}: expected one of {known}")
    return info


def simulator_class(name: str):
    """The simulator class implementing backend ``name`` (lazy import)."""
    resolve_backend(name)
    if name == "vector":
        from repro.sim.vector import VectorSimulator

        return VectorSimulator
    from repro.sim.network import NetworkSimulator

    return NetworkSimulator


def check_run_config(info: BackendInfo, config) -> None:
    """Reject a :class:`~repro.sim.runner.RunConfig` the backend cannot run.

    Raises :class:`~repro.errors.ConfigError` naming the offending
    feature and the backend that would accept it; a config that passes
    here may still fail inside the simulator for reasons independent of
    the backend (bad topology, invalid rates, ...).
    """

    def refuse(feature: str) -> ConfigError:
        return ConfigError(
            f"backend {info.name!r} does not support {feature};"
            " use RunConfig(backend='reference') for this configuration"
            " (repro.sim.backends() lists capabilities)"
        )

    if not info.supports_metrics and config.metrics not in (None, False):
        raise refuse("metrics= telemetry")
    if not info.supports_faults and config.faults is not None:
        raise refuse("fault injection (faults=)")
    if not info.supports_recovery and config.recovery is not None:
        raise refuse("deadlock/fault recovery (recovery=)")
    selection = config.selection
    if not callable(selection):
        if selection not in info.supported_selections:
            raise refuse(f"selection={selection!r}")
    elif "first" in info.supported_selections and len(info.supported_selections) == 1:
        # A callable policy is only acceptable when it IS the one policy
        # the backend implements.
        from repro.sim.specs import resolve_selection

        if resolve_selection(selection) is not first_candidate:
            raise refuse("custom selection policies")
