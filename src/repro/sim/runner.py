"""Experiment runner: single points, injection-rate sweeps, saturation.

This is the harness the performance benchmarks (V2/V3 in DESIGN.md) drive.
Every run is fully described by a :class:`RunConfig`, making experiments
reproducible and easy to tabulate.

``RunConfig`` is picklable — the parallel engine in
:mod:`repro.sim.parallel` ships configs to worker processes — provided the
callable-valued fields hold *named specs* (``pattern="uniform"``,
``selection="first"``, ``routing_factory="negative-first"``; see
:mod:`repro.sim.specs`) or module-level functions.  Raw lambdas and
closures keep working for in-process runs but force the serial fallback
and opt out of result caching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

from repro.routing.base import RoutingFunction
from repro.routing.selection import SelectionPolicy
from repro.sim.backend import check_run_config, resolve_backend, simulator_class
from repro.sim.faults import FaultSchedule, RecoveryPolicy
from repro.sim.patterns import TrafficPattern
from repro.sim.specs import (
    RoutingFactory,
    resolve_pattern,
    resolve_routing_factory,
    resolve_selection,
)
from repro.sim.stats import SimStats
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes

if TYPE_CHECKING:
    from repro.sim.parallel import SweepEngine

__all__ = [
    "RoutingFactory",
    "RunConfig",
    "RunResult",
    "compare_table",
    "run_point",
    "saturation_rate",
    "sweep_rates",
]


@dataclass
class RunConfig:
    """Everything needed to reproduce one simulation point.

    The callable-valued fields (``pattern``, ``selection``,
    ``routing_factory``) also accept registry names — the picklable,
    cacheable form; see :mod:`repro.sim.specs`.
    """

    cycles: int = 2000
    injection_rate: float = 0.05
    packet_length: int = 4
    pattern: TrafficPattern | str = "uniform"
    buffer_depth: int = 4
    selection: SelectionPolicy | str = "first"
    atomic_buffers: bool = False
    watchdog: int = 500
    drain: bool = True
    seed: int = 1
    #: Optional runtime fault schedule (link/router failures, drops).
    faults: FaultSchedule | None = None
    #: Optional regressive deadlock/fault recovery policy.
    recovery: RecoveryPolicy | None = None
    #: Rebuilds routing over the degraded topology after permanent faults.
    routing_factory: RoutingFactory | str | None = None
    #: Telemetry: ``True`` builds a fresh
    #: :class:`~repro.sim.metrics.MetricsCollector` per point (sampling
    #: every ``sample_every`` cycles); a ready collector is used as-is
    #: (single points only — a collector observes exactly one simulator).
    #: None (default) keeps every telemetry hook a no-op.  Metered points
    #: are uncacheable (see :func:`repro.sim.specs.spec_token`).
    metrics: "object | bool | None" = None
    #: Sampling interval (cycles) when ``metrics=True``.
    sample_every: int = 100
    #: Traced-workload mode: a :class:`~repro.chaos.workloads.WorkloadTrace`
    #: (or a :data:`~repro.chaos.workloads.NAMED_WORKLOADS` name) replaces
    #: the Bernoulli :class:`~repro.sim.traffic.TrafficGenerator` —
    #: ``injection_rate``/``packet_length``/``pattern`` are then ignored in
    #: favour of the trace's own schedule.  Traced points stay cacheable:
    #: traces token-ise by name or content digest.
    workload: "object | str | None" = None
    #: Simulation engine: ``"reference"`` (per-flit objects, full feature
    #: set) or ``"vector"`` (struct-of-arrays numpy kernel, cycle-exact
    #: on its supported subset — see :func:`repro.sim.backend.backends`).
    #: Cycle-exact backends share result-cache entries: the backend name
    #: is deliberately absent from the cache key.
    backend: str = "reference"

    def with_rate(self, rate: float) -> "RunConfig":
        return replace(self, injection_rate=rate)


@dataclass
class RunResult:
    """A simulation point: the config used plus the resulting stats."""

    routing_name: str
    config: RunConfig
    stats: SimStats
    n_nodes: int
    #: The finalized collector when the point ran metered (None otherwise,
    #: including cache hits — a hit replays stats, not samples).
    metrics: "object | None" = None

    @property
    def avg_latency(self) -> float:
        return self.stats.avg_total_latency

    @property
    def throughput(self) -> float:
        return self.stats.throughput(self.n_nodes)

    @property
    def deadlocked(self) -> bool:
        return self.stats.deadlocked

    def row(self) -> str:
        lat = f"{self.avg_latency:8.1f}" if self.stats.latencies else "     n/a"
        status = "DEADLOCK" if self.deadlocked else "ok"
        return (
            f"{self.routing_name:28s} rate={self.config.injection_rate:.3f}"
            f" lat={lat} thr={self.throughput:.4f} [{status}]"
        )


def run_point(
    topology: Topology,
    routing: RoutingFunction | RoutingFactory | str,
    config: RunConfig,
    rule: ClassRule = no_classes,
) -> RunResult:
    """Run one simulation point.

    ``routing`` may be a ready :class:`RoutingFunction`, a factory, or a
    named routing spec (``"xy"``, any catalog design name, arrow
    notation) resolved via :mod:`repro.sim.specs`.
    """
    if not isinstance(routing, RoutingFunction):
        routing = resolve_routing_factory(routing)(topology)
    backend = resolve_backend(config.backend)
    check_run_config(backend, config)
    routing_factory = config.routing_factory
    if isinstance(routing_factory, str):
        routing_factory = resolve_routing_factory(routing_factory)
    collector = config.metrics
    if collector is True:
        from repro.sim.metrics import MetricsCollector

        collector = MetricsCollector(sample_every=config.sample_every)
    elif collector is False:
        collector = None
    sim = simulator_class(backend.name)(
        topology,
        routing,
        rule,
        buffer_depth=config.buffer_depth,
        selection=resolve_selection(config.selection),
        atomic_buffers=config.atomic_buffers,
        watchdog=config.watchdog,
        seed=config.seed,
        metrics=collector,
        faults=config.faults,
        recovery=config.recovery,
        routing_factory=routing_factory,
    )
    if config.workload is not None:
        # Traced mode: the workload's own deterministic schedule replaces
        # the Bernoulli injection process (lazy import — chaos depends on
        # sim, so the reverse edge must not exist at module level).
        from repro.chaos.workloads import resolve_workload

        traffic: "object" = resolve_workload(config.workload).materialize(
            topology, config.cycles
        )
    else:
        traffic = TrafficGenerator(
            topology,
            TrafficConfig(
                injection_rate=config.injection_rate,
                packet_length=config.packet_length,
                pattern=resolve_pattern(config.pattern),
                seed=config.seed + 7919,
            ),
        )
    stats = sim.run(config.cycles, traffic, drain=config.drain)
    if collector is not None:
        collector.finalize()
    return RunResult(
        routing.name, config, stats, len(topology.nodes), metrics=collector
    )


def sweep_rates(
    topology: Topology,
    routing_factory: RoutingFactory | str,
    rates: Sequence[float],
    config: RunConfig,
    *deprecated_rule: ClassRule,
    rule: ClassRule | None = None,
    engine: "SweepEngine | None" = None,
    jobs: int | None = None,
) -> list[RunResult]:
    """Latency/throughput curve over injection rates (one fresh net per point).

    ``engine=`` (a :class:`~repro.sim.parallel.SweepEngine`) or ``jobs=``
    routes the sweep through the parallel engine — same results, fanned
    out over processes, with optional result caching.  The default stays
    the deterministic serial loop.

    .. versionchanged:: 1.6
        Passing ``rule`` positionally (deprecated since 1.1) is now an
        error; pass it by keyword.
    """
    if deprecated_rule:
        raise TypeError(
            "sweep_rates() no longer accepts the class rule positionally"
            " (deprecated in 1.1, removed in 1.6): pass it by keyword,"
            " sweep_rates(..., rule=...)"
        )
    if rule is None:
        rule = no_classes

    if engine is None and jobs is not None:
        from repro.sim.parallel import SweepEngine

        engine = SweepEngine(jobs=jobs)
    if engine is not None:
        return engine.sweep(topology, routing_factory, rates, config, rule=rule).results

    factory = resolve_routing_factory(routing_factory)
    results = []
    for rate in rates:
        routing = factory(topology)
        results.append(run_point(topology, routing, config.with_rate(rate), rule))
    return results


def saturation_rate(
    results: Sequence[RunResult],
    *,
    latency_factor: float = 3.0,
) -> float | None:
    """First injection rate whose latency exceeds ``latency_factor`` x the
    zero-load latency (or that deadlocks); None when never saturated.

    The zero-load baseline is the *minimum-rate* point with any delivered
    packets — not merely the first element — so a sweep supplied in
    descending (or shuffled) rate order, or one whose early points sit
    above saturation, cannot mislabel the curve.
    """
    if not results:
        return None
    measured = [r for r in results if r.stats.latencies]
    if not measured:
        return None
    base = min(measured, key=lambda r: r.config.injection_rate).avg_latency
    for r in sorted(results, key=lambda r: r.config.injection_rate):
        if r.deadlocked:
            return r.config.injection_rate
        if r.stats.latencies and r.avg_latency > latency_factor * base:
            return r.config.injection_rate
    return None


def compare_table(results_by_algo: dict[str, Sequence[RunResult]]) -> str:
    """Multi-algorithm comparison table (rows = rates, cols = algorithms)."""
    algos = list(results_by_algo)
    if not algos:
        return "(no results)"
    rates = [r.config.injection_rate for r in results_by_algo[algos[0]]]
    header = "rate     " + "  ".join(f"{a:>22s}" for a in algos)
    lines = [header]
    for i, rate in enumerate(rates):
        cells = []
        for a in algos:
            r = results_by_algo[a][i]
            if r.deadlocked:
                cells.append(f"{'DEADLOCK':>22s}")
            elif r.stats.latencies:
                cells.append(f"{r.avg_latency:>14.1f} cycles")
            else:
                cells.append(f"{'n/a':>22s}")
        lines.append(f"{rate:<8.3f} " + "  ".join(cells))
    return "\n".join(lines)
