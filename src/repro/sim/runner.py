"""Experiment runner: single points, injection-rate sweeps, saturation.

This is the harness the performance benchmarks (V2/V3 in DESIGN.md) drive.
Every run is fully described by a :class:`RunConfig`, making experiments
reproducible and easy to tabulate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.routing.base import RoutingFunction
from repro.routing.selection import SelectionPolicy, first_candidate
from repro.sim.faults import FaultSchedule, RecoveryPolicy
from repro.sim.network import NetworkSimulator
from repro.sim.patterns import TrafficPattern, uniform
from repro.sim.stats import SimStats
from repro.sim.traffic import TrafficConfig, TrafficGenerator
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes

#: A factory producing a fresh routing function per run (routing objects
#: carry per-destination caches, but they are stateless across runs; a
#: factory keeps configs picklable/reusable).
RoutingFactory = Callable[[Topology], RoutingFunction]


@dataclass
class RunConfig:
    """Everything needed to reproduce one simulation point."""

    cycles: int = 2000
    injection_rate: float = 0.05
    packet_length: int = 4
    pattern: TrafficPattern = uniform
    buffer_depth: int = 4
    selection: SelectionPolicy = first_candidate
    atomic_buffers: bool = False
    watchdog: int = 500
    drain: bool = True
    seed: int = 1
    #: Optional runtime fault schedule (link/router failures, drops).
    faults: FaultSchedule | None = None
    #: Optional regressive deadlock/fault recovery policy.
    recovery: RecoveryPolicy | None = None
    #: Rebuilds routing over the degraded topology after permanent faults.
    routing_factory: RoutingFactory | None = None

    def with_rate(self, rate: float) -> "RunConfig":
        return replace(self, injection_rate=rate)


@dataclass
class RunResult:
    """A simulation point: the config used plus the resulting stats."""

    routing_name: str
    config: RunConfig
    stats: SimStats
    n_nodes: int

    @property
    def avg_latency(self) -> float:
        return self.stats.avg_total_latency

    @property
    def throughput(self) -> float:
        return self.stats.throughput(self.n_nodes)

    @property
    def deadlocked(self) -> bool:
        return self.stats.deadlocked

    def row(self) -> str:
        lat = f"{self.avg_latency:8.1f}" if self.stats.latencies else "     n/a"
        status = "DEADLOCK" if self.deadlocked else "ok"
        return (
            f"{self.routing_name:28s} rate={self.config.injection_rate:.3f}"
            f" lat={lat} thr={self.throughput:.4f} [{status}]"
        )


def run_point(
    topology: Topology,
    routing: RoutingFunction,
    config: RunConfig,
    rule: ClassRule = no_classes,
) -> RunResult:
    """Run one simulation point."""
    sim = NetworkSimulator(
        topology,
        routing,
        rule,
        buffer_depth=config.buffer_depth,
        selection=config.selection,
        atomic_buffers=config.atomic_buffers,
        watchdog=config.watchdog,
        seed=config.seed,
        faults=config.faults,
        recovery=config.recovery,
        routing_factory=config.routing_factory,
    )
    traffic = TrafficGenerator(
        topology,
        TrafficConfig(
            injection_rate=config.injection_rate,
            packet_length=config.packet_length,
            pattern=config.pattern,
            seed=config.seed + 7919,
        ),
    )
    stats = sim.run(config.cycles, traffic, drain=config.drain)
    return RunResult(routing.name, config, stats, len(topology.nodes))


def sweep_rates(
    topology: Topology,
    routing_factory: RoutingFactory,
    rates: Sequence[float],
    config: RunConfig,
    rule: ClassRule = no_classes,
) -> list[RunResult]:
    """Latency/throughput curve over injection rates (one fresh net per point)."""
    results = []
    for rate in rates:
        routing = routing_factory(topology)
        results.append(run_point(topology, routing, config.with_rate(rate), rule))
    return results


def saturation_rate(
    results: Sequence[RunResult],
    *,
    latency_factor: float = 3.0,
) -> float | None:
    """First injection rate whose latency exceeds ``latency_factor`` x the
    zero-load latency (or that deadlocks); None when never saturated."""
    if not results:
        return None
    base = next(
        (r.avg_latency for r in results if r.stats.latencies), None
    )
    if base is None:
        return None
    for r in results:
        if r.deadlocked:
            return r.config.injection_rate
        if r.stats.latencies and r.avg_latency > latency_factor * base:
            return r.config.injection_rate
    return None


def compare_table(results_by_algo: dict[str, Sequence[RunResult]]) -> str:
    """Multi-algorithm comparison table (rows = rates, cols = algorithms)."""
    algos = list(results_by_algo)
    if not algos:
        return "(no results)"
    rates = [r.config.injection_rate for r in results_by_algo[algos[0]]]
    header = "rate     " + "  ".join(f"{a:>22s}" for a in algos)
    lines = [header]
    for i, rate in enumerate(rates):
        cells = []
        for a in algos:
            r = results_by_algo[a][i]
            if r.deadlocked:
                cells.append(f"{'DEADLOCK':>22s}")
            elif r.stats.latencies:
                cells.append(f"{r.avg_latency:>14.1f} cycles")
            else:
                cells.append(f"{'n/a':>22s}")
        lines.append(f"{rate:<8.3f} " + "  ".join(cells))
    return "\n".join(lines)
