"""Synthetic traffic patterns.

Standard NoC evaluation patterns: each maps a source node to a destination
(deterministic permutations) or samples one (random patterns).  Patterns
operate on coordinates normalised to the topology shape.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.errors import SimulationError
from repro.topology.base import Coord

#: A pattern maps (source, topology nodes, rng) -> destination (which may
#: equal the source; the generator skips self-addressed packets).
TrafficPattern = Callable[[Coord, Sequence[Coord], random.Random], Coord]


def uniform(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Uniform random destination."""
    return nodes[rng.randrange(len(nodes))]


def _shape_of(nodes: Sequence[Coord]) -> tuple[int, ...]:
    dims = len(nodes[0])
    return tuple(max(n[d] for n in nodes) + 1 for d in range(dims))


def transpose(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Matrix transpose: (x, y, ...) -> reversed coordinates.

    The classic adversarial pattern for XY routing in square meshes.
    """
    return tuple(reversed(src))


def bit_complement(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Each coordinate reflected: x -> k-1-x."""
    shape = _shape_of(nodes)
    return tuple(k - 1 - c for c, k in zip(src, shape))


def bit_reverse(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Bit-reversal of the flattened node index (power-of-two networks)."""
    shape = _shape_of(nodes)
    bits = 0
    for k in shape:
        if k & (k - 1):
            raise SimulationError("bit-reverse needs power-of-two dimensions")
        bits += k.bit_length() - 1
    index = 0
    for c, k in zip(src, shape):
        index = index * k + c
    rev = int(format(index, f"0{bits}b")[::-1], 2)
    coord = []
    for k in reversed(shape):
        coord.append(rev % k)
        rev //= k
    return tuple(reversed(coord))


def shuffle(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Perfect shuffle on the flattened index (rotate bits left by one)."""
    shape = _shape_of(nodes)
    bits = 0
    for k in shape:
        if k & (k - 1):
            raise SimulationError("shuffle needs power-of-two dimensions")
        bits += k.bit_length() - 1
    index = 0
    for c, k in zip(src, shape):
        index = index * k + c
    shifted = ((index << 1) | (index >> (bits - 1))) & ((1 << bits) - 1)
    coord = []
    for k in reversed(shape):
        coord.append(shifted % k)
        shifted //= k
    return tuple(reversed(coord))


def tornado(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Tornado: halfway around each dimension (stressful on tori)."""
    shape = _shape_of(nodes)
    return tuple((c + (k - 1) // 2) % k for c, k in zip(src, shape))


def hotspot(
    targets: Sequence[Coord], fraction: float = 0.2
) -> TrafficPattern:
    """Hotspot pattern factory: ``fraction`` of traffic goes to ``targets``.

    The rest is uniform random.
    """
    if not 0.0 <= fraction <= 1.0:
        raise SimulationError("hotspot fraction must be in [0, 1]")
    targets = tuple(targets)

    def pattern(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
        if targets and rng.random() < fraction:
            return targets[rng.randrange(len(targets))]
        return nodes[rng.randrange(len(nodes))]

    return pattern


def neighbor(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Nearest neighbour: +1 along dimension 0 (wrapping)."""
    shape = _shape_of(nodes)
    return ((src[0] + 1) % shape[0],) + tuple(src[1:])


def rotate90(src: Coord, nodes: Sequence[Coord], rng: random.Random) -> Coord:
    """Quarter-turn rotation about the mesh centre: (x, y) -> (y, k-1-x).

    An adversarial cyclic-demand pattern for deadlock demonstrations: the
    four quadrants send into each other in a circulating fashion, so all
    four 90-degree turn directions are exercised simultaneously — the
    canonical scenario in which unrestricted adaptive routing deadlocks.
    Requires a square 2D shape (extra dimensions pass through).
    """
    shape = _shape_of(nodes)
    if len(shape) < 2 or shape[0] != shape[1]:
        raise SimulationError("rotate90 needs a square 2D network")
    k = shape[0]
    x, y = src[0], src[1]
    return (y, k - 1 - x) + tuple(src[2:])


NAMED_PATTERNS: dict[str, TrafficPattern] = {
    "uniform": uniform,
    "transpose": transpose,
    "bit-complement": bit_complement,
    "bit-reverse": bit_reverse,
    "shuffle": shuffle,
    "tornado": tornado,
    "neighbor": neighbor,
    "rotate90": rotate90,
}
