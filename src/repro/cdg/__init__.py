"""Channel dependency graphs: Dally verification and turn-model search."""

from repro.cdg.abstract import (
    abstract_graph,
    cross_partition_edges_ascend,
    partition_order_graph,
    recover_partitions,
)
from repro.cdg.complexity import (
    ComplexityRow,
    abstract_cycles,
    ebda_design_cost,
    section2_table,
    turn_combinations,
)
from repro.cdg.graph import build_design_cdg, build_routing_cdg, build_turn_cdg
from repro.cdg.turnmodel import (
    ALL_TURNS_2D,
    CLOCKWISE,
    COUNTERCLOCKWISE,
    TurnModelCandidate,
    all_candidates,
    classify_orbit,
    deadlock_free_candidates,
    is_deadlock_free,
    symmetry_orbit,
    turn_label,
    unique_turn_models,
)
from repro.cdg.verify import (
    CycleEnumerationTruncated,
    Verdict,
    all_cycles,
    cyclic_core,
    verdict_for,
    verify_design,
    verify_routing,
    verify_turnset,
)

__all__ = [
    "abstract_graph",
    "cross_partition_edges_ascend",
    "partition_order_graph",
    "recover_partitions",
    "ComplexityRow",
    "abstract_cycles",
    "ebda_design_cost",
    "section2_table",
    "turn_combinations",
    "build_design_cdg",
    "build_routing_cdg",
    "build_turn_cdg",
    "ALL_TURNS_2D",
    "CLOCKWISE",
    "COUNTERCLOCKWISE",
    "TurnModelCandidate",
    "all_candidates",
    "classify_orbit",
    "deadlock_free_candidates",
    "is_deadlock_free",
    "symmetry_orbit",
    "turn_label",
    "unique_turn_models",
    "CycleEnumerationTruncated",
    "Verdict",
    "all_cycles",
    "cyclic_core",
    "verdict_for",
    "verify_design",
    "verify_routing",
    "verify_turnset",
]
