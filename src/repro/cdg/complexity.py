"""Combinatorial cost of the classical turn-model search (Section 2).

The paper motivates EbDa by counting how many prohibited-turn combinations
Dally-style verification must examine:

* 2D, no VC: two abstract cycles, ``4^2 = 16`` combinations;
* 2D, one extra VC per dimension: ``4^8 = 65,536``;
* 3D, no VC: the paper states ``29,696 (4^6)`` — internally inconsistent,
  since ``4^6 = 4,096``; we report both values;
* 3D, one extra VC per dimension: the paper says "more than 8 billion".

The counting model: every unordered dimension pair contributes one plane
per VC combination, and every plane has two abstract cycles with four
turns each; one turn is removed per cycle, giving ``4^cycles``
combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb


def abstract_cycles(n_dims: int, vcs_per_dim: int = 1) -> int:
    """Number of abstract cycles: ``2 * C(n,2) * v^2``.

    Each of the ``C(n, 2)`` dimension pairs forms ``v^2`` planes (one per
    VC choice on each dimension), and every plane has a clockwise and a
    counter-clockwise cycle.

    >>> abstract_cycles(2, 1), abstract_cycles(2, 2), abstract_cycles(3, 1)
    (2, 8, 6)
    """
    if n_dims < 2:
        raise ValueError("abstract cycles need at least two dimensions")
    if vcs_per_dim < 1:
        raise ValueError("need at least one (virtual) channel per dimension")
    return 2 * comb(n_dims, 2) * vcs_per_dim ** 2


def turn_combinations(n_dims: int, vcs_per_dim: int = 1) -> int:
    """Combinations the turn-model search must verify: ``4^cycles``.

    >>> turn_combinations(2, 1), turn_combinations(2, 2)
    (16, 65536)
    """
    return 4 ** abstract_cycles(n_dims, vcs_per_dim)


@dataclass(frozen=True)
class ComplexityRow:
    """One row of the Section-2 accounting table."""

    n_dims: int
    vcs_per_dim: int
    cycles: int
    combinations: int
    paper_value: str

    def __str__(self) -> str:
        return (
            f"{self.n_dims}D, {self.vcs_per_dim} VC/dim: "
            f"{self.cycles} cycles -> 4^{self.cycles} = {self.combinations:,} "
            f"(paper: {self.paper_value})"
        )


def section2_table() -> tuple[ComplexityRow, ...]:
    """The four scenarios Section 2 discusses, formula vs paper value."""
    rows = [
        (2, 1, "16 (4^2)"),
        (2, 2, "65,536 (4^8)"),
        (3, 1, "29,696 (4^6) [paper value inconsistent: 4^6 = 4,096]"),
        (3, 2, "more than 8 billion"),
    ]
    return tuple(
        ComplexityRow(
            n_dims=n,
            vcs_per_dim=v,
            cycles=abstract_cycles(n, v),
            combinations=turn_combinations(n, v),
            paper_value=paper,
        )
        for n, v, paper in rows
    )


def ebda_design_cost(n_dims: int, vcs_per_dim: int = 1) -> int:
    """Partitions EbDa needs to *construct* (not search) for the same network.

    Algorithm 1 forms roughly one partition per leading D-pair:
    ``v * 2^(n-1)`` partitions bound the construction work — polynomial,
    versus the exponential verification search above.
    """
    if n_dims < 1 or vcs_per_dim < 1:
        raise ValueError("invalid network parameters")
    return vcs_per_dim * 2 ** (n_dims - 1)
