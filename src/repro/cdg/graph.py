"""Concrete channel dependency graph construction (Dally & Seitz 1987).

The CDG has one node per :class:`~repro.topology.wires.Wire` (a virtual
channel on a physical link) and an edge from wire *a* to wire *b* whenever
the routing relation can make a packet hold *a* while requesting *b* — i.e.
*b* leaves the router *a* enters, and the channel-class transition is
permitted.

Two relations are supported:

* **turns** (conservative) — every allowed class transition induces the
  dependency, including transitions a minimal router would never take.
  Acyclicity of this graph is the strongest statement: *any* router using
  only the design's turns is deadlock-free, minimal or not.
* **routing** — dependencies restricted to transitions some destination
  actually uses under a given routing function (the textbook CDG of a
  routing algorithm).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import networkx as nx

from repro.core.channel import Channel
from repro.core.extraction import extract_turns
from repro.core.sequence import PartitionSequence
from repro.core.turns import TurnSet
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes
from repro.topology.wires import Wire, wires_for

if TYPE_CHECKING:
    from repro.routing.base import RoutingFunction


def build_turn_cdg(
    topology: Topology,
    turnset: TurnSet,
    channel_classes: Iterable[Channel] | None = None,
    rule: ClassRule = no_classes,
) -> "nx.DiGraph":
    """The conservative CDG induced by an allowed-turn set.

    Parameters
    ----------
    channel_classes:
        The design's channel inventory.  Defaults to every class mentioned
        by the turn set.
    """
    classes = tuple(channel_classes) if channel_classes is not None else tuple(turnset.channels())
    wires = wires_for(topology, classes, rule)
    graph = nx.DiGraph()
    graph.add_nodes_from(wires)

    incoming: dict = {}
    for wire in wires:
        incoming.setdefault(wire.dst, []).append(wire)
    outgoing: dict = {}
    for wire in wires:
        outgoing.setdefault(wire.src, []).append(wire)

    for node, in_wires in incoming.items():
        for a in in_wires:
            for b in outgoing.get(node, ()):  # wires leaving the same router
                # A packet may always continue straight on its own channel
                # class (same partition, zero-degree, not a turn); any other
                # transition needs an allowed turn.
                if a.channel == b.channel or turnset.allows(a.channel, b.channel):
                    graph.add_edge(a, b)
    return graph


def build_design_cdg(
    topology: Topology,
    design: PartitionSequence,
    rule: ClassRule = no_classes,
    *,
    transitions: str = "all",
) -> "nx.DiGraph":
    """Conservative CDG of an EbDa design (partitions -> turns -> wires)."""
    turnset = extract_turns(design, transitions=transitions)
    return build_turn_cdg(topology, turnset, design.all_channels, rule)


def build_routing_cdg(
    topology: Topology,
    routing: "RoutingFunction",
    rule: ClassRule = no_classes,
) -> "nx.DiGraph":
    """The textbook CDG of a routing function.

    Edge ``a -> b`` exists when, for some destination, a packet that
    arrived over wire ``a`` is offered wire ``b`` as a next hop.  Injection
    (no incoming wire) contributes wires as nodes but no edges.
    """
    wires = wires_for(topology, routing.channel_classes, rule)
    wire_lookup: dict[tuple, Wire] = {}
    for w in wires:
        wire_lookup[(w.src, w.dst, w.channel)] = w

    graph = nx.DiGraph()
    graph.add_nodes_from(wires)

    # Per destination, trace the wires packets can actually occupy: start
    # from every injection candidate and follow the routing relation.  An
    # edge a -> b requires a *feasible* occupancy of a — pairing every
    # incoming wire with every destination would add dependencies no packet
    # can create (e.g. "arrived eastbound, destination to the west" under
    # minimal routing) and falsely flag deadlock-free algorithms as cyclic.
    for dst in topology.nodes:
        frontier: list[Wire] = []
        seen: set[Wire] = set()
        for src in topology.nodes:
            if src == dst:
                continue
            for nxt, ch in routing.candidates(src, dst, None):
                a = wire_lookup.get((src, nxt, ch))
                if a is not None and a not in seen:
                    seen.add(a)
                    frontier.append(a)
        while frontier:
            a = frontier.pop()
            node = a.dst
            if node == dst:
                continue
            for nxt, ch in routing.candidates(node, dst, a.channel):
                b = wire_lookup.get((node, nxt, ch))
                if b is None:
                    continue
                graph.add_edge(a, b)
                if b not in seen:
                    seen.add(b)
                    frontier.append(b)
    return graph
