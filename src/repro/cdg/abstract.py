"""Abstract (class-level) dependency graphs.

The abstract graph relates channel *classes* rather than concrete wires.
Inside a partition it legitimately contains cycles (``X+ -> Y- -> X+``);
Theorem 1's geometric argument is precisely that such class cycles cannot
close on a concrete network.  The abstract graph is still useful:

* cross-partition edges must form a DAG over partitions (Theorem 3), which
  :func:`partition_order_graph` checks;
* the condensation of the abstract graph shows the designer the partition
  structure a turn set implies.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from repro.core.sequence import PartitionSequence
from repro.core.turns import TurnSet


def abstract_graph(turnset: TurnSet) -> "nx.DiGraph":
    """Class-level dependency graph: one node per channel class."""
    graph = nx.DiGraph()
    graph.add_nodes_from(turnset.channels())
    for t in turnset.turns:
        graph.add_edge(t.src, t.dst)
    return graph


def partition_order_graph(design: PartitionSequence, turnset: TurnSet) -> "nx.DiGraph":
    """Partition-level graph: an edge P -> Q when some turn crosses P to Q.

    Node names are the partition names with unnamed partitions falling
    back to ``P<i>``.  A user-chosen name may collide with a fallback (a
    partition literally named "P1" next to the unnamed partition at index
    1) or with another user name; every occurrence of a duplicated name is
    disambiguated with its index (``P1#0``, ``P1#1``) so distinct
    partitions never merge into one node.
    """
    graph = nx.DiGraph()
    names = [p.name or f"P{i}" for i, p in enumerate(design)]
    tally = Counter(names)
    names = [
        f"{name}#{i}" if tally[name] > 1 else name
        for i, name in enumerate(names)
    ]
    graph.add_nodes_from(names)
    index = {}
    for i, part in enumerate(design):
        for ch in part:
            index[ch] = i
    for t in turnset.turns:
        src_p = index.get(t.src)
        dst_p = index.get(t.dst)
        if src_p is None or dst_p is None or src_p == dst_p:
            continue
        graph.add_edge(names[src_p], names[dst_p])
    return graph


def cross_partition_edges_ascend(design: PartitionSequence, turnset: TurnSet) -> bool:
    """Theorem 3 sanity: every cross-partition turn flows forward.

    True for any turn set produced by
    :func:`repro.core.extraction.extract_turns`; useful when validating a
    hand-written turn set against a claimed partitioning.
    """
    index = {}
    for i, part in enumerate(design):
        for ch in part:
            index[ch] = i
    for t in turnset.turns:
        src_p = index.get(t.src)
        dst_p = index.get(t.dst)
        if src_p is None or dst_p is None:
            return False
        if src_p > dst_p:
            return False
    return True


def recover_partitions(turnset: TurnSet) -> list[frozenset]:
    """Infer a partition structure from a turn set (design archaeology).

    Channels mutually reachable through allowed turns form the strongly
    connected components of the abstract graph; the components, ordered
    topologically, are a candidate partition sequence that would generate
    (a superset of) the turn set.  Useful to reverse-engineer classic turn
    models into EbDa designs.
    """
    graph = abstract_graph(turnset)
    condensed = nx.condensation(graph)
    order = list(nx.topological_sort(condensed))
    return [frozenset(condensed.nodes[i]["members"]) for i in order]
