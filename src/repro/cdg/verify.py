"""Deadlock-freedom verdicts: acyclicity of the channel dependency graph.

Per Dally's theorem, a routing relation is deadlock-free iff its channel
dependency graph is acyclic.  :func:`verify_design` is the library's
one-call verification entry point: it compiles an EbDa design to turns,
instantiates them on a concrete topology and reports acyclicity together
with a cycle witness when one exists.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

from repro.core.sequence import PartitionSequence
from repro.core.turns import TurnSet
from repro.cdg.graph import build_design_cdg, build_routing_cdg, build_turn_cdg
from repro.topology.base import Topology
from repro.topology.classes import ClassRule, no_classes
from repro.topology.wires import Wire

if TYPE_CHECKING:
    from repro.routing.base import RoutingFunction


@dataclass(frozen=True)
class Verdict:
    """Outcome of a deadlock-freedom verification.

    Attributes
    ----------
    acyclic:
        True when the channel dependency graph has no cycle — the design
        is deadlock-free by Dally's theorem.
    wires:
        Number of concrete virtual channels (CDG nodes).
    dependencies:
        Number of channel dependencies (CDG edges).
    cycle:
        A witness cycle (list of wires, each depending on the next, last
        depending on first) when ``acyclic`` is False.
    """

    acyclic: bool
    wires: int
    dependencies: int
    cycle: tuple[Wire, ...] = ()

    def __bool__(self) -> bool:
        return self.acyclic

    def __str__(self) -> str:
        status = "ACYCLIC (deadlock-free)" if self.acyclic else "CYCLIC (deadlock possible)"
        extra = ""
        if self.cycle:
            extra = "\n  cycle: " + " -> ".join(str(w) for w in self.cycle[:8])
            if len(self.cycle) > 8:
                extra += f" ... ({len(self.cycle)} wires)"
        return f"{status}: {self.wires} wires, {self.dependencies} dependencies{extra}"


def verdict_for(graph: "nx.DiGraph") -> Verdict:
    """Evaluate an already-built dependency graph."""
    try:
        edges = nx.find_cycle(graph, orientation="original")
    except nx.NetworkXNoCycle:
        return Verdict(True, graph.number_of_nodes(), graph.number_of_edges())
    cycle = tuple(edge[0] for edge in edges)
    return Verdict(False, graph.number_of_nodes(), graph.number_of_edges(), cycle)


def verify_design(
    design: PartitionSequence,
    topology: Topology,
    rule: ClassRule = no_classes,
    *,
    transitions: str = "all",
) -> Verdict:
    """Verify an EbDa design on a concrete topology.

    >>> from repro.topology import Mesh
    >>> from repro.core import PartitionSequence
    >>> verify_design(PartitionSequence.parse("X+ X- Y- -> Y+"), Mesh(4, 4)).acyclic
    True
    """
    return verdict_for(build_design_cdg(topology, design, rule, transitions=transitions))


def verify_turnset(
    turnset: TurnSet,
    topology: Topology,
    rule: ClassRule = no_classes,
) -> Verdict:
    """Verify an explicit turn set on a concrete topology."""
    return verdict_for(build_turn_cdg(topology, turnset, rule=rule))


def verify_routing(
    routing: "RoutingFunction",
    topology: Topology,
    rule: ClassRule = no_classes,
) -> Verdict:
    """Verify a routing function via its textbook CDG."""
    return verdict_for(build_routing_cdg(topology, routing, rule))


def cyclic_core(graph: "nx.DiGraph") -> frozenset[Wire]:
    """Every wire that participates in at least one dependency cycle.

    The union of all non-trivial strongly connected components (plus
    self-looping wires).  A watchdog-declared deadlock's held wires must
    lie inside this set when the deadlock is genuinely the CDG cycle's —
    the differential fuzzer uses that containment as a cross-oracle
    consistency signal.
    """
    core: set[Wire] = set()
    for scc in nx.strongly_connected_components(graph):
        if len(scc) > 1:
            core.update(scc)
        else:
            (node,) = scc
            if graph.has_edge(node, node):
                core.add(node)
    return frozenset(core)


class CycleEnumerationTruncated(Warning):
    """``all_cycles`` hit its ``limit`` — the returned list is incomplete.

    Simple-cycle counts grow exponentially with CDG size, so truncation is
    routine for badly broken designs; what must never happen is a caller
    mistaking a truncated list for the complete census.  The warning makes
    the cut observable (and turnable into an error via ``filterwarnings``).
    """


def all_cycles(graph: "nx.DiGraph", limit: int = 50) -> list[tuple[Wire, ...]]:
    """Up to ``limit`` simple cycles of a dependency graph (diagnostics).

    When the graph holds more than ``limit`` simple cycles the list is cut
    short and a :class:`CycleEnumerationTruncated` warning is issued —
    truncation is signalled, never silent.
    """
    out: list[tuple[Wire, ...]] = []
    for cycle in nx.simple_cycles(graph):
        if len(out) >= limit:
            warnings.warn(
                f"cycle enumeration truncated at limit={limit}; the graph"
                " holds more simple cycles than returned",
                CycleEnumerationTruncated,
                stacklevel=2,
            )
            break
        out.append(tuple(cycle))
    return out
