"""The Glass–Ni turn-model search (Section 2 and §6.1 of the paper).

In a 2D mesh without VCs there are eight 90-degree turns forming two
abstract cycles (clockwise and counter-clockwise).  The turn-model method
prohibits one turn from each cycle — ``4 x 4 = 16`` combinations — and
each combination must then be verified for deadlock freedom, including
"complex" (non-simple) cycles.  The paper reports that 12 of the 16 are
deadlock-free and 3 are unique up to symmetry (west-first, north-last,
negative-first).  This module performs that search with the concrete CDG
verifier, reproducing the counts computationally.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable

from repro.cdg.graph import build_turn_cdg
from repro.cdg.verify import Verdict, verdict_for
from repro.core.channel import Channel
from repro.core.turns import Turn, TurnSet
from repro.topology.base import Topology
from repro.topology.mesh import Mesh

E = Channel.parse("X+")
W = Channel.parse("X-")
N = Channel.parse("Y+")
S = Channel.parse("Y-")

#: The abstract clockwise cycle: E -> S -> W -> N -> E.
CLOCKWISE = (Turn(E, S), Turn(S, W), Turn(W, N), Turn(N, E))
#: The abstract counter-clockwise cycle: E -> N -> W -> S -> E.
COUNTERCLOCKWISE = (Turn(E, N), Turn(N, W), Turn(W, S), Turn(S, E))

ALL_TURNS_2D = CLOCKWISE + COUNTERCLOCKWISE

_DIR_NAMES = {E: "E", W: "W", N: "N", S: "S"}


def turn_label(t: Turn) -> str:
    """Compass label, e.g. ``Turn(X+ -> Y-)`` -> ``'ES'``."""
    return _DIR_NAMES[t.src] + _DIR_NAMES[t.dst]


@dataclass(frozen=True)
class TurnModelCandidate:
    """One of the 16 combinations: a pair of prohibited turns."""

    prohibited_cw: Turn
    prohibited_ccw: Turn

    @property
    def allowed_turns(self) -> tuple[Turn, ...]:
        """The six turns the candidate permits."""
        banned = {self.prohibited_cw, self.prohibited_ccw}
        return tuple(t for t in ALL_TURNS_2D if t not in banned)

    def turnset(self) -> TurnSet:
        """The candidate as a TurnSet (no U-/I-turns: no VCs here)."""
        return TurnSet({"turn-model": self.allowed_turns})

    def label(self) -> str:
        """E.g. ``'no ES, no NW'``."""
        return f"no {turn_label(self.prohibited_cw)}, no {turn_label(self.prohibited_ccw)}"


def all_candidates() -> tuple[TurnModelCandidate, ...]:
    """The 16 combinations of removing one turn per abstract cycle."""
    return tuple(
        TurnModelCandidate(cw, ccw)
        for cw, ccw in product(CLOCKWISE, COUNTERCLOCKWISE)
    )


def is_deadlock_free(candidate: TurnModelCandidate, topology: Topology | None = None) -> Verdict:
    """Concrete-CDG verdict for one candidate (default: 4x4 mesh).

    The concrete graph automatically covers simple *and* complex cycles —
    any cyclic wait appears as a directed cycle over wires.
    """
    topo = topology or Mesh(4, 4)
    graph = build_turn_cdg(topo, candidate.turnset(), (E, W, N, S))
    return verdict_for(graph)


def deadlock_free_candidates(topology: Topology | None = None) -> tuple[TurnModelCandidate, ...]:
    """All combinations whose concrete CDG is acyclic (the paper: 12 of 16)."""
    return tuple(c for c in all_candidates() if is_deadlock_free(c, topology).acyclic)


# -- symmetry classification -------------------------------------------------

def _rot90(ch: Channel) -> Channel:
    """Rotate a direction 90 degrees counter-clockwise: E->N->W->S->E."""
    mapping = {E: N, N: W, W: S, S: E}
    return mapping[ch]


def _mirror(ch: Channel) -> Channel:
    """Reflect across the Y axis: E<->W, N and S fixed."""
    mapping = {E: W, W: E, N: N, S: S}
    return mapping[ch]


def _apply(f, candidate: TurnModelCandidate) -> TurnModelCandidate:
    def map_turn(t: Turn) -> Turn:
        return Turn(f(t.src), f(t.dst))

    a, b = map_turn(candidate.prohibited_cw), map_turn(candidate.prohibited_ccw)
    # A symmetry may swap the two abstract cycles (mirrors reverse
    # orientation); normalise so the first prohibited turn is clockwise.
    if a in CLOCKWISE:
        return TurnModelCandidate(a, b)
    return TurnModelCandidate(b, a)


def symmetry_orbit(candidate: TurnModelCandidate) -> frozenset[TurnModelCandidate]:
    """The candidate's orbit under the 8 symmetries of the square."""
    found = {candidate}
    frontier = [candidate]
    while frontier:
        cur = frontier.pop()
        for image in (_apply(_rot90, cur), _apply(_mirror, cur)):
            if image not in found:
                found.add(image)
                frontier.append(image)
    return frozenset(found)


def unique_turn_models(topology: Topology | None = None) -> list[frozenset[TurnModelCandidate]]:
    """Orbits of the deadlock-free combinations (the paper: 3 unique).

    Returns the orbits sorted by size then representative label.
    """
    free = deadlock_free_candidates(topology)
    seen: set[frozenset[TurnModelCandidate]] = set()
    orbits: list[frozenset[TurnModelCandidate]] = []
    for cand in free:
        orbit = symmetry_orbit(cand) & set(free)
        if orbit not in seen:
            seen.add(orbit)
            orbits.append(orbit)
    return sorted(orbits, key=lambda o: (len(o), min(c.label() for c in o)))


#: Canonical prohibited-turn pairs of the three named models, for labelling.
NAMED_MODELS = {
    # west-first: no turns *to* west — prohibit SW (cw) and NW (ccw)
    frozenset({"SW", "NW"}): "west-first",
    # north-last: no turns *out of* north — prohibit NE (cw) and NW (ccw)
    frozenset({"NE", "NW"}): "north-last",
    # negative-first: no ES (cw, positive->negative) and no WS... canonical
    # form prohibits ES and NW (turns from a positive to a negative dir)
    frozenset({"ES", "NW"}): "negative-first",
}


def classify_orbit(orbit: Iterable[TurnModelCandidate]) -> str:
    """Name an orbit when it contains one of the three canonical models."""
    for cand in orbit:
        key = frozenset(
            {turn_label(cand.prohibited_cw), turn_label(cand.prohibited_ccw)}
        )
        if key in NAMED_MODELS:
            return NAMED_MODELS[key]
    return "unnamed"
