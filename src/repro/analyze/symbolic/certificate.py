"""Machine-checkable proof objects for symbolic EBDA verdicts.

A :class:`Certificate` records one rule evaluation over a *parametric*
design family: the rule ID, the verdict (clean / violation / inapplicable
with a violation *region* over the free variables), the premises the
derivation leaned on, and the arithmetic witnesses that make the verdict
re-checkable.  The whole payload is sealed with a SHA-256 content digest
over a canonical JSON form, so any post-hoc mutation — a flipped byte, an
edited witness, a forged verdict — is detectable without re-running the
prover.

The deliberately independent re-validator lives in
:mod:`repro.analyze.certcheck`; it parses certificates from their JSON
form and re-derives the arithmetic with its own small implementation,
importing nothing from this package beyond the file format documented
here.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CERT_SCHEMA",
    "Certificate",
    "canonical_json",
    "content_digest",
    "region_all",
    "region_holds",
    "region_k_ge",
    "region_n_ge",
    "region_none",
]

#: Bump when the certificate payload changes shape.
CERT_SCHEMA = 1

#: Statuses a certificate may carry.
STATUSES = ("clean", "violation", "inapplicable")


def canonical_json(obj: Any) -> str:
    """The canonical serialization the content digest is computed over.

    Sorted keys, no whitespace, ASCII-only: two payloads digest equal iff
    they are value-equal, and any byte flip in the canonical form changes
    either the parsed value or the validity of the JSON.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def content_digest(payload: dict[str, Any]) -> str:
    """``sha256:<hex>`` over the canonical JSON of ``payload``."""
    return "sha256:" + hashlib.sha256(canonical_json(payload).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Violation regions: where (in the free-variable domain) a rule fires
# ---------------------------------------------------------------------------

def region_none() -> dict[str, Any]:
    """The empty region: the rule fires at no (n, k) in the domain."""
    return {"kind": "none"}


def region_all() -> dict[str, Any]:
    """The full region: the rule fires at every (n, k) in the domain."""
    return {"kind": "all"}


def region_n_ge(n0: int) -> dict[str, Any]:
    """The half-line ``n >= n0`` (radix-independent threshold)."""
    return {"kind": "n-ge", "n0": n0}


def region_k_ge(k0: int) -> dict[str, Any]:
    """The half-line ``k >= k0`` (dimension-independent threshold)."""
    return {"kind": "k-ge", "k0": k0}


def region_holds(region: dict[str, Any], n: int, k: int) -> bool:
    """Does the violation region contain the instantiation point (n, k)?"""
    kind = region.get("kind")
    if kind == "none":
        return False
    if kind == "all":
        return True
    if kind == "n-ge":
        return n >= int(region["n0"])
    if kind == "k-ge":
        return k >= int(region["k0"])
    raise ValueError(f"unknown region kind {kind!r}")


# ---------------------------------------------------------------------------
# The certificate proper
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Certificate:
    """One sealed rule evaluation over a parametric design family.

    Attributes
    ----------
    rule:
        The EBDA rule ID this certificate proves (e.g. ``"EBDA005"``).
    family:
        The symbolic family name the verdict quantifies over.
    status:
        ``"clean"`` (the rule fires nowhere in the domain),
        ``"violation"`` (it fires exactly on ``region``), or
        ``"inapplicable"`` (the rule's premise does not transfer to this
        family's topology kind; the reason is recorded in ``premises``).
    domain:
        The free-variable domain, ``{"n": {"min": .., "max": ..},
        "k": {"min": .., "max": ..}}`` with ``None`` for unbounded.
    region:
        The violation region (see :func:`region_holds`).  ``none`` for
        clean certificates.
    premises:
        Named facts the derivation uses, each a JSON object with at least
        a ``"fact"`` key.  Structural axioms (e.g. "a mesh has no closed
        unidirectional link walk") appear here by name so the checker can
        confirm they are applied to the right topology kind.
    witnesses:
        The arithmetic that makes the verdict re-checkable: pair-count
        affine forms, turn-order indices, ring transition relations and
        their closures, channel-count comparisons.  Always includes the
        full family description under ``"design"`` so certificates are
        self-contained.
    digest:
        ``sha256:<hex>`` over the canonical JSON of everything above.
    """

    rule: str
    family: str
    status: str
    domain: dict[str, Any]
    region: dict[str, Any]
    premises: tuple[dict[str, Any], ...] = ()
    witnesses: dict[str, Any] = field(default_factory=dict)
    digest: str = ""

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown certificate status {self.status!r}")

    # -- sealing -----------------------------------------------------------

    def payload(self) -> dict[str, Any]:
        """The digestable content (everything but the digest itself)."""
        return {
            "schema": CERT_SCHEMA,
            "rule": self.rule,
            "family": self.family,
            "status": self.status,
            "domain": self.domain,
            "region": self.region,
            "premises": list(self.premises),
            "witnesses": self.witnesses,
        }

    def sealed(self) -> "Certificate":
        """A copy with the digest computed over the current payload."""
        return Certificate(
            rule=self.rule,
            family=self.family,
            status=self.status,
            domain=self.domain,
            region=self.region,
            premises=self.premises,
            witnesses=self.witnesses,
            digest=content_digest(self.payload()),
        )

    # -- evaluation --------------------------------------------------------

    def violates_at(self, n: int, k: int) -> bool:
        """Does this certificate predict an error diagnostic at (n, k)?"""
        return self.status == "violation" and region_holds(self.region, n, k)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        d = self.payload()
        d["digest"] = self.digest
        return d

    def to_json(self) -> str:
        """Canonical JSON including the digest (the on-disk form)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Certificate":
        return cls(
            rule=str(d["rule"]),
            family=str(d["family"]),
            status=str(d["status"]),
            domain=dict(d["domain"]),
            region=dict(d["region"]),
            premises=tuple(dict(p) for p in d["premises"]),
            witnesses=dict(d["witnesses"]),
            digest=str(d.get("digest", "")),
        )
