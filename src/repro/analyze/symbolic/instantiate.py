"""The differential instantiation gate: symbolic vs concrete, point-wise.

A symbolic certificate claims a rule verdict for *every* ``(n, k)`` in a
family's domain.  This module spot-checks that claim: instantiate the
family at concrete points, run the concrete :class:`~repro.analyze.Analyzer`
over exactly the rules the certificates cover, and compare error sets.
Any disagreement is a bug in the prover, the concrete rules, or the
family description — all three are worth an alarm, which is why the check
runs as a fuzz oracle (``repro fuzz --instantiations``) and a CI gate
(``tools/ci_certify_check.py``) at hundreds of random points.

For the Algorithm-1 closed form the gate additionally asserts the schema
reproduces :func:`repro.core.partitioning.partition_vc_budget` verbatim,
so the "closed form of Algorithm 1" claim in the family note is itself
machine-checked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.analyze.engine import Analyzer
from repro.analyze.symbolic.design import (
    SYMBOLIC_FAMILIES,
    SymbolicDesign,
    symbolic_family,
)
from repro.analyze.symbolic.prover import SymbolicReport, certify
from repro.analyze.unit import DesignUnit
from repro.core.partitioning import partition_vc_budget
from repro.errors import EbdaError
from repro.topology.base import Topology
from repro.topology.classes import NAMED_RULES
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.mesh import Mesh
from repro.topology.torus import Torus

__all__ = [
    "DifferentialResult",
    "Disagreement",
    "check_family_at",
    "concrete_errors",
    "differential_gate",
    "sample_point",
    "topology_at",
    "unit_at",
]

#: Instantiation bounds keeping concrete lint runs cheap: dimensions stay
#: small (EBDA008 enumerates 3^n requirement sets) and radices modest
#: (EBDA005 walks n * k^(n-1) rings of length k per sign).
_N_MAX = {"mesh": 4, "torus": 3, "dragonfly": 2, "fattree": 1}
_K_MAX = {"mesh": 7, "torus": 7, "dragonfly": 6, "fattree": 5}


def topology_at(design: SymbolicDesign, n: int, k: int) -> Topology:
    """The concrete carrier topology for one instantiation point."""
    if design.kind == "mesh":
        return Mesh(*([k] * n))
    if design.kind == "torus":
        return Torus(*([k] * n))
    if design.kind == "dragonfly":
        return Dragonfly(groups=k)
    if design.kind == "fattree":
        return FatTree(leaves=k, spines=2, hosts_per_leaf=2)
    raise EbdaError(f"unknown topology kind {design.kind!r}")


def unit_at(design: SymbolicDesign, n: int, k: int) -> DesignUnit:
    """Instantiate a family at a concrete (n, k) as a lintable unit."""
    if not design.contains(n, k):
        raise EbdaError(
            f"point (n={n}, k={k}) is outside the domain of {design.name!r}"
        )
    return DesignUnit(
        sequence=design.sequence_at(n),
        turnset=design.turnset_at(n),
        name=f"{design.name}@n{n}k{k}",
        topology=topology_at(design, n, k),
        rule=NAMED_RULES[design.rule_name],
        claims_fully_adaptive=design.claims_fully_adaptive,
    )


def concrete_errors(
    design: SymbolicDesign, n: int, k: int, rules: tuple[str, ...]
) -> frozenset[str]:
    """Error rule IDs the concrete linter emits at one point."""
    report = Analyzer(select=rules).run(unit_at(design, n, k))
    return frozenset(d.rule for d in report.errors)


def sample_point(
    design: SymbolicDesign, rng: random.Random
) -> tuple[int, int]:
    """A uniform instantiation point inside the family's sampling box."""
    if design.n_fixed is not None:
        n = design.n_fixed
    else:
        n = rng.randint(design.n_min, max(design.n_min, _N_MAX[design.kind]))
    k = rng.randint(design.k_min, max(design.k_min, _K_MAX[design.kind]))
    return n, k


@dataclass(frozen=True)
class Disagreement:
    """One point where symbolic and concrete verdicts differ."""

    family: str
    n: int
    k: int
    symbolic: tuple[str, ...]
    concrete: tuple[str, ...]

    def describe(self) -> str:
        return (
            f"{self.family} at (n={self.n}, k={self.k}): symbolic predicts"
            f" {list(self.symbolic) or 'clean'}, concrete lint found"
            f" {list(self.concrete) or 'clean'}"
        )


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of a differential sweep over instantiation points."""

    points: int
    families: tuple[str, ...]
    disagreements: tuple[Disagreement, ...] = ()
    checked: tuple[tuple[str, int, int], ...] = field(default=(), repr=False)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> dict[str, Any]:
        return {
            "points": self.points,
            "families": list(self.families),
            "ok": self.ok,
            "disagreements": [
                {
                    "family": d.family,
                    "n": d.n,
                    "k": d.k,
                    "symbolic": list(d.symbolic),
                    "concrete": list(d.concrete),
                }
                for d in self.disagreements
            ],
        }


def check_family_at(
    report: SymbolicReport, n: int, k: int
) -> Disagreement | None:
    """Compare one family's certificates against the concrete linter."""
    design = symbolic_family(report.family)
    rules = report.applicable_rules
    symbolic = report.errors_at(n, k)
    concrete = concrete_errors(design, n, k, rules)
    if symbolic == concrete:
        return None
    return Disagreement(
        family=design.name,
        n=n,
        k=k,
        symbolic=tuple(sorted(symbolic)),
        concrete=tuple(sorted(concrete)),
    )


def _check_algorithm1_form(design: SymbolicDesign, n: int) -> None:
    """Assert the schema equals Algorithm 1's own output at ``n``."""
    ours = design.sequence_at(n).arrow_notation()
    theirs = partition_vc_budget([1] * n).arrow_notation()
    if ours != theirs:
        raise EbdaError(
            f"family {design.name!r} claims the Algorithm-1 closed form but"
            f" diverges at n={n}: schema {ours!r} vs algorithm {theirs!r}"
        )


def differential_gate(
    names: tuple[str, ...] | None = None,
    *,
    points: int = 500,
    seed: int = 0,
) -> DifferentialResult:
    """Cross-check symbolic verdicts at random points across families.

    Every family gets at least one point; the rest are spread uniformly.
    Raises nothing on disagreement — the result carries the evidence so
    callers (CLI, CI gate, fuzz oracle) choose how loudly to fail.
    """
    chosen = tuple(sorted(SYMBOLIC_FAMILIES)) if names is None else names
    if points < len(chosen):
        raise EbdaError(
            f"need at least one point per family ({len(chosen)}), got {points}"
        )
    rng = random.Random(seed)
    reports = {name: certify(name) for name in chosen}
    disagreements: list[Disagreement] = []
    checked: list[tuple[str, int, int]] = []
    for i in range(points):
        name = chosen[i % len(chosen)]
        design = symbolic_family(name)
        n, k = sample_point(design, rng)
        if design.algorithm1:
            _check_algorithm1_form(design, n)
        checked.append((name, n, k))
        miss = check_family_at(reports[name], n, k)
        if miss is not None:
            disagreements.append(miss)
    return DifferentialResult(
        points=points,
        families=chosen,
        disagreements=tuple(disagreements),
        checked=tuple(checked),
    )
