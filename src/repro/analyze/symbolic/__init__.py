"""Symbolic EBDA verification: parametric proofs with sealed certificates.

Where :class:`~repro.analyze.Analyzer` judges one concrete instantiation,
this package proves rule verdicts for *every* ``(n, k)`` in a family's
domain at once and seals each derivation into a machine-checkable
:class:`Certificate`:

* :mod:`~repro.analyze.symbolic.design` — the parametric families
  (:data:`SYMBOLIC_FAMILIES`): per-dimension stage blocks, spanning
  Algorithm-1 schemas, and radix-parametric catalog designs;
* :mod:`~repro.analyze.symbolic.prover` — closed-form re-derivations of
  EBDA001–005/008/009 (:func:`certify`);
* :mod:`~repro.analyze.symbolic.instantiate` — the differential gate
  cross-checking every symbolic verdict against the concrete linter at
  random instantiation points (:func:`differential_gate`);
* :mod:`repro.analyze.certcheck` — the deliberately independent,
  stdlib-only re-validator (kept *outside* this package so it shares no
  code with the prover).

Quick start::

    from repro.analyze.symbolic import certify
    report = certify("dateline-torus")
    assert report.ok and all(c.digest for c in report.certificates)
"""

from repro.analyze.symbolic.certificate import (
    CERT_SCHEMA,
    Certificate,
    canonical_json,
    content_digest,
    region_all,
    region_holds,
    region_k_ge,
    region_n_ge,
    region_none,
)
from repro.analyze.symbolic.design import (
    CLAIMED_CATALOG,
    SYMBOLIC_FAMILIES,
    ChannelPattern,
    SpanSchema,
    StageSchema,
    SymbolicDesign,
    symbolic_family,
)
from repro.analyze.symbolic.instantiate import (
    DifferentialResult,
    Disagreement,
    check_family_at,
    concrete_errors,
    differential_gate,
    sample_point,
    topology_at,
    unit_at,
)
from repro.analyze.symbolic.prover import (
    REALIZED_DIRECTIONS,
    SYMBOLIC_RULES,
    SymbolicReport,
    certify,
    certify_all,
)

__all__ = [
    "CERT_SCHEMA",
    "CLAIMED_CATALOG",
    "REALIZED_DIRECTIONS",
    "SYMBOLIC_FAMILIES",
    "SYMBOLIC_RULES",
    "Certificate",
    "ChannelPattern",
    "DifferentialResult",
    "Disagreement",
    "SpanSchema",
    "StageSchema",
    "SymbolicDesign",
    "SymbolicReport",
    "canonical_json",
    "certify",
    "certify_all",
    "check_family_at",
    "concrete_errors",
    "content_digest",
    "differential_gate",
    "region_all",
    "region_holds",
    "region_k_ge",
    "region_n_ge",
    "region_none",
    "sample_point",
    "symbolic_family",
    "topology_at",
    "unit_at",
]
