"""Parametric design families: one description, every radix and dimension.

A :class:`SymbolicDesign` describes a *family* of EbDa designs over free
variables ``n`` (dimensions, ``n >= 1``) and ``k`` (radix / group count /
arity, ``k >= 2``), in one of three shapes:

* **stages** — a per-dimension block of partitions instantiated for every
  dimension ``d < n`` in ascending order.  The dateline torus family is
  three stages (``pre -> wrap -> post``); dimension-order (XY/XYZ...)
  routing is two (``[D+] -> [D-]``).
* **spans** — partitions that each span *all* dimensions: an ``anchor``
  pattern over dimension 0 plus one ``others`` pattern instantiated per
  dimension ``d >= 1``.  This is the closed form of Algorithm 1 on the
  uniform one-VC budget: ``PA[X+ X- D+ ...] -> PB[D- ...]``.
* **fixed** — a concrete arrow-notation sequence (the catalog designs);
  ``n`` is pinned by the design and only ``k`` stays free.

The shape is deliberately *not* a concrete channel enumeration: the
prover (:mod:`repro.analyze.symbolic.prover`) reasons over the patterns
and their closed-form partition ordering, and only the differential gate
(:mod:`repro.analyze.symbolic.instantiate`) ever instantiates a family at
a concrete ``(n, k)`` point to cross-check against the concrete linter.

Deliberately *broken* families (missing directions, descending U-turns,
backward or foreign turns, an undateline'd torus, an over-claimed
Algorithm-1 mesh) are registered alongside the valid ones so the
symbolic engine proves violations — with the region of the free-variable
domain where they fire — and not just cleanliness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.catalog import NAMED_DESIGNS, design as catalog_design
from repro.core.channel import Channel
from repro.core.extraction import extract_turns
from repro.core.partition import Partition
from repro.core.sequence import PartitionSequence
from repro.core.turns import Turn, TurnSet
from repro.errors import EbdaError

__all__ = [
    "CLAIMED_CATALOG",
    "SYMBOLIC_FAMILIES",
    "ChannelPattern",
    "SpanSchema",
    "StageSchema",
    "SymbolicDesign",
    "symbolic_family",
]

#: Topology kinds a family may quantify over and what ``k`` means there.
KINDS = ("mesh", "torus", "dragonfly", "fattree")

#: Catalog designs that claim full adaptivity (arming EBDA009): the
#: Section-4 minimal constructions, which meet the (n+1)*2^(n-1) bound
#: with equality.
CLAIMED_CATALOG = ("dyxy", "fig7c", "fig9b", "fig9c")


@dataclass(frozen=True)
class ChannelPattern:
    """One channel applied to a *generic* dimension: (sign, vc, class)."""

    sign: int
    vc: int = 1
    cls: str = ""

    def at(self, dim: int) -> Channel:
        """The concrete channel this pattern instantiates on dimension ``dim``."""
        return Channel(dim, self.sign, self.vc, self.cls)

    def to_list(self) -> list[Any]:
        return [self.sign, self.vc, self.cls]


@dataclass(frozen=True)
class StageSchema:
    """One partition of a per-dimension block (all channels share dim ``d``)."""

    name: str
    own: tuple[ChannelPattern, ...]


@dataclass(frozen=True)
class SpanSchema:
    """One partition spanning all dimensions.

    ``anchor`` patterns instantiate on dimension 0; each ``others``
    pattern instantiates once per dimension ``d >= 1``.
    """

    name: str
    anchor: tuple[ChannelPattern, ...] = ()
    others: tuple[ChannelPattern, ...] = ()


@dataclass(frozen=True)
class SymbolicDesign:
    """A parametric design family over free ``n`` (dims) and ``k`` (radix)."""

    name: str
    kind: str
    n_min: int = 1
    n_fixed: int | None = None
    k_min: int = 2
    stages: tuple[StageSchema, ...] = ()
    spans: tuple[SpanSchema, ...] = ()
    fixed: str = ""
    rule_name: str = "none"
    claims_fully_adaptive: bool = False
    #: Extra granted turns (channel-string pairs), used by broken families.
    extra_turns: tuple[tuple[str, str], ...] = ()
    note: str = ""
    #: Set when ``spans``/``stages`` is asserted to equal Algorithm 1's
    #: output on the uniform one-VC budget (cross-checked by the gate).
    algorithm1: bool = False

    def __post_init__(self) -> None:
        shapes = sum(1 for s in (self.stages, self.spans, self.fixed) if s)
        if shapes != 1:
            raise EbdaError(
                f"family {self.name!r} must use exactly one shape"
                " (stages, spans or fixed)"
            )
        if self.kind not in KINDS:
            raise EbdaError(f"unknown topology kind {self.kind!r}")
        if self.kind == "torus" and self.rule_name not in ("none", "dateline"):
            raise EbdaError(
                f"torus family {self.name!r} needs the 'none' or 'dateline' rule"
            )

    # -- shape -------------------------------------------------------------

    @property
    def shape(self) -> str:
        if self.stages:
            return "stages"
        if self.spans:
            return "spans"
        return "fixed"

    def domain(self) -> dict[str, Any]:
        """The free-variable domain in certificate form."""
        if self.n_fixed is not None:
            n_dom: dict[str, Any] = {"min": self.n_fixed, "max": self.n_fixed}
        else:
            n_dom = {"min": self.n_min, "max": None}
        return {"n": n_dom, "k": {"min": self.k_min, "max": None}}

    def contains(self, n: int, k: int) -> bool:
        """Is the instantiation point (n, k) inside the family's domain?"""
        if self.n_fixed is not None and n != self.n_fixed:
            return False
        return n >= self.n_min and k >= self.k_min

    def description(self) -> dict[str, Any]:
        """Self-contained JSON description embedded in every certificate."""
        return {
            "name": self.name,
            "kind": self.kind,
            "shape": self.shape,
            "n_min": self.n_min,
            "n_fixed": self.n_fixed,
            "k_min": self.k_min,
            "stages": [
                {"name": s.name, "own": [p.to_list() for p in s.own]}
                for s in self.stages
            ],
            "spans": [
                {
                    "name": s.name,
                    "anchor": [p.to_list() for p in s.anchor],
                    "others": [p.to_list() for p in s.others],
                }
                for s in self.spans
            ],
            "fixed": self.fixed,
            "rule": self.rule_name,
            "claims_fully_adaptive": self.claims_fully_adaptive,
            "extra_turns": [list(t) for t in self.extra_turns],
        }

    # -- instantiation (used by the differential gate only) ----------------

    def sequence_at(self, n: int) -> PartitionSequence:
        """The concrete partition sequence at ``n`` dimensions."""
        if self.fixed:
            return PartitionSequence.parse(self.fixed)
        if self.stages:
            parts = [
                Partition(
                    tuple(p.at(d) for p in stage.own), name=f"P{d}{stage.name}"
                )
                for d in range(n)
                for stage in self.stages
            ]
            return PartitionSequence(tuple(parts))
        parts = []
        for span in self.spans:
            chans = [p.at(0) for p in span.anchor]
            for d in range(1, n):
                chans.extend(p.at(d) for p in span.others)
            if chans:
                parts.append(Partition(tuple(chans), name=span.name))
        return PartitionSequence(tuple(parts))

    def turnset_at(self, n: int) -> TurnSet:
        """Extractor-granted turns plus the family's extra (mutant) turns."""
        turnset = extract_turns(self.sequence_at(n), validate=False)
        if self.extra_turns:
            extra = TurnSet(
                {
                    "extra": tuple(
                        Turn(Channel.parse(a), Channel.parse(b))
                        for a, b in self.extra_turns
                    )
                }
            )
            turnset = turnset.merged_with(extra)
        return turnset


def symbolic_family(name: str) -> SymbolicDesign:
    """Look up a registered symbolic family by name."""
    try:
        return SYMBOLIC_FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(SYMBOLIC_FAMILIES))
        raise EbdaError(
            f"unknown symbolic family {name!r}; known families: {known}"
        ) from None


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

def _pattern(sign: int, vc: int = 1, cls: str = "") -> ChannelPattern:
    return ChannelPattern(sign, vc, cls)


def _parametric_families() -> dict[str, SymbolicDesign]:
    pos, neg = +1, -1
    families = [
        SymbolicDesign(
            name="dim-order-mesh",
            kind="mesh",
            n_min=1,
            stages=(
                StageSchema("pos", (_pattern(pos),)),
                StageSchema("neg", (_pattern(neg),)),
            ),
            note="dimension-order routing (XY, XYZ, ...) for every n and k",
        ),
        SymbolicDesign(
            name="alg1-mesh",
            kind="mesh",
            n_min=2,
            spans=(
                SpanSchema("PA", anchor=(_pattern(pos), _pattern(neg)),
                           others=(_pattern(pos),)),
                SpanSchema("PB", others=(_pattern(neg),)),
            ),
            algorithm1=True,
            note="closed form of Algorithm 1 on the uniform one-VC budget",
        ),
        SymbolicDesign(
            name="dateline-torus",
            kind="torus",
            n_min=1,
            k_min=3,
            rule_name="dateline",
            stages=(
                StageSchema("pre", (_pattern(pos, 1, "r"), _pattern(neg, 1, "r"))),
                StageSchema("wrap", (_pattern(pos, 2, "w"), _pattern(neg, 2, "w"))),
                StageSchema("post", (_pattern(pos, 2, "r"), _pattern(neg, 2, "r"))),
            ),
            note="the dateline scheme for every k-ary n-cube",
        ),
        # -- deliberately broken families (the prover must find the region) --
        SymbolicDesign(
            name="torus-no-dateline",
            kind="torus",
            n_min=1,
            k_min=3,
            rule_name="none",
            stages=(
                StageSchema("pos", (_pattern(pos),)),
                StageSchema("neg", (_pattern(neg),)),
            ),
            note="broken: single-class torus, every wrap ring stays closed",
        ),
        SymbolicDesign(
            name="mesh-missing-negative",
            kind="mesh",
            n_min=1,
            stages=(StageSchema("pos", (_pattern(pos),)),),
            note="broken: no negative channels, negative routes unservable",
        ),
        SymbolicDesign(
            name="mesh-descending-uturn",
            kind="mesh",
            n_min=1,
            stages=(StageSchema("pair", (_pattern(pos), _pattern(neg))),),
            extra_turns=(("X-", "X+"),),
            note="broken: grants the descending U-turn X- -> X+ (Theorem 2)",
        ),
        SymbolicDesign(
            name="mesh-backward-turn",
            kind="mesh",
            n_min=1,
            stages=(
                StageSchema("pos", (_pattern(pos),)),
                StageSchema("neg", (_pattern(neg),)),
            ),
            extra_turns=(("X-", "X+"),),
            note="broken: grants the backward transition X- -> X+ (Theorem 3)",
        ),
        SymbolicDesign(
            name="mesh-foreign-turn",
            kind="mesh",
            n_min=1,
            stages=(
                StageSchema("pos", (_pattern(pos),)),
                StageSchema("neg", (_pattern(neg),)),
            ),
            extra_turns=(("X+", "X9+"),),
            note="broken: grants a turn into a channel no partition covers",
        ),
        SymbolicDesign(
            name="alg1-claimed",
            kind="mesh",
            n_min=2,
            spans=(
                SpanSchema("PA", anchor=(_pattern(pos), _pattern(neg)),
                           others=(_pattern(pos),)),
                SpanSchema("PB", others=(_pattern(neg),)),
            ),
            claims_fully_adaptive=True,
            algorithm1=True,
            note="broken: claims full adaptivity with 2n channels"
            " (needs (n+1)*2^(n-1))",
        ),
    ]
    return {f.name: f for f in families}


def _catalog_kind(name: str) -> tuple[str, int]:
    """(topology kind, minimum k) for a catalog design's native engine."""
    if name.startswith("dragonfly"):
        return "dragonfly", 3
    if name == "fattree-updown":
        return "fattree", 2
    return "mesh", 2


def _catalog_rule(name: str) -> str:
    if name == "odd-even":
        return "column-parity"
    if name == "hamiltonian":
        return "row-parity"
    if name.startswith("dragonfly"):
        return "dragonfly"
    if name == "fattree-updown":
        return "updown-signs"
    return "none"


def _catalog_families() -> dict[str, SymbolicDesign]:
    out: dict[str, SymbolicDesign] = {}
    for name in sorted(NAMED_DESIGNS):
        seq = catalog_design(name)
        kind, k_min = _catalog_kind(name)
        n_dims = len({ch.dim for ch in seq.all_channels})
        family = SymbolicDesign(
            name=f"catalog:{name}",
            kind=kind,
            n_min=n_dims,
            n_fixed=n_dims,
            k_min=k_min,
            fixed=seq.arrow_notation(),
            rule_name=_catalog_rule(name),
            claims_fully_adaptive=name in CLAIMED_CATALOG,
            note=f"catalog design {name!r}, radix-parametric",
        )
        out[family.name] = family
    return out


def _build_registry() -> dict[str, SymbolicDesign]:
    registry = _parametric_families()
    registry.update(_catalog_families())
    return registry


#: Every registered symbolic family, parametric and catalog alike.
SYMBOLIC_FAMILIES: dict[str, SymbolicDesign] = _build_registry()

# Quiet linters: `field` is re-exported for schema dataclasses in tests.
_ = field
