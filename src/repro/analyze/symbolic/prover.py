"""Closed-form re-derivations of the EBDA rules over parametric families.

For each rule in :data:`SYMBOLIC_RULES` the prover decides — for *every*
``(n, k)`` in a family's domain at once — whether the concrete linter
would emit that rule as an error, and seals the reasoning into a
:class:`~repro.analyze.symbolic.certificate.Certificate`.  The arguments
are interval/ring arithmetic over the family's partition ordering and
turn classes, never a concrete channel enumeration:

* **EBDA001** — complete-pair counts per partition schema are affine in
  ``n`` (a spanning partition gains one pair per extra dimension iff its
  per-dimension pattern carries both signs); the rule fires on the affine
  half-line where the count reaches 2.
* **EBDA002/3/4** — extractor-granted turns satisfy Theorems 2–3 by
  construction, so violations can only come from a family's *extra*
  turns; each extra turn is classified once against the closed-form
  partition index ``idx(d, stage) = d*S + stage`` and the ascending-rank
  order of the owning schema.
* **EBDA005** — a radix-``k`` torus ring is ``k-1`` regular links plus
  one wrap link.  Per sign, the one-loop class relation is
  ``L(k) = A^(k-2) ; B ; W`` over the regular-link classes, where ``A``
  contains the identity — so ``L`` is monotone in ``k`` and saturates
  after ``|C_r| - 1`` compositions.  The ring is unbroken at exactly the
  radices where ``L(k)`` has a cycle, which by monotonicity is a
  ``k >= k0`` half-line.
* **EBDA008** — under an extractor-granted turnset (plus turns, which
  only add edges) every per-dimension direction requirement is servable
  whenever each required direction has a providing channel: order the
  requirements by the least partition index providing them; consecutive
  hops are Theorem-1 (same partition, different dimension) or Theorem-3
  (forward) turns.  The rule therefore reduces to direction *coverage*
  against the topology kind's realized directions.
* **EBDA009** — the channel count is affine in ``n`` while the Section-4
  minimum ``(n+1)*2^(n-1)`` grows by ``(n+3)*2^(n-1)`` per dimension, so
  once the claim is short it stays short: the violation region is the
  half-line from the first short ``n``.

Fixed-shape (catalog) families route Theorems 1–3 through the *same*
structured violation streams as the concrete linter and the fuzzer's
theorem oracle (:func:`repro.core.theorems.sequence_violations` /
:func:`turn_violations`), then lift the verdict over all ``k`` with the
k-independence premise: class-level streams never consult the radix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analyze.symbolic.certificate import (
    Certificate,
    region_all,
    region_holds,
    region_k_ge,
    region_n_ge,
    region_none,
)
from repro.analyze.symbolic.design import (
    SYMBOLIC_FAMILIES,
    ChannelPattern,
    SymbolicDesign,
    symbolic_family,
)
from repro.core.channel import NEG, POS, Channel
from repro.core.minimal import min_channels
from repro.core.sequence import PartitionSequence
from repro.core.theorems import (
    VIOLATION_RULES,
    sequence_violations,
    turn_violations,
    uturn_allowed,
)
from repro.errors import EbdaError

__all__ = [
    "REALIZED_DIRECTIONS",
    "SYMBOLIC_RULES",
    "SymbolicReport",
    "certify",
    "certify_all",
]

#: The rules the symbolic engine re-derives (EBDA006/7/10/11 are advisory
#: and carry no error verdict to prove).
SYMBOLIC_RULES = (
    "EBDA001",
    "EBDA002",
    "EBDA003",
    "EBDA004",
    "EBDA005",
    "EBDA008",
    "EBDA009",
)

#: Directions each topology kind's links realize, independent of size.
#: ``None`` means "both signs of every dimension" (mesh/torus); dragonfly
#: phases only ever move forward (local dim 0, global dim 1) and a fat
#: tree is one up/down dimension.
REALIZED_DIRECTIONS: dict[str, tuple[tuple[int, int], ...] | None] = {
    "mesh": None,
    "torus": None,
    "dragonfly": ((0, POS), (1, POS)),
    "fattree": ((0, POS), (0, NEG)),
}


def _axiom(name: str, fact: str, kind: str) -> dict[str, Any]:
    return {"name": name, "fact": fact, "kind": kind}


def _pattern_label(p: ChannelPattern, where: str) -> str:
    sign = "+" if p.sign == POS else "-"
    cls = f"@{p.cls}" if p.cls else ""
    return f"{where}:D{p.vc}{sign}{cls}"


# ---------------------------------------------------------------------------
# Report + entry points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SymbolicReport:
    """Every certificate one family earned, plus verdict conveniences."""

    family: str
    certificates: tuple[Certificate, ...]

    @property
    def ok(self) -> bool:
        """True when no rule fires anywhere in the family's domain."""
        return not self.violation_rules

    @property
    def violation_rules(self) -> tuple[str, ...]:
        return tuple(
            c.rule for c in self.certificates if c.status == "violation"
        )

    @property
    def applicable_rules(self) -> tuple[str, ...]:
        """Rules whose premise transfers to this family's topology kind."""
        return tuple(
            c.rule for c in self.certificates if c.status != "inapplicable"
        )

    def errors_at(self, n: int, k: int) -> frozenset[str]:
        """The error rule IDs the certificates predict at one (n, k)."""
        return frozenset(
            c.rule for c in self.certificates if c.violates_at(n, k)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "ok": self.ok,
            "violations": list(self.violation_rules),
            "certificates": [c.to_dict() for c in self.certificates],
        }


def certify(
    family: str | SymbolicDesign, rules: tuple[str, ...] | None = None
) -> SymbolicReport:
    """Prove every symbolic rule over one family, sealing certificates."""
    design = symbolic_family(family) if isinstance(family, str) else family
    chosen = SYMBOLIC_RULES if rules is None else rules
    unknown = [r for r in chosen if r not in SYMBOLIC_RULES]
    if unknown:
        raise EbdaError(
            f"rules {unknown!r} have no symbolic derivation; available:"
            f" {', '.join(SYMBOLIC_RULES)}"
        )
    certs = tuple(_certify_rule(design, rule).sealed() for rule in chosen)
    return SymbolicReport(family=design.name, certificates=certs)


def certify_all(
    names: tuple[str, ...] | None = None,
    rules: tuple[str, ...] | None = None,
) -> tuple[SymbolicReport, ...]:
    """Certify every registered family (or an explicit subset)."""
    chosen = tuple(sorted(SYMBOLIC_FAMILIES)) if names is None else names
    return tuple(certify(name, rules) for name in chosen)


def _certify_rule(design: SymbolicDesign, rule: str) -> Certificate:
    if rule == "EBDA001":
        return _certify_pairs(design)
    if rule in ("EBDA002", "EBDA003", "EBDA004"):
        return _certify_turn_rule(design, rule)
    if rule == "EBDA005":
        return _certify_rings(design)
    if rule == "EBDA008":
        return _certify_coverage(design)
    if rule == "EBDA009":
        return _certify_adaptivity(design)
    raise EbdaError(f"no symbolic derivation for {rule}")


def _base_witnesses(design: SymbolicDesign) -> dict[str, Any]:
    return {"design": design.description()}


def _cert(
    design: SymbolicDesign,
    rule: str,
    region: dict[str, Any],
    premises: list[dict[str, Any]],
    witnesses: dict[str, Any],
    status: str | None = None,
) -> Certificate:
    if status is None:
        status = "clean" if region == region_none() else "violation"
    return Certificate(
        rule=rule,
        family=design.name,
        status=status,
        domain=design.domain(),
        region=region,
        premises=tuple(premises),
        witnesses=witnesses,
    )


# ---------------------------------------------------------------------------
# Shared schema arithmetic
# ---------------------------------------------------------------------------

def _k_independence() -> dict[str, Any]:
    return _axiom(
        "k-independence",
        "class-level violation streams consult partitions and turns only,"
        " never the radix, so the verdict is constant in k",
        "lemma",
    )


def _dim_symmetry() -> dict[str, Any]:
    return _axiom(
        "dim-symmetry",
        "per-dimension schema blocks are identical up to the dimension"
        " index, so one generic dimension decides all of them",
        "lemma",
    )


def _extractor_soundness() -> dict[str, Any]:
    return _axiom(
        "extractor-soundness",
        "turns granted by the extractor satisfy Theorems 2 and 3 by"
        " construction (ascending ranks, forward transitions, design"
        " channels only); only extra turns can violate them",
        "lemma",
    )


def _affine_threshold_region(
    c0: int, c1: int, threshold: int, n_min: int
) -> dict[str, Any]:
    """Where ``c0 + c1*n >= threshold`` holds on ``n >= n_min`` (c1 >= 0)."""
    if c1 < 0:
        raise EbdaError("affine forms must be nondecreasing in n")
    if c1 == 0:
        return region_all() if c0 >= threshold else region_none()
    n0 = -(-(threshold - c0) // c1)  # ceil division
    if n0 <= n_min:
        return region_all()
    return region_n_ge(n0)


def _locate(design: SymbolicDesign, ch: Channel) -> int | None:
    """Closed-form partition index of a concrete channel, None if foreign.

    Extra turns are only supported over dimensions every domain point has
    (``dim < n_min``), which keeps the located index valid family-wide.
    """
    pat = ChannelPattern(ch.sign, ch.vc, ch.cls)
    if design.fixed:
        seq = PartitionSequence.parse(design.fixed)
        for i, part in enumerate(seq):
            if ch in part:
                return i
        return None
    if ch.dim >= design.n_min:
        raise EbdaError(
            f"extra turn channel {ch} uses dimension {ch.dim}, outside the"
            f" family-wide guarantee n >= {design.n_min}"
        )
    if design.stages:
        s_count = len(design.stages)
        for s, stage in enumerate(design.stages):
            if pat in stage.own:
                return ch.dim * s_count + s
        return None
    for i, span in enumerate(design.spans):
        pool = span.anchor if ch.dim == 0 else span.others
        if pat in pool:
            return i
    return None


def _uturn_ok_schema(design: SymbolicDesign, src: Channel, dst: Channel) -> bool:
    """Closed-form :func:`repro.core.theorems.uturn_allowed` for schemas."""
    if design.fixed:
        seq = PartitionSequence.parse(design.fixed)
        return uturn_allowed(seq[seq.partition_index(src)], src, dst)
    ps, pd = ChannelPattern(src.sign, src.vc, src.cls), ChannelPattern(
        dst.sign, dst.vc, dst.cls
    )
    if design.stages:
        for stage in design.stages:
            if ps in stage.own and pd in stage.own:
                own = stage.own
                break
        else:
            return False
    else:
        for span in design.spans:
            pool = span.anchor if src.dim == 0 else span.others
            if ps in pool and pd in pool:
                own = pool
                break
        else:
            return False
    if ps == pd:
        return False
    signs = {p.sign for p in own}
    if len(signs) == 2:  # complete pair: ascending construction order
        return own.index(ps) < own.index(pd)
    return ps.sign == pd.sign  # single direction: every I-turn is safe


# ---------------------------------------------------------------------------
# EBDA001: complete-pair counting
# ---------------------------------------------------------------------------

def _certify_pairs(design: SymbolicDesign) -> Certificate:
    witnesses = _base_witnesses(design)
    premises = [_k_independence()]
    if design.fixed:
        seq = PartitionSequence.parse(design.fixed)
        dup = [
            v.message
            for v in sequence_violations(seq)
            if VIOLATION_RULES[v.code] == "EBDA001"
        ]
        witnesses["duplicate_pair_violations"] = dup
        region = region_all() if dup else region_none()
        return _cert(design, "EBDA001", region, premises, witnesses)
    premises.append(_dim_symmetry())
    region = region_none()
    counts: list[dict[str, Any]] = []
    if design.stages:
        # A stage partition holds channels of a single dimension: its
        # complete-pair count is 0 or 1, never >= 2.
        for stage in design.stages:
            both = len({p.sign for p in stage.own}) == 2
            counts.append(
                {"partition": stage.name, "c0": int(both), "c1": 0}
            )
    else:
        for span in design.spans:
            a = int(len({p.sign for p in span.anchor}) == 2)
            b = int(len({p.sign for p in span.others}) == 2)
            # pairs(n) = a + b*(n-1) = (a-b) + b*n
            counts.append({"partition": span.name, "c0": a - b, "c1": b})
            r = _affine_threshold_region(a - b, b, 2, design.n_min)
            region = _union_region(region, r, design)
    witnesses["pair_counts"] = counts
    witnesses["threshold"] = 2
    return _cert(design, "EBDA001", region, premises, witnesses)


def _union_region(
    a: dict[str, Any], b: dict[str, Any], design: SymbolicDesign
) -> dict[str, Any]:
    """Union of two violation regions (must stay expressible)."""
    if a == region_none():
        return b
    if b == region_none():
        return a
    if a == region_all() or b == region_all():
        return region_all()
    if a["kind"] == b["kind"] == "n-ge":
        return region_n_ge(min(int(a["n0"]), int(b["n0"])))
    if a["kind"] == b["kind"] == "k-ge":
        return region_k_ge(min(int(a["k0"]), int(b["k0"])))
    raise EbdaError(
        f"family {design.name!r}: region union {a!r} | {b!r} is not"
        " expressible; split the family"
    )


# ---------------------------------------------------------------------------
# EBDA002/3/4: extra-turn classification
# ---------------------------------------------------------------------------

def _classify_extra_turns(design: SymbolicDesign) -> list[dict[str, Any]]:
    """Mirror :func:`repro.core.theorems.turn_violations` per extra turn."""
    out: list[dict[str, Any]] = []
    for src_s, dst_s in design.extra_turns:
        src, dst = Channel.parse(src_s), Channel.parse(dst_s)
        src_idx, dst_idx = _locate(design, src), _locate(design, dst)
        if src_idx is None or dst_idx is None:
            verdict = "foreign-channel"
        elif src_idx == dst_idx:
            if src.dim == dst.dim and not _uturn_ok_schema(design, src, dst):
                verdict = "non-ascending"
            else:
                verdict = "granted"
        elif dst_idx < src_idx:
            verdict = "backward"
        else:
            verdict = "forward"
        out.append(
            {
                "turn": [src_s, dst_s],
                "src_index": src_idx,
                "dst_index": dst_idx,
                "verdict": verdict,
            }
        )
    return out


def _schema_overlaps(design: SymbolicDesign) -> tuple[list[str], dict[str, Any]]:
    """Pairwise partition-schema overlaps and the region where they bite."""
    overlaps: list[str] = []
    region = region_none()
    if design.stages:
        for i, a in enumerate(design.stages):
            for b in design.stages[i + 1:]:
                if set(a.own) & set(b.own):
                    overlaps.append(f"{a.name}&{b.name}")
                    region = region_all()
    elif design.spans:
        for i, a in enumerate(design.spans):
            for b in design.spans[i + 1:]:
                if set(a.anchor) & set(b.anchor):
                    overlaps.append(f"{a.name}&{b.name}:anchor")
                    region = _union_region(region, region_all(), design)
                if set(a.others) & set(b.others):
                    overlaps.append(f"{a.name}&{b.name}:others")
                    n0 = max(design.n_min, 2)
                    r = region_all() if n0 <= design.n_min else region_n_ge(n0)
                    region = _union_region(region, r, design)
    return overlaps, region


def _certify_turn_rule(design: SymbolicDesign, rule: str) -> Certificate:
    witnesses = _base_witnesses(design)
    premises = [_k_independence(), _extractor_soundness()]
    if design.fixed:
        # The fixed sequence and its extractor turnset exist concretely:
        # run the same shared streams the linter and fuzzer consume.
        seq = PartitionSequence.parse(design.fixed)
        turnset = design.turnset_at(design.n_fixed or design.n_min)
        stream = sequence_violations(seq) + turn_violations(
            seq, sorted(turnset.turns)
        )
        hits = [v.message for v in stream if VIOLATION_RULES[v.code] == rule]
        witnesses["stream_violations"] = hits
        witnesses["extra_turns_classified"] = _classify_extra_turns(design)
        region = region_all() if hits else region_none()
        return _cert(design, rule, region, premises, witnesses)
    premises.append(_dim_symmetry())
    classified = _classify_extra_turns(design)
    witnesses["extra_turns_classified"] = classified
    region = region_none()
    codes = {
        "EBDA002": ("non-ascending",),
        "EBDA003": ("backward",),
        "EBDA004": ("foreign-channel",),
    }[rule]
    for entry in classified:
        if entry["verdict"] in codes:
            region = region_all()
    if rule == "EBDA003":
        overlaps, overlap_region = _schema_overlaps(design)
        witnesses["overlaps"] = overlaps
        region = _union_region(region, overlap_region, design)
    return _cert(design, rule, region, premises, witnesses)


# ---------------------------------------------------------------------------
# EBDA005: wrap-ring relation saturation
# ---------------------------------------------------------------------------

def _compose(
    r1: set[tuple[str, str]], r2: set[tuple[str, str]]
) -> set[tuple[str, str]]:
    by_src: dict[str, set[str]] = {}
    for a, b in r2:
        by_src.setdefault(a, set()).add(b)
    return {(a, c) for a, b in r1 for c in by_src.get(b, ())}


def _has_cycle(relation: set[tuple[str, str]]) -> bool:
    """Cycle detection over a finite relation viewed as a digraph."""
    nodes = {a for a, _ in relation} | {b for _, b in relation}
    adj: dict[str, set[str]] = {v: set() for v in nodes}
    for a, b in relation:
        adj[a].add(b)
    color: dict[str, int] = dict.fromkeys(nodes, 0)

    def dfs(v: str) -> bool:
        color[v] = 1
        for w in adj[v]:
            if color[w] == 1 or (color[w] == 0 and dfs(w)):
                return True
        color[v] = 2
        return False

    return any(color[v] == 0 and dfs(v) for v in nodes)


def _ring_relations(
    design: SymbolicDesign, sign: int
) -> dict[str, Any] | None:
    """Per-sign ring class relations for a stages-shape torus family."""
    tag_regular = "r" if design.rule_name == "dateline" else ""
    tag_wrap = "w" if design.rule_name == "dateline" else ""
    labelled: list[tuple[int, str, ChannelPattern]] = []
    for s, stage in enumerate(design.stages):
        for p in stage.own:
            if p.sign == sign:
                labelled.append((s, _pattern_label(p, stage.name), p))
    c_r = [(s, lab) for s, lab, p in labelled if p.cls == tag_regular]
    c_w = [(s, lab) for s, lab, p in labelled if p.cls == tag_wrap]
    if not c_r or not c_w:
        return None  # no class walk can even enter the ring

    def allowed(sa: int, la: str, sb: int, lb: str) -> bool:
        if la == lb:
            return True  # straight-through (same class on both links)
        if sa < sb:
            return True  # Theorem 3: forward transition
        if sa > sb:
            return False
        # Same stage partition: Theorem-2 closed form over the own order.
        stage = design.stages[sa]
        pa = next(p for p in stage.own if _pattern_label(p, stage.name) == la)
        pb = next(p for p in stage.own if _pattern_label(p, stage.name) == lb)
        if len({p.sign for p in stage.own}) == 2:
            return stage.own.index(pa) < stage.own.index(pb)
        return pa.sign == pb.sign

    rel_a = {
        (la, lb) for sa, la in c_r for sb, lb in c_r if allowed(sa, la, sb, lb)
    }
    rel_b = {
        (la, lb) for sa, la in c_r for sb, lb in c_w if allowed(sa, la, sb, lb)
    }
    rel_w = {
        (la, lb) for sa, la in c_w for sb, lb in c_r if allowed(sa, la, sb, lb)
    }
    saturation = max(0, len(c_r) - 1)
    per_k: dict[str, bool] = {}
    first_unbroken: int | None = None
    power: set[tuple[str, str]] = {(lab, lab) for _, lab in c_r}  # A^0 = Id
    for steps in range(0, saturation + 2):
        k = steps + 2  # a radix-k ring has k-2 regular->regular steps
        if k >= design.k_min:
            loop = _compose(_compose(power, rel_b), rel_w)
            unbroken = _has_cycle(loop)
            per_k[str(k)] = unbroken
            if unbroken and first_unbroken is None:
                first_unbroken = k
        power = _compose(power, rel_a)
    return {
        "sign": "+" if sign == POS else "-",
        "regular_classes": [lab for _, lab in c_r],
        "wrap_classes": [lab for _, lab in c_w],
        "relation_regular": sorted(rel_a),
        "relation_to_wrap": sorted(rel_b),
        "relation_from_wrap": sorted(rel_w),
        "saturation_steps": saturation,
        "per_k_unbroken": per_k,
        "first_unbroken_k": first_unbroken,
    }


def _certify_rings(design: SymbolicDesign) -> Certificate:
    witnesses = _base_witnesses(design)
    if design.kind in ("mesh", "fattree"):
        premises = [
            _axiom(
                "acyclic-link-walks",
                f"a {design.kind} has no closed unidirectional link walk,"
                " so there is no wrap ring to leave unbroken",
                "topology-axiom",
            )
        ]
        return _cert(design, "EBDA005", region_none(), premises, witnesses)
    if design.kind == "dragonfly":
        premises = [
            _axiom(
                "dragonfly-two-hop-rings",
                "canonical dragonfly link rings are two-hop backtracking"
                " loops that single-hop phases never traverse; the generic"
                " wrap-ring rule over-approximates here (EBDA012 is the"
                " topology-aware replacement)",
                "topology-axiom",
            )
        ]
        return _cert(
            design,
            "EBDA005",
            region_none(),
            premises,
            witnesses,
            status="inapplicable",
        )
    if not design.stages:
        raise EbdaError(
            f"torus family {design.name!r} must use the stages shape for"
            " the ring derivation"
        )
    premises = [
        _axiom(
            "ring-structure",
            "every (dim, sign) of a radix-k torus is covered by rings of"
            " k-1 regular links plus one wrap link",
            "topology-axiom",
        ),
        _axiom(
            "relation-monotone",
            "the regular-step relation contains the identity, so the"
            " one-loop relation A^(k-2);B;W is monotone in k and saturates"
            " after |C_r|-1 compositions: the unbroken radices form a"
            " k >= k0 half-line",
            "lemma",
        ),
        _dim_symmetry(),
    ]
    region = region_none()
    per_sign: list[dict[str, Any]] = []
    for sign in (POS, NEG):
        rel = _ring_relations(design, sign)
        if rel is None:
            per_sign.append(
                {"sign": "+" if sign == POS else "-", "no_instantiable": True}
            )
            continue
        per_sign.append(rel)
        k0 = rel["first_unbroken_k"]
        if k0 is not None:
            r = region_all() if k0 <= design.k_min else region_k_ge(int(k0))
            region = _union_region(region, r, design)
    witnesses["rings"] = per_sign
    return _cert(design, "EBDA005", region, premises, witnesses)


# ---------------------------------------------------------------------------
# EBDA008: direction coverage + the serving-order lemma
# ---------------------------------------------------------------------------

def _serving_order() -> dict[str, Any]:
    return _axiom(
        "extractor-serving-order",
        "with extractor-granted turns (extras only add edges), any"
        " requirement set is servable once each direction has a channel:"
        " visit directions by least providing partition index; equal"
        " indices are Theorem-1 turns, ascending ones Theorem-3 turns",
        "lemma",
    )


def _realized(design: SymbolicDesign) -> dict[str, Any]:
    dirs = REALIZED_DIRECTIONS[design.kind]
    fact = (
        "links realize both signs of every dimension"
        if dirs is None
        else f"links realize exactly {sorted(dirs)}"
    )
    return _axiom(f"realized-directions:{design.kind}", fact, "topology-axiom")


def _certify_coverage(design: SymbolicDesign) -> Certificate:
    witnesses = _base_witnesses(design)
    premises = [_realized(design), _serving_order(), _k_independence()]
    region = region_none()
    missing: list[dict[str, Any]] = []
    if design.fixed:
        seq = PartitionSequence.parse(design.fixed)
        provided = {(ch.dim, ch.sign) for ch in seq.all_channels}
        dims = sorted({d for d, _ in provided})
        realized = REALIZED_DIRECTIONS[design.kind]
        for d in dims:
            for sign in (POS, NEG):
                if realized is not None and (d, sign) not in realized:
                    continue
                if (d, sign) not in provided:
                    missing.append({"dim": d, "sign": sign})
                    region = region_all()
    else:
        premises.append(_dim_symmetry())
        if design.stages:
            signs = {p.sign for stage in design.stages for p in stage.own}
            for sign in (POS, NEG):
                if sign not in signs:
                    missing.append({"dim": "all", "sign": sign})
                    region = region_all()
        else:
            anchor_signs = {
                p.sign for span in design.spans for p in span.anchor
            }
            other_signs = {
                p.sign for span in design.spans for p in span.others
            }
            for sign in (POS, NEG):
                if sign not in anchor_signs:
                    missing.append({"dim": 0, "sign": sign})
                    region = region_all()
                if sign not in other_signs:
                    missing.append({"dim": ">=1", "sign": sign})
                    n0 = max(design.n_min, 2)
                    r = region_all() if n0 <= design.n_min else region_n_ge(n0)
                    region = _union_region(region, r, design)
    witnesses["missing_directions"] = missing
    return _cert(design, "EBDA008", region, premises, witnesses)


# ---------------------------------------------------------------------------
# EBDA009: adaptivity budget induction
# ---------------------------------------------------------------------------

def _channel_affine(design: SymbolicDesign) -> tuple[int, int]:
    """(c0, c1) with channel count have(n) = c0 + c1*n."""
    if design.fixed:
        seq = PartitionSequence.parse(design.fixed)
        return len(seq.all_channels), 0
    if design.stages:
        per_dim = sum(len(stage.own) for stage in design.stages)
        return 0, per_dim
    anchors = sum(len(span.anchor) for span in design.spans)
    others = sum(len(span.others) for span in design.spans)
    return anchors - others, others


def _certify_adaptivity(design: SymbolicDesign) -> Certificate:
    witnesses = _base_witnesses(design)
    c0, c1 = _channel_affine(design)
    witnesses["channels"] = {"c0": c0, "c1": c1}
    witnesses["claims_fully_adaptive"] = design.claims_fully_adaptive
    premises = [_k_independence()]
    if not design.claims_fully_adaptive:
        return _cert(design, "EBDA009", region_none(), premises, witnesses)
    premises.append(
        _axiom(
            "needed-margin",
            "(n+2)*2^n - (n+1)*2^(n-1) = (n+3)*2^(n-1): the Section-4"
            " minimum grows faster than any affine channel count, so once"
            " the claim falls short it stays short",
            "lemma",
        )
    )
    n_hi = design.n_fixed if design.n_fixed is not None else design.n_min + 64
    n0: int | None = None
    for n in range(design.n_min, n_hi + 1):
        if c0 + c1 * n < min_channels(n):
            n0 = n
            break
    witnesses["first_short_n"] = n0
    if n0 is None:
        # Fixed-n families can genuinely meet the bound; a free-n claim
        # always falls short eventually (exponential vs affine).
        if design.n_fixed is None:
            raise EbdaError(
                f"family {design.name!r}: affine channel count cannot meet"
                " the exponential minimum for all n; widen the scan"
            )
        witnesses["needed"] = min_channels(design.n_fixed)
        return _cert(design, "EBDA009", region_none(), premises, witnesses)
    witnesses["needed_at_first_short"] = min_channels(n0)
    margin = (n0 + 3) * 2 ** (n0 - 1)
    if margin < c1:
        raise EbdaError(
            f"family {design.name!r}: margin lemma does not apply at n={n0}"
        )
    witnesses["margin_at_first_short"] = margin
    region = region_all() if n0 <= design.n_min else region_n_ge(n0)
    return _cert(design, "EBDA009", region, premises, witnesses)


# Re-exported for the differential gate's region sanity checks.
_ = region_holds
