"""Independent re-validation of symbolic EBDA certificates.

This module deliberately does **not** trust — or import — the prover.  It
is stdlib-only (``json``, ``hashlib``, ``re``, ``dataclasses``), carries
its own tiny channel-notation parser and its own copies of the closed
forms, and re-derives every certificate verdict from the family
description embedded in the certificate itself:

1. the content digest is recomputed over the canonical JSON payload (any
   mutated byte either breaks the JSON, changes the digest, or changes a
   value the re-derivation contradicts);
2. structural fields (schema version, status, region shape, domain) are
   validated against the documented certificate format;
3. the premises are checked against a hardcoded whitelist of admissible
   axioms — a certificate may only lean on facts this checker recognises,
   applied to the right topology kind;
4. the verdict (status + violation region) is re-derived with independent
   arithmetic and compared.

The only shared knowledge is the *file format* documented in
:mod:`repro.analyze.symbolic.certificate` and the mathematics of the
paper; agreement between two implementations is the point.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Any

__all__ = ["CheckResult", "check_certificate", "check_certificates"]

_SCHEMA = 1
_RULES = (
    "EBDA001",
    "EBDA002",
    "EBDA003",
    "EBDA004",
    "EBDA005",
    "EBDA008",
    "EBDA009",
)
_STATUSES = ("clean", "violation", "inapplicable")
_KINDS = ("mesh", "torus", "dragonfly", "fattree")

#: Own copy of the structured-violation -> rule mapping (the prover reads
#: :data:`repro.core.theorems.VIOLATION_RULES`; sharing it would let one
#: typo corrupt both sides).
_CODE_RULES = {
    "duplicate-pair": "EBDA001",
    "non-ascending": "EBDA002",
    "backward": "EBDA003",
    "overlap": "EBDA003",
    "foreign-channel": "EBDA004",
}

#: Realized link directions per topology kind (None = every direction).
_REALIZED: dict[str, tuple[tuple[int, int], ...] | None] = {
    "mesh": None,
    "torus": None,
    "dragonfly": ((0, 1), (1, 1)),
    "fattree": ((0, 1), (0, -1)),
}

#: Admissible axioms: name -> topology kinds it may be applied to (None =
#: any kind).  A certificate citing an unknown axiom, or a known one on
#: the wrong kind, is rejected.
_AXIOMS: dict[str, tuple[str, ...] | None] = {
    "k-independence": None,
    "dim-symmetry": None,
    "extractor-soundness": None,
    "extractor-serving-order": None,
    "needed-margin": None,
    "relation-monotone": ("torus",),
    "ring-structure": ("torus",),
    "acyclic-link-walks": ("mesh", "fattree"),
    "dragonfly-two-hop-rings": ("dragonfly",),
    "realized-directions:mesh": ("mesh",),
    "realized-directions:torus": ("torus",),
    "realized-directions:dragonfly": ("dragonfly",),
    "realized-directions:fattree": ("fattree",),
}

#: Axioms a rule's derivation must cite, by (rule, kind-or-None).
_REQUIRED_AXIOMS: dict[str, dict[str | None, tuple[str, ...]]] = {
    "EBDA002": {None: ("extractor-soundness",)},
    "EBDA003": {None: ("extractor-soundness",)},
    "EBDA004": {None: ("extractor-soundness",)},
    "EBDA005": {
        "mesh": ("acyclic-link-walks",),
        "fattree": ("acyclic-link-walks",),
        "dragonfly": ("dragonfly-two-hop-rings",),
        "torus": ("ring-structure", "relation-monotone"),
    },
    "EBDA008": {None: ("extractor-serving-order",)},
}

_LETTERS = "XYZTUVW"
_CHANNEL_RE = re.compile(
    r"^([A-Z]|D\d+)(\d*)([+-])(?:@([A-Za-z0-9_]+))?$"
)

#: A parsed channel: (dim, vc, sign, cls).
_Chan = tuple[int, int, int, str]


def _canonical(obj: Any) -> str:
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=True, allow_nan=False
    )


def _digest(payload: dict[str, Any]) -> str:
    return "sha256:" + hashlib.sha256(_canonical(payload).encode()).hexdigest()


def _parse_channel(text: str) -> _Chan | None:
    m = _CHANNEL_RE.match(text.strip())
    if m is None:
        return None
    dim_s, vc_s, sign_s, cls = m.groups()
    if dim_s.startswith("D") and len(dim_s) > 1:
        dim = int(dim_s[1:]) - 1
    elif dim_s in _LETTERS:
        dim = _LETTERS.index(dim_s)
    else:
        return None
    return (dim, int(vc_s) if vc_s else 1, 1 if sign_s == "+" else -1, cls or "")


def _parse_partitions(fixed: str) -> list[list[_Chan]] | None:
    parts: list[list[_Chan]] = []
    for seg in fixed.split("->"):
        chans: list[_Chan] = []
        for token in seg.split():
            ch = _parse_channel(token)
            if ch is None:
                return None
            chans.append(ch)
        if not chans:
            return None
        parts.append(chans)
    return parts


# ---------------------------------------------------------------------------
# Region algebra (own copy)
# ---------------------------------------------------------------------------

_NONE = {"kind": "none"}
_ALL = {"kind": "all"}


def _region_ok(region: Any) -> bool:
    if not isinstance(region, dict):
        return False
    kind = region.get("kind")
    if kind in ("none", "all"):
        return set(region) == {"kind"}
    if kind == "n-ge":
        return set(region) == {"kind", "n0"} and isinstance(region["n0"], int)
    if kind == "k-ge":
        return set(region) == {"kind", "k0"} and isinstance(region["k0"], int)
    return False


def _n_ge(n0: int, n_min: int) -> dict[str, Any]:
    return dict(_ALL) if n0 <= n_min else {"kind": "n-ge", "n0": n0}


def _k_ge(k0: int, k_min: int) -> dict[str, Any]:
    return dict(_ALL) if k0 <= k_min else {"kind": "k-ge", "k0": k0}


def _union(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any] | None:
    if a == _NONE:
        return b
    if b == _NONE:
        return a
    if a == _ALL or b == _ALL:
        return dict(_ALL)
    if a["kind"] == b["kind"] == "n-ge":
        return {"kind": "n-ge", "n0": min(a["n0"], b["n0"])}
    if a["kind"] == b["kind"] == "k-ge":
        return {"kind": "k-ge", "k0": min(a["k0"], b["k0"])}
    return None


# ---------------------------------------------------------------------------
# Description model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _Desc:
    """The family description, re-parsed without trusting the prover."""

    kind: str
    shape: str
    n_min: int
    n_fixed: int | None
    k_min: int
    rule: str
    claims: bool
    stages: tuple[tuple[str, tuple[tuple[int, int, str], ...]], ...]
    spans: tuple[
        tuple[str, tuple[tuple[int, int, str], ...], tuple[tuple[int, int, str], ...]],
        ...,
    ]
    fixed: str
    extra_turns: tuple[tuple[str, str], ...]


def _patterns(raw: Any) -> tuple[tuple[int, int, str], ...] | None:
    out = []
    for item in raw:
        if (
            not isinstance(item, list)
            or len(item) != 3
            or item[0] not in (1, -1)
            or not isinstance(item[1], int)
            or not isinstance(item[2], str)
        ):
            return None
        out.append((item[0], item[1], item[2]))
    return tuple(out)


def _load_desc(raw: Any) -> _Desc | None:
    if not isinstance(raw, dict):
        return None
    try:
        kind = raw["kind"]
        shape = raw["shape"]
        n_min = raw["n_min"]
        n_fixed = raw["n_fixed"]
        k_min = raw["k_min"]
        rule = raw["rule"]
        claims = raw["claims_fully_adaptive"]
        stages_raw = raw["stages"]
        spans_raw = raw["spans"]
        fixed = raw["fixed"]
        extra_raw = raw["extra_turns"]
    except (KeyError, TypeError):
        return None
    if kind not in _KINDS or shape not in ("stages", "spans", "fixed"):
        return None
    if not isinstance(n_min, int) or n_min < 1 or not isinstance(k_min, int) or k_min < 2:
        return None
    if n_fixed is not None and not isinstance(n_fixed, int):
        return None
    stages = []
    for s in stages_raw:
        own = _patterns(s.get("own", ()))
        if own is None or not isinstance(s.get("name"), str):
            return None
        stages.append((s["name"], own))
    spans = []
    for s in spans_raw:
        anchor = _patterns(s.get("anchor", ()))
        others = _patterns(s.get("others", ()))
        if anchor is None or others is None or not isinstance(s.get("name"), str):
            return None
        spans.append((s["name"], anchor, others))
    extra = []
    for t in extra_raw:
        if not isinstance(t, list) or len(t) != 2:
            return None
        extra.append((str(t[0]), str(t[1])))
    shapes_present = sum(1 for x in (stages, spans, fixed) if x)
    if shapes_present != 1:
        return None
    return _Desc(
        kind=kind,
        shape=shape,
        n_min=n_min,
        n_fixed=n_fixed,
        k_min=k_min,
        rule=str(rule),
        claims=bool(claims),
        stages=tuple(stages),
        spans=tuple(spans),
        fixed=str(fixed),
        extra_turns=tuple(extra),
    )


# ---------------------------------------------------------------------------
# Independent verdict derivation
# ---------------------------------------------------------------------------

def _both_signs(patterns: tuple[tuple[int, int, str], ...]) -> bool:
    return len({p[0] for p in patterns}) == 2


def _fixed_duplicate_pairs(parts: list[list[_Chan]]) -> bool:
    for part in parts:
        signs_by_dim: dict[int, set[int]] = {}
        for dim, _vc, sign, _cls in part:
            signs_by_dim.setdefault(dim, set()).add(sign)
        if sum(1 for s in signs_by_dim.values() if len(s) == 2) >= 2:
            return True
    return False


def _fixed_overlap(parts: list[list[_Chan]]) -> bool:
    seen: set[_Chan] = set()
    for part in parts:
        for ch in part:
            if ch in seen:
                return True
            seen.add(ch)
    return False


def _locate(desc: _Desc, ch: _Chan) -> int | None:
    dim, vc, sign, cls = ch
    if desc.shape == "fixed":
        parts = _parse_partitions(desc.fixed)
        if parts is None:
            return None
        for i, part in enumerate(parts):
            if ch in part:
                return i
        return None
    pat = (sign, vc, cls)
    if desc.shape == "stages":
        for s, (_name, own) in enumerate(desc.stages):
            if pat in own:
                return dim * len(desc.stages) + s
        return None
    for i, (_name, anchor, others) in enumerate(desc.spans):
        pool = anchor if dim == 0 else others
        if pat in pool:
            return i
    return None


def _same_dim_rank_ok(
    own: tuple[tuple[int, int, str], ...], src: _Chan, dst: _Chan
) -> bool:
    """Theorem-2 closed form: ascending construction rank, or same-sign
    I-turns when the dimension has a single direction."""
    ps, pd = (src[2], src[1], src[3]), (dst[2], dst[1], dst[3])
    if ps == pd:
        return False
    if _both_signs(own):
        return own.index(ps) < own.index(pd)
    return src[2] == dst[2]


def _fixed_uturn_ok(parts: list[list[_Chan]], idx: int, src: _Chan, dst: _Chan) -> bool:
    part = parts[idx]
    same_dim = [ch for ch in part if ch[0] == src[0]]
    if src == dst or src not in part or dst not in part:
        return False
    signs = {ch[2] for ch in same_dim}
    if len(signs) == 2:
        return same_dim.index(src) < same_dim.index(dst)
    return src[2] == dst[2]


def _classify_extras(desc: _Desc) -> list[tuple[tuple[str, str], str]] | None:
    out: list[tuple[tuple[str, str], str]] = []
    parts = _parse_partitions(desc.fixed) if desc.shape == "fixed" else None
    for src_s, dst_s in desc.extra_turns:
        src, dst = _parse_channel(src_s), _parse_channel(dst_s)
        if src is None or dst is None:
            return None
        if desc.shape != "fixed" and max(src[0], dst[0]) >= desc.n_min:
            # The prover refuses such families; a certificate carrying one
            # is malformed.
            return None
        src_idx, dst_idx = _locate(desc, src), _locate(desc, dst)
        if src_idx is None or dst_idx is None:
            out.append(((src_s, dst_s), "foreign-channel"))
        elif src_idx == dst_idx:
            if src[0] != dst[0]:
                out.append(((src_s, dst_s), "granted"))
            elif desc.shape == "fixed":
                assert parts is not None
                ok = _fixed_uturn_ok(parts, src_idx, src, dst)
                out.append(((src_s, dst_s), "granted" if ok else "non-ascending"))
            else:
                own = _own_pool(desc, src)
                if own is None:
                    return None
                ok = _same_dim_rank_ok(own, src, dst)
                out.append(((src_s, dst_s), "granted" if ok else "non-ascending"))
        elif dst_idx < src_idx:
            out.append(((src_s, dst_s), "backward"))
        else:
            out.append(((src_s, dst_s), "forward"))
    return out


def _own_pool(desc: _Desc, ch: _Chan) -> tuple[tuple[int, int, str], ...] | None:
    pat = (ch[2], ch[1], ch[3])
    if desc.shape == "stages":
        for _name, own in desc.stages:
            if pat in own:
                return own
        return None
    for _name, anchor, others in desc.spans:
        pool = anchor if ch[0] == 0 else others
        if pat in pool:
            return pool
    return None


def _derive_pairs(desc: _Desc) -> dict[str, Any] | None:
    if desc.shape == "fixed":
        parts = _parse_partitions(desc.fixed)
        if parts is None:
            return None
        return dict(_ALL) if _fixed_duplicate_pairs(parts) else dict(_NONE)
    if desc.shape == "stages":
        return dict(_NONE)  # single-dimension partitions: at most one pair
    region: dict[str, Any] | None = dict(_NONE)
    for _name, anchor, others in desc.spans:
        a, b = int(_both_signs(anchor)), int(_both_signs(others))
        # pairs(n) = a + b*(n-1) >= 2
        if b == 0:
            r = dict(_ALL) if a >= 2 else dict(_NONE)
        else:
            r = _n_ge(-(-(2 - (a - b)) // b), desc.n_min)
        region = _union(region, r) if region is not None else None
    return region


def _derive_turn_rule(desc: _Desc, rule: str) -> dict[str, Any] | None:
    classified = _classify_extras(desc)
    if classified is None:
        return None
    region: dict[str, Any] | None = dict(_NONE)
    for _turn, verdict in classified:
        if verdict in _CODE_RULES and _CODE_RULES[verdict] == rule:
            region = _union(region, dict(_ALL)) if region is not None else None
    if rule == "EBDA003" and region is not None:
        if desc.shape == "fixed":
            parts = _parse_partitions(desc.fixed)
            if parts is None:
                return None
            if _fixed_overlap(parts):
                region = _union(region, dict(_ALL))
        elif desc.shape == "stages":
            for i, (_na, own_a) in enumerate(desc.stages):
                for _nb, own_b in desc.stages[i + 1:]:
                    if set(own_a) & set(own_b):
                        region = _union(region, dict(_ALL))
        else:
            for i, (_na, anc_a, oth_a) in enumerate(desc.spans):
                for _nb, anc_b, oth_b in desc.spans[i + 1:]:
                    if set(anc_a) & set(anc_b):
                        region = _union(region, dict(_ALL))
                    if (
                        region is not None
                        and set(oth_a) & set(oth_b)
                    ):
                        region = _union(region, _n_ge(2, desc.n_min))
    return region


def _derive_rings(desc: _Desc) -> tuple[str, dict[str, Any]] | None:
    if desc.kind in ("mesh", "fattree"):
        return ("clean", dict(_NONE))
    if desc.kind == "dragonfly":
        return ("inapplicable", dict(_NONE))
    if desc.shape != "stages" or desc.rule not in ("none", "dateline"):
        return None
    tag_r = "r" if desc.rule == "dateline" else ""
    tag_w = "w" if desc.rule == "dateline" else ""
    region: dict[str, Any] | None = dict(_NONE)
    for sign in (1, -1):
        nodes: list[tuple[int, int, int, str]] = []  # (stage, sign, vc, cls)
        for s, (_name, own) in enumerate(desc.stages):
            for p_sign, p_vc, p_cls in own:
                if p_sign == sign:
                    nodes.append((s, p_sign, p_vc, p_cls))
        c_r = [x for x in nodes if x[3] == tag_r]
        c_w = [x for x in nodes if x[3] == tag_w]
        if not c_r or not c_w:
            continue

        def allowed(a: tuple[int, int, int, str], b: tuple[int, int, int, str]) -> bool:
            if a == b:
                return True  # straight-through, same class on both links
            if a[0] < b[0]:
                return True  # Theorem 3: forward transition
            if a[0] > b[0]:
                return False
            own = desc.stages[a[0]][1]
            pa, pb = (a[1], a[2], a[3]), (b[1], b[2], b[3])
            if _both_signs(own):
                return own.index(pa) < own.index(pb)
            return a[1] == b[1]

        rel_a = {(a, b) for a in c_r for b in c_r if allowed(a, b)}
        rel_b = {(a, b) for a in c_r for b in c_w if allowed(a, b)}
        rel_w = {(a, b) for a in c_w for b in c_r if allowed(a, b)}

        def compose(
            r1: set[tuple[Any, Any]], r2: set[tuple[Any, Any]]
        ) -> set[tuple[Any, Any]]:
            by_src: dict[Any, set[Any]] = {}
            for x, y in r2:
                by_src.setdefault(x, set()).add(y)
            return {(x, z) for x, y in r1 for z in by_src.get(y, ())}

        def cyclic(rel: set[tuple[Any, Any]]) -> bool:
            verts = {x for x, _ in rel} | {y for _, y in rel}
            adj: dict[Any, set[Any]] = {v: set() for v in verts}
            for x, y in rel:
                adj[x].add(y)
            state: dict[Any, int] = dict.fromkeys(verts, 0)

            def dfs(v: Any) -> bool:
                state[v] = 1
                for w in adj[v]:
                    if state[w] == 1 or (state[w] == 0 and dfs(w)):
                        return True
                state[v] = 2
                return False

            return any(state[v] == 0 and dfs(v) for v in verts)

        saturation = max(0, len(c_r) - 1)
        power: set[tuple[Any, Any]] = {(x, x) for x in c_r}
        k0: int | None = None
        for steps in range(0, saturation + 2):
            k = steps + 2
            if k >= desc.k_min and k0 is None:
                loop = compose(compose(power, rel_b), rel_w)
                if cyclic(loop):
                    k0 = k
            power = compose(power, rel_a)
        if k0 is not None:
            r = _k_ge(k0, desc.k_min)
            region = _union(region, r) if region is not None else None
    if region is None:
        return None
    return ("violation" if region != _NONE else "clean", region)


def _derive_coverage(desc: _Desc) -> dict[str, Any] | None:
    realized = _REALIZED[desc.kind]
    region: dict[str, Any] | None = dict(_NONE)
    if desc.shape == "fixed":
        parts = _parse_partitions(desc.fixed)
        if parts is None:
            return None
        provided = {(ch[0], ch[2]) for part in parts for ch in part}
        for d in sorted({dim for dim, _ in provided}):
            for sign in (1, -1):
                if realized is not None and (d, sign) not in realized:
                    continue
                if (d, sign) not in provided:
                    region = _union(region, dict(_ALL)) if region else None
        return region
    if desc.shape == "stages":
        signs = {p[0] for _name, own in desc.stages for p in own}
        for sign in (1, -1):
            if sign not in signs:
                region = _union(region, dict(_ALL)) if region else None
        return region
    anchor_signs = {p[0] for _n, anchor, _o in desc.spans for p in anchor}
    other_signs = {p[0] for _n, _a, others in desc.spans for p in others}
    for sign in (1, -1):
        if sign not in anchor_signs and region is not None:
            region = _union(region, dict(_ALL))
        if sign not in other_signs and region is not None:
            region = _union(region, _n_ge(2, desc.n_min))
    return region


def _min_channels(n: int) -> int:
    return (n + 1) * 2 ** (n - 1)


def _derive_adaptivity(desc: _Desc) -> dict[str, Any] | None:
    if not desc.claims:
        return dict(_NONE)
    if desc.shape == "fixed":
        parts = _parse_partitions(desc.fixed)
        if parts is None:
            return None
        c0, c1 = sum(len(p) for p in parts), 0
    elif desc.shape == "stages":
        c0, c1 = 0, sum(len(own) for _name, own in desc.stages)
    else:
        anchors = sum(len(a) for _n, a, _o in desc.spans)
        others = sum(len(o) for _n, _a, o in desc.spans)
        c0, c1 = anchors - others, others
    n_hi = desc.n_fixed if desc.n_fixed is not None else desc.n_min + 64
    for n in range(desc.n_min, n_hi + 1):
        if c0 + c1 * n < _min_channels(n):
            if (n + 3) * 2 ** (n - 1) < c1:
                return None  # margin lemma would not apply: malformed
            return _n_ge(n, desc.n_min)
    return dict(_NONE) if desc.n_fixed is not None else None


def _derive(desc: _Desc, rule: str) -> tuple[str, dict[str, Any]] | None:
    if rule == "EBDA001":
        region = _derive_pairs(desc)
    elif rule in ("EBDA002", "EBDA003", "EBDA004"):
        region = _derive_turn_rule(desc, rule)
    elif rule == "EBDA005":
        return _derive_rings(desc)
    elif rule == "EBDA008":
        region = _derive_coverage(desc)
    elif rule == "EBDA009":
        region = _derive_adaptivity(desc)
    else:
        return None
    if region is None:
        return None
    return ("violation" if region != _NONE else "clean", region)


# ---------------------------------------------------------------------------
# The check entry points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CheckResult:
    """Outcome of independently re-validating one certificate."""

    family: str
    rule: str
    ok: bool
    problems: tuple[str, ...] = ()

    def describe(self) -> str:
        head = f"{self.family}/{self.rule}: " if self.family or self.rule else ""
        if self.ok:
            return f"{head}verified"
        return f"{head}REJECTED ({'; '.join(self.problems)})"


def _structural_problems(data: dict[str, Any]) -> list[str]:
    problems = []
    if data.get("schema") != _SCHEMA:
        problems.append(f"unknown schema version {data.get('schema')!r}")
    if data.get("rule") not in _RULES:
        problems.append(f"unknown rule {data.get('rule')!r}")
    if data.get("status") not in _STATUSES:
        problems.append(f"unknown status {data.get('status')!r}")
    if not _region_ok(data.get("region")):
        problems.append(f"malformed region {data.get('region')!r}")
    if not isinstance(data.get("family"), str) or not data.get("family"):
        problems.append("missing family name")
    if not isinstance(data.get("premises"), list):
        problems.append("premises must be a list")
    if not isinstance(data.get("witnesses"), dict):
        problems.append("witnesses must be an object")
    return problems


def _domain_problems(data: dict[str, Any], desc: _Desc) -> list[str]:
    domain = data.get("domain")
    if not isinstance(domain, dict):
        return ["malformed domain"]
    expect_n_min = desc.n_fixed if desc.n_fixed is not None else desc.n_min
    n_dom, k_dom = domain.get("n"), domain.get("k")
    problems = []
    if not isinstance(n_dom, dict) or n_dom.get("min") != expect_n_min:
        problems.append(f"domain n does not match the description: {n_dom!r}")
    elif desc.n_fixed is not None and n_dom.get("max") != desc.n_fixed:
        problems.append("fixed-n family must pin n in the domain")
    if not isinstance(k_dom, dict) or k_dom.get("min") != desc.k_min:
        problems.append(f"domain k does not match the description: {k_dom!r}")
    return problems


def _premise_problems(data: dict[str, Any], desc: _Desc) -> list[str]:
    problems = []
    cited: set[str] = set()
    for p in data.get("premises", []):
        if not isinstance(p, dict) or not isinstance(p.get("name"), str):
            problems.append(f"malformed premise {p!r}")
            continue
        name = p["name"]
        kinds = _AXIOMS.get(name)
        if name not in _AXIOMS:
            problems.append(f"unknown axiom {name!r}")
        elif kinds is not None and desc.kind not in kinds:
            problems.append(f"axiom {name!r} does not apply to a {desc.kind}")
        cited.add(name)
    rule = data.get("rule", "")
    required = _REQUIRED_AXIOMS.get(rule, {})
    for need in required.get(desc.kind, required.get(None, ())):
        if need not in cited:
            problems.append(f"derivation of {rule} must cite axiom {need!r}")
    if rule == "EBDA009" and desc.claims and "needed-margin" not in cited:
        problems.append("an armed EBDA009 derivation must cite 'needed-margin'")
    return problems


def check_certificate(data: str | dict[str, Any]) -> CheckResult:
    """Re-validate one certificate from its JSON (string or dict) form."""
    if isinstance(data, str):
        try:
            parsed = json.loads(data)
        except ValueError as exc:
            return CheckResult("", "", False, (f"not valid JSON: {exc}",))
        if not isinstance(parsed, dict):
            return CheckResult("", "", False, ("certificate must be an object",))
        data = parsed
    if not isinstance(data, dict):
        return CheckResult("", "", False, ("certificate must be an object",))
    family = str(data.get("family", ""))
    rule = str(data.get("rule", ""))
    problems = _structural_problems(data)
    if problems:
        return CheckResult(family, rule, False, tuple(problems))

    payload = {key: value for key, value in data.items() if key != "digest"}
    expected = _digest(payload)
    if data.get("digest") != expected:
        problems.append(
            f"digest mismatch: certificate says {data.get('digest')!r},"
            f" canonical payload hashes to {expected!r}"
        )
        return CheckResult(family, rule, False, tuple(problems))

    desc = _load_desc(data.get("witnesses", {}).get("design"))
    if desc is None:
        return CheckResult(
            family, rule, False, ("witnesses.design is missing or malformed",)
        )
    problems.extend(_domain_problems(data, desc))
    problems.extend(_premise_problems(data, desc))

    derived = _derive(desc, rule)
    if derived is None:
        problems.append(f"could not re-derive {rule} from the description")
    else:
        status, region = derived
        if data["status"] != status:
            problems.append(
                f"status mismatch: certificate says {data['status']!r},"
                f" re-derivation gives {status!r}"
            )
        if data["region"] != region:
            problems.append(
                f"region mismatch: certificate says {data['region']!r},"
                f" re-derivation gives {region!r}"
            )
    return CheckResult(family, rule, not problems, tuple(problems))


def check_certificates(
    items: list[str | dict[str, Any]],
) -> tuple[CheckResult, ...]:
    """Re-validate a batch, preserving order."""
    return tuple(check_certificate(item) for item in items)
