"""Report renderers: human text, strict JSON, SARIF 2.1.0.

All three renderers take a list of :class:`~repro.analyze.engine.AnalysisReport`
and return a string, so the CLI and CI tooling can swap formats freely.

The SARIF output targets the 2.1.0 schema with logical locations (designs
have no source files — locations are ``design::P0(PA) turn X+->Y-`` logical
paths), per-rule descriptors from the registry (title, paper citation, fix
hint), and ``partialFingerprints`` matching the baseline fingerprints so
SARIF consumers and the ``--baseline`` mechanism agree on identity.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.analyze.diagnostics import RULES, Diagnostic, Severity
from repro.analyze.engine import AnalysisReport

__all__ = ["render_json", "render_sarif", "render_text"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/ebda/repro"
FINGERPRINT_KEY = "ebdaFingerprint/v1"


def render_text(reports: Sequence[AnalysisReport], *, verbose: bool = False) -> str:
    """Human-oriented multi-line report, one block per design."""
    lines: list[str] = []
    total = {s.value: 0 for s in Severity}
    for report in reports:
        counts = report.counts
        for key, n in counts.items():
            total[key] += n
        status = "clean" if not report.diagnostics else (
            f"{counts['error']} error(s), {counts['warning']} warning(s),"
            f" {counts['note']} note(s)"
        )
        lines.append(f"{report.unit_name}: {status}")
        for diag in report.diagnostics:
            lines.append(f"  {diag.render()}")
        if verbose:
            lines.append(
                f"  [rules run: {', '.join(report.rules_run)};"
                f" {report.elapsed_s * 1e3:.2f} ms]"
            )
    designs = len(reports)
    lines.append(
        f"checked {designs} design(s): {total['error']} error(s),"
        f" {total['warning']} warning(s), {total['note']} note(s)"
    )
    return "\n".join(lines)


def render_json(reports: Sequence[AnalysisReport]) -> str:
    """Strict machine-readable JSON (stable key order, sorted)."""
    payload = {
        "tool": TOOL_NAME,
        "schema": 1,
        "designs": [r.to_dict() for r in reports],
        "totals": {
            s.value: sum(r.counts[s.value] for r in reports) for s in Severity
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_level(severity: Severity) -> str:
    # Severity names map one-to-one onto SARIF result levels.
    return severity.value


def _sarif_rules() -> list[dict[str, object]]:
    descriptors: list[dict[str, object]] = []
    for rid, info in sorted(RULES.items()):
        descriptors.append(
            {
                "id": rid,
                "name": info.title,
                "shortDescription": {"text": info.title},
                "fullDescription": {
                    "text": info.description or info.title,
                },
                "help": {
                    "text": f"{info.description or info.title}"
                    f" (EbDa paper, {info.citation})",
                },
                "defaultConfiguration": {
                    "level": _sarif_level(info.severity),
                    "enabled": info.default_enabled,
                },
                "properties": {
                    "citation": info.citation,
                    "requiresTopology": info.requires_topology,
                },
            }
        )
    return descriptors


def _sarif_result(diag: Diagnostic, rule_index: dict[str, int]) -> dict[str, object]:
    message = diag.message
    if diag.hint:
        message = f"{message} (hint: {diag.hint})"
    result: dict[str, object] = {
        "ruleId": diag.rule,
        "ruleIndex": rule_index.get(diag.rule, -1),
        "level": _sarif_level(diag.severity),
        "message": {"text": message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "name": diag.location.describe(),
                        "fullyQualifiedName": diag.location.fully_qualified(
                            diag.design
                        ),
                        "kind": "member",
                    }
                ]
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: diag.fingerprint()},
    }
    if diag.design:
        result["properties"] = {"design": diag.design}
    return result


def render_sarif(reports: Sequence[AnalysisReport]) -> str:
    """A single-run SARIF 2.1.0 log covering every design analyzed."""
    rules = _sarif_rules()
    rule_index: dict[str, int] = {}
    for i, descriptor in enumerate(rules):
        rid = descriptor["id"]
        if isinstance(rid, str):
            rule_index[rid] = i
    results: list[dict[str, object]] = []
    for report in reports:
        for diag in report.diagnostics:
            results.append(_sarif_result(diag, rule_index))
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
                "properties": {
                    "designs": [r.unit_name for r in reports],
                },
            }
        ],
    }
    return json.dumps(log, indent=2)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
